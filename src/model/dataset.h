#ifndef MROAM_MODEL_DATASET_H_
#define MROAM_MODEL_DATASET_H_

#include <string>
#include <vector>

#include "model/billboard.h"
#include "model/trajectory.h"

namespace mroam::model {

/// An in-memory billboard + trajectory dataset (the paper's U and T).
struct Dataset {
  std::string name;  ///< e.g. "NYC-like", "SG-like"
  std::vector<Billboard> billboards;
  std::vector<Trajectory> trajectories;
};

/// Aggregate statistics in the shape of the paper's Table 5.
struct DatasetStats {
  size_t num_trajectories = 0;
  size_t num_billboards = 0;
  double avg_distance_km = 0.0;      ///< mean trajectory length
  double avg_travel_time_sec = 0.0;  ///< mean trajectory travel time
  double avg_points_per_trajectory = 0.0;
};

/// Computes Table 5-style statistics over `dataset`.
DatasetStats ComputeStats(const Dataset& dataset);

/// Reassigns dense, position-matching ids (billboards[i].id = i etc.).
/// Call after constructing a Dataset by hand or after filtering.
void ReindexDataset(Dataset* dataset);

/// Validates internal consistency: ids are dense and position-matching,
/// every trajectory has at least one point. Returns a message for the
/// first violation found, or an empty string if valid.
std::string ValidateDataset(const Dataset& dataset);

/// Models digital billboards (paper §3.2): each physical billboard is
/// replaced by `slots_per_billboard` co-located billboards, one per time
/// slot, each independently assignable to an advertiser. Requires
/// slots_per_billboard >= 1 (1 is a no-op). Ids are re-densified; slot k
/// of original billboard i becomes billboard i * slots_per_billboard + k.
void ExpandDigitalBillboards(Dataset* dataset, int32_t slots_per_billboard);

}  // namespace mroam::model

#endif  // MROAM_MODEL_DATASET_H_
