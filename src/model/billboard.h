#ifndef MROAM_MODEL_BILLBOARD_H_
#define MROAM_MODEL_BILLBOARD_H_

#include <cstdint>

#include "geo/point.h"

namespace mroam::model {

/// Dense identifier of a billboard within a BillboardDatabase.
using BillboardId = int32_t;

/// Sentinel for "no billboard".
inline constexpr BillboardId kInvalidBillboard = -1;

/// A billboard owned by the host. Digital billboards with multiple time
/// slots are modeled as multiple Billboard records sharing a location
/// (paper §3.2 Discussion).
struct Billboard {
  BillboardId id = kInvalidBillboard;
  geo::Point location;
  /// Rental cost o.w = floor(tau * I(o) / 10). The cost does not enter the
  /// regret objective (paper §3.2); it is kept because operators budget
  /// with it. Filled by the influence stage once I(o) is known.
  double cost = 0.0;
};

}  // namespace mroam::model

#endif  // MROAM_MODEL_BILLBOARD_H_
