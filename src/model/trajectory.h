#ifndef MROAM_MODEL_TRAJECTORY_H_
#define MROAM_MODEL_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace mroam::model {

/// Dense identifier of a trajectory within a TrajectoryDatabase.
using TrajectoryId = int32_t;

/// Sentinel for "no trajectory".
inline constexpr TrajectoryId kInvalidTrajectory = -1;

/// One audience movement: an ordered sequence of observed points plus
/// timing. Travel time feeds dataset statistics (Table 5); the start time
/// (seconds since midnight) is used by the temporal time-slot extension
/// (digital billboards, paper §3.2) and is 0 when unknown.
struct Trajectory {
  TrajectoryId id = kInvalidTrajectory;
  std::vector<geo::Point> points;
  /// Departure time in seconds since midnight (0 when unknown).
  double start_time_seconds = 0.0;
  /// End-to-end travel time in seconds (0 when unknown).
  double travel_time_seconds = 0.0;
};

}  // namespace mroam::model

#endif  // MROAM_MODEL_TRAJECTORY_H_
