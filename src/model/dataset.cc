#include "model/dataset.h"

#include "common/logging.h"
#include "geo/polyline.h"

namespace mroam::model {

DatasetStats ComputeStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.num_billboards = dataset.billboards.size();
  stats.num_trajectories = dataset.trajectories.size();
  if (dataset.trajectories.empty()) return stats;

  double total_length_m = 0.0;
  double total_time_s = 0.0;
  double total_points = 0.0;
  for (const Trajectory& t : dataset.trajectories) {
    total_length_m += geo::PolylineLength(t.points);
    total_time_s += t.travel_time_seconds;
    total_points += static_cast<double>(t.points.size());
  }
  double n = static_cast<double>(dataset.trajectories.size());
  stats.avg_distance_km = total_length_m / n / 1000.0;
  stats.avg_travel_time_sec = total_time_s / n;
  stats.avg_points_per_trajectory = total_points / n;
  return stats;
}

void ReindexDataset(Dataset* dataset) {
  for (size_t i = 0; i < dataset->billboards.size(); ++i) {
    dataset->billboards[i].id = static_cast<BillboardId>(i);
  }
  for (size_t i = 0; i < dataset->trajectories.size(); ++i) {
    dataset->trajectories[i].id = static_cast<TrajectoryId>(i);
  }
}

void ExpandDigitalBillboards(Dataset* dataset, int32_t slots_per_billboard) {
  MROAM_CHECK(slots_per_billboard >= 1);
  if (slots_per_billboard == 1) return;
  std::vector<Billboard> expanded;
  expanded.reserve(dataset->billboards.size() * slots_per_billboard);
  for (const Billboard& original : dataset->billboards) {
    for (int32_t slot = 0; slot < slots_per_billboard; ++slot) {
      Billboard b = original;
      b.id = static_cast<BillboardId>(expanded.size());
      expanded.push_back(b);
    }
  }
  dataset->billboards = std::move(expanded);
}

std::string ValidateDataset(const Dataset& dataset) {
  for (size_t i = 0; i < dataset.billboards.size(); ++i) {
    if (dataset.billboards[i].id != static_cast<BillboardId>(i)) {
      return "billboard at position " + std::to_string(i) +
             " has non-dense id " + std::to_string(dataset.billboards[i].id);
    }
  }
  for (size_t i = 0; i < dataset.trajectories.size(); ++i) {
    const Trajectory& t = dataset.trajectories[i];
    if (t.id != static_cast<TrajectoryId>(i)) {
      return "trajectory at position " + std::to_string(i) +
             " has non-dense id " + std::to_string(t.id);
    }
    if (t.points.empty()) {
      return "trajectory " + std::to_string(i) + " has no points";
    }
  }
  return "";
}

}  // namespace mroam::model
