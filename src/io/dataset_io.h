#ifndef MROAM_IO_DATASET_IO_H_
#define MROAM_IO_DATASET_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "model/dataset.h"

namespace mroam::io {

/// Billboard CSV format (3 columns): id,x,y. Lines starting with '#' are
/// comments. Ids must be dense 0..n-1 but may appear in any order.
common::Result<std::vector<model::Billboard>> LoadBillboardsCsv(
    const std::string& path);

/// Saves billboards in the format accepted by LoadBillboardsCsv.
common::Status SaveBillboardsCsv(const std::string& path,
                                 const std::vector<model::Billboard>& bbs);

/// Trajectory CSV format (4 columns):
/// id,start_time_seconds,travel_time_seconds,points where points is
/// "x1 y1;x2 y2;...". Ids must be dense 0..n-1.
common::Result<std::vector<model::Trajectory>> LoadTrajectoriesCsv(
    const std::string& path);

/// Saves trajectories in the format accepted by LoadTrajectoriesCsv.
common::Status SaveTrajectoriesCsv(const std::string& path,
                                   const std::vector<model::Trajectory>& ts);

/// Loads a full dataset from `<dir>/billboards.csv` + `<dir>/trajectories.csv`.
common::Result<model::Dataset> LoadDataset(const std::string& dir,
                                           const std::string& name);

/// Saves a full dataset into `<dir>`, creating the directory (and any
/// missing parents) first. Fails with kIoError when creation is impossible
/// (e.g. a path component is a regular file).
common::Status SaveDataset(const std::string& dir,
                           const model::Dataset& dataset);

}  // namespace mroam::io

#endif  // MROAM_IO_DATASET_IO_H_
