#include "io/snapshot_io.h"

#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mroam::io {

using common::Result;
using common::Status;

namespace {

// --- Little-endian primitive encoding --------------------------------------

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutF64(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked reader over a loaded snapshot. Every Get* fails with
/// kDataLoss once the cursor would pass the end, so a truncated file
/// surfaces as a typed error no matter where the cut lands.
class Cursor {
 public:
  Cursor(std::string_view data, std::string_view what)
      : data_(data), what_(what) {}

  size_t offset() const { return offset_; }
  size_t remaining() const { return data_.size() - offset_; }

  Status Skip(size_t n) {
    if (remaining() < n) return Truncated();
    offset_ += n;
    return Status::Ok();
  }

  Result<uint32_t> GetU32() {
    if (remaining() < 4) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(data_[offset_ + i]))
           << (8 * i);
    }
    offset_ += 4;
    return v;
  }

  Result<uint64_t> GetU64() {
    if (remaining() < 8) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[offset_ + i]))
           << (8 * i);
    }
    offset_ += 8;
    return v;
  }

  Result<int32_t> GetI32() {
    MROAM_ASSIGN_OR_RETURN(uint32_t v, GetU32());
    return static_cast<int32_t>(v);
  }

  Result<double> GetF64() {
    MROAM_ASSIGN_OR_RETURN(uint64_t v, GetU64());
    return std::bit_cast<double>(v);
  }

  Result<std::string> GetString() {
    MROAM_ASSIGN_OR_RETURN(uint32_t len, GetU32());
    if (remaining() < len) return Truncated();
    std::string s(data_.substr(offset_, len));
    offset_ += len;
    return s;
  }

  Result<std::string_view> GetBytes(size_t n) {
    if (remaining() < n) return Truncated();
    std::string_view view = data_.substr(offset_, n);
    offset_ += n;
    return view;
  }

 private:
  Status Truncated() const {
    return Status::DataLoss("snapshot truncated in " + std::string(what_) +
                            " at offset " + std::to_string(offset_));
  }

  std::string_view data_;
  std::string_view what_;
  size_t offset_ = 0;
};

// --- Section payload encoders ----------------------------------------------

std::string EncodeMeta(const model::Dataset& dataset,
                       const influence::InfluenceIndex& index) {
  std::string out;
  PutString(&out, dataset.name);
  PutF64(&out, index.lambda());
  PutU32(&out, static_cast<uint32_t>(dataset.billboards.size()));
  PutU32(&out, static_cast<uint32_t>(dataset.trajectories.size()));
  return out;
}

std::string EncodeBillboards(const model::Dataset& dataset) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(dataset.billboards.size()));
  for (const model::Billboard& b : dataset.billboards) {
    PutF64(&out, b.location.x);
    PutF64(&out, b.location.y);
    PutF64(&out, b.cost);
  }
  return out;
}

std::string EncodeTrajectories(const model::Dataset& dataset) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(dataset.trajectories.size()));
  for (const model::Trajectory& t : dataset.trajectories) {
    PutF64(&out, t.start_time_seconds);
    PutF64(&out, t.travel_time_seconds);
    PutU32(&out, static_cast<uint32_t>(t.points.size()));
    for (const geo::Point& p : t.points) {
      PutF64(&out, p.x);
      PutF64(&out, p.y);
    }
  }
  return out;
}

template <typename IdT>
std::string EncodeLists(const std::vector<std::vector<IdT>>& lists) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(lists.size()));
  for (const std::vector<IdT>& list : lists) {
    PutU32(&out, static_cast<uint32_t>(list.size()));
    for (IdT id : list) PutI32(&out, static_cast<int32_t>(id));
  }
  return out;
}

void AppendSection(std::string* file, SnapshotSection id,
                   const std::string& payload) {
  PutU32(file, static_cast<uint32_t>(id));
  PutU64(file, payload.size());
  file->append(payload);
  PutU32(file, common::Crc32(payload));
}

// --- Section payload decoders ----------------------------------------------

struct MetaSection {
  std::string name;
  double lambda = 0.0;
  uint32_t num_billboards = 0;
  uint32_t num_trajectories = 0;
};

Result<MetaSection> DecodeMeta(std::string_view payload) {
  Cursor cur(payload, "meta section");
  MetaSection meta;
  MROAM_ASSIGN_OR_RETURN(meta.name, cur.GetString());
  MROAM_ASSIGN_OR_RETURN(meta.lambda, cur.GetF64());
  MROAM_ASSIGN_OR_RETURN(meta.num_billboards, cur.GetU32());
  MROAM_ASSIGN_OR_RETURN(meta.num_trajectories, cur.GetU32());
  return meta;
}

Result<std::vector<model::Billboard>> DecodeBillboards(
    std::string_view payload) {
  Cursor cur(payload, "billboards section");
  MROAM_ASSIGN_OR_RETURN(uint32_t count, cur.GetU32());
  std::vector<model::Billboard> billboards(count);
  for (uint32_t i = 0; i < count; ++i) {
    billboards[i].id = static_cast<model::BillboardId>(i);
    MROAM_ASSIGN_OR_RETURN(billboards[i].location.x, cur.GetF64());
    MROAM_ASSIGN_OR_RETURN(billboards[i].location.y, cur.GetF64());
    MROAM_ASSIGN_OR_RETURN(billboards[i].cost, cur.GetF64());
  }
  return billboards;
}

Result<std::vector<model::Trajectory>> DecodeTrajectories(
    std::string_view payload) {
  Cursor cur(payload, "trajectories section");
  MROAM_ASSIGN_OR_RETURN(uint32_t count, cur.GetU32());
  std::vector<model::Trajectory> trajectories(count);
  for (uint32_t i = 0; i < count; ++i) {
    model::Trajectory& t = trajectories[i];
    t.id = static_cast<model::TrajectoryId>(i);
    MROAM_ASSIGN_OR_RETURN(t.start_time_seconds, cur.GetF64());
    MROAM_ASSIGN_OR_RETURN(t.travel_time_seconds, cur.GetF64());
    MROAM_ASSIGN_OR_RETURN(uint32_t npoints, cur.GetU32());
    t.points.resize(npoints);
    for (uint32_t k = 0; k < npoints; ++k) {
      MROAM_ASSIGN_OR_RETURN(t.points[k].x, cur.GetF64());
      MROAM_ASSIGN_OR_RETURN(t.points[k].y, cur.GetF64());
    }
  }
  return trajectories;
}

template <typename IdT>
Result<std::vector<std::vector<IdT>>> DecodeLists(std::string_view payload,
                                                  const char* what) {
  Cursor cur(payload, what);
  MROAM_ASSIGN_OR_RETURN(uint32_t count, cur.GetU32());
  std::vector<std::vector<IdT>> lists(count);
  for (uint32_t i = 0; i < count; ++i) {
    MROAM_ASSIGN_OR_RETURN(uint32_t len, cur.GetU32());
    lists[i].resize(len);
    for (uint32_t k = 0; k < len; ++k) {
      MROAM_ASSIGN_OR_RETURN(int32_t id, cur.GetI32());
      lists[i][k] = static_cast<IdT>(id);
    }
  }
  return lists;
}

}  // namespace

Status SaveIndexSnapshot(const std::string& path,
                         const model::Dataset& dataset,
                         const influence::InfluenceIndex& index) {
  MROAM_TRACE_SPAN("io.snapshot_save");
  common::Stopwatch watch;
  if (dataset.billboards.empty() || dataset.trajectories.empty()) {
    return Status::InvalidArgument(
        "refusing to snapshot an empty dataset (" +
        std::to_string(dataset.billboards.size()) + " billboards, " +
        std::to_string(dataset.trajectories.size()) + " trajectories)");
  }
  if (index.num_billboards() !=
          static_cast<int32_t>(dataset.billboards.size()) ||
      index.num_trajectories() !=
          static_cast<int32_t>(dataset.trajectories.size())) {
    return Status::InvalidArgument(
        "index does not match dataset: index has " +
        std::to_string(index.num_billboards()) + "x" +
        std::to_string(index.num_trajectories()) + ", dataset has " +
        std::to_string(dataset.billboards.size()) + "x" +
        std::to_string(dataset.trajectories.size()));
  }
  std::string problem = model::ValidateDataset(dataset);
  if (!problem.empty()) {
    return Status::InvalidArgument("refusing to snapshot an invalid dataset: " +
                                   problem);
  }

  std::string file;
  file.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutU32(&file, kSnapshotVersion);
  AppendSection(&file, SnapshotSection::kMeta, EncodeMeta(dataset, index));
  AppendSection(&file, SnapshotSection::kBillboards,
                EncodeBillboards(dataset));
  AppendSection(&file, SnapshotSection::kTrajectories,
                EncodeTrajectories(dataset));
  AppendSection(&file, SnapshotSection::kIncidence,
                EncodeLists(index.covered()));
  AppendSection(&file, SnapshotSection::kCovering,
                EncodeLists(index.covering()));
  AppendSection(&file, SnapshotSection::kEnd, "");

  std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
    if (ec) {
      return Status::IoError("cannot create snapshot directory " +
                             target.parent_path().string() + ": " +
                             ec.message());
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open snapshot for writing: " + path);
  }
  out.write(file.data(), static_cast<std::streamsize>(file.size()));
  out.flush();
  if (!out) {
    return Status::IoError("short write to snapshot: " + path);
  }
  MROAM_COUNTER_ADD("io.snapshot_saves", 1);
  MROAM_HISTOGRAM_OBSERVE("io.snapshot_save_seconds",
                          watch.ElapsedSeconds());
  MROAM_LOG(Info) << "snapshot saved to " << path << " ("
                  << file.size() << " bytes, "
                  << dataset.billboards.size() << " billboards, "
                  << dataset.trajectories.size() << " trajectories)";
  return Status::Ok();
}

Result<IndexSnapshot> LoadIndexSnapshot(const std::string& path) {
  MROAM_TRACE_SPAN("io.snapshot_load");
  // Chaos: lets mroam_serve's snapshot-failure exit path be exercised
  // without corrupting a file on disk (MROAM_FAULT="io.snapshot_load=1").
  if (MROAM_FAULT_POINT("io.snapshot_load").fire) {
    return Status::IoError("fault injection: io.snapshot_load armed for " +
                           path);
  }
  common::Stopwatch watch;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("snapshot not found: " + path);
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IoError("read error on snapshot: " + path);
  }

  Cursor cur(data, "file header");
  MROAM_ASSIGN_OR_RETURN(std::string_view magic,
                         cur.GetBytes(sizeof(kSnapshotMagic)));
  if (std::memcmp(magic.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    return Status::InvalidArgument("not a mroam index snapshot: " + path);
  }
  MROAM_ASSIGN_OR_RETURN(uint32_t version, cur.GetU32());
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kSnapshotVersion) +
        ")");
  }

  // Walk the sections: each must appear exactly once, CRC-verified, with
  // kEnd closing the file.
  constexpr uint32_t kMaxSectionId =
      static_cast<uint32_t>(SnapshotSection::kCovering);
  std::vector<std::string_view> payloads(kMaxSectionId + 1);
  std::vector<bool> seen(kMaxSectionId + 1, false);
  bool ended = false;
  while (!ended) {
    MROAM_ASSIGN_OR_RETURN(uint32_t id, cur.GetU32());
    MROAM_ASSIGN_OR_RETURN(uint64_t length, cur.GetU64());
    if (id > kMaxSectionId) {
      return Status::DataLoss("unknown snapshot section id " +
                              std::to_string(id));
    }
    if (seen[id]) {
      return Status::DataLoss("duplicate snapshot section id " +
                              std::to_string(id));
    }
    seen[id] = true;
    MROAM_ASSIGN_OR_RETURN(std::string_view payload,
                           cur.GetBytes(static_cast<size_t>(length)));
    MROAM_ASSIGN_OR_RETURN(uint32_t stored_crc, cur.GetU32());
    const uint32_t actual_crc = common::Crc32(payload);
    if (stored_crc != actual_crc) {
      return Status::DataLoss("CRC mismatch in snapshot section " +
                              std::to_string(id) + " (stored " +
                              std::to_string(stored_crc) + ", computed " +
                              std::to_string(actual_crc) + ")");
    }
    if (static_cast<SnapshotSection>(id) == SnapshotSection::kEnd) {
      if (length != 0) {
        return Status::DataLoss("snapshot end section carries a payload");
      }
      ended = true;
    } else {
      payloads[id] = payload;
    }
  }
  if (cur.remaining() != 0) {
    return Status::DataLoss("trailing bytes after snapshot end section");
  }
  for (uint32_t id = 0; id <= kMaxSectionId; ++id) {
    if (!seen[id]) {
      return Status::DataLoss("snapshot is missing section id " +
                              std::to_string(id));
    }
  }

  MROAM_ASSIGN_OR_RETURN(
      MetaSection meta,
      DecodeMeta(payloads[static_cast<uint32_t>(SnapshotSection::kMeta)]));
  IndexSnapshot snapshot;
  snapshot.dataset.name = meta.name;
  MROAM_ASSIGN_OR_RETURN(
      snapshot.dataset.billboards,
      DecodeBillboards(
          payloads[static_cast<uint32_t>(SnapshotSection::kBillboards)]));
  MROAM_ASSIGN_OR_RETURN(
      snapshot.dataset.trajectories,
      DecodeTrajectories(
          payloads[static_cast<uint32_t>(SnapshotSection::kTrajectories)]));
  if (snapshot.dataset.billboards.size() != meta.num_billboards ||
      snapshot.dataset.trajectories.size() != meta.num_trajectories) {
    return Status::DataLoss(
        "snapshot entity counts disagree with meta section");
  }
  std::string problem = model::ValidateDataset(snapshot.dataset);
  if (!problem.empty()) {
    return Status::DataLoss("snapshot dataset invalid: " + problem);
  }

  MROAM_ASSIGN_OR_RETURN(
      std::vector<std::vector<model::TrajectoryId>> covered,
      DecodeLists<model::TrajectoryId>(
          payloads[static_cast<uint32_t>(SnapshotSection::kIncidence)],
          "incidence section"));
  if (covered.size() != meta.num_billboards) {
    return Status::DataLoss("snapshot incidence list count disagrees with "
                            "meta section");
  }
  MROAM_ASSIGN_OR_RETURN(
      std::vector<std::vector<model::BillboardId>> covering,
      DecodeLists<model::BillboardId>(
          payloads[static_cast<uint32_t>(SnapshotSection::kCovering)],
          "covering section"));

  // FromIncidence re-validates the forward lists (sorted, duplicate-free,
  // in-range — its standing preconditions) and rebuilds the reverse index;
  // the stored copy must agree or the file is internally inconsistent.
  snapshot.index = influence::InfluenceIndex::FromIncidence(
      std::move(covered), static_cast<int32_t>(meta.num_trajectories),
      meta.lambda);
  if (snapshot.index.covering() != covering) {
    return Status::DataLoss(
        "snapshot covering section does not match the incidence lists");
  }

  MROAM_COUNTER_ADD("io.snapshot_loads", 1);
  MROAM_HISTOGRAM_OBSERVE("io.snapshot_load_seconds",
                          watch.ElapsedSeconds());
  MROAM_LOG(Info) << "snapshot loaded from " << path << " ("
                  << snapshot.dataset.billboards.size() << " billboards, "
                  << snapshot.dataset.trajectories.size()
                  << " trajectories, supply "
                  << snapshot.index.TotalSupply() << ") in "
                  << watch.ElapsedSeconds() << "s";
  return snapshot;
}

}  // namespace mroam::io
