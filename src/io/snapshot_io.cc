#include "io/snapshot_io.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "io/snapshot_wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mroam::io {

using common::Result;
using common::Status;
using wire::Cursor;
using wire::PutF64;
using wire::PutI32;
using wire::PutString;
using wire::PutU32;
using wire::PutU64;

namespace wire {

Result<SectionTableV2> WalkSectionsV2(std::string_view data,
                                      uint32_t max_section_id,
                                      size_t file_header_bytes) {
  SectionTableV2 table;
  table.payloads.resize(max_section_id + 1);
  table.seen.assign(max_section_id + 1, false);
  Cursor cur(data, "v2 section chain");
  MROAM_RETURN_IF_ERROR(cur.Skip(file_header_bytes));
  bool ended = false;
  while (!ended) {
    MROAM_ASSIGN_OR_RETURN(uint32_t id, cur.GetU32());
    MROAM_ASSIGN_OR_RETURN(uint32_t pad, cur.GetU32());
    MROAM_ASSIGN_OR_RETURN(uint64_t length, cur.GetU64());
    if (id > max_section_id) {
      return Status::DataLoss("unknown snapshot section id " +
                              std::to_string(id));
    }
    if (table.seen[id]) {
      return Status::DataLoss("duplicate snapshot section id " +
                              std::to_string(id));
    }
    table.seen[id] = true;
    // The pad must be exactly what places the payload on the next 64-byte
    // file offset, and must be zero bytes — anything else is tampering or
    // a buggy writer, and the zero-copy path depends on the alignment.
    const size_t want_pad =
        (kSectionAlignmentV2 - cur.offset() % kSectionAlignmentV2) %
        kSectionAlignmentV2;
    if (pad != want_pad) {
      return Status::DataLoss(
          "snapshot section " + std::to_string(id) + " pad " +
          std::to_string(pad) + " does not align its payload (want " +
          std::to_string(want_pad) + ")");
    }
    MROAM_ASSIGN_OR_RETURN(std::string_view padding, cur.GetBytes(pad));
    for (char c : padding) {
      if (c != '\0') {
        return Status::DataLoss("snapshot section " + std::to_string(id) +
                                " has nonzero padding");
      }
    }
    MROAM_ASSIGN_OR_RETURN(std::string_view payload,
                           cur.GetBytes(static_cast<size_t>(length)));
    MROAM_ASSIGN_OR_RETURN(uint32_t stored_crc, cur.GetU32());
    const uint32_t actual_crc = common::Crc32(payload);
    if (stored_crc != actual_crc) {
      return Status::DataLoss("CRC mismatch in snapshot section " +
                              std::to_string(id) + " (stored " +
                              std::to_string(stored_crc) + ", computed " +
                              std::to_string(actual_crc) + ")");
    }
    if (id == static_cast<uint32_t>(SnapshotSection::kEnd)) {
      if (length != 0) {
        return Status::DataLoss("snapshot end section carries a payload");
      }
      ended = true;
    } else {
      table.payloads[id] = payload;
    }
  }
  if (cur.remaining() != 0) {
    return Status::DataLoss("trailing bytes after snapshot end section");
  }
  return table;
}

}  // namespace wire

namespace {

// --- Section payload encoders ----------------------------------------------

std::string EncodeMeta(const model::Dataset& dataset,
                       const influence::InfluenceIndex& index) {
  std::string out;
  PutString(&out, dataset.name);
  PutF64(&out, index.lambda());
  PutU32(&out, static_cast<uint32_t>(dataset.billboards.size()));
  PutU32(&out, static_cast<uint32_t>(dataset.trajectories.size()));
  return out;
}

std::string EncodeBillboards(const model::Dataset& dataset) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(dataset.billboards.size()));
  for (const model::Billboard& b : dataset.billboards) {
    PutF64(&out, b.location.x);
    PutF64(&out, b.location.y);
    PutF64(&out, b.cost);
  }
  return out;
}

std::string EncodeTrajectories(const model::Dataset& dataset) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(dataset.trajectories.size()));
  for (const model::Trajectory& t : dataset.trajectories) {
    PutF64(&out, t.start_time_seconds);
    PutF64(&out, t.travel_time_seconds);
    PutU32(&out, static_cast<uint32_t>(t.points.size()));
    for (const geo::Point& p : t.points) {
      PutF64(&out, p.x);
      PutF64(&out, p.y);
    }
  }
  return out;
}

template <typename IdT>
std::string EncodeLists(const std::vector<std::vector<IdT>>& lists) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(lists.size()));
  for (const std::vector<IdT>& list : lists) {
    PutU32(&out, static_cast<uint32_t>(list.size()));
    for (IdT id : list) PutI32(&out, static_cast<int32_t>(id));
  }
  return out;
}

void AppendSectionV1(std::string* file, SnapshotSection id,
                     const std::string& payload) {
  PutU32(file, static_cast<uint32_t>(id));
  PutU64(file, payload.size());
  file->append(payload);
  PutU32(file, common::Crc32(payload));
}

/// v2 framing: 16-byte header, then zero padding placing the payload on a
/// 64-byte file offset, then the payload and its CRC.
void AppendSectionV2(std::string* file, SnapshotSection id,
                     std::string_view payload) {
  const size_t header_end = file->size() + kSnapshotSectionHeaderBytesV2;
  const size_t pad =
      (wire::kSectionAlignmentV2 - header_end % wire::kSectionAlignmentV2) %
      wire::kSectionAlignmentV2;
  PutU32(file, static_cast<uint32_t>(id));
  PutU32(file, static_cast<uint32_t>(pad));
  PutU64(file, payload.size());
  file->append(pad, '\0');
  file->append(payload);
  PutU32(file, common::Crc32(payload));
}

// --- Section payload decoders ----------------------------------------------

struct MetaSection {
  std::string name;
  double lambda = 0.0;
  uint32_t num_billboards = 0;
  uint32_t num_trajectories = 0;
};

Result<MetaSection> DecodeMeta(std::string_view payload) {
  Cursor cur(payload, "meta section");
  MetaSection meta;
  MROAM_ASSIGN_OR_RETURN(meta.name, cur.GetString());
  MROAM_ASSIGN_OR_RETURN(meta.lambda, cur.GetF64());
  MROAM_ASSIGN_OR_RETURN(meta.num_billboards, cur.GetU32());
  MROAM_ASSIGN_OR_RETURN(meta.num_trajectories, cur.GetU32());
  return meta;
}

Result<std::vector<model::Billboard>> DecodeBillboards(
    std::string_view payload) {
  Cursor cur(payload, "billboards section");
  MROAM_ASSIGN_OR_RETURN(uint32_t count, cur.GetU32());
  std::vector<model::Billboard> billboards(count);
  for (uint32_t i = 0; i < count; ++i) {
    billboards[i].id = static_cast<model::BillboardId>(i);
    MROAM_ASSIGN_OR_RETURN(billboards[i].location.x, cur.GetF64());
    MROAM_ASSIGN_OR_RETURN(billboards[i].location.y, cur.GetF64());
    MROAM_ASSIGN_OR_RETURN(billboards[i].cost, cur.GetF64());
  }
  return billboards;
}

Result<std::vector<model::Trajectory>> DecodeTrajectories(
    std::string_view payload) {
  Cursor cur(payload, "trajectories section");
  MROAM_ASSIGN_OR_RETURN(uint32_t count, cur.GetU32());
  std::vector<model::Trajectory> trajectories(count);
  for (uint32_t i = 0; i < count; ++i) {
    model::Trajectory& t = trajectories[i];
    t.id = static_cast<model::TrajectoryId>(i);
    MROAM_ASSIGN_OR_RETURN(t.start_time_seconds, cur.GetF64());
    MROAM_ASSIGN_OR_RETURN(t.travel_time_seconds, cur.GetF64());
    MROAM_ASSIGN_OR_RETURN(uint32_t npoints, cur.GetU32());
    t.points.resize(npoints);
    for (uint32_t k = 0; k < npoints; ++k) {
      MROAM_ASSIGN_OR_RETURN(t.points[k].x, cur.GetF64());
      MROAM_ASSIGN_OR_RETURN(t.points[k].y, cur.GetF64());
    }
  }
  return trajectories;
}

template <typename IdT>
Result<std::vector<std::vector<IdT>>> DecodeLists(std::string_view payload,
                                                  const char* what) {
  Cursor cur(payload, what);
  MROAM_ASSIGN_OR_RETURN(uint32_t count, cur.GetU32());
  std::vector<std::vector<IdT>> lists(count);
  for (uint32_t i = 0; i < count; ++i) {
    MROAM_ASSIGN_OR_RETURN(uint32_t len, cur.GetU32());
    lists[i].resize(len);
    for (uint32_t k = 0; k < len; ++k) {
      MROAM_ASSIGN_OR_RETURN(int32_t id, cur.GetI32());
      lists[i][k] = static_cast<IdT>(id);
    }
  }
  return lists;
}

// --- Shared save plumbing --------------------------------------------------

Status ValidateForSave(const model::Dataset& dataset,
                       const influence::InfluenceIndex& index) {
  if (dataset.billboards.empty() || dataset.trajectories.empty()) {
    return Status::InvalidArgument(
        "refusing to snapshot an empty dataset (" +
        std::to_string(dataset.billboards.size()) + " billboards, " +
        std::to_string(dataset.trajectories.size()) + " trajectories)");
  }
  if (index.num_billboards() !=
          static_cast<int32_t>(dataset.billboards.size()) ||
      index.num_trajectories() !=
          static_cast<int32_t>(dataset.trajectories.size())) {
    return Status::InvalidArgument(
        "index does not match dataset: index has " +
        std::to_string(index.num_billboards()) + "x" +
        std::to_string(index.num_trajectories()) + ", dataset has " +
        std::to_string(dataset.billboards.size()) + "x" +
        std::to_string(dataset.trajectories.size()));
  }
  std::string problem = model::ValidateDataset(dataset);
  if (!problem.empty()) {
    return Status::InvalidArgument(
        "refusing to snapshot an invalid dataset: " + problem);
  }
  return Status::Ok();
}

/// Writes `file` to `path` through a temp file in the target directory,
/// renamed over `path` only once every byte is on disk — a crash (or the
/// armed "io.snapshot_write" fault point, which simulates one by writing
/// half the bytes and stopping short of the rename) leaves at worst a
/// stray .tmp file, never a truncated snapshot under the final name.
Status WriteFileAtomic(const std::string& path, const std::string& file) {
  std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(target.parent_path(), ec);
    if (ec) {
      return Status::IoError("cannot create snapshot directory " +
                             target.parent_path().string() + ": " +
                             ec.message());
    }
  }
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const bool crash_mid_write = MROAM_FAULT_POINT("io.snapshot_write").fire;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IoError("cannot open snapshot for writing: " + tmp);
    }
    const size_t bytes = crash_mid_write ? file.size() / 2 : file.size();
    out.write(file.data(), static_cast<std::streamsize>(bytes));
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      return Status::IoError("short write to snapshot: " + tmp);
    }
  }
  if (crash_mid_write) {
    // Simulated crash: the half-written temp file stays behind (as it
    // would after a real crash) and the target is never touched.
    return Status::IoError("fault injection: io.snapshot_write armed for " +
                           path);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return Status::IoError("cannot rename " + tmp + " over " + path);
  }
  return Status::Ok();
}

Status FinishSave(const std::string& path, const std::string& file,
                  const model::Dataset& dataset, uint32_t version,
                  common::Stopwatch* watch) {
  MROAM_RETURN_IF_ERROR(WriteFileAtomic(path, file));
  MROAM_COUNTER_ADD("io.snapshot_saves", 1);
  MROAM_HISTOGRAM_OBSERVE("io.snapshot_save_seconds",
                          watch->ElapsedSeconds());
  MROAM_LOG(Info) << "snapshot (v" << version << ") saved to " << path
                  << " (" << file.size() << " bytes, "
                  << dataset.billboards.size() << " billboards, "
                  << dataset.trajectories.size() << " trajectories)";
  return Status::Ok();
}

}  // namespace

Status SaveIndexSnapshot(const std::string& path,
                         const model::Dataset& dataset,
                         const influence::InfluenceIndex& index,
                         const market::ContractBook& book) {
  MROAM_TRACE_SPAN("io.snapshot_save");
  common::Stopwatch watch;
  MROAM_RETURN_IF_ERROR(ValidateForSave(dataset, index));

  std::string file;
  file.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutU32(&file, kSnapshotVersionV2);
  AppendSectionV2(&file, SnapshotSection::kMeta, EncodeMeta(dataset, index));
  AppendSectionV2(&file, SnapshotSection::kBillboards,
                  EncodeBillboards(dataset));
  AppendSectionV2(&file, SnapshotSection::kTrajectories,
                  EncodeTrajectories(dataset));
  // The compressed blobs' owned layout IS the wire layout: the payloads
  // below are byte-identical to what MappedSnapshot later borrows in
  // place, and to what the loader re-encodes for its integrity check.
  AppendSectionV2(&file, SnapshotSection::kCompressedIncidence,
                  index.compressed_covered().bytes());
  AppendSectionV2(&file, SnapshotSection::kCompressedCovering,
                  index.compressed_covering().bytes());
  AppendSectionV2(&file, SnapshotSection::kContractBook,
                  wire::EncodeBook(book));
  AppendSectionV2(&file, SnapshotSection::kEnd, "");
  return FinishSave(path, file, dataset, kSnapshotVersionV2, &watch);
}

Status SaveIndexSnapshotV1(const std::string& path,
                           const model::Dataset& dataset,
                           const influence::InfluenceIndex& index) {
  MROAM_TRACE_SPAN("io.snapshot_save");
  common::Stopwatch watch;
  MROAM_RETURN_IF_ERROR(ValidateForSave(dataset, index));

  std::string file;
  file.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  PutU32(&file, kSnapshotVersionV1);
  AppendSectionV1(&file, SnapshotSection::kMeta, EncodeMeta(dataset, index));
  AppendSectionV1(&file, SnapshotSection::kBillboards,
                  EncodeBillboards(dataset));
  AppendSectionV1(&file, SnapshotSection::kTrajectories,
                  EncodeTrajectories(dataset));
  AppendSectionV1(&file, SnapshotSection::kIncidence,
                  EncodeLists(index.covered()));
  AppendSectionV1(&file, SnapshotSection::kCovering,
                  EncodeLists(index.covering()));
  AppendSectionV1(&file, SnapshotSection::kEnd, "");
  return FinishSave(path, file, dataset, kSnapshotVersionV1, &watch);
}

namespace {

/// Shared tail of both load paths: decode the dataset sections, validate,
/// and cross-check against the meta counts.
Result<IndexSnapshot> DecodeDataset(const MetaSection& meta,
                                    std::string_view billboards_payload,
                                    std::string_view trajectories_payload) {
  IndexSnapshot snapshot;
  snapshot.dataset.name = meta.name;
  MROAM_ASSIGN_OR_RETURN(snapshot.dataset.billboards,
                         DecodeBillboards(billboards_payload));
  MROAM_ASSIGN_OR_RETURN(snapshot.dataset.trajectories,
                         DecodeTrajectories(trajectories_payload));
  if (snapshot.dataset.billboards.size() != meta.num_billboards ||
      snapshot.dataset.trajectories.size() != meta.num_trajectories) {
    return Status::DataLoss(
        "snapshot entity counts disagree with meta section");
  }
  std::string problem = model::ValidateDataset(snapshot.dataset);
  if (!problem.empty()) {
    return Status::DataLoss("snapshot dataset invalid: " + problem);
  }
  return snapshot;
}

Result<IndexSnapshot> LoadV1(std::string_view data) {
  Cursor cur(data, "file header");
  MROAM_RETURN_IF_ERROR(cur.Skip(kSnapshotFileHeaderBytes));

  // Walk the sections: each must appear exactly once, CRC-verified, with
  // kEnd closing the file.
  constexpr uint32_t kMaxSectionId =
      static_cast<uint32_t>(SnapshotSection::kCovering);
  std::vector<std::string_view> payloads(kMaxSectionId + 1);
  std::vector<bool> seen(kMaxSectionId + 1, false);
  bool ended = false;
  while (!ended) {
    MROAM_ASSIGN_OR_RETURN(uint32_t id, cur.GetU32());
    MROAM_ASSIGN_OR_RETURN(uint64_t length, cur.GetU64());
    if (id > kMaxSectionId) {
      return Status::DataLoss("unknown snapshot section id " +
                              std::to_string(id));
    }
    if (seen[id]) {
      return Status::DataLoss("duplicate snapshot section id " +
                              std::to_string(id));
    }
    seen[id] = true;
    MROAM_ASSIGN_OR_RETURN(std::string_view payload,
                           cur.GetBytes(static_cast<size_t>(length)));
    MROAM_ASSIGN_OR_RETURN(uint32_t stored_crc, cur.GetU32());
    const uint32_t actual_crc = common::Crc32(payload);
    if (stored_crc != actual_crc) {
      return Status::DataLoss("CRC mismatch in snapshot section " +
                              std::to_string(id) + " (stored " +
                              std::to_string(stored_crc) + ", computed " +
                              std::to_string(actual_crc) + ")");
    }
    if (static_cast<SnapshotSection>(id) == SnapshotSection::kEnd) {
      if (length != 0) {
        return Status::DataLoss("snapshot end section carries a payload");
      }
      ended = true;
    } else {
      payloads[id] = payload;
    }
  }
  if (cur.remaining() != 0) {
    return Status::DataLoss("trailing bytes after snapshot end section");
  }
  for (uint32_t id = 0; id <= kMaxSectionId; ++id) {
    if (!seen[id]) {
      return Status::DataLoss("snapshot is missing section id " +
                              std::to_string(id));
    }
  }

  MROAM_ASSIGN_OR_RETURN(
      MetaSection meta,
      DecodeMeta(payloads[static_cast<uint32_t>(SnapshotSection::kMeta)]));
  MROAM_ASSIGN_OR_RETURN(
      IndexSnapshot snapshot,
      DecodeDataset(
          meta, payloads[static_cast<uint32_t>(SnapshotSection::kBillboards)],
          payloads[static_cast<uint32_t>(SnapshotSection::kTrajectories)]));

  MROAM_ASSIGN_OR_RETURN(
      std::vector<std::vector<model::TrajectoryId>> covered,
      DecodeLists<model::TrajectoryId>(
          payloads[static_cast<uint32_t>(SnapshotSection::kIncidence)],
          "incidence section"));
  if (covered.size() != meta.num_billboards) {
    return Status::DataLoss("snapshot incidence list count disagrees with "
                            "meta section");
  }
  MROAM_ASSIGN_OR_RETURN(
      std::vector<std::vector<model::BillboardId>> covering,
      DecodeLists<model::BillboardId>(
          payloads[static_cast<uint32_t>(SnapshotSection::kCovering)],
          "covering section"));

  // FromIncidence re-validates the forward lists (sorted, duplicate-free,
  // in-range — its standing preconditions) and rebuilds the reverse index;
  // the stored copy must agree or the file is internally inconsistent.
  snapshot.index = influence::InfluenceIndex::FromIncidence(
      std::move(covered), static_cast<int32_t>(meta.num_trajectories),
      meta.lambda);
  if (snapshot.index.covering() != covering) {
    return Status::DataLoss(
        "snapshot covering section does not match the incidence lists");
  }
  return snapshot;
}

Result<IndexSnapshot> LoadV2(std::string_view data) {
  constexpr uint32_t kMaxSectionId =
      static_cast<uint32_t>(SnapshotSection::kContractBook);
  MROAM_ASSIGN_OR_RETURN(
      wire::SectionTableV2 table,
      wire::WalkSectionsV2(data, kMaxSectionId, kSnapshotFileHeaderBytes));
  for (SnapshotSection required :
       {SnapshotSection::kMeta, SnapshotSection::kBillboards,
        SnapshotSection::kTrajectories,
        SnapshotSection::kCompressedIncidence,
        SnapshotSection::kCompressedCovering}) {
    if (!table.seen[static_cast<uint32_t>(required)]) {
      return Status::DataLoss(
          "snapshot is missing section id " +
          std::to_string(static_cast<uint32_t>(required)));
    }
  }
  for (SnapshotSection plain :
       {SnapshotSection::kIncidence, SnapshotSection::kCovering}) {
    if (table.seen[static_cast<uint32_t>(plain)]) {
      return Status::DataLoss("v2 snapshot carries a v1 plain-list section");
    }
  }

  MROAM_ASSIGN_OR_RETURN(
      MetaSection meta,
      DecodeMeta(
          table.payloads[static_cast<uint32_t>(SnapshotSection::kMeta)]));
  MROAM_ASSIGN_OR_RETURN(
      IndexSnapshot snapshot,
      DecodeDataset(
          meta,
          table.payloads[static_cast<uint32_t>(SnapshotSection::kBillboards)],
          table.payloads[static_cast<uint32_t>(
              SnapshotSection::kTrajectories)]));

  const std::string_view covered_blob = table.payloads[static_cast<uint32_t>(
      SnapshotSection::kCompressedIncidence)];
  const std::string_view covering_blob = table.payloads[static_cast<uint32_t>(
      SnapshotSection::kCompressedCovering)];
  // Borrowing is safe here (`data` outlives the decode), and FromBytes
  // runs the full structural validation either way.
  MROAM_ASSIGN_OR_RETURN(
      cindex::CompressedPostings covered_c,
      cindex::CompressedPostings::FromBytes(covered_blob,
                                            cindex::Ownership::kBorrow));
  if (covered_c.num_lists() != meta.num_billboards ||
      covered_c.universe() != static_cast<int32_t>(meta.num_trajectories)) {
    return Status::DataLoss(
        "snapshot compressed incidence shape disagrees with meta section");
  }
  std::vector<std::vector<model::TrajectoryId>> covered(
      covered_c.num_lists());
  for (uint32_t o = 0; o < covered_c.num_lists(); ++o) {
    covered_c.Decode(static_cast<int32_t>(o), &covered[o]);
  }

  // FromIncidence re-validates the decoded lists and deterministically
  // re-encodes both compressed blobs; byte-identity with the stored
  // payloads is the v2 integrity check (it also certifies the covering
  // blob without a separate decode).
  snapshot.index = influence::InfluenceIndex::FromIncidence(
      std::move(covered), static_cast<int32_t>(meta.num_trajectories),
      meta.lambda);
  if (snapshot.index.compressed_covered().bytes() != covered_blob ||
      snapshot.index.compressed_covering().bytes() != covering_blob) {
    return Status::DataLoss(
        "snapshot compressed sections do not re-encode to the stored "
        "bytes");
  }

  if (table.seen[static_cast<uint32_t>(SnapshotSection::kContractBook)]) {
    MROAM_ASSIGN_OR_RETURN(
        snapshot.book,
        wire::DecodeBook(table.payloads[static_cast<uint32_t>(
            SnapshotSection::kContractBook)]));
  }
  return snapshot;
}

}  // namespace

Result<IndexSnapshot> LoadIndexSnapshot(const std::string& path) {
  MROAM_TRACE_SPAN("io.snapshot_load");
  // Chaos: lets mroam_serve's snapshot-failure exit path be exercised
  // without corrupting a file on disk (MROAM_FAULT="io.snapshot_load=1").
  if (MROAM_FAULT_POINT("io.snapshot_load").fire) {
    return Status::IoError("fault injection: io.snapshot_load armed for " +
                           path);
  }
  common::Stopwatch watch;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("snapshot not found: " + path);
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IoError("read error on snapshot: " + path);
  }

  Cursor cur(data, "file header");
  MROAM_ASSIGN_OR_RETURN(std::string_view magic,
                         cur.GetBytes(sizeof(kSnapshotMagic)));
  if (std::memcmp(magic.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    return Status::InvalidArgument("not a mroam index snapshot: " + path);
  }
  MROAM_ASSIGN_OR_RETURN(uint32_t version, cur.GetU32());
  Result<IndexSnapshot> loaded = [&]() -> Result<IndexSnapshot> {
    switch (version) {
      case kSnapshotVersionV1:
        return LoadV1(data);
      case kSnapshotVersionV2:
        return LoadV2(data);
      default:
        return Status::InvalidArgument(
            "unsupported snapshot version " + std::to_string(version) +
            " (this build reads versions 1-" +
            std::to_string(kSnapshotVersion) + ")");
    }
  }();
  MROAM_RETURN_IF_ERROR(loaded.status());
  IndexSnapshot snapshot = std::move(*loaded);

  MROAM_COUNTER_ADD("io.snapshot_loads", 1);
  MROAM_HISTOGRAM_OBSERVE("io.snapshot_load_seconds",
                          watch.ElapsedSeconds());
  MROAM_LOG(Info) << "snapshot (v" << version << ") loaded from " << path
                  << " (" << snapshot.dataset.billboards.size()
                  << " billboards, " << snapshot.dataset.trajectories.size()
                  << " trajectories, supply "
                  << snapshot.index.TotalSupply() << ") in "
                  << watch.ElapsedSeconds() << "s";
  return snapshot;
}

}  // namespace mroam::io
