#include "io/dataset_io.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "common/csv.h"
#include "common/strings.h"

namespace mroam::io {

using common::CsvRow;
using common::ParseDouble;
using common::ParseInt64;
using common::Result;
using common::Status;

namespace {

/// Checks that parsed ids form a dense 0..n-1 permutation and sorts
/// `items` by id so that position == id.
template <typename T>
Status DensifyByIds(std::vector<T>* items, const char* what) {
  std::sort(items->begin(), items->end(),
            [](const T& a, const T& b) { return a.id < b.id; });
  for (size_t i = 0; i < items->size(); ++i) {
    if ((*items)[i].id != static_cast<int32_t>(i)) {
      return Status::DataLoss(std::string(what) + " ids are not dense: " +
                              "expected " + std::to_string(i) + ", found " +
                              std::to_string((*items)[i].id));
    }
  }
  return Status::Ok();
}

Result<std::vector<geo::Point>> ParsePointList(std::string_view packed) {
  std::vector<geo::Point> points;
  for (std::string_view pair : common::Split(packed, ';')) {
    pair = common::StripWhitespace(pair);
    if (pair.empty()) continue;
    size_t space = pair.find(' ');
    if (space == std::string_view::npos) {
      return Status::DataLoss("point entry missing space separator: '" +
                              std::string(pair) + "'");
    }
    MROAM_ASSIGN_OR_RETURN(double x, ParseDouble(pair.substr(0, space)));
    MROAM_ASSIGN_OR_RETURN(double y, ParseDouble(pair.substr(space + 1)));
    points.push_back(geo::Point{x, y});
  }
  if (points.empty()) {
    return Status::DataLoss("trajectory has no points");
  }
  return points;
}

std::string PackPointList(const std::vector<geo::Point>& points) {
  std::string out;
  for (size_t i = 0; i < points.size(); ++i) {
    if (i > 0) out.push_back(';');
    out += common::FormatDouble(points[i].x, 2);
    out.push_back(' ');
    out += common::FormatDouble(points[i].y, 2);
  }
  return out;
}

}  // namespace

Result<std::vector<model::Billboard>> LoadBillboardsCsv(
    const std::string& path) {
  MROAM_ASSIGN_OR_RETURN(std::vector<CsvRow> rows,
                         common::ReadCsvFile(path, /*expected_columns=*/3));
  std::vector<model::Billboard> billboards;
  billboards.reserve(rows.size());
  for (const CsvRow& row : rows) {
    model::Billboard b;
    MROAM_ASSIGN_OR_RETURN(int64_t id, ParseInt64(row[0]));
    MROAM_ASSIGN_OR_RETURN(b.location.x, ParseDouble(row[1]));
    MROAM_ASSIGN_OR_RETURN(b.location.y, ParseDouble(row[2]));
    b.id = static_cast<model::BillboardId>(id);
    billboards.push_back(b);
  }
  MROAM_RETURN_IF_ERROR(DensifyByIds(&billboards, "billboard"));
  return billboards;
}

Status SaveBillboardsCsv(const std::string& path,
                         const std::vector<model::Billboard>& bbs) {
  std::vector<CsvRow> rows;
  rows.reserve(bbs.size() + 1);
  rows.push_back({"# id", "x", "y"});
  for (const model::Billboard& b : bbs) {
    rows.push_back({std::to_string(b.id), common::FormatDouble(b.location.x, 2),
                    common::FormatDouble(b.location.y, 2)});
  }
  return common::WriteCsvFile(path, rows);
}

Result<std::vector<model::Trajectory>> LoadTrajectoriesCsv(
    const std::string& path) {
  MROAM_ASSIGN_OR_RETURN(std::vector<CsvRow> rows,
                         common::ReadCsvFile(path, /*expected_columns=*/4));
  std::vector<model::Trajectory> trajectories;
  trajectories.reserve(rows.size());
  for (const CsvRow& row : rows) {
    model::Trajectory t;
    MROAM_ASSIGN_OR_RETURN(int64_t id, ParseInt64(row[0]));
    MROAM_ASSIGN_OR_RETURN(t.start_time_seconds, ParseDouble(row[1]));
    MROAM_ASSIGN_OR_RETURN(t.travel_time_seconds, ParseDouble(row[2]));
    MROAM_ASSIGN_OR_RETURN(t.points, ParsePointList(row[3]));
    t.id = static_cast<model::TrajectoryId>(id);
    trajectories.push_back(std::move(t));
  }
  MROAM_RETURN_IF_ERROR(DensifyByIds(&trajectories, "trajectory"));
  return trajectories;
}

Status SaveTrajectoriesCsv(const std::string& path,
                           const std::vector<model::Trajectory>& ts) {
  std::vector<CsvRow> rows;
  rows.reserve(ts.size() + 1);
  rows.push_back({"# id", "start_time_seconds", "travel_time_seconds",
                  "points (x y;x y;...)"});
  for (const model::Trajectory& t : ts) {
    rows.push_back({std::to_string(t.id),
                    common::FormatDouble(t.start_time_seconds, 1),
                    common::FormatDouble(t.travel_time_seconds, 1),
                    PackPointList(t.points)});
  }
  return common::WriteCsvFile(path, rows);
}

Result<model::Dataset> LoadDataset(const std::string& dir,
                                   const std::string& name) {
  model::Dataset dataset;
  dataset.name = name;
  MROAM_ASSIGN_OR_RETURN(dataset.billboards,
                         LoadBillboardsCsv(dir + "/billboards.csv"));
  MROAM_ASSIGN_OR_RETURN(dataset.trajectories,
                         LoadTrajectoriesCsv(dir + "/trajectories.csv"));
  std::string problem = model::ValidateDataset(dataset);
  if (!problem.empty()) {
    return Status::DataLoss("dataset in " + dir + " invalid: " + problem);
  }
  return dataset;
}

Status SaveDataset(const std::string& dir, const model::Dataset& dataset) {
  // Create the target directory (and any missing parents) instead of
  // failing on the first file write with an opaque IO error.
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create dataset directory " + dir + ": " +
                           ec.message());
  }
  MROAM_RETURN_IF_ERROR(
      SaveBillboardsCsv(dir + "/billboards.csv", dataset.billboards));
  return SaveTrajectoriesCsv(dir + "/trajectories.csv",
                             dataset.trajectories);
}

}  // namespace mroam::io
