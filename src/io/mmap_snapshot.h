#ifndef MROAM_IO_MMAP_SNAPSHOT_H_
#define MROAM_IO_MMAP_SNAPSHOT_H_

#include <cstddef>
#include <string>

#include "common/status.h"
#include "influence/influence_index.h"
#include "market/contract_book.h"

namespace mroam::io {

// ---------------------------------------------------------------------------
// Zero-copy snapshot serving (docs/snapshot_format.md, format v2 only).
//
// MappedSnapshot mmaps a v2 snapshot and builds an InfluenceIndex whose
// compressed postings BORROW the mapped bytes in place — no decoded
// incidence copy is ever materialized, so cold start is page faults plus
// one CRC pass, not a parse, and resident memory stays bounded by the
// file. The index has no plain lists (InfluenceIndex::has_plain() is
// false); every consumer dispatches through the compressed read path,
// which CoverageCounter engages automatically.
//
// The mapping lives exactly as long as the MappedSnapshot: keep it alive
// for the whole serving lifetime of index(). Move-only.
// ---------------------------------------------------------------------------

class MappedSnapshot {
 public:
  /// Maps `path` read-only and validates it as a v2 snapshot: magic,
  /// version (v1 files are rejected — they have nothing to borrow), v2
  /// framing with 64-byte payload alignment, per-section CRC, and the
  /// full structural validation of both compressed blobs. The
  /// "io.mmap_map" fault point turns a good file into a typed kIoError
  /// (chaos hook for mroam_serve's exit-status-3 path).
  static common::Result<MappedSnapshot> Map(const std::string& path);

  MappedSnapshot(MappedSnapshot&& other) noexcept;
  MappedSnapshot& operator=(MappedSnapshot&& other) noexcept;
  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;
  ~MappedSnapshot();

  /// The borrowed-postings index (has_plain() == false). Valid while this
  /// MappedSnapshot is alive.
  const influence::InfluenceIndex& index() const { return index_; }

  /// The contract book stored at save time (empty unless the snapshot was
  /// written by a draining server).
  const market::ContractBook& book() const { return book_; }

  /// Size of the mapped file in bytes.
  size_t file_bytes() const { return len_; }

 private:
  MappedSnapshot() = default;
  void Unmap();

  void* map_ = nullptr;
  size_t len_ = 0;
  influence::InfluenceIndex index_;
  market::ContractBook book_;
};

}  // namespace mroam::io

#endif  // MROAM_IO_MMAP_SNAPSHOT_H_
