#ifndef MROAM_IO_SNAPSHOT_WIRE_H_
#define MROAM_IO_SNAPSHOT_WIRE_H_

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/crc32.h"
#include "common/status.h"
#include "market/contract_book.h"

// ---------------------------------------------------------------------------
// Wire-level helpers shared by the snapshot writer/loader (snapshot_io.cc)
// and the zero-copy mmap loader (mmap_snapshot.cc): little-endian primitive
// encoding, a bounds-checked cursor, the version-2 section walker, and the
// contract-book codec. Internal to src/io — the public surface is
// snapshot_io.h / mmap_snapshot.h.
// ---------------------------------------------------------------------------

namespace mroam::io::wire {

// --- Little-endian primitive encoding --------------------------------------

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

inline void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

inline void PutF64(std::string* out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

inline void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked reader over a loaded snapshot. Every Get* fails with
/// kDataLoss once the cursor would pass the end, so a truncated file
/// surfaces as a typed error no matter where the cut lands.
class Cursor {
 public:
  Cursor(std::string_view data, std::string_view what)
      : data_(data), what_(what) {}

  size_t offset() const { return offset_; }
  size_t remaining() const { return data_.size() - offset_; }

  common::Status Skip(size_t n) {
    if (remaining() < n) return Truncated();
    offset_ += n;
    return common::Status::Ok();
  }

  common::Result<uint32_t> GetU32() {
    if (remaining() < 4) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(data_[offset_ + i]))
           << (8 * i);
    }
    offset_ += 4;
    return v;
  }

  common::Result<uint64_t> GetU64() {
    if (remaining() < 8) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[offset_ + i]))
           << (8 * i);
    }
    offset_ += 8;
    return v;
  }

  common::Result<int32_t> GetI32() {
    MROAM_ASSIGN_OR_RETURN(uint32_t v, GetU32());
    return static_cast<int32_t>(v);
  }

  common::Result<int64_t> GetI64() {
    MROAM_ASSIGN_OR_RETURN(uint64_t v, GetU64());
    return static_cast<int64_t>(v);
  }

  common::Result<double> GetF64() {
    MROAM_ASSIGN_OR_RETURN(uint64_t v, GetU64());
    return std::bit_cast<double>(v);
  }

  common::Result<std::string> GetString() {
    MROAM_ASSIGN_OR_RETURN(uint32_t len, GetU32());
    if (remaining() < len) return Truncated();
    std::string s(data_.substr(offset_, len));
    offset_ += len;
    return s;
  }

  common::Result<std::string_view> GetBytes(size_t n) {
    if (remaining() < n) return Truncated();
    std::string_view view = data_.substr(offset_, n);
    offset_ += n;
    return view;
  }

 private:
  common::Status Truncated() const {
    return common::Status::DataLoss(
        "snapshot truncated in " + std::string(what_) + " at offset " +
        std::to_string(offset_));
  }

  std::string_view data_;
  std::string_view what_;
  size_t offset_ = 0;
};

// --- Contract-book codec (snapshot v2 kContractBook section) ---------------

inline std::string EncodeBook(const market::ContractBook& book) {
  std::string out;
  PutI32(&out, book.day);
  PutI64(&out, book.next_ticket);
  PutU32(&out, static_cast<uint32_t>(book.entries.size()));
  for (const market::ContractBookEntry& entry : book.entries) {
    PutI32(&out, entry.terms.id);
    PutI64(&out, entry.terms.demand);
    PutF64(&out, entry.terms.payment);
    PutI64(&out, entry.ticket);
    PutI32(&out, entry.expires_on);
    PutU32(&out, static_cast<uint32_t>(entry.billboards.size()));
    for (model::BillboardId o : entry.billboards) {
      PutI32(&out, static_cast<int32_t>(o));
    }
  }
  return out;
}

inline common::Result<market::ContractBook> DecodeBook(
    std::string_view payload) {
  Cursor cur(payload, "contract-book section");
  market::ContractBook book;
  MROAM_ASSIGN_OR_RETURN(book.day, cur.GetI32());
  MROAM_ASSIGN_OR_RETURN(book.next_ticket, cur.GetI64());
  MROAM_ASSIGN_OR_RETURN(uint32_t count, cur.GetU32());
  book.entries.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    market::ContractBookEntry& entry = book.entries[i];
    MROAM_ASSIGN_OR_RETURN(entry.terms.id, cur.GetI32());
    MROAM_ASSIGN_OR_RETURN(entry.terms.demand, cur.GetI64());
    MROAM_ASSIGN_OR_RETURN(entry.terms.payment, cur.GetF64());
    MROAM_ASSIGN_OR_RETURN(entry.ticket, cur.GetI64());
    MROAM_ASSIGN_OR_RETURN(entry.expires_on, cur.GetI32());
    MROAM_ASSIGN_OR_RETURN(uint32_t boards, cur.GetU32());
    entry.billboards.resize(boards);
    for (uint32_t k = 0; k < boards; ++k) {
      MROAM_ASSIGN_OR_RETURN(int32_t id, cur.GetI32());
      entry.billboards[k] = static_cast<model::BillboardId>(id);
    }
  }
  if (cur.remaining() != 0) {
    return common::Status::DataLoss(
        "trailing bytes in contract-book section");
  }
  return book;
}

// --- Version-2 section framing ---------------------------------------------

/// Payload alignment of every v2 section — matches
/// cindex::kPostingsAlignment so a mapped compressed blob can be borrowed
/// in place.
inline constexpr size_t kSectionAlignmentV2 = 64;

/// Payload views of a walked v2 file, indexed by section id. Views point
/// into the walked buffer (heap copy or mmap) — they live as long as it
/// does.
struct SectionTableV2 {
  std::vector<std::string_view> payloads;
  std::vector<bool> seen;
};

/// Walks the v2 section chain of `data` (the whole file; the walk starts
/// after the 12-byte file header): per section a 16-byte header {id u32,
/// pad u32, len u64}, `pad` zero bytes placing the payload on a 64-byte
/// file offset, the payload, then its CRC-32. Verifies framing, alignment,
/// CRC, and single occurrence of each id up to `max_section_id`; requires
/// a terminating kEnd (id 0) with no trailing bytes.
common::Result<SectionTableV2> WalkSectionsV2(std::string_view data,
                                              uint32_t max_section_id,
                                              size_t file_header_bytes);

}  // namespace mroam::io::wire

#endif  // MROAM_IO_SNAPSHOT_WIRE_H_
