#include "io/mmap_snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string_view>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "io/snapshot_io.h"
#include "io/snapshot_wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mroam::io {

using common::Result;
using common::Status;

MappedSnapshot::MappedSnapshot(MappedSnapshot&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      len_(std::exchange(other.len_, 0)),
      index_(std::move(other.index_)),
      book_(std::move(other.book_)) {}

MappedSnapshot& MappedSnapshot::operator=(MappedSnapshot&& other) noexcept {
  if (this != &other) {
    Unmap();
    map_ = std::exchange(other.map_, nullptr);
    len_ = std::exchange(other.len_, 0);
    index_ = std::move(other.index_);
    book_ = std::move(other.book_);
  }
  return *this;
}

MappedSnapshot::~MappedSnapshot() { Unmap(); }

void MappedSnapshot::Unmap() {
  if (map_ != nullptr) {
    ::munmap(map_, len_);
    map_ = nullptr;
    len_ = 0;
  }
}

Result<MappedSnapshot> MappedSnapshot::Map(const std::string& path) {
  MROAM_TRACE_SPAN("io.snapshot_map");
  // Chaos: lets mroam_serve's --mmap failure exit path be exercised
  // without corrupting a file on disk (MROAM_FAULT="io.mmap_map=1").
  if (MROAM_FAULT_POINT("io.mmap_map").fire) {
    return Status::IoError("fault injection: io.mmap_map armed for " + path);
  }
  common::Stopwatch watch;

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("snapshot not found: " + path);
    }
    return Status::IoError("cannot open snapshot " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("cannot stat snapshot " + path + ": " +
                           std::strerror(err));
  }
  const size_t len = static_cast<size_t>(st.st_size);
  if (len < kSnapshotFileHeaderBytes) {
    ::close(fd);
    return Status::DataLoss("snapshot truncated in file header at offset 0");
  }
  void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (map == MAP_FAILED) {
    return Status::IoError("cannot mmap snapshot " + path + ": " +
                           std::strerror(errno));
  }

  MappedSnapshot snapshot;
  snapshot.map_ = map;
  snapshot.len_ = len;
  const std::string_view data(static_cast<const char*>(map), len);

  if (std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) !=
      0) {
    return Status::InvalidArgument("not a mroam index snapshot: " + path);
  }
  wire::Cursor header(data, "file header");
  MROAM_RETURN_IF_ERROR(header.Skip(sizeof(kSnapshotMagic)));
  MROAM_ASSIGN_OR_RETURN(uint32_t version, header.GetU32());
  if (version != kSnapshotVersionV2) {
    return Status::InvalidArgument(
        "mmap serving needs a v2 snapshot; " + path + " is version " +
        std::to_string(version) +
        " (re-save it with the current writer, or load it without --mmap)");
  }

  constexpr uint32_t kMaxSectionId =
      static_cast<uint32_t>(SnapshotSection::kContractBook);
  MROAM_ASSIGN_OR_RETURN(
      wire::SectionTableV2 table,
      wire::WalkSectionsV2(data, kMaxSectionId, kSnapshotFileHeaderBytes));
  for (SnapshotSection required :
       {SnapshotSection::kMeta, SnapshotSection::kCompressedIncidence,
        SnapshotSection::kCompressedCovering}) {
    if (!table.seen[static_cast<uint32_t>(required)]) {
      return Status::DataLoss(
          "snapshot is missing section id " +
          std::to_string(static_cast<uint32_t>(required)));
    }
  }

  // Only lambda is needed from the meta section: the entity counts come
  // from (and are cross-checked against) the blob headers themselves, and
  // the dataset geometry stays untouched on disk.
  wire::Cursor meta(
      table.payloads[static_cast<uint32_t>(SnapshotSection::kMeta)],
      "meta section");
  MROAM_ASSIGN_OR_RETURN(std::string name, meta.GetString());
  MROAM_ASSIGN_OR_RETURN(double lambda, meta.GetF64());
  MROAM_ASSIGN_OR_RETURN(uint32_t num_billboards, meta.GetU32());
  MROAM_ASSIGN_OR_RETURN(uint32_t num_trajectories, meta.GetU32());
  (void)name;

  // The zero-copy heart: both blobs are borrowed straight out of the
  // mapping (FromBytes still runs the full structural validation), and
  // FromCompressed cross-checks their shapes against each other.
  MROAM_ASSIGN_OR_RETURN(
      cindex::CompressedPostings covered,
      cindex::CompressedPostings::FromBytes(
          table.payloads[static_cast<uint32_t>(
              SnapshotSection::kCompressedIncidence)],
          cindex::Ownership::kBorrow));
  MROAM_ASSIGN_OR_RETURN(
      cindex::CompressedPostings covering,
      cindex::CompressedPostings::FromBytes(
          table.payloads[static_cast<uint32_t>(
              SnapshotSection::kCompressedCovering)],
          cindex::Ownership::kBorrow));
  if (covered.num_lists() != num_billboards ||
      covered.universe() != static_cast<int32_t>(num_trajectories)) {
    return Status::DataLoss(
        "snapshot compressed incidence shape disagrees with meta section");
  }
  snapshot.index_ = influence::InfluenceIndex::FromCompressed(
      std::move(covered), std::move(covering), lambda);

  if (table.seen[static_cast<uint32_t>(SnapshotSection::kContractBook)]) {
    MROAM_ASSIGN_OR_RETURN(
        snapshot.book_,
        wire::DecodeBook(table.payloads[static_cast<uint32_t>(
            SnapshotSection::kContractBook)]));
  }

  MROAM_COUNTER_ADD("io.snapshot_maps", 1);
  MROAM_HISTOGRAM_OBSERVE("io.snapshot_map_seconds",
                          watch.ElapsedSeconds());
  MROAM_LOG(Info) << "snapshot mapped from " << path << " (" << len
                  << " bytes, " << num_billboards << " billboards, "
                  << num_trajectories << " trajectories, "
                  << snapshot.book_.entries.size()
                  << " restored contracts) in " << watch.ElapsedSeconds()
                  << "s";
  return snapshot;
}

}  // namespace mroam::io
