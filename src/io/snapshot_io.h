#ifndef MROAM_IO_SNAPSHOT_IO_H_
#define MROAM_IO_SNAPSHOT_IO_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "influence/influence_index.h"
#include "market/contract_book.h"
#include "model/dataset.h"

namespace mroam::io {

// ---------------------------------------------------------------------------
// Binary index snapshots (docs/snapshot_format.md).
//
// A snapshot persists a model::Dataset together with its fully built
// influence::InfluenceIndex so a serving process (mroam_serve) cold-starts
// in milliseconds instead of re-parsing CSVs and recomputing the
// O(|U| x |T|) meet model. The file is a fixed header followed by
// length-prefixed sections, each closed by a CRC-32 of its payload; every
// integer is little-endian, every double is its IEEE-754 bit pattern, so a
// round trip is bit-exact.
//
// Two on-disk versions exist:
//   * v1 stores the incidence and reverse-covering lists as flat int32
//     arrays (12-byte section headers, unaligned payloads).
//   * v2 (default writer) stores them as cindex compressed-posting blobs
//     instead, with 16-byte section headers and zero padding that places
//     every payload on a 64-byte file offset — the exact owned layout of
//     cindex::CompressedPostings, so MappedSnapshot (mmap_snapshot.h) can
//     borrow the blobs straight out of a mapping and serve with zero
//     decoded copies. v2 also carries the serving layer's open contract
//     book, so a drained server restores its active contracts on restart.
//
// Readers accept both versions; SaveIndexSnapshotV1 keeps the legacy
// writer available for compatibility tooling and the format tests.
// ---------------------------------------------------------------------------

/// First 8 bytes of every snapshot file.
inline constexpr char kSnapshotMagic[8] = {'M', 'R', 'O', 'A',
                                           'M', 'S', 'N', 'P'};

/// The two on-disk versions. SaveIndexSnapshot writes kSnapshotVersion
/// (= v2); readers accept both, and reject anything newer.
inline constexpr uint32_t kSnapshotVersionV1 = 1;
inline constexpr uint32_t kSnapshotVersionV2 = 2;
inline constexpr uint32_t kSnapshotVersion = kSnapshotVersionV2;

/// Section identifiers. v1 files carry ids 0..5; v2 files carry kMeta,
/// kBillboards, kTrajectories, the two compressed-postings sections, the
/// (optional) contract book, and kEnd. Each section appears at most once;
/// kEnd terminates the file.
enum class SnapshotSection : uint32_t {
  kEnd = 0,            ///< empty payload; must be last
  kMeta = 1,           ///< dataset name, lambda, entity counts
  kBillboards = 2,     ///< locations + costs, id = position
  kTrajectories = 3,   ///< timing + points, id = position
  kIncidence = 4,      ///< v1: billboard -> trajectories flat lists
  kCovering = 5,       ///< v1: trajectory -> billboards flat lists
  kCompressedIncidence = 6,  ///< v2: covered lists as a cindex CPB1 blob
  kCompressedCovering = 7,   ///< v2: covering lists as a cindex CPB1 blob
  kContractBook = 8,         ///< v2: the serving layer's open book
};

/// Bytes of a v1 section header: id (u32) + payload length (u64). The
/// payload follows, then its CRC-32 (u32). Exposed for the format tests,
/// which walk sections to tamper with specific payloads.
inline constexpr size_t kSnapshotSectionHeaderBytes = 12;
/// Bytes of a v2 section header: id (u32) + pad (u32) + payload length
/// (u64). `pad` zero bytes follow the header so the payload starts on a
/// 64-byte file offset; the payload follows, then its CRC-32 (u32).
inline constexpr size_t kSnapshotSectionHeaderBytesV2 = 16;
/// Bytes of the file header: magic (8) + version (u32).
inline constexpr size_t kSnapshotFileHeaderBytes = 12;

/// A loaded snapshot: the dataset, its prebuilt index, and (v2) the
/// serving layer's contract book at save time (empty for v1 files and
/// snapshots saved outside a serving drain).
struct IndexSnapshot {
  model::Dataset dataset;
  influence::InfluenceIndex index;
  market::ContractBook book;
};

/// Writes `dataset` + `index` (+ the open contract `book`, if any) to
/// `path` in format v2. Parent directories are created; the bytes land in
/// a temp file in the target directory which is atomically renamed over
/// `path`, so a crash mid-save (or the armed "io.snapshot_write" fault
/// point) can never leave a truncated snapshot under the final name.
/// Fails with kInvalidArgument on an empty dataset or when `index` does
/// not match `dataset` (entity counts), kIoError on filesystem trouble.
common::Status SaveIndexSnapshot(
    const std::string& path, const model::Dataset& dataset,
    const influence::InfluenceIndex& index,
    const market::ContractBook& book = market::ContractBook{});

/// Legacy v1 writer (flat int32 lists, no contract book) — kept so the
/// compatibility path (v1 files read by current loaders) stays testable
/// and old tooling can still be fed.
common::Status SaveIndexSnapshotV1(const std::string& path,
                                   const model::Dataset& dataset,
                                   const influence::InfluenceIndex& index);

/// Reads a snapshot written by either writer. Corruption is caught in
/// layers: framing damage (bad magic, unknown version, truncation, CRC
/// mismatch, misaligned v2 payload, missing/duplicate sections) returns a
/// typed error; payloads that pass their CRC are then re-validated through
/// the existing InfluenceIndex::FromIncidence preconditions (sorted,
/// duplicate-free, in-range lists — MROAM_CHECK, i.e. a forged file that
/// re-signs garbage aborts rather than serving a corrupt market). For v1
/// the stored reverse index must match the one rebuilt from the forward
/// lists; for v2 the compressed blobs are decoded, the index is rebuilt,
/// and its re-encoded blobs must be byte-identical to the stored ones
/// (the codec is deterministic, so any inconsistency is corruption).
common::Result<IndexSnapshot> LoadIndexSnapshot(const std::string& path);

}  // namespace mroam::io

#endif  // MROAM_IO_SNAPSHOT_IO_H_
