#ifndef MROAM_IO_SNAPSHOT_IO_H_
#define MROAM_IO_SNAPSHOT_IO_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "influence/influence_index.h"
#include "model/dataset.h"

namespace mroam::io {

// ---------------------------------------------------------------------------
// Binary index snapshots (docs/snapshot_format.md).
//
// A snapshot persists a model::Dataset together with its fully built
// influence::InfluenceIndex — forward incidence lists *and* the
// trajectory -> billboards reverse index — so a serving process
// (mroam_serve) cold-starts in milliseconds instead of re-parsing CSVs and
// recomputing the O(|U| x |T|) meet model. The file is a fixed header
// followed by length-prefixed sections, each closed by a CRC-32 of its
// payload; every integer is little-endian, every double is its IEEE-754
// bit pattern, so a round trip is bit-exact.
// ---------------------------------------------------------------------------

/// First 8 bytes of every snapshot file.
inline constexpr char kSnapshotMagic[8] = {'M', 'R', 'O', 'A',
                                           'M', 'S', 'N', 'P'};

/// Current (and only) format version. Readers reject anything else.
inline constexpr uint32_t kSnapshotVersion = 1;

/// Section identifiers, in the order Save writes them. Each section
/// appears exactly once; kEnd terminates the file.
enum class SnapshotSection : uint32_t {
  kEnd = 0,           ///< empty payload; must be last
  kMeta = 1,          ///< dataset name, lambda, entity counts
  kBillboards = 2,    ///< locations + costs, id = position
  kTrajectories = 3,  ///< timing + points, id = position
  kIncidence = 4,     ///< billboard -> trajectories lists
  kCovering = 5,      ///< trajectory -> billboards reverse lists
};

/// Bytes of a section header: id (u32) + payload length (u64). The
/// payload follows, then its CRC-32 (u32). Exposed for the format tests,
/// which walk sections to tamper with specific payloads.
inline constexpr size_t kSnapshotSectionHeaderBytes = 12;
/// Bytes of the file header: magic (8) + version (u32).
inline constexpr size_t kSnapshotFileHeaderBytes = 12;

/// A loaded snapshot: the dataset and its prebuilt index.
struct IndexSnapshot {
  model::Dataset dataset;
  influence::InfluenceIndex index;
};

/// Writes `dataset` + `index` to `path` (parent directories are created).
/// Fails with kInvalidArgument on an empty dataset or when `index` does
/// not match `dataset` (entity counts), kIoError on filesystem trouble.
common::Status SaveIndexSnapshot(const std::string& path,
                                 const model::Dataset& dataset,
                                 const influence::InfluenceIndex& index);

/// Reads a snapshot written by SaveIndexSnapshot. Corruption is caught in
/// layers: framing damage (bad magic, unknown version, truncation, CRC
/// mismatch, missing/duplicate sections) returns a typed error; payloads
/// that pass their CRC are then re-validated through the existing
/// InfluenceIndex::FromIncidence preconditions (sorted, duplicate-free,
/// in-range lists — MROAM_CHECK, i.e. a forged file that re-signs garbage
/// aborts rather than serving a corrupt market), and the stored reverse
/// index must match the one rebuilt from the forward lists.
common::Result<IndexSnapshot> LoadIndexSnapshot(const std::string& path);

}  // namespace mroam::io

#endif  // MROAM_IO_SNAPSHOT_IO_H_
