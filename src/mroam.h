#ifndef MROAM_MROAM_H_
#define MROAM_MROAM_H_

/// Umbrella header for the mroam library: everything a typical user needs
/// to generate (or load) a city, build the influence index, define a
/// market, and solve MROAM. Individual headers remain available for
/// finer-grained includes.

#include "common/rng.h"
#include "common/status.h"
#include "core/daily_market.h"
#include "core/exact.h"
#include "core/solver.h"
#include "eval/experiment.h"
#include "eval/svg_export.h"
#include "gen/city_generators.h"
#include "influence/influence_index.h"
#include "influence/reports.h"
#include "io/dataset_io.h"
#include "market/contract_io.h"
#include "market/workload.h"
#include "model/dataset.h"
#include "prep/raw_ingest.h"
#include "temporal/time_slots.h"

#endif  // MROAM_MROAM_H_
