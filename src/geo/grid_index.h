#ifndef MROAM_GEO_GRID_INDEX_H_
#define MROAM_GEO_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geo/point.h"

namespace mroam::geo {

/// A uniform-grid spatial index over labeled points, used to answer
/// "which billboards lie within lambda of this trajectory point" queries
/// during influence-index construction. Build once, query many times.
class GridIndex {
 public:
  /// Creates an index with the given cell size in meters (> 0). Choosing
  /// cell_size == query radius keeps each query to a 3x3 neighborhood.
  explicit GridIndex(double cell_size);

  /// Inserts a point labeled `id`.
  void Insert(const Point& p, int32_t id);

  /// Appends ids of all points within `radius` of `center` to `out`
  /// (does not clear `out`). Requires radius <= cell size * 1 for the 3x3
  /// fast path; larger radii scan proportionally more cells.
  void QueryRadius(const Point& center, double radius,
                   std::vector<int32_t>* out) const;

  /// Convenience wrapper returning a fresh vector.
  std::vector<int32_t> QueryRadius(const Point& center, double radius) const;

  size_t size() const { return size_; }
  double cell_size() const { return cell_size_; }

 private:
  struct Entry {
    Point point;
    int32_t id;
  };

  int64_t CellKey(double x, double y) const;

  double cell_size_;
  size_t size_ = 0;
  std::unordered_map<int64_t, std::vector<Entry>> cells_;
};

}  // namespace mroam::geo

#endif  // MROAM_GEO_GRID_INDEX_H_
