#include "geo/grid_index.h"

#include <cmath>

#include "common/logging.h"

namespace mroam::geo {

GridIndex::GridIndex(double cell_size) : cell_size_(cell_size) {
  MROAM_CHECK(cell_size > 0.0);
}

int64_t GridIndex::CellKey(double x, double y) const {
  // Offset to keep cell coordinates positive for typical city extents, then
  // pack two 32-bit cell indices into one key.
  int64_t cx = static_cast<int64_t>(std::floor(x / cell_size_)) + (1 << 20);
  int64_t cy = static_cast<int64_t>(std::floor(y / cell_size_)) + (1 << 20);
  return (cx << 32) | (cy & 0xffffffffLL);
}

void GridIndex::Insert(const Point& p, int32_t id) {
  cells_[CellKey(p.x, p.y)].push_back(Entry{p, id});
  ++size_;
}

void GridIndex::QueryRadius(const Point& center, double radius,
                            std::vector<int32_t>* out) const {
  MROAM_DCHECK(radius >= 0.0);
  const double r2 = radius * radius;
  const int span = static_cast<int>(std::ceil(radius / cell_size_));
  for (int dx = -span; dx <= span; ++dx) {
    for (int dy = -span; dy <= span; ++dy) {
      auto it = cells_.find(CellKey(center.x + dx * cell_size_,
                                    center.y + dy * cell_size_));
      if (it == cells_.end()) continue;
      for (const Entry& e : it->second) {
        if (SquaredDistance(e.point, center) <= r2) {
          out->push_back(e.id);
        }
      }
    }
  }
}

std::vector<int32_t> GridIndex::QueryRadius(const Point& center,
                                            double radius) const {
  std::vector<int32_t> out;
  QueryRadius(center, radius, &out);
  return out;
}

}  // namespace mroam::geo
