#ifndef MROAM_GEO_POINT_H_
#define MROAM_GEO_POINT_H_

#include <cmath>
#include <ostream>

namespace mroam::geo {

/// A point in a planar city coordinate frame, in meters. The library works
/// in projected meters throughout (the paper's distance threshold lambda is
/// specified in meters); generators emit meters directly.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

inline Point operator+(const Point& a, const Point& b) {
  return {a.x + b.x, a.y + b.y};
}
inline Point operator-(const Point& a, const Point& b) {
  return {a.x - b.x, a.y - b.y};
}
inline Point operator*(const Point& p, double s) { return {p.x * s, p.y * s}; }
inline Point operator*(double s, const Point& p) { return p * s; }

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

/// Squared Euclidean distance (cheaper than Distance for comparisons).
inline double SquaredDistance(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance in meters.
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

/// Linear interpolation between `a` and `b`; t=0 -> a, t=1 -> b.
inline Point Lerp(const Point& a, const Point& b, double t) {
  return {a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t};
}

/// An axis-aligned bounding box.
struct BoundingBox {
  Point min{1e300, 1e300};
  Point max{-1e300, -1e300};

  /// True if no point has been added.
  bool Empty() const { return min.x > max.x || min.y > max.y; }

  /// Grows the box to include `p`.
  void Extend(const Point& p) {
    if (p.x < min.x) min.x = p.x;
    if (p.y < min.y) min.y = p.y;
    if (p.x > max.x) max.x = p.x;
    if (p.y > max.y) max.y = p.y;
  }

  /// True if `p` lies inside or on the boundary.
  bool Contains(const Point& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  double Width() const { return Empty() ? 0.0 : max.x - min.x; }
  double Height() const { return Empty() ? 0.0 : max.y - min.y; }
};

}  // namespace mroam::geo

#endif  // MROAM_GEO_POINT_H_
