#include "geo/polyline.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace mroam::geo {

double PolylineLength(const std::vector<Point>& points) {
  double total = 0.0;
  for (size_t i = 1; i < points.size(); ++i) {
    total += Distance(points[i - 1], points[i]);
  }
  return total;
}

Point PointAlong(const std::vector<Point>& points, double distance) {
  MROAM_CHECK(!points.empty());
  if (distance <= 0.0) return points.front();
  double remaining = distance;
  for (size_t i = 1; i < points.size(); ++i) {
    double seg = Distance(points[i - 1], points[i]);
    if (remaining <= seg && seg > 0.0) {
      return Lerp(points[i - 1], points[i], remaining / seg);
    }
    remaining -= seg;
  }
  return points.back();
}

std::vector<Point> Densify(const std::vector<Point>& points,
                           double max_spacing) {
  MROAM_CHECK(max_spacing > 0.0);
  if (points.size() < 2) return points;
  std::vector<Point> out;
  out.push_back(points.front());
  for (size_t i = 1; i < points.size(); ++i) {
    double seg = Distance(points[i - 1], points[i]);
    int pieces = std::max(1, static_cast<int>(std::ceil(seg / max_spacing)));
    for (int k = 1; k < pieces; ++k) {
      out.push_back(Lerp(points[i - 1], points[i],
                         static_cast<double>(k) / pieces));
    }
    out.push_back(points[i]);  // original vertices are preserved exactly
  }
  return out;
}

namespace {

double DistanceToSegment(const Point& p, const Point& a, const Point& b) {
  double len2 = SquaredDistance(a, b);
  if (len2 == 0.0) return Distance(p, a);
  double t = ((p.x - a.x) * (b.x - a.x) + (p.y - a.y) * (b.y - a.y)) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return Distance(p, Lerp(a, b, t));
}

}  // namespace

double DistanceToPolyline(const Point& p, const std::vector<Point>& points) {
  MROAM_CHECK(!points.empty());
  if (points.size() == 1) return Distance(p, points[0]);
  double best = 1e300;
  for (size_t i = 1; i < points.size(); ++i) {
    best = std::min(best, DistanceToSegment(p, points[i - 1], points[i]));
  }
  return best;
}

}  // namespace mroam::geo
