#ifndef MROAM_GEO_POLYLINE_H_
#define MROAM_GEO_POLYLINE_H_

#include <vector>

#include "geo/point.h"

namespace mroam::geo {

/// Total length of a polyline (sum of segment lengths), in meters.
double PolylineLength(const std::vector<Point>& points);

/// Point at arc-length `distance` along the polyline (clamped to the ends).
/// Requires at least one point.
Point PointAlong(const std::vector<Point>& points, double distance);

/// Resamples a polyline so that consecutive points are at most
/// `max_spacing` meters apart (original vertices are preserved).
/// Requires max_spacing > 0. A polyline with fewer than two points is
/// returned unchanged.
std::vector<Point> Densify(const std::vector<Point>& points,
                           double max_spacing);

/// Minimum distance from point `p` to the polyline (segments, not just
/// vertices). Requires at least one point.
double DistanceToPolyline(const Point& p, const std::vector<Point>& points);

}  // namespace mroam::geo

#endif  // MROAM_GEO_POLYLINE_H_
