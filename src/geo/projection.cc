#include "geo/projection.h"

#include <cmath>
#include <numbers>

namespace mroam::geo {

namespace {
// WGS84 mean earth radius, meters.
constexpr double kEarthRadiusM = 6371008.8;
constexpr double kDegToRad = std::numbers::pi / 180.0;
}  // namespace

Projector::Projector(double origin_lon, double origin_lat)
    : origin_lon_(origin_lon),
      origin_lat_(origin_lat),
      meters_per_degree_lon_(kEarthRadiusM * kDegToRad *
                             std::cos(origin_lat * kDegToRad)),
      meters_per_degree_lat_(kEarthRadiusM * kDegToRad) {}

Point Projector::Project(double lon, double lat) const {
  return {(lon - origin_lon_) * meters_per_degree_lon_,
          (lat - origin_lat_) * meters_per_degree_lat_};
}

void Projector::Unproject(const Point& p, double* lon, double* lat) const {
  *lon = origin_lon_ + p.x / meters_per_degree_lon_;
  *lat = origin_lat_ + p.y / meters_per_degree_lat_;
}

}  // namespace mroam::geo
