#ifndef MROAM_GEO_PROJECTION_H_
#define MROAM_GEO_PROJECTION_H_

#include "geo/point.h"

namespace mroam::geo {

/// Equirectangular projection of WGS84 lon/lat into planar meters around
/// a reference point. Accurate to well under 1% over a metro-scale area,
/// which is all the meet model's 50-200 m thresholds need.
class Projector {
 public:
  /// Creates a projector centered on (origin_lon, origin_lat) degrees;
  /// that point maps to (0, 0).
  Projector(double origin_lon, double origin_lat);

  /// Projects (lon, lat) degrees to meters relative to the origin.
  Point Project(double lon, double lat) const;

  /// Inverse projection: meters back to (lon, lat) degrees.
  void Unproject(const Point& p, double* lon, double* lat) const;

  double origin_lon() const { return origin_lon_; }
  double origin_lat() const { return origin_lat_; }

 private:
  double origin_lon_;
  double origin_lat_;
  double meters_per_degree_lon_;
  double meters_per_degree_lat_;
};

}  // namespace mroam::geo

#endif  // MROAM_GEO_PROJECTION_H_
