#include "core/assignment.h"

#include <algorithm>
#include <cmath>

namespace mroam::core {

using market::AdvertiserId;
using market::kNoAdvertiser;
using model::BillboardId;

Assignment::Assignment(const influence::InfluenceIndex* index,
                       std::vector<market::Advertiser> advertisers,
                       RegretParams params, uint16_t impression_threshold,
                       influence::IndexBackend backend)
    : index_(index),
      advertisers_(std::move(advertisers)),
      params_(params),
      impression_threshold_(impression_threshold),
      backend_(backend),
      owner_(index->num_billboards(), kNoAdvertiser),
      slot_(index->num_billboards(), 0),
      sets_(advertisers_.size()),
      regret_(advertisers_.size(), 0.0) {
  MROAM_CHECK(params_.gamma >= 0.0 && params_.gamma <= 1.0);
  for (size_t a = 0; a < advertisers_.size(); ++a) {
    MROAM_CHECK(advertisers_[a].id == static_cast<AdvertiserId>(a));
    MROAM_CHECK(advertisers_[a].demand > 0);
    MROAM_CHECK(advertisers_[a].payment > 0.0);
  }
  free_.resize(index->num_billboards());
  for (int32_t o = 0; o < index->num_billboards(); ++o) {
    free_[o] = o;
    slot_[o] = o;
  }
  counters_.reserve(advertisers_.size());
  for (size_t a = 0; a < advertisers_.size(); ++a) {
    counters_.emplace_back(index_, impression_threshold_, backend_);
    regret_[a] = Regret(advertisers_[a], 0, params_);
    total_regret_ += regret_[a];
  }
}

namespace {

/// Removes the element at `pos` from `list`, keeping `slot` consistent.
void SwapPop(std::vector<BillboardId>* list, std::vector<int32_t>* slot,
             int32_t pos) {
  BillboardId moved = list->back();
  (*list)[pos] = moved;
  (*slot)[moved] = pos;
  list->pop_back();
}

}  // namespace

double Assignment::TotalDual() const {
  double total = 0.0;
  for (int32_t a = 0; a < num_advertisers(); ++a) total += DualOf(a);
  return total;
}

RegretBreakdown Assignment::Breakdown() const {
  RegretBreakdown b;
  b.advertiser_count = num_advertisers();
  for (int32_t a = 0; a < num_advertisers(); ++a) {
    if (IsSatisfied(a)) {
      ++b.satisfied_count;
      b.excessive += regret_[a];
    } else {
      b.unsatisfied_penalty += regret_[a];
    }
  }
  b.total = b.excessive + b.unsatisfied_penalty;
  return b;
}

double Assignment::DeltaAssign(BillboardId o, AdvertiserId a) const {
  MROAM_DCHECK(owner_[o] == kNoAdvertiser);
  int64_t new_influence = InfluenceOf(a) + counters_[a].MarginalGain(o);
  return Regret(advertisers_[a], new_influence, params_) - regret_[a];
}

double Assignment::DeltaRelease(BillboardId o) const {
  AdvertiserId a = owner_[o];
  MROAM_DCHECK(a != kNoAdvertiser);
  int64_t new_influence = InfluenceOf(a) - counters_[a].MarginalLoss(o);
  return Regret(advertisers_[a], new_influence, params_) - regret_[a];
}

double Assignment::DeltaExchangeAcross(BillboardId om, BillboardId on) const {
  AdvertiserId a = owner_[om];
  AdvertiserId b = owner_[on];
  MROAM_DCHECK(a != kNoAdvertiser && b != kNoAdvertiser && a != b);
  int64_t new_a = InfluenceOf(a) - counters_[a].MarginalLoss(om) +
                  counters_[a].MarginalGainAfterRemove(on, om);
  int64_t new_b = InfluenceOf(b) - counters_[b].MarginalLoss(on) +
                  counters_[b].MarginalGainAfterRemove(om, on);
  return Regret(advertisers_[a], new_a, params_) +
         Regret(advertisers_[b], new_b, params_) - regret_[a] - regret_[b];
}

double Assignment::DeltaReplace(BillboardId om, BillboardId on) const {
  AdvertiserId a = owner_[om];
  MROAM_DCHECK(a != kNoAdvertiser);
  MROAM_DCHECK(owner_[on] == kNoAdvertiser);
  int64_t new_a = InfluenceOf(a) - counters_[a].MarginalLoss(om) +
                  counters_[a].MarginalGainAfterRemove(on, om);
  return Regret(advertisers_[a], new_a, params_) - regret_[a];
}

double Assignment::DeltaSwapSets(AdvertiserId i, AdvertiserId j) const {
  MROAM_DCHECK(i != j);
  // I(S) depends only on the set, so after the swap advertiser i achieves
  // I(S_j) and vice versa.
  double new_i = Regret(advertisers_[i], InfluenceOf(j), params_);
  double new_j = Regret(advertisers_[j], InfluenceOf(i), params_);
  return new_i + new_j - regret_[i] - regret_[j];
}

void Assignment::RecomputeRegret(AdvertiserId a) {
  double fresh = Regret(advertisers_[a], InfluenceOf(a), params_);
  total_regret_ += fresh - regret_[a];
  regret_[a] = fresh;
}

void Assignment::Assign(BillboardId o, AdvertiserId a) {
  MROAM_CHECK(owner_[o] == kNoAdvertiser);
  MROAM_CHECK(a >= 0 && a < num_advertisers());
  SwapPop(&free_, &slot_, slot_[o]);
  owner_[o] = a;
  slot_[o] = static_cast<int32_t>(sets_[a].size());
  sets_[a].push_back(o);
  counters_[a].Add(o);
  RecomputeRegret(a);
}

void Assignment::Release(BillboardId o) {
  AdvertiserId a = owner_[o];
  MROAM_CHECK(a != kNoAdvertiser);
  SwapPop(&sets_[a], &slot_, slot_[o]);
  owner_[o] = kNoAdvertiser;
  slot_[o] = static_cast<int32_t>(free_.size());
  free_.push_back(o);
  ++free_add_epoch_;
  counters_[a].Remove(o);
  RecomputeRegret(a);
}

void Assignment::ExchangeAcross(BillboardId om, BillboardId on) {
  AdvertiserId a = owner_[om];
  AdvertiserId b = owner_[on];
  MROAM_CHECK(a != kNoAdvertiser && b != kNoAdvertiser && a != b);
  Release(om);
  Release(on);
  Assign(om, b);
  Assign(on, a);
}

void Assignment::Replace(BillboardId om, BillboardId on) {
  AdvertiserId a = owner_[om];
  MROAM_CHECK(a != kNoAdvertiser);
  MROAM_CHECK(owner_[on] == kNoAdvertiser);
  Release(om);
  Assign(on, a);
}

void Assignment::SwapSets(AdvertiserId i, AdvertiserId j) {
  MROAM_CHECK(i != j);
  std::swap(sets_[i], sets_[j]);
  std::swap(counters_[i], counters_[j]);
  // The swapped counter objects carry their epochs with them, so a stamp
  // cached against "advertiser i's counter" could still match numerically
  // while describing what is now advertiser j's set: invalidate both.
  counters_[i].MarkStructuralChange();
  counters_[j].MarkStructuralChange();
  for (BillboardId o : sets_[i]) owner_[o] = i;
  for (BillboardId o : sets_[j]) owner_[o] = j;
  // Slots are positions within the (moved) vectors, so they stay valid.
  RecomputeRegret(i);
  RecomputeRegret(j);
}

void Assignment::ReleaseAll(AdvertiserId a) {
  while (!sets_[a].empty()) {
    Release(sets_[a].back());
  }
}

void Assignment::Reset() {
  for (int32_t a = 0; a < num_advertisers(); ++a) {
    ReleaseAll(a);
  }
}

void Assignment::CopyDeploymentFrom(const Assignment& other) {
  MROAM_CHECK(index_ == other.index_);
  MROAM_CHECK(advertisers_.size() == other.advertisers_.size());
  MROAM_CHECK(impression_threshold_ == other.impression_threshold_);
  owner_ = other.owner_;
  slot_ = other.slot_;
  sets_ = other.sets_;
  free_ = other.free_;
  counters_ = other.counters_;
  regret_ = other.regret_;
  params_ = other.params_;
  total_regret_ = other.total_regret_;
  // The copied counters carry `other`'s epochs, which could collide with
  // stamps cached against this assignment's previous state.
  for (influence::CoverageCounter& c : counters_) c.MarkStructuralChange();
  ++free_add_epoch_;
}

void Assignment::RestoreDeployment(
    const std::vector<std::vector<BillboardId>>& sets) {
  MROAM_CHECK(sets.size() <= advertisers_.size())
      << "restore has " << sets.size() << " sets for "
      << advertisers_.size() << " advertisers";
  for (size_t a = 0; a < sets.size(); ++a) {
    for (BillboardId o : sets[a]) {
      Assign(o, static_cast<AdvertiserId>(a));
    }
  }
}

int64_t CountDeploymentDiff(
    const std::vector<std::vector<BillboardId>>& before,
    const std::vector<std::vector<BillboardId>>& after,
    int32_t num_billboards) {
  std::vector<AdvertiserId> owner_before(num_billboards, kNoAdvertiser);
  std::vector<AdvertiserId> owner_after(num_billboards, kNoAdvertiser);
  for (size_t a = 0; a < before.size(); ++a) {
    for (BillboardId o : before[a]) owner_before[o] = static_cast<AdvertiserId>(a);
  }
  for (size_t a = 0; a < after.size(); ++a) {
    for (BillboardId o : after[a]) owner_after[o] = static_cast<AdvertiserId>(a);
  }
  int64_t touched = 0;
  for (int32_t o = 0; o < num_billboards; ++o) {
    if (owner_before[o] != owner_after[o]) ++touched;
  }
  return touched;
}

void Assignment::VerifyInvariants() const {
  // Ownership structure.
  std::vector<int> seen(index_->num_billboards(), 0);
  for (int32_t a = 0; a < num_advertisers(); ++a) {
    for (size_t pos = 0; pos < sets_[a].size(); ++pos) {
      BillboardId o = sets_[a][pos];
      MROAM_CHECK(owner_[o] == a) << "billboard " << o << " owner mismatch";
      MROAM_CHECK(slot_[o] == static_cast<int32_t>(pos));
      ++seen[o];
    }
  }
  for (size_t pos = 0; pos < free_.size(); ++pos) {
    BillboardId o = free_[pos];
    MROAM_CHECK(owner_[o] == kNoAdvertiser);
    MROAM_CHECK(slot_[o] == static_cast<int32_t>(pos));
    ++seen[o];
  }
  for (int32_t o = 0; o < index_->num_billboards(); ++o) {
    MROAM_CHECK(seen[o] == 1) << "billboard " << o << " appears " << seen[o]
                              << " times across sets/free";
  }

  // Influence and regret caches.
  double expected_total = 0.0;
  for (int32_t a = 0; a < num_advertisers(); ++a) {
    influence::CoverageCounter fresh(index_, impression_threshold_, backend_);
    for (BillboardId o : sets_[a]) fresh.Add(o);
    MROAM_CHECK(fresh.influence() == InfluenceOf(a))
        << "advertiser " << a << " influence cache stale";
    double expected = Regret(advertisers_[a], fresh.influence(), params_);
    MROAM_CHECK(std::abs(expected - regret_[a]) < 1e-6)
        << "advertiser " << a << " regret cache stale";
    expected_total += expected;
  }
  MROAM_CHECK(std::abs(expected_total - total_regret_) < 1e-5)
      << "total regret cache stale";
}

}  // namespace mroam::core
