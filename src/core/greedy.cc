#include "core/greedy.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "core/lazy_selector.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mroam::core {

using market::AdvertiserId;
using model::BillboardId;

namespace {

/// Selector effort counters captured at the start of a greedy run, so the
/// per-run registry flush stays correct for *persistent* selectors (whose
/// lifetime counters span many runs) as well as locally constructed ones.
struct SelectorEffort {
  int64_t exact_evaluations = 0;
  int64_t lazy_hits = 0;
  int64_t lazy_reevals = 0;

  static SelectorEffort Of(const LazySelector& selector) {
    return {selector.exact_evaluations(), selector.lazy_hits(),
            selector.lazy_reevals()};
  }
};

/// One registry flush per greedy run: exact evaluations (incidence-list
/// walks) under the shared "greedy.deltas" name — the number the
/// lazy-vs-exhaustive comparison in micro_algorithms reads — plus the
/// lazy engine's hit/re-evaluation split. Flushes the delta over `entry`,
/// i.e. the effort this run added.
void FlushSelectorCounters(const LazySelector& selector,
                           const SelectorEffort& entry) {
  MROAM_COUNTER_ADD("greedy.deltas",
                    selector.exact_evaluations() - entry.exact_evaluations);
  MROAM_COUNTER_ADD("greedy.lazy_hits", selector.lazy_hits() - entry.lazy_hits);
  MROAM_COUNTER_ADD("greedy.lazy_reevals",
                    selector.lazy_reevals() - entry.lazy_reevals);
}

}  // namespace

BillboardId BestBillboardFor(const Assignment& assignment, AdvertiserId a) {
  LazySelector selector(&assignment, /*lazy=*/false);
  return selector.BestBillboard(a);
}

void BudgetEffectiveGreedy(Assignment* assignment, bool lazy_selection) {
  MROAM_TRACE_SPAN("greedy.budget_effective");
  LazySelector selector(assignment, lazy_selection);
  const SelectorEffort entry = SelectorEffort::Of(selector);
  int64_t assigned = 0;
  std::vector<AdvertiserId> order(assignment->num_advertisers());
  for (int32_t a = 0; a < assignment->num_advertisers(); ++a) order[a] = a;
  std::sort(order.begin(), order.end(),
            [assignment](AdvertiserId a, AdvertiserId b) {
              double ea = assignment->advertiser(a).BudgetEffectiveness();
              double eb = assignment->advertiser(b).BudgetEffectiveness();
              if (ea != eb) return ea > eb;
              return a < b;
            });
  for (AdvertiserId a : order) {
    while (!assignment->IsSatisfied(a)) {
      BillboardId o = selector.BestBillboard(a);
      if (o == model::kInvalidBillboard) break;  // nothing can still help
      assignment->Assign(o, a);
      ++assigned;
    }
  }
  // One flush per call: the registry never sits in the inner loop.
  MROAM_COUNTER_ADD("greedy.budget_effective_runs", 1);
  MROAM_COUNTER_ADD("greedy.assignments", assigned);
  FlushSelectorCounters(selector, entry);
}

void SynchronousGreedy(Assignment* assignment, bool lazy_selection) {
  std::vector<AdvertiserId> all(assignment->num_advertisers());
  for (int32_t a = 0; a < assignment->num_advertisers(); ++a) all[a] = a;
  SynchronousGreedyOver(assignment, all, lazy_selection);
}

void SynchronousGreedyOver(Assignment* assignment,
                           const std::vector<AdvertiserId>& targets,
                           bool lazy_selection, LazySelector* external) {
  MROAM_TRACE_SPAN("greedy.synchronous");
  std::optional<LazySelector> local;
  if (external == nullptr) {
    local.emplace(assignment, lazy_selection);
  } else {
    MROAM_DCHECK(external->assignment() == assignment);
  }
  LazySelector& selector = external != nullptr ? *external : *local;
  const SelectorEffort entry = SelectorEffort::Of(selector);
  int64_t assigned = 0;
  int64_t victims = 0;
  const int32_t n = assignment->num_advertisers();
  std::vector<bool> active(n, false);
  for (AdvertiserId a : targets) {
    MROAM_DCHECK(a >= 0 && a < n);
    active[a] = true;
  }

  auto unsatisfied_active = [&]() {
    std::vector<AdvertiserId> out;
    for (AdvertiserId a : targets) {
      if (active[a] && !assignment->IsSatisfied(a)) out.push_back(a);
    }
    return out;
  };

  // Counters flush once on every exit path, never inside the round loop.
  auto flush = [&] {
    MROAM_COUNTER_ADD("greedy.synchronous_runs", 1);
    MROAM_COUNTER_ADD("greedy.assignments", assigned);
    MROAM_COUNTER_ADD("greedy.victims_released", victims);
    FlushSelectorCounters(selector, entry);
  };

  while (true) {
    bool assigned_any = false;
    for (AdvertiserId a : targets) {
      if (!active[a] || assignment->IsSatisfied(a)) continue;
      BillboardId o = selector.BestBillboard(a);
      if (o == model::kInvalidBillboard) continue;
      assignment->Assign(o, a);
      assigned_any = true;
      ++assigned;
    }
    std::vector<AdvertiserId> unsat = unsatisfied_active();
    if (unsat.empty()) return flush();
    if (assigned_any) continue;

    // No billboard could be handed out this round. Release the least
    // budget-effective unsatisfied advertiser so the rest can be served,
    // unless at most one advertiser remains unsatisfied.
    if (unsat.size() < 2) return flush();
    AdvertiserId victim = unsat[0];
    for (AdvertiserId a : unsat) {
      if (assignment->advertiser(a).BudgetEffectiveness() <
          assignment->advertiser(victim).BudgetEffectiveness()) {
        victim = a;
      }
    }
    assignment->ReleaseAll(victim);
    active[victim] = false;
    ++victims;
  }
}

}  // namespace mroam::core
