#include "core/greedy.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mroam::core {

using market::AdvertiserId;
using model::BillboardId;

BillboardId BestBillboardFor(const Assignment& assignment, AdvertiserId a) {
  const influence::InfluenceIndex& index = assignment.index();
  BillboardId best = model::kInvalidBillboard;
  double best_ratio = 0.0;
  double best_gain_ratio = 0.0;
  for (BillboardId o : assignment.FreeBillboards()) {
    const double supplied = static_cast<double>(index.InfluenceOf(o));
    if (supplied <= 0.0) continue;
    const double ratio = -assignment.DeltaAssign(o, a) / supplied;
    const double gain_ratio =
        static_cast<double>(assignment.MarginalGain(a, o)) / supplied;
    bool better = false;
    if (best == model::kInvalidBillboard) {
      better = true;
    } else if (ratio > best_ratio + 1e-12) {
      better = true;
    } else if (ratio > best_ratio - 1e-12) {
      // Tie on the regret ratio: prefer the billboard whose coverage is
      // least wasted, then the smaller id for determinism.
      if (gain_ratio > best_gain_ratio + 1e-12) {
        better = true;
      } else if (gain_ratio > best_gain_ratio - 1e-12 && o < best) {
        better = true;
      }
    }
    if (better) {
      best = o;
      best_ratio = ratio;
      best_gain_ratio = gain_ratio;
    }
  }
  return best;
}

void BudgetEffectiveGreedy(Assignment* assignment) {
  MROAM_TRACE_SPAN("greedy.budget_effective");
  int64_t assigned = 0;
  std::vector<AdvertiserId> order(assignment->num_advertisers());
  for (int32_t a = 0; a < assignment->num_advertisers(); ++a) order[a] = a;
  std::sort(order.begin(), order.end(),
            [assignment](AdvertiserId a, AdvertiserId b) {
              double ea = assignment->advertiser(a).BudgetEffectiveness();
              double eb = assignment->advertiser(b).BudgetEffectiveness();
              if (ea != eb) return ea > eb;
              return a < b;
            });
  for (AdvertiserId a : order) {
    while (!assignment->IsSatisfied(a)) {
      BillboardId o = BestBillboardFor(*assignment, a);
      if (o == model::kInvalidBillboard) break;  // out of usable billboards
      assignment->Assign(o, a);
      ++assigned;
    }
  }
  // One flush per call: the registry never sits in the inner loop.
  MROAM_COUNTER_ADD("greedy.budget_effective_runs", 1);
  MROAM_COUNTER_ADD("greedy.assignments", assigned);
}

void SynchronousGreedy(Assignment* assignment) {
  MROAM_TRACE_SPAN("greedy.synchronous");
  int64_t assigned = 0;
  int64_t victims = 0;
  const int32_t n = assignment->num_advertisers();
  std::vector<bool> active(n, true);

  auto unsatisfied_active = [&]() {
    std::vector<AdvertiserId> out;
    for (AdvertiserId a = 0; a < n; ++a) {
      if (active[a] && !assignment->IsSatisfied(a)) out.push_back(a);
    }
    return out;
  };

  // Counters flush once on every exit path, never inside the round loop.
  auto flush = [&] {
    MROAM_COUNTER_ADD("greedy.synchronous_runs", 1);
    MROAM_COUNTER_ADD("greedy.assignments", assigned);
    MROAM_COUNTER_ADD("greedy.victims_released", victims);
  };

  while (true) {
    bool assigned_any = false;
    for (AdvertiserId a = 0; a < n; ++a) {
      if (!active[a] || assignment->IsSatisfied(a)) continue;
      BillboardId o = BestBillboardFor(*assignment, a);
      if (o == model::kInvalidBillboard) continue;
      assignment->Assign(o, a);
      assigned_any = true;
      ++assigned;
    }
    std::vector<AdvertiserId> unsat = unsatisfied_active();
    if (unsat.empty()) return flush();
    if (assigned_any) continue;

    // No billboard could be handed out this round. Release the least
    // budget-effective unsatisfied advertiser so the rest can be served,
    // unless at most one advertiser remains unsatisfied.
    if (unsat.size() < 2) return flush();
    AdvertiserId victim = unsat[0];
    for (AdvertiserId a : unsat) {
      if (assignment->advertiser(a).BudgetEffectiveness() <
          assignment->advertiser(victim).BudgetEffectiveness()) {
        victim = a;
      }
    }
    assignment->ReleaseAll(victim);
    active[victim] = false;
    ++victims;
  }
}

}  // namespace mroam::core
