#include "core/exact.h"

#include <algorithm>

#include "core/greedy.h"

namespace mroam::core {

using common::Result;
using common::Status;
using market::AdvertiserId;
using model::BillboardId;

namespace {

/// Depth-first branch-and-bound state.
class Searcher {
 public:
  Searcher(const influence::InfluenceIndex& index,
           const std::vector<market::Advertiser>& advertisers,
           const ExactSolverConfig& config)
      : config_(config),
        advertisers_(advertisers),
        state_(&index, advertisers, config.regret,
               config.impression_threshold),
        best_(state_) {
    // Branch on billboards in descending influence order: big boards
    // decide the bound fastest.
    for (int32_t o = 0; o < index.num_billboards(); ++o) {
      if (index.InfluenceOf(o) > 0) order_.push_back(o);
    }
    std::sort(order_.begin(), order_.end(),
              [&index](BillboardId a, BillboardId b) {
                int64_t ia = index.InfluenceOf(a);
                int64_t ib = index.InfluenceOf(b);
                if (ia != ib) return ia > ib;
                return a < b;
              });
    // Suffix sums of static influence: an admissible cap on how much any
    // single advertiser could still gain from position pos onward.
    suffix_gain_.assign(order_.size() + 1, 0);
    for (size_t pos = order_.size(); pos-- > 0;) {
      suffix_gain_[pos] =
          suffix_gain_[pos + 1] + index.InfluenceOf(order_[pos]);
    }

    // Initial incumbent from the synchronous greedy.
    Assignment greedy(state_);
    SynchronousGreedy(&greedy);
    best_.CopyDeploymentFrom(greedy);
  }

  Result<ExactResult> Run() {
    if (!Dfs(0)) {
      return Status::FailedPrecondition(
          "exact solver exceeded its node budget (" +
          std::to_string(config_.max_nodes) + " nodes); instance too large");
    }
    ExactResult result;
    result.optimal_regret = best_.TotalRegret();
    result.nodes_explored = nodes_;
    result.sets.reserve(advertisers_.size());
    for (int32_t a = 0; a < best_.num_advertisers(); ++a) {
      result.sets.push_back(best_.BillboardsOf(a));
    }
    return result;
  }

 private:
  /// Admissible lower bound on the total regret completing from `pos`.
  double LowerBound(size_t pos) const {
    double bound = 0.0;
    const int64_t remaining = suffix_gain_[pos];
    for (int32_t a = 0; a < state_.num_advertisers(); ++a) {
      const market::Advertiser& adv = advertisers_[a];
      int64_t achieved = state_.InfluenceOf(a);
      if (achieved >= adv.demand) {
        // Influence only grows along a branch; the excess is locked in.
        bound += Regret(adv, achieved, config_.regret);
      } else if (achieved + remaining < adv.demand) {
        // Even taking every remaining billboard leaves the demand unmet;
        // the best case is all of that influence (regret decreasing).
        bound += Regret(adv, achieved + remaining, config_.regret);
      }
      // Otherwise the demand is still exactly reachable: bound += 0.
    }
    return bound;
  }

  /// Returns false when the node budget is exhausted.
  bool Dfs(size_t pos) {
    if (++nodes_ > config_.max_nodes) return false;
    if (state_.TotalRegret() < best_.TotalRegret() - 1e-12) {
      best_.CopyDeploymentFrom(state_);
    }
    if (pos == order_.size()) return true;
    if (LowerBound(pos) >= best_.TotalRegret() - 1e-12) return true;

    BillboardId o = order_[pos];
    for (AdvertiserId a = 0; a < state_.num_advertisers(); ++a) {
      state_.Assign(o, a);
      bool ok = Dfs(pos + 1);
      state_.Release(o);
      if (!ok) return false;
    }
    // "Nobody gets it."
    return Dfs(pos + 1);
  }

  const ExactSolverConfig config_;
  const std::vector<market::Advertiser> advertisers_;
  std::vector<BillboardId> order_;
  std::vector<int64_t> suffix_gain_;
  Assignment state_;
  Assignment best_;
  int64_t nodes_ = 0;
};

}  // namespace

Result<ExactResult> ExactSolve(
    const influence::InfluenceIndex& index,
    const std::vector<market::Advertiser>& advertisers,
    const ExactSolverConfig& config) {
  if (advertisers.empty()) {
    ExactResult result;
    return result;
  }
  Searcher searcher(index, advertisers, config);
  return searcher.Run();
}

}  // namespace mroam::core
