#include "core/daily_market.h"

#include <algorithm>

#include "common/stopwatch.h"
#include "core/greedy.h"
#include "obs/trace.h"

namespace mroam::core {

const char* ReplanPolicyName(ReplanPolicy policy) {
  switch (policy) {
    case ReplanPolicy::kReoptimizeAll:
      return "reoptimize-all";
    case ReplanPolicy::kLockExisting:
      return "lock-existing";
  }
  return "?";
}

DailyMarket::DailyMarket(const influence::InfluenceIndex* index,
                         DailyMarketConfig config)
    : index_(index), config_(std::move(config)) {
  MROAM_CHECK(config_.contract_duration_days >= 1);
}

void DailyMarket::RefreshCaches() {
  terms_cache_.clear();
  sets_cache_.clear();
  tickets_cache_.clear();
  for (size_t i = 0; i < contracts_.size(); ++i) {
    contracts_[i].terms.id = static_cast<market::AdvertiserId>(i);
    terms_cache_.push_back(contracts_[i].terms);
    sets_cache_.push_back(contracts_[i].billboards);
    tickets_cache_.push_back(contracts_[i].ticket);
  }
}

bool DailyMarket::Cancel(int64_t ticket) {
  for (size_t i = 0; i < contracts_.size(); ++i) {
    if (contracts_[i].ticket == ticket) {
      contracts_.erase(contracts_.begin() + static_cast<ptrdiff_t>(i));
      RefreshCaches();
      return true;
    }
  }
  return false;
}

DayResult DailyMarket::AdvanceDay(
    std::vector<market::Advertiser> arrivals) {
  MROAM_TRACE_SPAN_ID("market.advance_day", day_ + 1);
  common::Stopwatch watch;
  DayResult result;
  result.day = ++day_;

  // Expire: contracts whose term is over release their inventory.
  size_t before = contracts_.size();
  contracts_.erase(
      std::remove_if(contracts_.begin(), contracts_.end(),
                     [this](const Contract& c) {
                       return c.expires_on <= day_;
                     }),
      contracts_.end());
  result.expired = static_cast<int32_t>(before - contracts_.size());

  // Admit today's arrivals.
  result.arrived = static_cast<int32_t>(arrivals.size());
  const size_t first_new = contracts_.size();
  for (market::Advertiser& a : arrivals) {
    Contract c;
    c.terms = a;
    c.ticket = next_ticket_++;
    c.expires_on = day_ + config_.contract_duration_days;
    result.admitted_tickets.push_back(c.ticket);
    contracts_.push_back(std::move(c));
  }
  RefreshCaches();
  result.active_contracts = static_cast<int32_t>(contracts_.size());

  if (contracts_.empty()) {
    result.seconds = watch.ElapsedSeconds();
    return result;
  }

  if (config_.policy == ReplanPolicy::kReoptimizeAll) {
    SolveResult solve = Solve(*index_, terms_cache_, config_.solver);
    for (size_t i = 0; i < contracts_.size(); ++i) {
      contracts_[i].billboards = solve.sets[i];
    }
    result.breakdown = solve.breakdown;
    result.report = std::move(solve.report);
  } else {
    // Lock-existing: restore yesterday's deployment, then hand remaining
    // inventory to the (new or still-unsatisfied) contracts greedily.
    Assignment state(index_, terms_cache_, config_.solver.regret,
                     config_.solver.impression_threshold);
    for (size_t i = 0; i < first_new; ++i) {
      for (model::BillboardId o : contracts_[i].billboards) {
        state.Assign(o, static_cast<market::AdvertiserId>(i));
      }
    }
    common::Stopwatch greedy_watch;
    SynchronousGreedy(&state);
    for (size_t i = 0; i < contracts_.size(); ++i) {
      contracts_[i].billboards =
          state.BillboardsOf(static_cast<market::AdvertiserId>(i));
    }
    result.breakdown = state.Breakdown();
    result.report.label = ReplanPolicyName(config_.policy);
    result.report.AddPhase("greedy", greedy_watch.ElapsedSeconds());
  }
  RefreshCaches();
  result.seconds = watch.ElapsedSeconds();
  result.report.AddPhase("day_total", result.seconds);
  return result;
}

}  // namespace mroam::core
