#include "core/daily_market.h"

#include <algorithm>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/greedy.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mroam::core {

const char* ReplanPolicyName(ReplanPolicy policy) {
  switch (policy) {
    case ReplanPolicy::kReoptimizeAll:
      return "reoptimize-all";
    case ReplanPolicy::kLockExisting:
      return "lock-existing";
    case ReplanPolicy::kIncremental:
      return "incremental";
  }
  return "?";
}

const char* ReplanModeName(ReplanMode mode) {
  switch (mode) {
    case ReplanMode::kNone:
      return "none";
    case ReplanMode::kFull:
      return "full";
    case ReplanMode::kIncremental:
      return "incremental";
    case ReplanMode::kGreedy:
      return "greedy";
  }
  return "?";
}

DailyMarket::DailyMarket(const influence::InfluenceIndex* index,
                         DailyMarketConfig config)
    : index_(index), config_(std::move(config)) {
  MROAM_CHECK(config_.contract_duration_days >= 1);
}

void DailyMarket::RefreshCaches() {
  terms_cache_.clear();
  sets_cache_.clear();
  tickets_cache_.clear();
  ticket_index_.clear();
  for (size_t i = 0; i < contracts_.size(); ++i) {
    contracts_[i].terms.id = static_cast<market::AdvertiserId>(i);
    terms_cache_.push_back(contracts_[i].terms);
    sets_cache_.push_back(contracts_[i].billboards);
    tickets_cache_.push_back(contracts_[i].ticket);
    ticket_index_[contracts_[i].ticket] = i;
  }
}

market::ContractBook DailyMarket::ExportBook() const {
  market::ContractBook book;
  book.day = day_;
  book.next_ticket = next_ticket_;
  book.entries.reserve(contracts_.size());
  for (const Contract& c : contracts_) {
    market::ContractBookEntry entry;
    entry.terms = c.terms;
    entry.ticket = c.ticket;
    entry.expires_on = c.expires_on;
    entry.billboards = c.billboards;
    book.entries.push_back(std::move(entry));
  }
  return book;
}

void DailyMarket::RestoreBook(const market::ContractBook& book) {
  MROAM_CHECK(day_ == 0 && next_ticket_ == 1 && contracts_.empty())
      << "RestoreBook requires a fresh market (day " << day_ << ", "
      << contracts_.size() << " contracts held)";
  MROAM_CHECK(book.next_ticket >= 1);
  day_ = book.day;
  next_ticket_ = book.next_ticket;
  contracts_.reserve(book.entries.size());
  for (const market::ContractBookEntry& entry : book.entries) {
    MROAM_CHECK(entry.ticket >= 1 && entry.ticket < book.next_ticket)
        << "restored ticket " << entry.ticket
        << " outside the minted range";
    Contract c;
    c.terms = entry.terms;
    c.ticket = entry.ticket;
    c.expires_on = entry.expires_on;
    c.billboards = entry.billboards;
    contracts_.push_back(std::move(c));
  }
  RefreshCaches();
}

bool DailyMarket::Cancel(int64_t ticket) {
  auto it = ticket_index_.find(ticket);
  if (it == ticket_index_.end()) return false;
  const size_t i = it->second;
  // The withdrawn inventory joins the churn pool: the next incremental
  // replan re-optimizes its blast radius.
  churn_released_.insert(churn_released_.end(),
                         contracts_[i].billboards.begin(),
                         contracts_[i].billboards.end());
  ++cancelled_since_last_day_;
  ticket_index_.erase(it);
  contracts_.erase(contracts_.begin() + static_cast<ptrdiff_t>(i));
  terms_cache_.erase(terms_cache_.begin() + static_cast<ptrdiff_t>(i));
  sets_cache_.erase(sets_cache_.begin() + static_cast<ptrdiff_t>(i));
  tickets_cache_.erase(tickets_cache_.begin() + static_cast<ptrdiff_t>(i));
  // Re-number the shifted tail: dense ids and map entries move down one.
  for (size_t j = i; j < contracts_.size(); ++j) {
    contracts_[j].terms.id = static_cast<market::AdvertiserId>(j);
    terms_cache_[j].id = static_cast<market::AdvertiserId>(j);
    ticket_index_[contracts_[j].ticket] = j;
  }
  return true;
}

void DailyMarket::ReplanFull(DayResult* result) {
  MROAM_TRACE_SPAN("market.replan_full");
  SolveResult solve = Solve(*index_, terms_cache_, config_.solver);
  for (size_t i = 0; i < contracts_.size(); ++i) {
    contracts_[i].billboards = solve.sets[i];
  }
  result->breakdown = solve.breakdown;
  result->report = std::move(solve.report);
  result->mode = ReplanMode::kFull;
  last_full_regret_ = solve.breakdown.total;
  have_full_solve_ = true;
}

void DailyMarket::ReplanIncremental(
    size_t first_new, const std::vector<model::BillboardId>& churn,
    DayResult* result) {
  MROAM_TRACE_SPAN("market.replan_incremental");
  // Without a drift anchor there is nothing to warm-start against; a
  // negative drift bound is the documented "always do the full solve"
  // switch. Both paths run the same Solve as kReoptimizeAll.
  if (!have_full_solve_ || config_.incremental.max_regret_drift < 0.0) {
    result->full_solve_fallback = true;
    MROAM_COUNTER_ADD("market.replan_full_fallback", 1);
    ReplanFull(result);
    return;
  }

  // Restore yesterday's deployment over today's roster (survivors keep
  // their boards; arrivals start empty).
  Assignment state(index_, terms_cache_, config_.solver.regret,
                   config_.solver.impression_threshold,
                   config_.solver.backend);
  state.RestoreDeployment(sets_cache_);

  // Blast radius of the churn: every billboard sharing a trajectory with
  // the released inventory can now gain or lose marginal value.
  std::vector<bool> radius(static_cast<size_t>(index_->num_billboards()),
                           false);
  for (model::BillboardId o : churn) {
    radius[static_cast<size_t>(o)] = true;
    index_->ForEachCovered(o, [&](model::TrajectoryId t) {
      index_->ForEachCovering(t, [&](model::BillboardId b) {
        radius[static_cast<size_t>(b)] = true;
      });
    });
  }

  // Affected advertisers: today's arrivals, anyone still unsatisfied
  // (freed churn inventory may serve them), and the owners of
  // blast-radius billboards.
  const int32_t n = state.num_advertisers();
  std::vector<bool> affected(static_cast<size_t>(n), false);
  for (size_t a = first_new; a < static_cast<size_t>(n); ++a) {
    affected[a] = true;
  }
  for (int32_t a = 0; a < n; ++a) {
    if (!state.IsSatisfied(a)) affected[static_cast<size_t>(a)] = true;
  }
  for (int32_t o = 0; o < index_->num_billboards(); ++o) {
    if (!radius[static_cast<size_t>(o)]) continue;
    market::AdvertiserId owner = state.OwnerOf(o);
    if (owner != market::kNoAdvertiser) {
      affected[static_cast<size_t>(owner)] = true;
    }
  }
  std::vector<market::AdvertiserId> targets;
  for (int32_t a = 0; a < n; ++a) {
    if (affected[static_cast<size_t>(a)]) targets.push_back(a);
  }
  result->reoptimized_advertisers = static_cast<int32_t>(targets.size());

  const double incumbent_regret = state.TotalRegret();

  // Re-optimize the affected set: release its inventory, re-run the
  // restricted greedy, then a bounded restricted local-search polish.
  common::Stopwatch greedy_watch;
  if (!targets.empty()) {
    for (market::AdvertiserId a : targets) state.ReleaseAll(a);
    SynchronousGreedyOver(&state, targets,
                          config_.solver.local_search.lazy_selection);
  }
  result->report.AddPhase("greedy", greedy_watch.ElapsedSeconds());
  if (!targets.empty() && config_.incremental.local_search_sweeps > 0) {
    common::Stopwatch search_watch;
    LocalSearchConfig search = config_.solver.local_search;
    search.max_sweeps = config_.incremental.local_search_sweeps;
    // A per-day stream keeps sampled candidate scans reproducible without
    // coupling consecutive days.
    common::Rng rng(config_.solver.seed ^
                    (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(day_)));
    BillboardDrivenLocalSearchOver(&state, targets, search, &rng);
    result->report.AddPhase("local_search", search_watch.ElapsedSeconds());
  }

  // Never-worse guard: re-optimizing a released blast radius can lose
  // ground (greedy is not monotone in its starting point); keep the
  // restored incumbent if it was better.
  if (state.TotalRegret() > incumbent_regret + 1e-9) {
    Assignment revert(index_, terms_cache_, config_.solver.regret,
                      config_.solver.impression_threshold,
                      config_.solver.backend);
    revert.RestoreDeployment(sets_cache_);
    state = std::move(revert);
  }

  // Drift bound: keep the warm-started plan only while its regret stays
  // within the configured margin of the last full solve, measured in
  // payment units so the bound survives zero-regret anchors.
  double payment_scale = 0.0;
  for (const market::Advertiser& a : terms_cache_) {
    payment_scale += a.payment;
  }
  const double bound = last_full_regret_ +
                       config_.incremental.max_regret_drift * payment_scale;
  if (state.TotalRegret() > bound + 1e-9) {
    result->full_solve_fallback = true;
    MROAM_COUNTER_ADD("market.replan_full_fallback", 1);
    ReplanFull(result);
    return;
  }

  for (size_t i = 0; i < contracts_.size(); ++i) {
    contracts_[i].billboards =
        state.BillboardsOf(static_cast<market::AdvertiserId>(i));
  }
  result->breakdown = state.Breakdown();
  result->mode = ReplanMode::kIncremental;
  result->report.label = "incremental";
  MROAM_COUNTER_ADD("market.replan_incremental", 1);
}

DayResult DailyMarket::AdvanceDay(
    std::vector<market::Advertiser> arrivals) {
  MROAM_TRACE_SPAN_ID("market.advance_day", day_ + 1);
  common::Stopwatch watch;
  DayResult result;
  result.day = ++day_;
  result.cancelled = cancelled_since_last_day_;
  cancelled_since_last_day_ = 0;

  size_t first_new = 0;
  {
    // Expire: contracts whose term is over release their inventory into
    // the churn pool; then admit today's arrivals. One span covers both —
    // it is the non-solver bookkeeping slice of the day.
    MROAM_TRACE_SPAN("market.expire_admit");
    size_t before = contracts_.size();
    for (const Contract& c : contracts_) {
      if (c.expires_on <= day_) {
        churn_released_.insert(churn_released_.end(), c.billboards.begin(),
                               c.billboards.end());
      }
    }
    contracts_.erase(
        std::remove_if(contracts_.begin(), contracts_.end(),
                       [this](const Contract& c) {
                         return c.expires_on <= day_;
                       }),
        contracts_.end());
    result.expired = static_cast<int32_t>(before - contracts_.size());

    // Admit today's arrivals.
    result.arrived = static_cast<int32_t>(arrivals.size());
    first_new = contracts_.size();
    for (market::Advertiser& a : arrivals) {
      Contract c;
      c.terms = a;
      c.ticket = next_ticket_++;
      c.expires_on = day_ + config_.contract_duration_days;
      result.admitted_tickets.push_back(c.ticket);
      contracts_.push_back(std::move(c));
    }
    RefreshCaches();
    result.active_contracts = static_cast<int32_t>(contracts_.size());
  }

  const std::vector<model::BillboardId> churn = std::move(churn_released_);
  churn_released_.clear();
  result.churn_boards = static_cast<int32_t>(churn.size());

  if (contracts_.empty()) {
    // An empty book is a (trivially optimal) full solve: re-anchor drift.
    last_full_regret_ = 0.0;
    have_full_solve_ = true;
    result.seconds = watch.ElapsedSeconds();
    return result;
  }

  // Snapshot the restored incumbent so the day can report how many boards
  // the replan actually moved.
  const std::vector<std::vector<model::BillboardId>> incumbent = sets_cache_;

  if (config_.policy == ReplanPolicy::kReoptimizeAll) {
    ReplanFull(&result);
  } else if (config_.policy == ReplanPolicy::kIncremental) {
    ReplanIncremental(first_new, churn, &result);
  } else {
    // Lock-existing: restore yesterday's deployment, then hand remaining
    // inventory to the (new or still-unsatisfied) contracts greedily.
    MROAM_TRACE_SPAN("market.replan_lock");
    Assignment state(index_, terms_cache_, config_.solver.regret,
                     config_.solver.impression_threshold,
                     config_.solver.backend);
    for (size_t i = 0; i < first_new; ++i) {
      for (model::BillboardId o : contracts_[i].billboards) {
        state.Assign(o, static_cast<market::AdvertiserId>(i));
      }
    }
    common::Stopwatch greedy_watch;
    SynchronousGreedy(&state);
    for (size_t i = 0; i < contracts_.size(); ++i) {
      contracts_[i].billboards =
          state.BillboardsOf(static_cast<market::AdvertiserId>(i));
    }
    result.breakdown = state.Breakdown();
    result.mode = ReplanMode::kGreedy;
    result.report.label = ReplanPolicyName(config_.policy);
    result.report.AddPhase("greedy", greedy_watch.ElapsedSeconds());
  }
  RefreshCaches();
  result.boards_touched =
      CountDeploymentDiff(incumbent, sets_cache_, index_->num_billboards());
  MROAM_COUNTER_ADD("market.boards_touched", result.boards_touched);
  MROAM_COUNTER_ADD("market.churn_boards", result.churn_boards);
  result.seconds = watch.ElapsedSeconds();
  result.report.AddPhase("day_total", result.seconds);
  return result;
}

}  // namespace mroam::core
