#ifndef MROAM_CORE_ASSIGNMENT_H_
#define MROAM_CORE_ASSIGNMENT_H_

#include <cstdint>
#include <vector>

#include "core/regret.h"
#include "influence/coverage_counter.h"
#include "influence/influence_index.h"
#include "market/advertiser.h"
#include "model/billboard.h"

namespace mroam::core {

/// The mutable deployment state S = {S_1, ..., S_|A|}: which advertiser
/// owns each billboard, each advertiser's incrementally-maintained
/// influence (via CoverageCounter), cached per-advertiser regret, and the
/// cached total. All solver moves go through this class, which offers both
/// constant-or-list-time *delta* queries (no mutation) and the matching
/// mutations, so local search never recomputes I(S) from scratch.
///
/// Invariants (checked by VerifyInvariants):
///  * each billboard has at most one owner (sets are disjoint);
///  * counters match the owned sets; cached regrets match Regret(...).
class Assignment {
 public:
  /// Creates an all-unassigned deployment. `index` must outlive this.
  /// `impression_threshold` selects the influence measure: 1 (default) is
  /// the paper's set-union meet model; m > 1 requires a trajectory to
  /// meet m of an advertiser's billboards before it counts (the
  /// impression-count model of [29], orthogonal per §3.1). `backend`
  /// picks the posting-list representation every counter walks (plain
  /// vectors or the compressed cindex kernels — bit-identical results).
  Assignment(const influence::InfluenceIndex* index,
             std::vector<market::Advertiser> advertisers,
             RegretParams params, uint16_t impression_threshold = 1,
             influence::IndexBackend backend = influence::IndexBackend::kPlain);

  // Copyable so local search can snapshot candidate plans (counters are
  // deep-copied; cost is O(|A| * |T|)). Prefer move where possible.
  Assignment(const Assignment&) = default;
  Assignment& operator=(const Assignment&) = default;
  Assignment(Assignment&&) = default;
  Assignment& operator=(Assignment&&) = default;

  // --- Read access -------------------------------------------------------

  int32_t num_advertisers() const {
    return static_cast<int32_t>(advertisers_.size());
  }
  int32_t num_billboards() const { return index_->num_billboards(); }
  const market::Advertiser& advertiser(market::AdvertiserId a) const {
    return advertisers_[a];
  }
  const RegretParams& params() const { return params_; }
  const influence::InfluenceIndex& index() const { return *index_; }
  uint16_t impression_threshold() const { return impression_threshold_; }

  /// Owner of billboard `o`, or market::kNoAdvertiser.
  market::AdvertiserId OwnerOf(model::BillboardId o) const {
    return owner_[o];
  }

  /// Billboards currently assigned to `a` (unordered).
  const std::vector<model::BillboardId>& BillboardsOf(
      market::AdvertiserId a) const {
    return sets_[a];
  }

  /// Unassigned billboards (unordered).
  const std::vector<model::BillboardId>& FreeBillboards() const {
    return free_;
  }

  /// I(S_a), maintained incrementally.
  int64_t InfluenceOf(market::AdvertiserId a) const {
    return counters_[a].influence();
  }

  /// Cached R(S_a).
  double RegretOf(market::AdvertiserId a) const { return regret_[a]; }

  /// Cached total regret R(S).
  double TotalRegret() const { return total_regret_; }

  /// R'(S_a) under the dual objective (Equation 2).
  double DualOf(market::AdvertiserId a) const {
    return DualRevenue(advertisers_[a], InfluenceOf(a));
  }

  /// Sum of R' over advertisers.
  double TotalDual() const;

  bool IsSatisfied(market::AdvertiserId a) const {
    return Satisfied(advertisers_[a], InfluenceOf(a));
  }

  /// Influence `a` would gain from billboard `o` (o need not be free).
  int64_t MarginalGain(market::AdvertiserId a, model::BillboardId o) const {
    return counters_[a].MarginalGain(o);
  }

  /// Influence `a` would lose by releasing its billboard `o`.
  int64_t MarginalLoss(market::AdvertiserId a, model::BillboardId o) const {
    return counters_[a].MarginalLoss(o);
  }

  /// Advertiser `a`'s coverage counter. Exposed (read-only) for the lazy
  /// greedy selector, which stamps its cached marginal gains with the
  /// counter's epoch (see CoverageCounter::epoch()).
  const influence::CoverageCounter& CounterOf(market::AdvertiserId a) const {
    return counters_[a];
  }

  /// Epoch advanced every time a billboard (re-)enters the free pool, i.e.
  /// on every Release (and wholesale on CopyDeploymentFrom). Lets any
  /// structure caching a view of the free pool detect re-added members
  /// without diffing the list; billboards *leaving* the pool are cheaper
  /// to detect per-entry via OwnerOf. The lazy selector re-reads the pool
  /// on every query, so it only needs the counter epochs — this one is
  /// for callers that persist candidate lists across picks.
  uint64_t free_add_epoch() const { return free_add_epoch_; }

  /// The stacked-bar decomposition of the current total regret.
  RegretBreakdown Breakdown() const;

  // --- Delta queries (no mutation) ---------------------------------------
  // Each returns (regret after move) - (regret before move); negative is
  // an improvement.

  /// Assign free billboard `o` to `a`.
  double DeltaAssign(model::BillboardId o, market::AdvertiserId a) const;

  /// Release assigned billboard `o` back to the free pool.
  double DeltaRelease(model::BillboardId o) const;

  /// Exchange assigned billboards `om` and `on` across their (distinct)
  /// owners (BLS move 1).
  double DeltaExchangeAcross(model::BillboardId om,
                             model::BillboardId on) const;

  /// Replace assigned `om` by free `on` within om's owner (BLS move 2).
  double DeltaReplace(model::BillboardId om, model::BillboardId on) const;

  /// Swap the *entire* sets of advertisers `i` and `j` (ALS move).
  double DeltaSwapSets(market::AdvertiserId i, market::AdvertiserId j) const;

  // --- Mutations ----------------------------------------------------------

  /// Assigns free billboard `o` to advertiser `a`.
  void Assign(model::BillboardId o, market::AdvertiserId a);

  /// Releases assigned billboard `o`.
  void Release(model::BillboardId o);

  /// Applies the cross-advertiser exchange of DeltaExchangeAcross.
  void ExchangeAcross(model::BillboardId om, model::BillboardId on);

  /// Applies the replace of DeltaReplace.
  void Replace(model::BillboardId om, model::BillboardId on);

  /// Applies the set swap of DeltaSwapSets in O(1) counter moves.
  void SwapSets(market::AdvertiserId i, market::AdvertiserId j);

  /// Releases every billboard of advertiser `a`.
  void ReleaseAll(market::AdvertiserId a);

  /// Releases everything.
  void Reset();

  /// Copies the deployment of `other` (same index/advertisers/params
  /// required) — cheaper to reason about than operator= for solver code.
  void CopyDeploymentFrom(const Assignment& other);

  /// Warm-starts this (fresh) assignment from an incumbent deployment:
  /// advertiser i receives sets[i] (entries past the advertiser count are
  /// not allowed; a shorter vector leaves the tail unassigned). Every
  /// listed billboard must currently be free, so the sets must be
  /// disjoint. The day-by-day market loop uses this to restore yesterday's
  /// plan over today's contract roster before replanning incrementally.
  void RestoreDeployment(
      const std::vector<std::vector<model::BillboardId>>& sets);

  // --- Debugging -----------------------------------------------------------

  /// Recomputes all influences and regrets from scratch and MROAM_CHECKs
  /// they match the cached values. O(|U| * avg list). Test/debug only.
  void VerifyInvariants() const;

 private:
  void RecomputeRegret(market::AdvertiserId a);

  const influence::InfluenceIndex* index_;
  std::vector<market::Advertiser> advertisers_;
  RegretParams params_;
  uint16_t impression_threshold_ = 1;
  influence::IndexBackend backend_ = influence::IndexBackend::kPlain;

  std::vector<market::AdvertiserId> owner_;       // by billboard
  std::vector<int32_t> slot_;                     // position in its list
  std::vector<std::vector<model::BillboardId>> sets_;  // by advertiser
  std::vector<model::BillboardId> free_;
  std::vector<influence::CoverageCounter> counters_;   // by advertiser
  std::vector<double> regret_;                    // cached R(S_a)
  double total_regret_ = 0.0;
  uint64_t free_add_epoch_ = 1;  // 0 reserved for "never observed"
};

/// Number of billboards whose owner differs between two deployments over
/// the same billboard universe (`before` / `after` are per-advertiser
/// billboard sets; a board absent from every set is free). Advertisers are
/// matched by position. This is the "boards touched" measure the
/// incremental replanner reports per day: 0 means the plan survived the
/// churn untouched.
int64_t CountDeploymentDiff(
    const std::vector<std::vector<model::BillboardId>>& before,
    const std::vector<std::vector<model::BillboardId>>& after,
    int32_t num_billboards);

}  // namespace mroam::core

#endif  // MROAM_CORE_ASSIGNMENT_H_
