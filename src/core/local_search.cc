#include "core/local_search.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/greedy.h"
#include "core/lazy_selector.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mroam::core {

using market::AdvertiserId;
using model::BillboardId;

namespace {

constexpr double kAbsEps = 1e-9;

/// Move acceptance per Definition 6.1: improve by at least the ratio `r`
/// of the current objective (plus an absolute epsilon against FP cycling).
bool Accepts(double delta, double current_total, double r) {
  return delta <= -(kAbsEps + r * std::abs(current_total));
}

}  // namespace

LocalSearchStats AdvertiserDrivenLocalSearch(Assignment* assignment,
                                             const LocalSearchConfig& config) {
  MROAM_TRACE_SPAN("als.search");
  LocalSearchStats stats;
  const int32_t n = assignment->num_advertisers();
  bool improved = true;
  while (improved && stats.sweeps < config.max_sweeps) {
    MROAM_TRACE_SPAN_ID("als.sweep", stats.sweeps);
    improved = false;
    ++stats.sweeps;
    for (AdvertiserId i = 0; i < n; ++i) {
      for (AdvertiserId j = i + 1; j < n; ++j) {
        ++stats.deltas_evaluated;
        double delta = assignment->DeltaSwapSets(i, j);
        if (Accepts(delta, assignment->TotalRegret(),
                    config.improvement_ratio)) {
          assignment->SwapSets(i, j);
          ++stats.moves_applied;
          improved = true;
        }
      }
    }
  }
  // Registry writes happen once per search, never in the delta loop.
  MROAM_COUNTER_ADD("als.searches", 1);
  MROAM_COUNTER_ADD("als.sweeps", stats.sweeps);
  MROAM_COUNTER_ADD("als.moves_applied", stats.moves_applied);
  MROAM_COUNTER_ADD("als.deltas_evaluated", stats.deltas_evaluated);
  return stats;
}

namespace {

/// BLS move 1 for one advertiser pair: scan (o_m in S_i, o_n in S_j) and
/// apply the first improving cross exchange. Returns true if applied.
bool TryExchangeAcrossPair(Assignment* assignment, AdvertiserId i,
                           AdvertiserId j, const LocalSearchConfig& config,
                           common::Rng* rng, LocalSearchStats* stats) {
  MROAM_TRACE_SPAN("bls.move.exchange");
  // Snapshot the scan lists by value: ExchangeAcross reorders both
  // owners' lists, so scanning live references into BillboardsOf() while
  // a first-improvement move mutates them would be use-after-invalidate.
  const std::vector<BillboardId> si = assignment->BillboardsOf(i);
  const std::vector<BillboardId> sj = assignment->BillboardsOf(j);
  if (si.empty() || sj.empty()) return false;

  const int64_t pairs =
      static_cast<int64_t>(si.size()) * static_cast<int64_t>(sj.size());
  const int64_t cap = config.max_exchange_candidates;

  // Tracks the best improving candidate when best_improvement is set.
  BillboardId best_om = model::kInvalidBillboard;
  BillboardId best_on = model::kInvalidBillboard;
  double best_delta = 0.0;
  auto consider = [&](BillboardId om, BillboardId on) -> bool {
    ++stats->deltas_evaluated;
    double delta = assignment->DeltaExchangeAcross(om, on);
    if (!Accepts(delta, assignment->TotalRegret(),
                 config.improvement_ratio)) {
      return false;
    }
    if (!config.best_improvement) {
      assignment->ExchangeAcross(om, on);
      ++stats->moves_applied;
      MROAM_COUNTER_ADD("bls.moves.exchange", 1);
      return true;  // applied: stop scanning
    }
    if (delta < best_delta) {
      best_delta = delta;
      best_om = om;
      best_on = on;
    }
    return false;  // keep scanning for a better one
  };

  if (cap > 0 && pairs > cap) {
    // Sampled scan: examine `cap` uniformly random pairs.
    for (int64_t k = 0; k < cap; ++k) {
      BillboardId om = si[rng->UniformU64(si.size())];
      BillboardId on = sj[rng->UniformU64(sj.size())];
      if (consider(om, on)) return true;
    }
  } else {
    // Exhaustive scan (the paper's ∃ o_m, o_n neighborhood).
    for (BillboardId om : si) {
      for (BillboardId on : sj) {
        if (consider(om, on)) return true;
      }
    }
  }
  if (best_om != model::kInvalidBillboard) {
    assignment->ExchangeAcross(best_om, best_on);
    ++stats->moves_applied;
    MROAM_COUNTER_ADD("bls.moves.exchange", 1);
    return true;
  }
  return false;
}

/// BLS move 2: replace an assigned billboard of `i` by a free billboard.
bool TryReplaceWithFree(Assignment* assignment, AdvertiserId i,
                        const LocalSearchConfig& config, common::Rng* rng,
                        LocalSearchStats* stats) {
  MROAM_TRACE_SPAN("bls.move.replace");
  // Snapshot by value for the same reason as TryExchangeAcrossPair:
  // Replace reorders both the owner's list and the free pool.
  const std::vector<BillboardId> si = assignment->BillboardsOf(i);
  const std::vector<BillboardId> free = assignment->FreeBillboards();
  if (si.empty() || free.empty()) return false;

  const int64_t pairs =
      static_cast<int64_t>(si.size()) * static_cast<int64_t>(free.size());
  const int64_t cap = config.max_exchange_candidates;

  BillboardId best_om = model::kInvalidBillboard;
  BillboardId best_on = model::kInvalidBillboard;
  double best_delta = 0.0;
  auto consider = [&](BillboardId om, BillboardId on) -> bool {
    ++stats->deltas_evaluated;
    double delta = assignment->DeltaReplace(om, on);
    if (!Accepts(delta, assignment->TotalRegret(),
                 config.improvement_ratio)) {
      return false;
    }
    if (!config.best_improvement) {
      assignment->Replace(om, on);
      ++stats->moves_applied;
      MROAM_COUNTER_ADD("bls.moves.replace", 1);
      return true;
    }
    if (delta < best_delta) {
      best_delta = delta;
      best_om = om;
      best_on = on;
    }
    return false;
  };

  if (cap > 0 && pairs > cap) {
    for (int64_t k = 0; k < cap; ++k) {
      BillboardId om = si[rng->UniformU64(si.size())];
      BillboardId on = free[rng->UniformU64(free.size())];
      if (consider(om, on)) return true;
    }
  } else {
    for (BillboardId om : si) {
      for (BillboardId on : free) {
        if (consider(om, on)) return true;
      }
    }
  }
  if (best_om != model::kInvalidBillboard) {
    assignment->Replace(best_om, best_on);
    ++stats->moves_applied;
    MROAM_COUNTER_ADD("bls.moves.replace", 1);
    return true;
  }
  return false;
}

/// BLS move 3: release billboards of `i` whose removal reduces regret.
bool TryReleases(Assignment* assignment, AdvertiserId i,
                 const LocalSearchConfig& config, LocalSearchStats* stats) {
  MROAM_TRACE_SPAN("bls.move.release");
  // Copy: Release mutates the set we'd be iterating.
  std::vector<BillboardId> snapshot = assignment->BillboardsOf(i);
  bool any = false;
  for (BillboardId om : snapshot) {
    ++stats->deltas_evaluated;
    double delta = assignment->DeltaRelease(om);
    if (Accepts(delta, assignment->TotalRegret(),
                config.improvement_ratio)) {
      assignment->Release(om);
      ++stats->moves_applied;
      MROAM_COUNTER_ADD("bls.moves.release", 1);
      any = true;
    }
  }
  return any;
}

}  // namespace

LocalSearchStats BillboardDrivenLocalSearch(Assignment* assignment,
                                            const LocalSearchConfig& config,
                                            common::Rng* rng) {
  std::vector<AdvertiserId> all(
      static_cast<size_t>(assignment->num_advertisers()));
  for (int32_t a = 0; a < assignment->num_advertisers(); ++a) all[a] = a;
  return BillboardDrivenLocalSearchOver(assignment, all, config, rng);
}

LocalSearchStats BillboardDrivenLocalSearchOver(
    Assignment* assignment, const std::vector<AdvertiserId>& targets,
    const LocalSearchConfig& config, common::Rng* rng) {
  MROAM_TRACE_SPAN("bls.search");
  LocalSearchStats stats;
  const size_t t = targets.size();
  // Move 4's candidate plan and its lazy selector persist across sweeps:
  // the candidate is copy-assigned in place each round (its counter
  // objects survive the copy, so the selector's pointer stays valid and
  // its per-advertiser cache vectors stay warm), and CopyDeploymentFrom
  // marks every counter structurally changed — stale stamps then fail the
  // selector's validity test exactly as they would against a freshly
  // built selector, keeping selection (and greedy.deltas) bit-identical
  // to the rebuild-per-call behaviour.
  std::optional<Assignment> candidate;
  std::optional<LazySelector> completer;
  bool improved = true;
  while (improved && stats.sweeps < config.max_sweeps) {
    MROAM_TRACE_SPAN_ID("bls.sweep", stats.sweeps);
    improved = false;
    ++stats.sweeps;
    for (size_t x = 0; x < t; ++x) {
      AdvertiserId i = targets[x];
      // The cross exchange is symmetric, so unordered pairs suffice.
      for (size_t y = x + 1; y < t; ++y) {
        AdvertiserId j = targets[y];
        if (TryExchangeAcrossPair(assignment, i, j, config, rng, &stats)) {
          improved = true;
        }
      }
      if (TryReplaceWithFree(assignment, i, config, rng, &stats)) {
        improved = true;
      }
      if (TryReleases(assignment, i, config, &stats)) {
        improved = true;
      }
    }
    // Move 4 (lines 5.11-5.13): hand the free pool to the (restricted)
    // SynchronousGreedy; keep the completed plan only if it is strictly
    // better. Restricting the completion keeps untargeted advertisers'
    // deployments untouched, as the contract promises.
    if (!assignment->FreeBillboards().empty()) {
      MROAM_TRACE_SPAN("bls.move.complete");
      if (!candidate.has_value()) {
        candidate.emplace(*assignment);
        completer.emplace(&*candidate, config.lazy_selection);
      } else {
        candidate->CopyDeploymentFrom(*assignment);
      }
      SynchronousGreedyOver(&*candidate, targets, config.lazy_selection,
                            &*completer);
      if (Accepts(candidate->TotalRegret() - assignment->TotalRegret(),
                  assignment->TotalRegret(), config.improvement_ratio)) {
        assignment->CopyDeploymentFrom(*candidate);
        ++stats.moves_applied;
        MROAM_COUNTER_ADD("bls.moves.complete", 1);
        improved = true;
      }
    }
  }
  MROAM_COUNTER_ADD("bls.searches", 1);
  MROAM_COUNTER_ADD("bls.sweeps", stats.sweeps);
  MROAM_COUNTER_ADD("bls.moves_applied", stats.moves_applied);
  MROAM_COUNTER_ADD("bls.deltas_evaluated", stats.deltas_evaluated);
  return stats;
}

namespace {

/// Improves `plan` in place with the chosen neighborhood search,
/// accumulating effort counters into `stats`.
void RunStrategy(Assignment* plan, SearchStrategy strategy,
                 const LocalSearchConfig& config, common::Rng* rng,
                 LocalSearchStats* stats) {
  LocalSearchStats s;
  if (strategy == SearchStrategy::kAdvertiserDriven) {
    s = AdvertiserDrivenLocalSearch(plan, config);
  } else {
    s = BillboardDrivenLocalSearch(plan, config, rng);
  }
  stats->moves_applied += s.moves_applied;
  stats->deltas_evaluated += s.deltas_evaluated;
  stats->sweeps += s.sweeps;
}

/// Resolves LocalSearchConfig::num_threads: 0 = all hardware threads.
int ResolveNumThreads(int32_t requested) {
  if (requested <= 0) return common::ThreadPool::HardwareThreads();
  return static_cast<int>(requested);
}

}  // namespace

Assignment RandomizedLocalSearch(const influence::InfluenceIndex& index,
                                 const std::vector<market::Advertiser>& ads,
                                 const RegretParams& params,
                                 SearchStrategy strategy,
                                 const LocalSearchConfig& config,
                                 common::Rng* rng, LocalSearchStats* stats,
                                 uint16_t impression_threshold,
                                 influence::IndexBackend backend) {
  MROAM_TRACE_SPAN("rls.run");
  const int32_t restarts = std::max(config.restarts, 0);
  const int32_t tasks = restarts + 1;  // task 0 is the greedy incumbent

  // Fork every task's Rng stream from the caller's generator *before*
  // any work is dispatched: each task's randomness is then a pure
  // function of (caller seed, task index), so the outcome is
  // bit-identical for every thread count and scheduling order.
  std::vector<common::Rng> task_rngs;
  task_rngs.reserve(static_cast<size_t>(tasks));
  for (int32_t t = 0; t < tasks; ++t) task_rngs.push_back(rng->Fork());

  // Each task owns its slot: no synchronization beyond the join.
  std::vector<std::optional<Assignment>> plans(static_cast<size_t>(tasks));
  std::vector<LocalSearchStats> task_stats(static_cast<size_t>(tasks));

  auto run_task = [&](int64_t t) {
    // Task 0 is the deterministic incumbent; t >= 1 are random restarts.
    MROAM_TRACE_SPAN_ID(t == 0 ? "rls.incumbent" : "rls.restart", t);
    common::Stopwatch phase_watch;
    common::Rng* task_rng = &task_rngs[t];
    Assignment plan(&index, ads, params, impression_threshold, backend);
    if (t == 0) {
      // Line 3.1: incumbent from the deterministic synchronous greedy —
      // improved by the same local search as every restart, so it
      // competes on equal terms.
      SynchronousGreedy(&plan, config.lazy_selection);
    } else {
      // Lines 3.3-3.7: seed every advertiser with one random billboard.
      for (AdvertiserId a = 0;
           a < plan.num_advertisers() && !plan.FreeBillboards().empty();
           ++a) {
        const std::vector<BillboardId>& free = plan.FreeBillboards();
        plan.Assign(free[task_rng->UniformU64(free.size())], a);
      }
      // Line 3.8: complete the plan greedily.
      SynchronousGreedy(&plan, config.lazy_selection);
    }
    MROAM_HISTOGRAM_OBSERVE("rls.greedy_seconds",
                            phase_watch.ElapsedSeconds());
    phase_watch.Restart();
    // Line 3.9: local search.
    RunStrategy(&plan, strategy, config, task_rng, &task_stats[t]);
    MROAM_HISTOGRAM_OBSERVE("rls.search_seconds",
                            phase_watch.ElapsedSeconds());
    plans[t] = std::move(plan);
  };

  const int num_threads = ResolveNumThreads(config.num_threads);
  if (num_threads > 1 && tasks > 1) {
    common::ThreadPool pool(std::min(num_threads, static_cast<int>(tasks)));
    common::ParallelFor(&pool, tasks, run_task);
  } else {
    common::ParallelFor(nullptr, tasks, run_task);
  }

  // Reduction (lines 3.10-3.11): lowest regret wins; ties go to the
  // lowest task index (incumbent first, then earlier restarts), keeping
  // the winner schedule-independent.
  size_t winner = 0;
  LocalSearchStats total_stats;
  for (size_t t = 0; t < plans.size(); ++t) {
    // A task that never populated its slot (a bug in the dispatch or an
    // exception swallowed by the pool) must fail loudly here, not via
    // undefined behaviour on an empty optional.
    MROAM_CHECK(plans[t].has_value())
        << "restart task " << t << " of " << plans.size()
        << " never produced a plan";
    total_stats.moves_applied += task_stats[t].moves_applied;
    total_stats.deltas_evaluated += task_stats[t].deltas_evaluated;
    total_stats.sweeps += task_stats[t].sweeps;
    if (plans[t]->TotalRegret() < plans[winner]->TotalRegret()) winner = t;
  }
  if (stats != nullptr) *stats = total_stats;
  MROAM_COUNTER_ADD("rls.runs", 1);
  MROAM_COUNTER_ADD("rls.restarts", restarts);
  return std::move(*plans[winner]);
}

}  // namespace mroam::core
