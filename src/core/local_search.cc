#include "core/local_search.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/greedy.h"

namespace mroam::core {

using market::AdvertiserId;
using model::BillboardId;

namespace {

constexpr double kAbsEps = 1e-9;

/// Move acceptance per Definition 6.1: improve by at least the ratio `r`
/// of the current objective (plus an absolute epsilon against FP cycling).
bool Accepts(double delta, double current_total, double r) {
  return delta <= -(kAbsEps + r * std::abs(current_total));
}

}  // namespace

LocalSearchStats AdvertiserDrivenLocalSearch(Assignment* assignment,
                                             const LocalSearchConfig& config) {
  LocalSearchStats stats;
  const int32_t n = assignment->num_advertisers();
  bool improved = true;
  while (improved && stats.sweeps < config.max_sweeps) {
    improved = false;
    ++stats.sweeps;
    for (AdvertiserId i = 0; i < n; ++i) {
      for (AdvertiserId j = i + 1; j < n; ++j) {
        ++stats.deltas_evaluated;
        double delta = assignment->DeltaSwapSets(i, j);
        if (Accepts(delta, assignment->TotalRegret(),
                    config.improvement_ratio)) {
          assignment->SwapSets(i, j);
          ++stats.moves_applied;
          improved = true;
        }
      }
    }
  }
  return stats;
}

namespace {

/// BLS move 1 for one advertiser pair: scan (o_m in S_i, o_n in S_j) and
/// apply the first improving cross exchange. Returns true if applied.
bool TryExchangeAcrossPair(Assignment* assignment, AdvertiserId i,
                           AdvertiserId j, const LocalSearchConfig& config,
                           common::Rng* rng, LocalSearchStats* stats) {
  const std::vector<BillboardId>& si = assignment->BillboardsOf(i);
  const std::vector<BillboardId>& sj = assignment->BillboardsOf(j);
  if (si.empty() || sj.empty()) return false;

  const int64_t pairs =
      static_cast<int64_t>(si.size()) * static_cast<int64_t>(sj.size());
  const int64_t cap = config.max_exchange_candidates;

  // Tracks the best improving candidate when best_improvement is set.
  BillboardId best_om = model::kInvalidBillboard;
  BillboardId best_on = model::kInvalidBillboard;
  double best_delta = 0.0;
  auto consider = [&](BillboardId om, BillboardId on) -> bool {
    ++stats->deltas_evaluated;
    double delta = assignment->DeltaExchangeAcross(om, on);
    if (!Accepts(delta, assignment->TotalRegret(),
                 config.improvement_ratio)) {
      return false;
    }
    if (!config.best_improvement) {
      assignment->ExchangeAcross(om, on);
      ++stats->moves_applied;
      return true;  // applied: stop scanning
    }
    if (delta < best_delta) {
      best_delta = delta;
      best_om = om;
      best_on = on;
    }
    return false;  // keep scanning for a better one
  };

  if (cap > 0 && pairs > cap) {
    // Sampled scan: examine `cap` uniformly random pairs.
    for (int64_t k = 0; k < cap; ++k) {
      BillboardId om = si[rng->UniformU64(si.size())];
      BillboardId on = sj[rng->UniformU64(sj.size())];
      if (consider(om, on)) return true;
    }
  } else {
    // Exhaustive scan (the paper's ∃ o_m, o_n neighborhood). Snapshot the
    // lists: we mutate only after deciding.
    for (BillboardId om : si) {
      for (BillboardId on : sj) {
        if (consider(om, on)) return true;
      }
    }
  }
  if (best_om != model::kInvalidBillboard) {
    assignment->ExchangeAcross(best_om, best_on);
    ++stats->moves_applied;
    return true;
  }
  return false;
}

/// BLS move 2: replace an assigned billboard of `i` by a free billboard.
bool TryReplaceWithFree(Assignment* assignment, AdvertiserId i,
                        const LocalSearchConfig& config, common::Rng* rng,
                        LocalSearchStats* stats) {
  const std::vector<BillboardId>& si = assignment->BillboardsOf(i);
  const std::vector<BillboardId>& free = assignment->FreeBillboards();
  if (si.empty() || free.empty()) return false;

  const int64_t pairs =
      static_cast<int64_t>(si.size()) * static_cast<int64_t>(free.size());
  const int64_t cap = config.max_exchange_candidates;

  BillboardId best_om = model::kInvalidBillboard;
  BillboardId best_on = model::kInvalidBillboard;
  double best_delta = 0.0;
  auto consider = [&](BillboardId om, BillboardId on) -> bool {
    ++stats->deltas_evaluated;
    double delta = assignment->DeltaReplace(om, on);
    if (!Accepts(delta, assignment->TotalRegret(),
                 config.improvement_ratio)) {
      return false;
    }
    if (!config.best_improvement) {
      assignment->Replace(om, on);
      ++stats->moves_applied;
      return true;
    }
    if (delta < best_delta) {
      best_delta = delta;
      best_om = om;
      best_on = on;
    }
    return false;
  };

  if (cap > 0 && pairs > cap) {
    for (int64_t k = 0; k < cap; ++k) {
      BillboardId om = si[rng->UniformU64(si.size())];
      BillboardId on = free[rng->UniformU64(free.size())];
      if (consider(om, on)) return true;
    }
  } else {
    for (BillboardId om : si) {
      for (BillboardId on : free) {
        if (consider(om, on)) return true;
      }
    }
  }
  if (best_om != model::kInvalidBillboard) {
    assignment->Replace(best_om, best_on);
    ++stats->moves_applied;
    return true;
  }
  return false;
}

/// BLS move 3: release billboards of `i` whose removal reduces regret.
bool TryReleases(Assignment* assignment, AdvertiserId i,
                 const LocalSearchConfig& config, LocalSearchStats* stats) {
  // Copy: Release mutates the set we'd be iterating.
  std::vector<BillboardId> snapshot = assignment->BillboardsOf(i);
  bool any = false;
  for (BillboardId om : snapshot) {
    ++stats->deltas_evaluated;
    double delta = assignment->DeltaRelease(om);
    if (Accepts(delta, assignment->TotalRegret(),
                config.improvement_ratio)) {
      assignment->Release(om);
      ++stats->moves_applied;
      any = true;
    }
  }
  return any;
}

}  // namespace

LocalSearchStats BillboardDrivenLocalSearch(Assignment* assignment,
                                            const LocalSearchConfig& config,
                                            common::Rng* rng) {
  LocalSearchStats stats;
  const int32_t n = assignment->num_advertisers();
  bool improved = true;
  while (improved && stats.sweeps < config.max_sweeps) {
    improved = false;
    ++stats.sweeps;
    for (AdvertiserId i = 0; i < n; ++i) {
      // The cross exchange is symmetric, so unordered pairs suffice.
      for (AdvertiserId j = i + 1; j < n; ++j) {
        if (TryExchangeAcrossPair(assignment, i, j, config, rng, &stats)) {
          improved = true;
        }
      }
      if (TryReplaceWithFree(assignment, i, config, rng, &stats)) {
        improved = true;
      }
      if (TryReleases(assignment, i, config, &stats)) {
        improved = true;
      }
    }
    // Move 4 (lines 5.11-5.13): hand the free pool to SynchronousGreedy;
    // keep the completed plan only if it is strictly better.
    if (!assignment->FreeBillboards().empty()) {
      Assignment candidate = *assignment;
      SynchronousGreedy(&candidate);
      if (Accepts(candidate.TotalRegret() - assignment->TotalRegret(),
                  assignment->TotalRegret(), config.improvement_ratio)) {
        assignment->CopyDeploymentFrom(candidate);
        ++stats.moves_applied;
        improved = true;
      }
    }
  }
  return stats;
}

Assignment RandomizedLocalSearch(const influence::InfluenceIndex& index,
                                 const std::vector<market::Advertiser>& ads,
                                 const RegretParams& params,
                                 SearchStrategy strategy,
                                 const LocalSearchConfig& config,
                                 common::Rng* rng, LocalSearchStats* stats,
                                 uint16_t impression_threshold) {
  LocalSearchStats total_stats;
  auto run_search = [&](Assignment* a) {
    LocalSearchStats s;
    if (strategy == SearchStrategy::kAdvertiserDriven) {
      s = AdvertiserDrivenLocalSearch(a, config);
    } else {
      s = BillboardDrivenLocalSearch(a, config, rng);
    }
    total_stats.moves_applied += s.moves_applied;
    total_stats.deltas_evaluated += s.deltas_evaluated;
    total_stats.sweeps += s.sweeps;
  };

  // Line 3.1: incumbent from the deterministic synchronous greedy.
  Assignment best(&index, ads, params, impression_threshold);
  SynchronousGreedy(&best);

  for (int32_t iter = 0; iter < config.restarts; ++iter) {
    // Lines 3.3-3.7: seed every advertiser with one random billboard.
    Assignment candidate(&index, ads, params, impression_threshold);
    for (AdvertiserId a = 0;
         a < candidate.num_advertisers() &&
         !candidate.FreeBillboards().empty();
         ++a) {
      const std::vector<BillboardId>& free = candidate.FreeBillboards();
      BillboardId o = free[rng->UniformU64(free.size())];
      candidate.Assign(o, a);
    }
    // Line 3.8: complete the plan greedily; line 3.9: local search.
    SynchronousGreedy(&candidate);
    run_search(&candidate);
    if (candidate.TotalRegret() < best.TotalRegret()) {
      best = std::move(candidate);
    }
  }
  if (stats != nullptr) *stats = total_stats;
  return best;
}

}  // namespace mroam::core
