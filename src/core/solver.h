#ifndef MROAM_CORE_SOLVER_H_
#define MROAM_CORE_SOLVER_H_

#include <string>
#include <vector>

#include "core/local_search.h"
#include "obs/run_report.h"

namespace mroam::core {

/// The four deployment methods compared in the paper's evaluation (§7.1.4).
enum class Method {
  kGOrder,   ///< Budget-Effective Greedy (Algorithm 1)
  kGGlobal,  ///< Synchronous Greedy (Algorithm 2)
  kAls,      ///< Randomized framework + advertiser-driven search (Alg 3+4)
  kBls,      ///< Randomized framework + billboard-driven search (Alg 3+5)
};

/// Display name used in experiment tables ("G-Order", "BLS", ...).
const char* MethodName(Method method);

/// All methods, in the paper's reporting order.
std::vector<Method> AllMethods();

/// Configuration of one solver run.
struct SolverConfig {
  Method method = Method::kBls;
  RegretParams regret;
  /// Local-search knobs, including `num_threads`: ALS/BLS restarts run in
  /// parallel on that many workers with bit-identical results for any
  /// value (per-restart Rng streams are forked from `seed` up front).
  LocalSearchConfig local_search;
  uint64_t seed = 42;  ///< seeds the Rng driving randomized components
  /// Influence measure: 1 = the paper's set-union meet model (default);
  /// m > 1 = impression-count model of [29] (a trajectory counts once it
  /// meets m of the advertiser's billboards).
  uint16_t impression_threshold = 1;
  /// Posting-list representation the coverage counters walk: plain
  /// vector<int32> lists (default) or the block-compressed cindex kernels
  /// (bit-identical; required when the index holds no plain lists, e.g.
  /// when serving an mmapped snapshot).
  influence::IndexBackend backend = influence::IndexBackend::kPlain;
};

/// Outcome of one solver run: the deployment plus its evaluation.
struct SolveResult {
  /// Final billboard sets, indexed by advertiser.
  std::vector<std::vector<model::BillboardId>> sets;
  /// Achieved influence I(S_i) per advertiser.
  std::vector<int64_t> influences;
  /// Regret decomposition (the paper's stacked bars).
  RegretBreakdown breakdown;
  /// Wall-clock seconds spent solving.
  double seconds = 0.0;
  /// Local-search effort counters (zero for the greedy methods).
  LocalSearchStats search_stats;
  /// Structured telemetry: per-phase wall times, the metrics-registry
  /// delta over the run, and per-advertiser outcomes. Serialized by the
  /// bench harness into BENCH_<name>.json.
  obs::RunReport report;
};

/// Runs `config.method` on the given market and returns the deployment.
/// Deterministic given config.seed.
SolveResult Solve(const influence::InfluenceIndex& index,
                  const std::vector<market::Advertiser>& advertisers,
                  const SolverConfig& config);

}  // namespace mroam::core

#endif  // MROAM_CORE_SOLVER_H_
