#ifndef MROAM_CORE_DAILY_MARKET_H_
#define MROAM_CORE_DAILY_MARKET_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/solver.h"
#include "market/contract_book.h"

namespace mroam::core {

/// Operating policy of the host across days.
enum class ReplanPolicy {
  /// Re-solve the whole market (all active contracts) every day with the
  /// configured method. Best regret; existing advertisers may see their
  /// billboard sets change day to day.
  kReoptimizeAll,
  /// Existing contracts keep yesterday's billboards; only newly arrived
  /// (and still-unsatisfied) contracts receive inventory, via the
  /// synchronous greedy. Stable for customers, cheaper to run, worse
  /// regret.
  kLockExisting,
  /// Warm-start from yesterday's deployment and re-optimize only the
  /// advertisers inside the churn's blast radius (arrivals, unsatisfied
  /// incumbents, and owners of billboards sharing trajectories with the
  /// inventory released by expiry/cancellation). Falls back to a full
  /// kReoptimizeAll-style solve whenever the warm-started plan's regret
  /// drifts past IncrementalReplanConfig::max_regret_drift relative to the
  /// last full solve. Near-kReoptimizeAll regret at a fraction of the
  /// per-day cost when daily churn is small.
  kIncremental,
};

const char* ReplanPolicyName(ReplanPolicy policy);

/// Knobs of ReplanPolicy::kIncremental.
struct IncrementalReplanConfig {
  /// Allowed regret drift before falling back to a full solve: the
  /// incremental plan is kept only while its total regret stays within
  /// `last full solve's regret + max_regret_drift * (sum of active
  /// payments)`. The payment sum is the scale because regret is measured
  /// in payment units and the bound must stay meaningful when the full
  /// solve reaches zero regret. Negative forces a full solve every day
  /// (kIncremental then matches kReoptimizeAll bit for bit — the
  /// equivalence tests rely on this); a huge value never falls back.
  double max_regret_drift = 0.1;

  /// Sweep cap for the restricted billboard-driven local search run over
  /// the affected advertisers after the restricted greedy. 0 skips the
  /// local-search polish entirely.
  int32_t local_search_sweeps = 2;
};

/// Configuration of the rolling market simulation.
struct DailyMarketConfig {
  SolverConfig solver;                  ///< used by full solves
  int32_t contract_duration_days = 7;   ///< arrivals stay this many days
  ReplanPolicy policy = ReplanPolicy::kReoptimizeAll;
  IncrementalReplanConfig incremental;  ///< used by kIncremental
};

/// How a day's plan was produced (DayResult::mode).
enum class ReplanMode {
  kNone,         ///< empty book: nothing to plan
  kFull,         ///< full Solve (kReoptimizeAll, or incremental fallback)
  kIncremental,  ///< warm-started restricted re-optimization
  kGreedy,       ///< kLockExisting's greedy completion
};

const char* ReplanModeName(ReplanMode mode);

/// One day's outcome.
struct DayResult {
  int32_t day = 0;
  RegretBreakdown breakdown;  ///< over the contracts active today
  int32_t active_contracts = 0;
  int32_t arrived = 0;
  int32_t expired = 0;
  /// Contracts cancelled (DailyMarket::Cancel) since the previous day.
  int32_t cancelled = 0;
  double seconds = 0.0;
  /// Billboards released by expiry/cancellation since the previous day —
  /// the churn whose blast radius the incremental replanner re-optimizes.
  int32_t churn_boards = 0;
  /// Billboards whose owner changed between the restored incumbent plan
  /// and today's final plan (CountDeploymentDiff). Under kReoptimizeAll
  /// this measures the day-to-day plan stability the paper's §1 motivates
  /// against; under kIncremental it is the replan's write set.
  int64_t boards_touched = 0;
  /// Advertisers handed to the restricted re-optimization (kIncremental
  /// only; 0 under the other policies).
  int32_t reoptimized_advertisers = 0;
  /// True when kIncremental abandoned the warm start and ran a full solve
  /// (drift bound exceeded, or no prior full solve to drift from).
  bool full_solve_fallback = false;
  /// How this day's plan was produced.
  ReplanMode mode = ReplanMode::kNone;
  /// Stable tickets of today's arrivals, in arrival order (see
  /// DailyMarket::AdvanceDay). The serving layer hands these to
  /// advertisers as contract ids.
  std::vector<int64_t> admitted_tickets;
  /// Telemetry of today's replan: under kReoptimizeAll this is the inner
  /// Solve's report; under kLockExisting it covers the greedy completion;
  /// under kIncremental the restricted greedy + local-search phases.
  obs::RunReport report;
};

/// The paper's motivating operational setting (§1): advertisers arrive
/// every day, each holding a contract for a fixed number of days, and the
/// host repeatedly decides the deployment. Wraps the one-shot solvers
/// into a day-by-day loop with contract expiry and a choice of replanning
/// policy.
class DailyMarket {
 public:
  /// `index` must outlive the market.
  DailyMarket(const influence::InfluenceIndex* index,
              DailyMarketConfig config);

  /// Advances one day: expires old contracts, admits `arrivals` (their
  /// ids are reassigned internally; each receives a fresh monotone ticket,
  /// reported in DayResult::admitted_tickets in arrival order), replans
  /// per the policy, and reports.
  DayResult AdvanceDay(std::vector<market::Advertiser> arrivals);

  /// Withdraws the contract holding `ticket` immediately (the serving
  /// layer's DELETE /contracts/<id>). Its inventory is released at the
  /// next replan — under kLockExisting the freed billboards go to
  /// still-unsatisfied contracts, under kIncremental they seed the blast
  /// radius, under kReoptimizeAll the whole market re-solves anyway.
  /// O(1) ticket lookup via an internal ticket->index map, so
  /// cancellation-heavy churn does not scan the book. Returns false when
  /// no active contract holds the ticket (already expired, cancelled, or
  /// never issued).
  bool Cancel(int64_t ticket);

  int32_t today() const { return day_; }
  int32_t active_contracts() const {
    return static_cast<int32_t>(contracts_.size());
  }

  /// Billboard sets currently deployed, aligned with active contracts.
  const std::vector<market::Advertiser>& ActiveTerms() const {
    return terms_cache_;
  }
  const std::vector<std::vector<model::BillboardId>>& ActiveSets() const {
    return sets_cache_;
  }
  /// Tickets of the active contracts, aligned with ActiveTerms/ActiveSets.
  const std::vector<int64_t>& ActiveTickets() const {
    return tickets_cache_;
  }

  /// Snapshots the open book — day, ticket sequence, and every active
  /// contract with its deployment — into the portable form the snapshot
  /// v2 writer persists (and a restarted server restores).
  market::ContractBook ExportBook() const;

  /// Restores a previously exported book into this (fresh, never-advanced)
  /// market: day and ticket sequence resume where the exporting market
  /// left off and the restored contracts keep their billboards until the
  /// next replan. CHECK-fails if this market already holds state.
  void RestoreBook(const market::ContractBook& book);

 private:
  struct Contract {
    market::Advertiser terms;  ///< id field is the current dense id
    int64_t ticket = 0;        ///< stable external id (1, 2, ...)
    int32_t expires_on = 0;    ///< first day the contract is gone
    std::vector<model::BillboardId> billboards;
  };

  void RefreshCaches();

  /// Runs the kIncremental replan for the current roster. `first_new` is
  /// the dense index of the first of today's arrivals; `churn` holds the
  /// billboards released since the last replan. Fills the plan/telemetry
  /// fields of `result`.
  void ReplanIncremental(size_t first_new,
                         const std::vector<model::BillboardId>& churn,
                         DayResult* result);

  /// Full Solve over the active roster (the kReoptimizeAll day and the
  /// incremental fallback share it so both are bit-identical).
  void ReplanFull(DayResult* result);

  const influence::InfluenceIndex* index_;
  DailyMarketConfig config_;
  int32_t day_ = 0;
  int64_t next_ticket_ = 1;
  std::vector<Contract> contracts_;
  std::vector<market::Advertiser> terms_cache_;
  std::vector<std::vector<model::BillboardId>> sets_cache_;
  std::vector<int64_t> tickets_cache_;
  /// ticket -> index in contracts_, kept in sync by RefreshCaches and
  /// Cancel so cancellations resolve without scanning the book.
  std::unordered_map<int64_t, size_t> ticket_index_;
  /// Billboards released by expiry/cancellation since the last replan.
  std::vector<model::BillboardId> churn_released_;
  int32_t cancelled_since_last_day_ = 0;
  /// Total regret of the last full solve — the drift anchor.
  double last_full_regret_ = 0.0;
  bool have_full_solve_ = false;
};

}  // namespace mroam::core

#endif  // MROAM_CORE_DAILY_MARKET_H_
