#ifndef MROAM_CORE_DAILY_MARKET_H_
#define MROAM_CORE_DAILY_MARKET_H_

#include <cstdint>
#include <vector>

#include "core/solver.h"

namespace mroam::core {

/// Operating policy of the host across days.
enum class ReplanPolicy {
  /// Re-solve the whole market (all active contracts) every day with the
  /// configured method. Best regret; existing advertisers may see their
  /// billboard sets change day to day.
  kReoptimizeAll,
  /// Existing contracts keep yesterday's billboards; only newly arrived
  /// (and still-unsatisfied) contracts receive inventory, via the
  /// synchronous greedy. Stable for customers, cheaper to run, worse
  /// regret.
  kLockExisting,
};

const char* ReplanPolicyName(ReplanPolicy policy);

/// Configuration of the rolling market simulation.
struct DailyMarketConfig {
  SolverConfig solver;                  ///< used by kReoptimizeAll
  int32_t contract_duration_days = 7;   ///< arrivals stay this many days
  ReplanPolicy policy = ReplanPolicy::kReoptimizeAll;
};

/// One day's outcome.
struct DayResult {
  int32_t day = 0;
  RegretBreakdown breakdown;  ///< over the contracts active today
  int32_t active_contracts = 0;
  int32_t arrived = 0;
  int32_t expired = 0;
  double seconds = 0.0;
  /// Stable tickets of today's arrivals, in arrival order (see
  /// DailyMarket::AdvanceDay). The serving layer hands these to
  /// advertisers as contract ids.
  std::vector<int64_t> admitted_tickets;
  /// Telemetry of today's replan: under kReoptimizeAll this is the inner
  /// Solve's report; under kLockExisting it covers the greedy completion.
  obs::RunReport report;
};

/// The paper's motivating operational setting (§1): advertisers arrive
/// every day, each holding a contract for a fixed number of days, and the
/// host repeatedly decides the deployment. Wraps the one-shot solvers
/// into a day-by-day loop with contract expiry and a choice of replanning
/// policy.
class DailyMarket {
 public:
  /// `index` must outlive the market.
  DailyMarket(const influence::InfluenceIndex* index,
              DailyMarketConfig config);

  /// Advances one day: expires old contracts, admits `arrivals` (their
  /// ids are reassigned internally; each receives a fresh monotone ticket,
  /// reported in DayResult::admitted_tickets in arrival order), replans
  /// per the policy, and reports.
  DayResult AdvanceDay(std::vector<market::Advertiser> arrivals);

  /// Withdraws the contract holding `ticket` immediately (the serving
  /// layer's DELETE /contracts/<id>). Its inventory is released at the
  /// next replan — under kLockExisting the freed billboards go to
  /// still-unsatisfied contracts, under kReoptimizeAll the whole market
  /// re-solves anyway. Returns false when no active contract holds the
  /// ticket (already expired, cancelled, or never issued).
  bool Cancel(int64_t ticket);

  int32_t today() const { return day_; }
  int32_t active_contracts() const {
    return static_cast<int32_t>(contracts_.size());
  }

  /// Billboard sets currently deployed, aligned with active contracts.
  const std::vector<market::Advertiser>& ActiveTerms() const {
    return terms_cache_;
  }
  const std::vector<std::vector<model::BillboardId>>& ActiveSets() const {
    return sets_cache_;
  }
  /// Tickets of the active contracts, aligned with ActiveTerms/ActiveSets.
  const std::vector<int64_t>& ActiveTickets() const {
    return tickets_cache_;
  }

 private:
  struct Contract {
    market::Advertiser terms;  ///< id field is the current dense id
    int64_t ticket = 0;        ///< stable external id (1, 2, ...)
    int32_t expires_on = 0;    ///< first day the contract is gone
    std::vector<model::BillboardId> billboards;
  };

  void RefreshCaches();

  const influence::InfluenceIndex* index_;
  DailyMarketConfig config_;
  int32_t day_ = 0;
  int64_t next_ticket_ = 1;
  std::vector<Contract> contracts_;
  std::vector<market::Advertiser> terms_cache_;
  std::vector<std::vector<model::BillboardId>> sets_cache_;
  std::vector<int64_t> tickets_cache_;
};

}  // namespace mroam::core

#endif  // MROAM_CORE_DAILY_MARKET_H_
