#include "core/solver.h"

#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/greedy.h"
#include "core/regret.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mroam::core {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kGOrder:
      return "G-Order";
    case Method::kGGlobal:
      return "G-Global";
    case Method::kAls:
      return "ALS";
    case Method::kBls:
      return "BLS";
  }
  return "?";
}

std::vector<Method> AllMethods() {
  return {Method::kGOrder, Method::kGGlobal, Method::kAls, Method::kBls};
}

SolveResult Solve(const influence::InfluenceIndex& index,
                  const std::vector<market::Advertiser>& advertisers,
                  const SolverConfig& config) {
  MROAM_TRACE_SPAN("core.solve");
  const obs::MetricsSnapshot before = obs::MetricsRegistry::Global().Snapshot();
  common::Stopwatch watch;
  common::Rng rng(config.seed);
  SolveResult result;

  Assignment assignment(&index, advertisers, config.regret,
                        config.impression_threshold, config.backend);
  switch (config.method) {
    case Method::kGOrder:
      BudgetEffectiveGreedy(&assignment, config.local_search.lazy_selection);
      break;
    case Method::kGGlobal:
      SynchronousGreedy(&assignment, config.local_search.lazy_selection);
      break;
    case Method::kAls:
      assignment = RandomizedLocalSearch(
          index, advertisers, config.regret,
          SearchStrategy::kAdvertiserDriven, config.local_search, &rng,
          &result.search_stats, config.impression_threshold, config.backend);
      break;
    case Method::kBls:
      assignment = RandomizedLocalSearch(
          index, advertisers, config.regret, SearchStrategy::kBillboardDriven,
          config.local_search, &rng, &result.search_stats,
          config.impression_threshold, config.backend);
      break;
  }

  result.seconds = watch.ElapsedSeconds();
  result.breakdown = assignment.Breakdown();
  result.sets.reserve(advertisers.size());
  result.influences.reserve(advertisers.size());
  for (int32_t a = 0; a < assignment.num_advertisers(); ++a) {
    result.sets.push_back(assignment.BillboardsOf(a));
    result.influences.push_back(assignment.InfluenceOf(a));
  }

  // Telemetry: registry delta over this run, per-phase times, and the
  // per-advertiser regret breakdown of the final deployment.
  obs::RunReport& report = result.report;
  report.label = MethodName(config.method);
  report.metrics =
      obs::MetricsRegistry::Global().Snapshot().DeltaSince(before);
  report.AddPhase("total", result.seconds);
  if (config.method == Method::kGOrder || config.method == Method::kGGlobal) {
    report.AddPhase("greedy", result.seconds);
  } else {
    // Restart tasks observed their greedy/search phases into the rls.*
    // histograms; the delta sums are CPU seconds across all tasks.
    if (const auto* h = report.metrics.FindHistogram("rls.greedy_seconds")) {
      report.AddPhase("restarts.greedy", h->sum);
    }
    if (const auto* h = report.metrics.FindHistogram("rls.search_seconds")) {
      report.AddPhase("restarts.search", h->sum);
    }
  }
  report.advertisers.reserve(advertisers.size());
  for (int32_t a = 0; a < assignment.num_advertisers(); ++a) {
    const market::Advertiser& ad = assignment.advertiser(a);
    obs::RunReport::AdvertiserOutcome outcome;
    outcome.id = ad.id;
    outcome.demand = ad.demand;
    outcome.payment = ad.payment;
    outcome.influence = result.influences[a];
    outcome.regret = Regret(ad, result.influences[a], config.regret);
    outcome.satisfied = Satisfied(ad, result.influences[a]);
    report.advertisers.push_back(outcome);
  }
  MROAM_LOG(Info) << "solve " << report.OneLineSummary();
  return result;
}

}  // namespace mroam::core
