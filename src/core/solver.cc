#include "core/solver.h"

#include <utility>

#include "common/stopwatch.h"
#include "core/greedy.h"

namespace mroam::core {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kGOrder:
      return "G-Order";
    case Method::kGGlobal:
      return "G-Global";
    case Method::kAls:
      return "ALS";
    case Method::kBls:
      return "BLS";
  }
  return "?";
}

std::vector<Method> AllMethods() {
  return {Method::kGOrder, Method::kGGlobal, Method::kAls, Method::kBls};
}

SolveResult Solve(const influence::InfluenceIndex& index,
                  const std::vector<market::Advertiser>& advertisers,
                  const SolverConfig& config) {
  common::Stopwatch watch;
  common::Rng rng(config.seed);
  SolveResult result;

  Assignment assignment(&index, advertisers, config.regret,
                        config.impression_threshold);
  switch (config.method) {
    case Method::kGOrder:
      BudgetEffectiveGreedy(&assignment);
      break;
    case Method::kGGlobal:
      SynchronousGreedy(&assignment);
      break;
    case Method::kAls:
      assignment = RandomizedLocalSearch(
          index, advertisers, config.regret,
          SearchStrategy::kAdvertiserDriven, config.local_search, &rng,
          &result.search_stats, config.impression_threshold);
      break;
    case Method::kBls:
      assignment = RandomizedLocalSearch(
          index, advertisers, config.regret, SearchStrategy::kBillboardDriven,
          config.local_search, &rng, &result.search_stats,
          config.impression_threshold);
      break;
  }

  result.seconds = watch.ElapsedSeconds();
  result.breakdown = assignment.Breakdown();
  result.sets.reserve(advertisers.size());
  result.influences.reserve(advertisers.size());
  for (int32_t a = 0; a < assignment.num_advertisers(); ++a) {
    result.sets.push_back(assignment.BillboardsOf(a));
    result.influences.push_back(assignment.InfluenceOf(a));
  }
  return result;
}

}  // namespace mroam::core
