#ifndef MROAM_CORE_LOCAL_SEARCH_H_
#define MROAM_CORE_LOCAL_SEARCH_H_

#include <cstdint>

#include "common/rng.h"
#include "core/assignment.h"

namespace mroam::core {

/// Knobs of the local-search framework (Algorithms 3-5).
struct LocalSearchConfig {
  /// Number of randomized restarts in Algorithm 3 (its "preset count").
  int32_t restarts = 3;

  /// Minimum relative improvement a move must achieve to be applied —
  /// the `r` of Definition 6.1 / Theorem 2. A move with regret delta `d`
  /// is accepted iff d <= -(1e-9 + r * |current total regret|). 0 accepts
  /// any strict improvement.
  double improvement_ratio = 0.0;

  /// Safety cap on full neighborhood sweeps per local-search invocation.
  int32_t max_sweeps = 50;

  /// BLS only: per advertiser pair, cap on (o_m, o_n) exchange candidates
  /// examined per sweep. 0 = exhaustive (the paper's neighborhood). A
  /// positive cap samples candidates uniformly — an efficiency knob for
  /// large instances that does not change the neighborhood definition,
  /// only which improving move is found first (DESIGN.md §5.2).
  int64_t max_exchange_candidates = 0;

  /// BLS only: when true, each exchange scan (moves 1-2) applies the
  /// *best* improving candidate it examined instead of the first one
  /// (the paper's ∃-semantics). Costs a full scan per applied move; the
  /// ablation bench measures whether the steeper descent pays off.
  bool best_improvement = false;

  /// Selection engine for every greedy completion this config reaches:
  /// the SynchronousGreedy seeding/completion of Algorithm 3's restarts
  /// and the BLS move-4 completion (and, via SolverConfig, the standalone
  /// G-Order / G-Global methods). true (default) = CELF-style lazy
  /// selection with cached upper bounds (core::LazySelector); false =
  /// exhaustive scan. Results are bit-identical either way — the lazy
  /// engine only prunes candidates that provably cannot win — so this is
  /// an escape hatch and A/B knob, not a semantic switch. With
  /// impression_threshold > 1 the lazy engine falls back to the
  /// exhaustive scan by itself (DESIGN.md §5.1).
  bool lazy_selection = true;

  /// Worker threads for Algorithm 3's restarts (the restarts are
  /// independent, so they parallelize perfectly). 1 = serial (default);
  /// 0 = one thread per hardware core; n > 1 = exactly n threads. The
  /// result is bit-identical for every value: each restart's Rng stream
  /// is forked from the caller's seed before dispatch and the winner is
  /// reduced by (regret, restart index), so neither thread count nor
  /// scheduling order can influence the outcome (DESIGN.md §5.4).
  int32_t num_threads = 1;
};

/// Counters reported by the local-search routines.
struct LocalSearchStats {
  int64_t moves_applied = 0;
  int64_t deltas_evaluated = 0;
  int32_t sweeps = 0;
};

/// Algorithm 4 — Advertiser-driven Local Search: repeatedly exchanges the
/// *entire* billboard sets of advertiser pairs while that reduces total
/// regret. Mutates `assignment` in place; never leaves it worse.
LocalSearchStats AdvertiserDrivenLocalSearch(Assignment* assignment,
                                             const LocalSearchConfig& config);

/// Algorithm 5 — Billboard-driven Local Search: fine-grained moves —
/// (1) exchange two assigned billboards across advertisers, (2) replace an
/// assigned billboard by an unassigned one, (3) release an assigned
/// billboard, (4) allocate unassigned billboards via SynchronousGreedy —
/// applied while they reduce total regret. Mutates `assignment` in place;
/// never leaves it worse. `rng` drives candidate sampling when
/// config.max_exchange_candidates > 0.
LocalSearchStats BillboardDrivenLocalSearch(Assignment* assignment,
                                            const LocalSearchConfig& config,
                                            common::Rng* rng);

/// Restricted Billboard-driven Local Search: the same four move classes,
/// but every move endpoint is limited to the advertisers in `targets`
/// (exchanges consider target pairs only; replace/release scan targets;
/// the completion move re-runs the restricted greedy). Advertisers outside
/// `targets` keep their deployment bit-for-bit. With `targets` =
/// {0, ..., n-1} this is exactly BillboardDrivenLocalSearch. The
/// incremental replanner runs it with a small `config.max_sweeps` over the
/// churn's blast radius.
LocalSearchStats BillboardDrivenLocalSearchOver(
    Assignment* assignment, const std::vector<market::AdvertiserId>& targets,
    const LocalSearchConfig& config, common::Rng* rng);

/// The neighborhood strategy plugged into the randomized framework.
enum class SearchStrategy {
  kAdvertiserDriven,  ///< ALS (Algorithm 4)
  kBillboardDriven,   ///< BLS (Algorithm 5)
};

/// Algorithm 3 — Randomized Local Search framework: the incumbent starts
/// as SynchronousGreedy's plan *improved by the chosen local search* (it
/// competes on equal terms with the restarts); each restart seeds every
/// advertiser with one random billboard, completes the plan with
/// SynchronousGreedy, runs the chosen local search, and keeps the best
/// plan seen, ties broken toward the incumbent then earlier restarts.
/// Restarts run on `config.num_threads` threads; the result is
/// bit-identical for any thread count at a fixed seed.
/// `impression_threshold` selects the influence measure and `backend` the
/// posting-list representation (see Assignment).
Assignment RandomizedLocalSearch(
    const influence::InfluenceIndex& index,
    const std::vector<market::Advertiser>& ads, const RegretParams& params,
    SearchStrategy strategy, const LocalSearchConfig& config, common::Rng* rng,
    LocalSearchStats* stats = nullptr, uint16_t impression_threshold = 1,
    influence::IndexBackend backend = influence::IndexBackend::kPlain);

}  // namespace mroam::core

#endif  // MROAM_CORE_LOCAL_SEARCH_H_
