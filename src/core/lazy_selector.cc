#include "core/lazy_selector.h"

#include <algorithm>

#include "core/regret.h"

namespace mroam::core {

using market::AdvertiserId;
using model::BillboardId;

namespace {

/// Upper bound on (R(S_a) - R(S_a ∪ {o})) / I({o}) given the advertiser's
/// exact current influence and an upper bound `gain_ub` on o's marginal
/// gain. The regret drop of adding g <= gain_ub trajectories is
///   * 0 when the advertiser is already satisfied (influence only adds
///     excess);
///   * R(influence) when gain_ub can bridge the remaining demand — the
///     drop is maximal at exact satisfaction, where the regret jumps to 0
///     (and gamma * L * g / demand <= R(influence) for every smaller g
///     since gamma <= 1);
///   * gamma * L * gain_ub / demand otherwise (both states stay on the
///     linear unsatisfied branch of Equation 1).
double RatioUpperBound(const market::Advertiser& ad, int64_t influence,
                       int64_t gain_ub, double supplied,
                       const RegretParams& params) {
  if (influence >= ad.demand) return 0.0;
  double delta_ub;
  if (gain_ub >= ad.demand - influence) {
    delta_ub = Regret(ad, influence, params);
  } else {
    delta_ub = params.gamma * ad.payment * static_cast<double>(gain_ub) /
               static_cast<double>(ad.demand);
  }
  return delta_ub / supplied;
}

}  // namespace

LazySelector::LazySelector(const Assignment* assignment, bool lazy)
    : assignment_(assignment),
      // Gains are only monotone under the set-union measure; the
      // impression-count model (threshold > 1) raises gains as counts
      // climb toward the threshold, so cached bounds would be unsound.
      lazy_active_(lazy && assignment->impression_threshold() == 1),
      states_(assignment->num_advertisers()) {}

BillboardId LazySelector::ExhaustiveBest(AdvertiserId a) {
  const influence::InfluenceIndex& index = assignment_->index();
  const market::Advertiser& ad = assignment_->advertiser(a);
  const RegretParams& params = assignment_->params();
  const int64_t influence = assignment_->InfluenceOf(a);
  const double current_regret = Regret(ad, influence, params);
  // Zero-gain candidates are only *permanently* useless under the
  // set-union model; with an impression threshold m > 1 the first board
  // meeting a trajectory has gain 0 yet bootstraps coverage (greedy.h).
  const bool skip_zero_gain = assignment_->impression_threshold() == 1;
  BillboardId best = model::kInvalidBillboard;
  double best_ratio = 0.0;
  double best_gain_ratio = 0.0;
  for (BillboardId o : assignment_->FreeBillboards()) {
    const double supplied = static_cast<double>(index.InfluenceOf(o));
    if (supplied <= 0.0) continue;
    const int64_t gain = assignment_->MarginalGain(a, o);
    ++exact_evaluations_;
    if (gain == 0 && skip_zero_gain) continue;  // can never help again
    const double ratio =
        (current_regret - Regret(ad, influence + gain, params)) / supplied;
    const double gain_ratio = static_cast<double>(gain) / supplied;
    if (best == model::kInvalidBillboard ||
        SelectionBeats(ratio, gain_ratio, o, best_ratio, best_gain_ratio,
                       best)) {
      best = o;
      best_ratio = ratio;
      best_gain_ratio = gain_ratio;
    }
  }
  return best;
}

BillboardId LazySelector::BestBillboard(AdvertiserId a) {
  if (!lazy_active_) return ExhaustiveBest(a);

  AdvertiserState& state = states_[a];
  const influence::CoverageCounter& counter = assignment_->CounterOf(a);
  const influence::InfluenceIndex& index = assignment_->index();
  const market::Advertiser& ad = assignment_->advertiser(a);
  const RegretParams& params = assignment_->params();
  const int64_t influence = assignment_->InfluenceOf(a);
  const double current_regret = Regret(ad, influence, params);
  const uint64_t epoch = counter.epoch();
  const std::vector<BillboardId>& set = assignment_->BillboardsOf(a);
  if (!state.initialized) {
    state.cached_gain.assign(assignment_->num_billboards(), 0);
    state.gain_stamp.assign(assignment_->num_billboards(), 0);
    state.initialized = true;
  }

  // Freshness upgrade: when the counter has only grown since the last
  // scan, the boards added since then are exactly set[seen_set_size..)
  // (Assign appends), and a gain cached at the previous scan is still
  // *exact* unless its billboard shares a trajectory with one of them.
  const uint64_t prev_epoch = state.last_scan_epoch;
  const bool grew_only = prev_epoch != 0 &&
                         counter.last_shrink_epoch() <= prev_epoch &&
                         state.seen_set_size <= set.size();
  const bool diffing = grew_only && prev_epoch != epoch;
  if (diffing) {
    touched_.assign(static_cast<size_t>(assignment_->num_billboards()), 0);
    for (size_t k = state.seen_set_size; k < set.size(); ++k) {
      index.ForEachCovered(set[k], [&](model::TrajectoryId t) {
        index.ForEachCovering(t, [&](BillboardId o) {
          touched_[static_cast<size_t>(o)] = 1;
        });
      });
    }
  }
  // An empty set means every count is zero, so each candidate's gain is
  // its full supply — exact without a walk (threshold 1 only, which
  // lazy_active_ guarantees).
  const bool empty_set = set.empty();

  // One arithmetic pass over the live free pool: fresh candidates compete
  // immediately from cache; stale ones are deferred under an upper bound.
  BillboardId best = model::kInvalidBillboard;
  double best_ratio = 0.0;
  double best_gain_ratio = 0.0;
  stale_.clear();
  for (BillboardId o : assignment_->FreeBillboards()) {
    const int64_t supplied = index.InfluenceOf(o);
    if (supplied <= 0) continue;
    uint64_t stamp = state.gain_stamp[o];
    if (stamp != epoch) {
      if (diffing && stamp == prev_epoch &&
          touched_[static_cast<size_t>(o)] == 0) {
        stamp = state.gain_stamp[o] = epoch;  // gain unchanged: exact
      } else if (empty_set) {
        state.cached_gain[o] = supplied;
        stamp = state.gain_stamp[o] = epoch;
      }
    }
    if (stamp == epoch) {
      const int64_t gain = state.cached_gain[o];
      if (gain == 0) continue;  // can never raise I(S_a)
      ++lazy_hits_;
      const double ratio =
          (current_regret - Regret(ad, influence + gain, params)) /
          static_cast<double>(supplied);
      const double gain_ratio =
          static_cast<double>(gain) / static_cast<double>(supplied);
      if (best == model::kInvalidBillboard ||
          SelectionBeats(ratio, gain_ratio, o, best_ratio, best_gain_ratio,
                         best)) {
        best = o;
        best_ratio = ratio;
        best_gain_ratio = gain_ratio;
      }
      continue;
    }
    // A cached gain is a valid upper bound as long as the counter has not
    // shrunk since it was stamped (see CoverageCounter); otherwise fall
    // back to the trivial bound I({o}).
    const bool cached_valid =
        stamp != 0 && stamp >= counter.last_shrink_epoch();
    const int64_t gain_ub = cached_valid ? state.cached_gain[o] : supplied;
    // Gains only shrink while the bound stays valid, so a zero bound
    // stays exact until the next shrink invalidates the cache above.
    if (gain_ub == 0) continue;
    stale_.push_back(
        {RatioUpperBound(ad, influence, gain_ub,
                         static_cast<double>(supplied), params),
         o});
  }

  // Drain the deferred candidates best-bound-first. Every key
  // upper-bounds its entry's exact ratio, so once the top cannot reach
  // the tie band of the best exact ratio, no remaining entry can win any
  // tie-break: the best is the argmax.
  std::make_heap(stale_.begin(), stale_.end(), HeapLess);
  while (!stale_.empty()) {
    const HeapEntry top = stale_.front();
    if (best != model::kInvalidBillboard &&
        top.key < best_ratio - kSelectionTieTolerance) {
      break;
    }
    std::pop_heap(stale_.begin(), stale_.end(), HeapLess);
    stale_.pop_back();
    const BillboardId o = top.id;
    const int64_t gain = counter.MarginalGain(o);
    state.cached_gain[o] = gain;
    state.gain_stamp[o] = epoch;
    ++lazy_reevals_;
    ++exact_evaluations_;
    if (gain == 0) continue;
    const double supplied = static_cast<double>(index.InfluenceOf(o));
    const double ratio =
        (current_regret - Regret(ad, influence + gain, params)) / supplied;
    const double gain_ratio = static_cast<double>(gain) / supplied;
    if (best == model::kInvalidBillboard ||
        SelectionBeats(ratio, gain_ratio, o, best_ratio, best_gain_ratio,
                       best)) {
      best = o;
      best_ratio = ratio;
      best_gain_ratio = gain_ratio;
    }
  }

  state.last_scan_epoch = epoch;
  state.seen_set_size = set.size();
  return best;
}

}  // namespace mroam::core
