#ifndef MROAM_CORE_GREEDY_H_
#define MROAM_CORE_GREEDY_H_

#include "core/assignment.h"

namespace mroam::core {

class LazySelector;

/// Picks the free billboard maximizing the paper's greedy selection rule
/// (R(S_a) - R(S_a ∪ {o})) / I({o}) for advertiser `a` (Algorithms 1 & 2,
/// lines 1.5 / 2.6). Billboards with I({o}) = 0 are always skipped.
/// Under the set-union model (impression_threshold == 1) billboards with
/// zero marginal gain w.r.t. S_a are skipped too: a fully-overlapped
/// billboard can never raise the advertiser's influence again, and
/// assigning it would burn the free pool on an advertiser that cannot be
/// helped. Under the impression-count model (threshold m > 1) zero-gain
/// billboards stay eligible — the first board meeting a trajectory has
/// gain 0 yet is how coverage toward the threshold is bootstrapped.
/// Ties are broken by higher
/// marginal-influence-per-supplied-influence, then by lower id, so the
/// selection is deterministic (and meaningful when gamma = 0 makes the
/// regret ratio flat). Returns model::kInvalidBillboard when no eligible
/// billboard exists.
///
/// This is the exhaustive O(|free| incidence walks) reference; the greedy
/// drivers below use core::LazySelector, which returns the same billboard
/// with CELF-style upper-bound pruning (lazy_selector.h).
model::BillboardId BestBillboardFor(const Assignment& assignment,
                                    market::AdvertiserId a);

/// Algorithm 1 — Budget-Effective Greedy ("G-Order"): serves advertisers
/// in descending order of budget-effectiveness L_i/I_i, assigning each the
/// best billboards until it is satisfied or no billboard can still raise
/// its influence. Expects (but does not require) an empty assignment.
/// `lazy_selection` = false replaces the lazy selector by the exhaustive
/// scan (identical result, more incidence-list walks).
void BudgetEffectiveGreedy(Assignment* assignment,
                           bool lazy_selection = true);

/// Algorithm 2 — Synchronous Greedy ("G-Global"): one billboard per
/// unsatisfied advertiser per round. When no billboard can be handed out
/// and at least two advertisers remain unsatisfied, the unsatisfied
/// advertiser with minimum budget-effectiveness releases its billboards
/// and is dropped from further rounds (paper lines 2.9-2.11; we read the
/// guard as ">= 2 unsatisfied", consistent with the text's "the while
/// loop breaks as fewer than two advertisers are unsatisfied").
///
/// Works from any starting assignment (the local-search framework and BLS
/// move 4 call it with non-empty state, per Algorithm 3 line 3.8 and
/// Algorithm 5 line 5.11). `lazy_selection` as in BudgetEffectiveGreedy.
void SynchronousGreedy(Assignment* assignment, bool lazy_selection = true);

/// Restricted Synchronous Greedy: identical round structure, but only the
/// advertisers listed in `targets` compete for inventory (and only they
/// can be released as victims); everyone else's deployment is untouched.
/// With `targets` = {0, ..., n-1} this is bit-identical to
/// SynchronousGreedy. The incremental replanner hands it the blast radius
/// of a day's churn so the rest of the book stays stable.
///
/// `selector`, when non-null, is an externally owned LazySelector bound to
/// `assignment` that this run reuses instead of constructing its own —
/// the BLS sweep loop persists one across its move-4 completions so the
/// per-advertiser cache vectors stay warm (selection results are
/// identical either way: epoch stamps invalidate whatever went stale).
/// Its effort counters are flushed as deltas over this run only.
void SynchronousGreedyOver(Assignment* assignment,
                           const std::vector<market::AdvertiserId>& targets,
                           bool lazy_selection = true,
                           LazySelector* selector = nullptr);

}  // namespace mroam::core

#endif  // MROAM_CORE_GREEDY_H_
