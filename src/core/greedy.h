#ifndef MROAM_CORE_GREEDY_H_
#define MROAM_CORE_GREEDY_H_

#include "core/assignment.h"

namespace mroam::core {

/// Picks the free billboard maximizing the paper's greedy selection rule
/// (R(S_a) - R(S_a ∪ {o})) / I({o}) for advertiser `a` (Algorithms 1 & 2,
/// lines 1.5 / 2.6). Billboards with I({o}) = 0 can never change any
/// advertiser's influence and are skipped. Ties are broken by higher
/// marginal-influence-per-supplied-influence, then by lower id, so the
/// selection is deterministic (and meaningful when gamma = 0 makes the
/// regret ratio flat). Returns model::kInvalidBillboard when no eligible
/// billboard exists.
model::BillboardId BestBillboardFor(const Assignment& assignment,
                                    market::AdvertiserId a);

/// Algorithm 1 — Budget-Effective Greedy ("G-Order"): serves advertisers
/// in descending order of budget-effectiveness L_i/I_i, assigning each the
/// best billboards until it is satisfied or billboards run out. Expects
/// (but does not require) an empty assignment.
void BudgetEffectiveGreedy(Assignment* assignment);

/// Algorithm 2 — Synchronous Greedy ("G-Global"): one billboard per
/// unsatisfied advertiser per round. When no billboard can be handed out
/// and at least two advertisers remain unsatisfied, the unsatisfied
/// advertiser with minimum budget-effectiveness releases its billboards
/// and is dropped from further rounds (paper lines 2.9-2.11; we read the
/// guard as ">= 2 unsatisfied", consistent with the text's "the while
/// loop breaks as fewer than two advertisers are unsatisfied").
///
/// Works from any starting assignment (the local-search framework and BLS
/// move 4 call it with non-empty state, per Algorithm 3 line 3.8 and
/// Algorithm 5 line 5.11).
void SynchronousGreedy(Assignment* assignment);

}  // namespace mroam::core

#endif  // MROAM_CORE_GREEDY_H_
