#ifndef MROAM_CORE_EXACT_H_
#define MROAM_CORE_EXACT_H_

#include <cstdint>

#include "common/status.h"
#include "core/assignment.h"

namespace mroam::core {

/// Configuration for the exact branch-and-bound solver.
struct ExactSolverConfig {
  RegretParams regret;
  uint16_t impression_threshold = 1;
  /// Abort with ResourceExhausted-style failure after exploring this many
  /// search nodes. MROAM is NP-hard; this solver is for small instances
  /// (|U| up to ~15 with a handful of advertisers) used to measure the
  /// optimality gap of the heuristics.
  int64_t max_nodes = 20'000'000;
};

/// Result of an exact solve.
struct ExactResult {
  double optimal_regret = 0.0;
  /// Optimal billboard sets, indexed by advertiser.
  std::vector<std::vector<model::BillboardId>> sets;
  int64_t nodes_explored = 0;
};

/// Finds a minimum-regret deployment by branch and bound over "which
/// advertiser (or nobody) gets each billboard", with an admissible
/// per-advertiser lower bound (influence only grows down a branch, so an
/// advertiser's best reachable regret is 0 if its demand is still within
/// reach of the remaining billboards' gains, and the boundary value
/// otherwise). Billboards are branched in descending influence order.
///
/// Fails with FailedPrecondition when the node budget is exhausted.
common::Result<ExactResult> ExactSolve(
    const influence::InfluenceIndex& index,
    const std::vector<market::Advertiser>& advertisers,
    const ExactSolverConfig& config);

}  // namespace mroam::core

#endif  // MROAM_CORE_EXACT_H_
