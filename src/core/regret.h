#ifndef MROAM_CORE_REGRET_H_
#define MROAM_CORE_REGRET_H_

#include <cstdint>

#include "common/logging.h"
#include "market/advertiser.h"

namespace mroam::core {

/// Parameters of the regret model (Equation 1).
struct RegretParams {
  /// Unsatisfied penalty ratio gamma in [0, 1]. gamma = 0: no payment at
  /// all unless the demand is fully met; gamma = 1: payment proportional
  /// to the satisfied fraction. Paper default: 0.5.
  double gamma = 0.5;
};

/// True when the assignment meets the advertiser's demand.
inline bool Satisfied(const market::Advertiser& advertiser,
                      int64_t achieved_influence) {
  return achieved_influence >= advertiser.demand;
}

/// The host's regret for serving `advertiser` with achieved influence
/// I(S_i) = `achieved_influence` (Equation 1):
///
///   I(S_i) <  I_i :  L_i * (1 - gamma * I(S_i)/I_i)   (revenue regret)
///   I(S_i) >= I_i :  L_i * (I(S_i) - I_i)/I_i         (excessive influence)
inline double Regret(const market::Advertiser& advertiser,
                     int64_t achieved_influence, const RegretParams& params) {
  MROAM_DCHECK(advertiser.demand > 0);
  MROAM_DCHECK(achieved_influence >= 0);
  const double demand = static_cast<double>(advertiser.demand);
  const double achieved = static_cast<double>(achieved_influence);
  if (achieved_influence < advertiser.demand) {
    return advertiser.payment * (1.0 - params.gamma * achieved / demand);
  }
  return advertiser.payment * (achieved - demand) / demand;
}

/// The rewired dual objective R' (Equation 2), the revenue-maximization
/// view used in the BLS approximation analysis (§6.3):
///
///   I(S_i) <  I_i :  L_i * I(S_i)/I_i
///   I(S_i) >= I_i :  L_i - L_i * (I(S_i) - I_i)/I_i
///
/// Note R(S_i) + R'(S_i) = L_i holds exactly in the satisfied branch for
/// any gamma, and in the unsatisfied branch iff gamma = 1 (the paper
/// states the identity without the gamma caveat; Equation 2 itself has no
/// gamma).
inline double DualRevenue(const market::Advertiser& advertiser,
                          int64_t achieved_influence) {
  MROAM_DCHECK(advertiser.demand > 0);
  const double demand = static_cast<double>(advertiser.demand);
  const double achieved = static_cast<double>(achieved_influence);
  if (achieved_influence < advertiser.demand) {
    return advertiser.payment * achieved / demand;
  }
  return advertiser.payment -
         advertiser.payment * (achieved - demand) / demand;
}

/// Decomposition of a deployment's total regret into the two components
/// the paper's stacked bars report (§7.2).
struct RegretBreakdown {
  double total = 0.0;
  double excessive = 0.0;            ///< sum over satisfied advertisers
  double unsatisfied_penalty = 0.0;  ///< sum over unsatisfied advertisers
  int32_t satisfied_count = 0;
  int32_t advertiser_count = 0;

  /// Percentage annotations printed above the paper's bars.
  double ExcessivePercent() const {
    return total > 0.0 ? 100.0 * excessive / total : 0.0;
  }
  double UnsatisfiedPercent() const {
    return total > 0.0 ? 100.0 * unsatisfied_penalty / total : 0.0;
  }
};

}  // namespace mroam::core

#endif  // MROAM_CORE_REGRET_H_
