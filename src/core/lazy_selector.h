#ifndef MROAM_CORE_LAZY_SELECTOR_H_
#define MROAM_CORE_LAZY_SELECTOR_H_

#include <cstdint>
#include <vector>

#include "core/assignment.h"

namespace mroam::core {

/// Comparison tolerance of the greedy selection rule: ratios within this
/// band tie and fall through to the next tie-break key.
inline constexpr double kSelectionTieTolerance = 1e-12;

/// The greedy selection comparator shared by the exhaustive scan and the
/// lazy selector (Algorithms 1 & 2, lines 1.5 / 2.6): a candidate beats
/// the incumbent on a strictly higher regret-delta ratio; within the tie
/// band it wins on a higher marginal-gain ratio, then on a smaller id.
/// Keeping this in one place is what makes the two selection paths
/// bit-identical.
inline bool SelectionBeats(double ratio, double gain_ratio,
                           model::BillboardId id, double best_ratio,
                           double best_gain_ratio,
                           model::BillboardId best_id) {
  if (ratio > best_ratio + kSelectionTieTolerance) return true;
  if (ratio > best_ratio - kSelectionTieTolerance) {
    if (gain_ratio > best_gain_ratio + kSelectionTieTolerance) return true;
    if (gain_ratio > best_gain_ratio - kSelectionTieTolerance &&
        id < best_id) {
      return true;
    }
  }
  return false;
}

/// CELF-style lazy argmax for the greedy selection rule
/// (R(S_a) - R(S_a ∪ {o})) / I({o}).
///
/// The expensive unit of the exhaustive scan is the incidence-list walk
/// behind MarginalGain — one per free billboard per pick. The selector
/// eliminates almost all of them by caching each candidate's marginal
/// gain stamped with the advertiser's counter epoch
/// (CoverageCounter::epoch()). Two facts make the cache sound
/// (DESIGN.md §5.1):
///
///  1. With impression_threshold == 1, MarginalGain(a, o) is monotone
///     non-increasing while S_a only grows, so a gain cached at counter
///     epoch >= last_shrink_epoch() stays a valid *upper bound* on the
///     current gain (CoverageCounter::last_shrink_epoch()).
///  2. A gain changes only when a board added to S_a shares a trajectory
///     with the candidate. While the counter has only grown, the boards
///     added since the previous query are exactly the tail of
///     BillboardsOf(a); walking just those and a reverse
///     (trajectory -> billboards) index re-stamps every unaffected
///     cached gain as *exact* at the current epoch.
///
/// Each BestBillboard call is then one O(|free|) arithmetic pass: fresh
/// candidates (stamp == current epoch) resolve from cache with no walk
/// and compete immediately under SelectionBeats; stale candidates are
/// deferred into a small max-heap keyed by an O(1) upper bound on their
/// ratio (satisfaction jump when the gain bound can bridge the remaining
/// demand, the linear branch otherwise — the drop is not submodular, so
/// textbook CELF's stale keys would be unsound). The heap is drained
/// only while its top key can still reach the tie band of the best exact
/// ratio seen; each drained entry pays the one walk and re-stamps its
/// cache. The result is provably the argmax under SelectionBeats,
/// bit-for-bit equal to the exhaustive scan whenever candidate ratios
/// are either exactly tied or separated by more than the tie tolerance
/// (true for every instance the equivalence suite draws). Exact ties —
/// pervasive, since every candidate disjoint from S_a sits on the same
/// gamma * L / D plateau — are broken from cache at O(1) each.
///
/// For impression_threshold > 1 fact 1 fails (counts climbing toward the
/// threshold *raise* gains), so the selector detects it on construction
/// and every query falls back to the exhaustive scan. The same happens
/// when constructed with lazy = false (the solver knob).
///
/// The selector holds no Assignment state beyond epoch observations: it
/// is built per greedy run, must not outlive `assignment`, and tolerates
/// arbitrary interleaved mutations (epochs make stale caches harmless;
/// the free pool is re-read on every call).
class LazySelector {
 public:
  /// `assignment` must outlive the selector. `lazy` = false forces the
  /// exhaustive scan (the comparison baseline and the solver knob's off
  /// position).
  explicit LazySelector(const Assignment* assignment, bool lazy = true);

  /// The best free billboard for `a` under the selection rule;
  /// model::kInvalidBillboard when no eligible candidate exists. Under
  /// the set-union model zero-marginal-gain candidates are ineligible —
  /// they can never raise I(S_a) again; with impression_threshold > 1
  /// they stay eligible (see greedy.h on the bootstrap role they play).
  model::BillboardId BestBillboard(market::AdvertiserId a);

  /// True when CELF-style selection is active (lazy requested and
  /// impression_threshold == 1).
  bool lazy_active() const { return lazy_active_; }

  /// The assignment this selector observes (callers reusing one selector
  /// across greedy runs assert they hand it the matching assignment).
  const Assignment* assignment() const { return assignment_; }

  // Effort counters over the selector's lifetime. The greedy drivers
  // flush them into the obs registry once per run (never per pick).

  /// Exact marginal-gain evaluations, i.e. incidence-list walks. The
  /// exhaustive scan pays one per candidate per pick; the lazy path only
  /// pays for re-evaluations.
  int64_t exact_evaluations() const { return exact_evaluations_; }
  /// Candidates resolved from a stamp-fresh cached gain (no list walk).
  int64_t lazy_hits() const { return lazy_hits_; }
  /// Stale candidates that had to recompute their gain (one list walk).
  int64_t lazy_reevals() const { return lazy_reevals_; }

 private:
  struct HeapEntry {
    double key = 0.0;  ///< upper bound on the candidate's regret-delta ratio
    model::BillboardId id = model::kInvalidBillboard;
  };

  /// Max-heap order for std::*_heap: higher key first, then smaller id,
  /// so the drain sequence is fully specified.
  static bool HeapLess(const HeapEntry& x, const HeapEntry& y) {
    if (x.key != y.key) return x.key < y.key;
    return x.id > y.id;
  }

  struct AdvertiserState {
    bool initialized = false;
    std::vector<int64_t> cached_gain;  ///< by billboard
    std::vector<uint64_t> gain_stamp;  ///< counter epoch; 0 = never cached
    /// Counter epoch of the last BestBillboard scan (0 = never scanned).
    uint64_t last_scan_epoch = 0;
    /// |BillboardsOf(a)| at the last scan. While the counter only grows,
    /// boards added since then are exactly the list's tail beyond this
    /// size (Assignment appends on Assign) — the scan uses that to
    /// upgrade unaffected cached gains to exact.
    size_t seen_set_size = 0;
  };

  model::BillboardId ExhaustiveBest(market::AdvertiserId a);

  const Assignment* assignment_;
  bool lazy_active_;
  std::vector<AdvertiserState> states_;     // by advertiser, lazily built
  std::vector<uint8_t> touched_;  // per-scan scratch, by billboard
  std::vector<HeapEntry> stale_;  // per-scan scratch: deferred candidates
  int64_t exact_evaluations_ = 0;
  int64_t lazy_hits_ = 0;
  int64_t lazy_reevals_ = 0;
};

}  // namespace mroam::core

#endif  // MROAM_CORE_LAZY_SELECTOR_H_
