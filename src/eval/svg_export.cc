#include "eval/svg_export.h"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "common/strings.h"

namespace mroam::eval {

using common::Status;

namespace {

// A categorical palette that stays readable on white.
constexpr const char* kPalette[] = {
    "#e6194b", "#3cb44b", "#4363d8", "#f58231", "#911eb4", "#46f0f0",
    "#f032e6", "#bcf60c", "#008080", "#9a6324", "#800000", "#808000",
    "#000075", "#fabebe", "#ffd8b1", "#aaffc3",
};
constexpr int kPaletteSize = static_cast<int>(std::size(kPalette));

}  // namespace

std::string AdvertiserColor(int32_t a) {
  return kPalette[a % kPaletteSize];
}

Status WriteDeploymentSvg(const std::string& path,
                          const model::Dataset& dataset,
                          const core::SolveResult& result,
                          const SvgOptions& options) {
  if (options.width_px <= 0) {
    return Status::InvalidArgument("width_px must be positive");
  }
  geo::BoundingBox box;
  for (const model::Billboard& b : dataset.billboards) box.Extend(b.location);
  for (const model::Trajectory& t : dataset.trajectories) {
    for (const geo::Point& p : t.points) box.Extend(p);
  }
  if (box.Empty()) {
    return Status::InvalidArgument("dataset has no geometry to draw");
  }

  const double pad = 0.02 * std::max(box.Width(), box.Height());
  box.Extend({box.min.x - pad, box.min.y - pad});
  box.Extend({box.max.x + pad, box.max.y + pad});
  const double scale = options.width_px / std::max(1.0, box.Width());
  const int32_t height_px =
      std::max(1, static_cast<int32_t>(std::lround(box.Height() * scale)));

  auto to_px = [&](const geo::Point& p) {
    // SVG y grows downward; flip so north is up.
    return geo::Point{(p.x - box.min.x) * scale,
                      (box.max.y - p.y) * scale};
  };

  // Billboard owners from the result's sets.
  std::vector<int32_t> owner(dataset.billboards.size(), -1);
  for (size_t a = 0; a < result.sets.size(); ++a) {
    for (model::BillboardId o : result.sets[a]) {
      if (o >= 0 && static_cast<size_t>(o) < owner.size()) {
        owner[o] = static_cast<int32_t>(a);
      }
    }
  }

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << options.width_px << "\" height=\"" << height_px
      << "\" viewBox=\"0 0 " << options.width_px << " " << height_px
      << "\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // Trajectory layer (sampled).
  if (options.trajectory_fraction > 0.0 && !dataset.trajectories.empty()) {
    size_t stride = static_cast<size_t>(std::max(
        1.0, 1.0 / std::min(1.0, options.trajectory_fraction)));
    out << "<g stroke=\"#c8d4e8\" stroke-width=\"0.6\" fill=\"none\" "
           "opacity=\"0.5\">\n";
    for (size_t i = 0; i < dataset.trajectories.size(); i += stride) {
      const auto& points = dataset.trajectories[i].points;
      if (points.size() < 2) continue;
      out << "<polyline points=\"";
      for (const geo::Point& p : points) {
        geo::Point q = to_px(p);
        out << common::FormatDouble(q.x, 1) << ","
            << common::FormatDouble(q.y, 1) << " ";
      }
      out << "\"/>\n";
    }
    out << "</g>\n";
  }

  // Billboards, unassigned first so colored ones draw on top.
  out << "<g stroke=\"none\">\n";
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t o = 0; o < dataset.billboards.size(); ++o) {
      bool assigned = owner[o] >= 0;
      if ((pass == 0) == assigned) continue;
      geo::Point q = to_px(dataset.billboards[o].location);
      out << "<circle cx=\"" << common::FormatDouble(q.x, 1) << "\" cy=\""
          << common::FormatDouble(q.y, 1) << "\" r=\""
          << common::FormatDouble(options.billboard_radius_px, 1)
          << "\" fill=\""
          << (assigned ? AdvertiserColor(owner[o]) : std::string("#bbbbbb"))
          << "\" opacity=\"" << (assigned ? "0.9" : "0.45") << "\"/>\n";
    }
  }
  out << "</g>\n</svg>\n";
  out.flush();
  if (!out) {
    return Status::IoError("I/O error while writing: " + path);
  }
  return Status::Ok();
}

}  // namespace mroam::eval
