#ifndef MROAM_EVAL_EXPERIMENT_H_
#define MROAM_EVAL_EXPERIMENT_H_

#include <ostream>
#include <string>
#include <vector>

#include "core/solver.h"
#include "influence/influence_index.h"
#include "market/workload.h"

namespace mroam::eval {

/// One experiment point: a workload instantiation plus solver knobs.
/// Mirrors the paper's parameter grid (Table 6).
struct ExperimentConfig {
  market::WorkloadConfig workload;
  core::RegretParams regret;
  core::LocalSearchConfig local_search;
  /// Methods to run; defaults to all four.
  std::vector<core::Method> methods = core::AllMethods();
  uint64_t workload_seed = 7;
  uint64_t solver_seed = 42;
  /// Influence measure (see core::SolverConfig::impression_threshold).
  uint16_t impression_threshold = 1;
};

/// Result of one method at one experiment point.
struct MethodResult {
  core::Method method = core::Method::kGOrder;
  core::RegretBreakdown breakdown;
  double seconds = 0.0;
  core::LocalSearchStats search_stats;
  /// Per-run telemetry from core::Solve (phases, metrics delta,
  /// per-advertiser outcomes).
  obs::RunReport report;
};

/// Results of all methods at one experiment point.
struct ExperimentPoint {
  std::string label;
  int64_t supply = 0;
  int64_t global_demand = 0;
  int32_t num_advertisers = 0;
  double total_payment = 0.0;
  std::vector<MethodResult> results;
};

/// Generates the workload for `config`, runs every requested method, and
/// collects the regret decomposition + runtime. Fails only when workload
/// generation does (invalid config or non-positive supply).
common::Result<ExperimentPoint> RunExperimentPoint(
    const influence::InfluenceIndex& index, const ExperimentConfig& config,
    const std::string& label);

/// Prints a series of experiment points as one aligned table with columns:
/// point label, method, total regret, % excessive, % unsatisfied,
/// #satisfied/#advertisers, seconds. This is the textual equivalent of one
/// paper figure (stacked bars + annotations).
void PrintExperimentSeries(std::ostream& os, const std::string& title,
                           const std::vector<ExperimentPoint>& points);

/// Writes the same series as CSV rows (one per point x method), for
/// downstream plotting. Columns: label, method, total_regret, excessive,
/// unsatisfied_penalty, satisfied, advertisers, seconds.
common::Status WriteExperimentSeriesCsv(
    const std::string& path, const std::vector<ExperimentPoint>& points);

/// Serializes the series as one JSON array (one element per point, each
/// with a `results` array carrying the full RunReport per method). The
/// machine-readable twin of PrintExperimentSeries.
std::string ExperimentSeriesToJson(const std::vector<ExperimentPoint>& points);

/// Writes ExperimentSeriesToJson(points) to `path`.
common::Status WriteExperimentSeriesJson(
    const std::string& path, const std::vector<ExperimentPoint>& points);

/// Exports one deployment plan as CSV, one row per advertiser:
/// advertiser,demand,payment,influence,regret,billboards — with the
/// billboard ids packed as "id;id;...". This is what a host would hand to
/// operations after solving.
common::Status WriteDeploymentCsv(
    const std::string& path,
    const std::vector<market::Advertiser>& advertisers,
    const core::SolveResult& result, const core::RegretParams& params);

}  // namespace mroam::eval

#endif  // MROAM_EVAL_EXPERIMENT_H_
