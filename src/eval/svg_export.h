#ifndef MROAM_EVAL_SVG_EXPORT_H_
#define MROAM_EVAL_SVG_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/solver.h"
#include "model/dataset.h"

namespace mroam::eval {

/// Options for the deployment map renderer.
struct SvgOptions {
  int32_t width_px = 900;
  /// Fraction of trajectories drawn (they are sampled evenly); 0 disables
  /// the trajectory layer. Drawing every trip of a large dataset makes an
  /// unusable file.
  double trajectory_fraction = 0.02;
  double billboard_radius_px = 3.0;
};

/// Renders the city and a deployment as an SVG map: trajectories as faint
/// polylines, billboards as dots colored by owning advertiser (grey =
/// unassigned). Useful to eyeball what a solver did — e.g. BLS carving
/// hotspot inventory between advertisers.
common::Status WriteDeploymentSvg(const std::string& path,
                                  const model::Dataset& dataset,
                                  const core::SolveResult& result,
                                  const SvgOptions& options = {});

/// Color assigned to advertiser `a` in the map (cycled palette), as a
/// "#rrggbb" string. Exposed for tests and legends.
std::string AdvertiserColor(int32_t a);

}  // namespace mroam::eval

#endif  // MROAM_EVAL_SVG_EXPORT_H_
