#ifndef MROAM_EVAL_TABLE_PRINTER_H_
#define MROAM_EVAL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace mroam::eval {

/// Collects rows of string cells and prints them column-aligned — the
/// output format of every bench binary (one printed table per paper
/// table/figure, see DESIGN.md §3).
class TablePrinter {
 public:
  /// Sets the header row.
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one data row (may have fewer cells than the header).
  void AddRow(std::vector<std::string> row);

  /// Prints header, separator, and rows, space-aligned, to `os`.
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mroam::eval

#endif  // MROAM_EVAL_TABLE_PRINTER_H_
