#include "eval/experiment.h"

#include <algorithm>
#include <fstream>

#include "common/csv.h"
#include "common/strings.h"
#include "eval/table_printer.h"

namespace mroam::eval {

using common::FormatDouble;
using common::Result;
using common::Status;

Result<ExperimentPoint> RunExperimentPoint(
    const influence::InfluenceIndex& index, const ExperimentConfig& config,
    const std::string& label) {
  common::Rng workload_rng(config.workload_seed);
  MROAM_ASSIGN_OR_RETURN(
      std::vector<market::Advertiser> advertisers,
      market::GenerateAdvertisers(index.TotalSupply(), config.workload,
                                  &workload_rng));

  ExperimentPoint point;
  point.label = label;
  point.supply = index.TotalSupply();
  point.global_demand = market::GlobalDemand(advertisers);
  point.num_advertisers = static_cast<int32_t>(advertisers.size());
  point.total_payment = market::TotalPayment(advertisers);

  for (core::Method method : config.methods) {
    core::SolverConfig solver_config;
    solver_config.method = method;
    solver_config.regret = config.regret;
    solver_config.local_search = config.local_search;
    solver_config.seed = config.solver_seed;
    solver_config.impression_threshold = config.impression_threshold;
    core::SolveResult solve = core::Solve(index, advertisers, solver_config);

    MethodResult r;
    r.method = method;
    r.breakdown = solve.breakdown;
    r.seconds = solve.seconds;
    r.search_stats = solve.search_stats;
    r.report = std::move(solve.report);
    point.results.push_back(std::move(r));
  }
  return point;
}

void PrintExperimentSeries(std::ostream& os, const std::string& title,
                           const std::vector<ExperimentPoint>& points) {
  os << "== " << title << " ==\n";
  if (!points.empty()) {
    const ExperimentPoint& p = points.front();
    os << "supply I* = " << common::FormatWithCommas(p.supply) << "\n";
  }
  TablePrinter table({"point", "method", "regret", "excess%", "unsat%",
                      "satisfied", "time_s"});
  for (const ExperimentPoint& p : points) {
    for (const MethodResult& r : p.results) {
      table.AddRow({p.label, core::MethodName(r.method),
                    FormatDouble(r.breakdown.total, 1),
                    FormatDouble(r.breakdown.ExcessivePercent(), 1),
                    FormatDouble(r.breakdown.UnsatisfiedPercent(), 1),
                    std::to_string(r.breakdown.satisfied_count) + "/" +
                        std::to_string(r.breakdown.advertiser_count),
                    FormatDouble(r.seconds, 3)});
    }
  }
  table.Print(os);
  os << "\n";
}

Status WriteExperimentSeriesCsv(const std::string& path,
                                const std::vector<ExperimentPoint>& points) {
  std::vector<common::CsvRow> rows;
  rows.push_back({"label", "method", "total_regret", "excessive",
                  "unsatisfied_penalty", "satisfied", "advertisers",
                  "seconds"});
  for (const ExperimentPoint& p : points) {
    for (const MethodResult& r : p.results) {
      rows.push_back({p.label, core::MethodName(r.method),
                      FormatDouble(r.breakdown.total, 3),
                      FormatDouble(r.breakdown.excessive, 3),
                      FormatDouble(r.breakdown.unsatisfied_penalty, 3),
                      std::to_string(r.breakdown.satisfied_count),
                      std::to_string(r.breakdown.advertiser_count),
                      FormatDouble(r.seconds, 4)});
    }
  }
  return common::WriteCsvFile(path, rows);
}

std::string ExperimentSeriesToJson(
    const std::vector<ExperimentPoint>& points) {
  using obs::internal::AppendJsonString;
  using obs::internal::JsonDouble;
  std::string out = "[";
  for (size_t p = 0; p < points.size(); ++p) {
    const ExperimentPoint& point = points[p];
    if (p > 0) out.push_back(',');
    out += "\n{\"label\":";
    AppendJsonString(&out, point.label);
    out += ",\"supply\":" + std::to_string(point.supply) +
           ",\"global_demand\":" + std::to_string(point.global_demand) +
           ",\"num_advertisers\":" + std::to_string(point.num_advertisers) +
           ",\"total_payment\":" + JsonDouble(point.total_payment) +
           ",\"results\":[";
    for (size_t r = 0; r < point.results.size(); ++r) {
      const MethodResult& result = point.results[r];
      if (r > 0) out.push_back(',');
      out += "\n{\"method\":";
      AppendJsonString(&out, core::MethodName(result.method));
      out += ",\"total_regret\":" + JsonDouble(result.breakdown.total) +
             ",\"excessive\":" + JsonDouble(result.breakdown.excessive) +
             ",\"unsatisfied_penalty\":" +
             JsonDouble(result.breakdown.unsatisfied_penalty) +
             ",\"satisfied\":" +
             std::to_string(result.breakdown.satisfied_count) +
             ",\"advertisers\":" +
             std::to_string(result.breakdown.advertiser_count) +
             ",\"seconds\":" + JsonDouble(result.seconds) +
             ",\"report\":" + result.report.ToJson() + "}";
    }
    out += "]}";
  }
  out += "\n]\n";
  return out;
}

Status WriteExperimentSeriesJson(
    const std::string& path, const std::vector<ExperimentPoint>& points) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path);
  out << ExperimentSeriesToJson(points);
  if (!out) return Status::IoError("short write to " + path);
  return Status::Ok();
}

Status WriteDeploymentCsv(const std::string& path,
                          const std::vector<market::Advertiser>& advertisers,
                          const core::SolveResult& result,
                          const core::RegretParams& params) {
  if (result.sets.size() != advertisers.size() ||
      result.influences.size() != advertisers.size()) {
    return Status::InvalidArgument(
        "result does not match the advertiser list");
  }
  std::vector<common::CsvRow> rows;
  rows.push_back(
      {"advertiser", "demand", "payment", "influence", "regret",
       "billboards"});
  for (size_t a = 0; a < advertisers.size(); ++a) {
    std::string packed;
    std::vector<model::BillboardId> sorted = result.sets[a];
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i < sorted.size(); ++i) {
      if (i > 0) packed.push_back(';');
      packed += std::to_string(sorted[i]);
    }
    rows.push_back(
        {std::to_string(advertisers[a].id),
         std::to_string(advertisers[a].demand),
         FormatDouble(advertisers[a].payment, 2),
         std::to_string(result.influences[a]),
         FormatDouble(
             core::Regret(advertisers[a], result.influences[a], params), 3),
         packed});
  }
  return common::WriteCsvFile(path, rows);
}

}  // namespace mroam::eval
