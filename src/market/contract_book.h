#ifndef MROAM_MARKET_CONTRACT_BOOK_H_
#define MROAM_MARKET_CONTRACT_BOOK_H_

#include <cstdint>
#include <vector>

#include "market/advertiser.h"
#include "model/billboard.h"

namespace mroam::market {

/// One active contract's durable state: the terms, the stable ticket the
/// serving layer handed out, when it expires, and the billboards it holds.
/// This is exactly what a drained server must persist so a restart can
/// restore the open book instead of starting empty (the snapshot v2
/// contract-book section, docs/snapshot_format.md).
struct ContractBookEntry {
  Advertiser terms;
  int64_t ticket = 0;
  int32_t expires_on = 0;  ///< first market day the contract is gone
  std::vector<model::BillboardId> billboards;
};

/// The portable image of a DailyMarket's open book: the current day, the
/// next ticket to mint (so restored servers keep tickets monotone), and
/// the active contracts in dense-id order. Produced by
/// DailyMarket::ExportBook / MarketServer::ExportBook, consumed by
/// DailyMarket::RestoreBook, persisted in snapshot v2.
struct ContractBook {
  int32_t day = 0;
  int64_t next_ticket = 1;
  std::vector<ContractBookEntry> entries;

  bool empty() const {
    return day == 0 && next_ticket == 1 && entries.empty();
  }
};

}  // namespace mroam::market

#endif  // MROAM_MARKET_CONTRACT_BOOK_H_
