#ifndef MROAM_MARKET_ADVERTISER_H_
#define MROAM_MARKET_ADVERTISER_H_

#include <cstdint>

namespace mroam::market {

/// Dense identifier of an advertiser within a workload.
using AdvertiserId = int32_t;

/// Sentinel for "no advertiser" (e.g. an unassigned billboard's owner).
inline constexpr AdvertiserId kNoAdvertiser = -1;

/// One advertiser's campaign proposal (§3.1): a minimum demanded influence
/// I_i and the payment L_i committed if the demand is met.
struct Advertiser {
  AdvertiserId id = kNoAdvertiser;
  int64_t demand = 0;    ///< demanded influence I_i (> 0)
  double payment = 0.0;  ///< committed payment L_i (> 0)

  /// Budget-effectiveness L_i / I_i — the ordering key of Algorithm 1 and
  /// the release rule of Algorithm 2.
  double BudgetEffectiveness() const {
    return demand > 0 ? payment / static_cast<double>(demand) : 0.0;
  }
};

}  // namespace mroam::market

#endif  // MROAM_MARKET_ADVERTISER_H_
