#ifndef MROAM_MARKET_CONTRACT_IO_H_
#define MROAM_MARKET_CONTRACT_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "market/advertiser.h"

namespace mroam::market {

/// Advertiser-contract CSV format (3 columns): id,demand,payment. Ids
/// must be dense 0..n-1 but may appear in any order. Lines starting with
/// '#' are comments. Demands and payments must be positive.
common::Result<std::vector<Advertiser>> LoadAdvertisersCsv(
    const std::string& path);

/// Saves contracts in the format accepted by LoadAdvertisersCsv.
common::Status SaveAdvertisersCsv(const std::string& path,
                                  const std::vector<Advertiser>& advertisers);

}  // namespace mroam::market

#endif  // MROAM_MARKET_CONTRACT_IO_H_
