#include "market/workload.h"

#include <algorithm>
#include <cmath>

namespace mroam::market {

using common::Result;
using common::Status;

int32_t NumAdvertisers(const WorkloadConfig& config) {
  if (config.avg_individual_demand_ratio <= 0.0) return 1;
  return std::max(
      1, static_cast<int32_t>(
             std::llround(config.alpha / config.avg_individual_demand_ratio)));
}

Result<std::vector<Advertiser>> GenerateAdvertisers(
    int64_t supply, const WorkloadConfig& config, common::Rng* rng) {
  if (supply <= 0) {
    return Status::InvalidArgument("supply must be positive, got " +
                                   std::to_string(supply));
  }
  if (config.alpha <= 0.0) {
    return Status::InvalidArgument("alpha must be positive");
  }
  if (config.avg_individual_demand_ratio <= 0.0 ||
      config.avg_individual_demand_ratio > 1.0) {
    return Status::InvalidArgument(
        "avg_individual_demand_ratio must be in (0, 1]");
  }
  if (config.omega_min > config.omega_max || config.omega_min <= 0.0) {
    return Status::InvalidArgument("invalid omega range");
  }
  if (config.epsilon_min > config.epsilon_max || config.epsilon_min <= 0.0) {
    return Status::InvalidArgument("invalid epsilon range");
  }

  const int32_t count = NumAdvertisers(config);
  const double base_demand = static_cast<double>(supply) *
                             config.avg_individual_demand_ratio;
  std::vector<Advertiser> advertisers;
  advertisers.reserve(count);
  for (int32_t i = 0; i < count; ++i) {
    Advertiser a;
    a.id = i;
    double omega = rng->UniformDouble(config.omega_min, config.omega_max);
    a.demand = std::max<int64_t>(
        1, static_cast<int64_t>(std::floor(omega * base_demand)));
    double epsilon =
        rng->UniformDouble(config.epsilon_min, config.epsilon_max);
    a.payment = std::max(
        1.0, std::floor(epsilon * static_cast<double>(a.demand)));
    advertisers.push_back(a);
  }
  return advertisers;
}

int64_t GlobalDemand(const std::vector<Advertiser>& advertisers) {
  int64_t total = 0;
  for (const Advertiser& a : advertisers) total += a.demand;
  return total;
}

double TotalPayment(const std::vector<Advertiser>& advertisers) {
  double total = 0.0;
  for (const Advertiser& a : advertisers) total += a.payment;
  return total;
}

}  // namespace mroam::market
