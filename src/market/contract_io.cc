#include "market/contract_io.h"

#include <algorithm>

#include "common/csv.h"
#include "common/strings.h"

namespace mroam::market {

using common::CsvRow;
using common::Result;
using common::Status;

Result<std::vector<Advertiser>> LoadAdvertisersCsv(const std::string& path) {
  MROAM_ASSIGN_OR_RETURN(std::vector<CsvRow> rows,
                         common::ReadCsvFile(path, /*expected_columns=*/3));
  std::vector<Advertiser> advertisers;
  advertisers.reserve(rows.size());
  for (const CsvRow& row : rows) {
    Advertiser a;
    MROAM_ASSIGN_OR_RETURN(int64_t id, common::ParseInt64(row[0]));
    MROAM_ASSIGN_OR_RETURN(a.demand, common::ParseInt64(row[1]));
    MROAM_ASSIGN_OR_RETURN(a.payment, common::ParseDouble(row[2]));
    a.id = static_cast<AdvertiserId>(id);
    if (a.demand <= 0) {
      return Status::DataLoss("advertiser " + std::to_string(id) +
                              " has non-positive demand");
    }
    if (a.payment <= 0.0) {
      return Status::DataLoss("advertiser " + std::to_string(id) +
                              " has non-positive payment");
    }
    advertisers.push_back(a);
  }
  std::sort(advertisers.begin(), advertisers.end(),
            [](const Advertiser& a, const Advertiser& b) {
              return a.id < b.id;
            });
  for (size_t i = 0; i < advertisers.size(); ++i) {
    if (advertisers[i].id != static_cast<AdvertiserId>(i)) {
      return Status::DataLoss("advertiser ids are not dense: expected " +
                              std::to_string(i) + ", found " +
                              std::to_string(advertisers[i].id));
    }
  }
  return advertisers;
}

Status SaveAdvertisersCsv(const std::string& path,
                          const std::vector<Advertiser>& advertisers) {
  std::vector<CsvRow> rows;
  rows.reserve(advertisers.size() + 1);
  rows.push_back({"# id", "demand", "payment"});
  for (const Advertiser& a : advertisers) {
    rows.push_back({std::to_string(a.id), std::to_string(a.demand),
                    common::FormatDouble(a.payment, 2)});
  }
  return common::WriteCsvFile(path, rows);
}

}  // namespace mroam::market
