#ifndef MROAM_MARKET_WORKLOAD_H_
#define MROAM_MARKET_WORKLOAD_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "market/advertiser.h"

namespace mroam::market {

/// Parameters of the paper's workload setup (§7.1.3, Table 6).
///
/// The number of advertisers is derived: |A| = round(alpha / p); each
/// advertiser's demand is I_i = floor(omega * I* * p) with
/// omega ~ U[omega_min, omega_max], and payment L_i = floor(epsilon * I_i)
/// with epsilon ~ U[epsilon_min, epsilon_max].
struct WorkloadConfig {
  /// Demand-supply ratio alpha = I^A / I*. Paper grid: 0.4..1.2,
  /// default 1.0.
  double alpha = 1.0;
  /// Average-individual demand ratio p = (I^A/|A|) / I*. Paper grid:
  /// 0.01..0.20, default 0.05.
  double avg_individual_demand_ratio = 0.05;
  double omega_min = 0.8;    ///< demand fluctuation (paper: U[0.8, 1.2])
  double omega_max = 1.2;
  double epsilon_min = 0.9;  ///< payment fluctuation (paper: U[0.9, 1.1])
  double epsilon_max = 1.1;
};

/// Derived advertiser count |A| = round(alpha / p); at least 1.
int32_t NumAdvertisers(const WorkloadConfig& config);

/// Generates the advertiser set for a host whose supply is I* = `supply`.
/// Fails on non-positive supply or out-of-range config values. Every
/// generated demand is at least 1.
common::Result<std::vector<Advertiser>> GenerateAdvertisers(
    int64_t supply, const WorkloadConfig& config, common::Rng* rng);

/// Sum of demands, i.e. the realized global demand I^A.
int64_t GlobalDemand(const std::vector<Advertiser>& advertisers);

/// Sum of payments (the revenue ceiling; also sum_i [R(S_i) + R'(S_i)]).
double TotalPayment(const std::vector<Advertiser>& advertisers);

}  // namespace mroam::market

#endif  // MROAM_MARKET_WORKLOAD_H_
