#ifndef MROAM_CINDEX_POSTINGS_H_
#define MROAM_CINDEX_POSTINGS_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace mroam::cindex {

/// Block-compressed sorted posting lists (DESIGN.md §7).
///
/// Every sorted list of int32 values is cut into blocks of 512 consecutive
/// values (values v with the same v >> 9). Each block is a 4-byte packed
/// header followed by one of two payloads:
///
///   - sparse: LEB128 varints — first value minus the block base, then
///     (gap - 1) deltas between consecutive values;
///   - dense: 64 bytes of bitmap (8 little-endian u64 words; bit i of
///     word w represents value base + w*64 + i).
///
/// A block is stored dense exactly when its sparse encoding would reach
/// the dense payload size (64 bytes), so the choice is deterministic and
/// re-encoding a decoded blob is bit-identical — the property the v2
/// snapshot loader uses as its round-trip check.

/// log2 of the number of values a block spans.
inline constexpr uint32_t kBlockSpanBits = 9;
/// Values per block (512).
inline constexpr uint32_t kBlockSpan = 1u << kBlockSpanBits;
/// 64-bit words in a dense block payload.
inline constexpr uint32_t kBlockWords = kBlockSpan / 64;
/// Bytes in a dense block payload.
inline constexpr uint32_t kBlockDenseBytes = kBlockWords * 8;
/// Bits of the packed header holding the block key (value >> 9).
inline constexpr uint32_t kBlockKeyBits = 20;
inline constexpr uint32_t kBlockKeyMask = (1u << kBlockKeyBits) - 1;
/// The header stores (count - 1) in 9 bits above the key.
inline constexpr uint32_t kBlockCountShift = kBlockKeyBits;
inline constexpr uint32_t kBlockCountMask = (kBlockSpan - 1)
                                            << kBlockCountShift;
/// Top bit marks a dense (bitmap) payload. Bits 29–30 are reserved and
/// must be zero.
inline constexpr uint32_t kBlockDenseFlag = 0x80000000u;
inline constexpr uint32_t kBlockReservedMask =
    ~(kBlockKeyMask | kBlockCountMask | kBlockDenseFlag);
/// Largest representable universe: 2^20 block keys x 512 values.
inline constexpr int64_t kMaxUniverse = int64_t{kBlockSpan} << kBlockKeyBits;

/// Blob framing: "CPB1" magic, fixed header, per-list directory, data.
inline constexpr uint32_t kPostingsMagic = 0x31425043u;  // "CPB1" LE
inline constexpr size_t kPostingsHeaderBytes = 32;
inline constexpr size_t kPostingsDirEntryBytes = 16;
/// The data area starts at the next multiple of this after the directory.
inline constexpr size_t kPostingsAlignment = 64;

/// Unaligned little-endian loads. Byte shifts compile to a single mov on
/// little-endian targets but stay correct (and UB-free) everywhere.
inline uint32_t LoadLE32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline uint64_t LoadLE64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadLE32(p)) |
         (static_cast<uint64_t>(LoadLE32(p + 4)) << 32);
}

/// Number of blocks spanned by a universe of `universe` values.
inline uint32_t NumBlocks(int32_t universe) {
  return (static_cast<uint32_t>(universe) + kBlockSpan - 1) >> kBlockSpanBits;
}

/// Size, in u64 words, of a caller-side bitmap compatible with the dense
/// kernels: whole blocks (NumBlocks * 8 words), NOT ceil(universe / 64).
/// Dense-block kernels read all 8 words of a block unconditionally, so the
/// bitmap must be padded out to the block boundary past the universe.
inline size_t BitmapWords(int32_t universe) {
  return static_cast<size_t>(NumBlocks(universe)) * kBlockWords;
}

/// Whether FromBytes copies the input into owned storage or borrows the
/// caller's buffer (which must then outlive the CompressedPostings — the
/// mmap serving path).
enum class Ownership { kCopy, kBorrow };

/// An immutable set of block-compressed sorted posting lists over a common
/// value universe. The in-memory layout IS the wire layout (`bytes()`), so
/// a blob read back with FromBytes(..., kBorrow) serves lookups zero-copy.
class CompressedPostings {
 public:
  CompressedPostings() = default;

  /// Value-copy keeps owned blobs self-contained: an owning copy re-points
  /// its view into its own storage; a borrowed copy shares the external
  /// buffer (both remain valid as long as that buffer does).
  CompressedPostings(const CompressedPostings& other) { *this = other; }
  CompressedPostings& operator=(const CompressedPostings& other) {
    if (this == &other) return *this;
    owned_ = other.owned_;
    bytes_ = owned_.empty() ? other.bytes_ : std::string_view(owned_);
    Bind();
    return *this;
  }
  CompressedPostings(CompressedPostings&& other) noexcept { *this = std::move(other); }
  CompressedPostings& operator=(CompressedPostings&& other) noexcept {
    if (this == &other) return *this;
    bool owning = !other.owned_.empty();
    owned_ = std::move(other.owned_);
    bytes_ = owning ? std::string_view(owned_) : other.bytes_;
    Bind();
    other.owned_.clear();
    other.bytes_ = {};
    other.Bind();
    return *this;
  }

  /// Compresses `lists` (each sorted ascending, duplicate-free, values in
  /// [0, universe)) into an owned blob. CHECK-fails on violated
  /// preconditions — callers hold InfluenceIndex invariants already.
  static CompressedPostings Build(const std::vector<std::vector<int32_t>>& lists,
                                  int32_t universe);

  /// Parses (and fully validates) a blob previously produced by Build.
  /// kBorrow keeps `bytes` as the backing store; kCopy duplicates it.
  static common::Result<CompressedPostings> FromBytes(std::string_view bytes,
                                                      Ownership ownership);

  /// True when no blob is bound (default-constructed / moved-from).
  bool empty() const { return bytes_.empty(); }

  uint32_t num_lists() const { return num_lists_; }
  int32_t universe() const { return universe_; }
  /// Sum of ListSize over all lists.
  uint64_t total_count() const { return total_count_; }
  /// Number of values in `list`.
  uint32_t ListSize(int32_t list) const {
    return LoadLE32(DirEntry(list) + 8);
  }
  /// Number of blocks encoding `list`.
  uint32_t ListBlocks(int32_t list) const {
    return LoadLE32(DirEntry(list) + 12);
  }
  /// The wire bytes; valid input for FromBytes on any machine.
  std::string_view bytes() const { return bytes_; }

  /// Calls fn(int32_t value) for every value of `list` in ascending order.
  /// Unchecked hot path: the blob was validated at construction.
  template <typename Fn>
  void ForEach(int32_t list, Fn&& fn) const {
    const uint8_t* entry = DirEntry(list);
    const uint8_t* p = data_ + LoadLE64(entry);
    const uint32_t blocks = LoadLE32(entry + 12);
    for (uint32_t b = 0; b < blocks; ++b) {
      const uint32_t header = LoadLE32(p);
      p += 4;
      const int32_t base = static_cast<int32_t>(header & kBlockKeyMask)
                           << kBlockSpanBits;
      if (header & kBlockDenseFlag) {
        for (uint32_t w = 0; w < kBlockWords; ++w) {
          uint64_t word = LoadLE64(p + w * 8);
          const int32_t word_base = base + static_cast<int32_t>(w) * 64;
          while (word != 0) {
            fn(word_base + std::countr_zero(word));
            word &= word - 1;
          }
        }
        p += kBlockDenseBytes;
      } else {
        const uint32_t count =
            ((header & kBlockCountMask) >> kBlockCountShift) + 1;
        uint32_t raw;
        p = ReadVarint(p, &raw);
        int32_t v = base + static_cast<int32_t>(raw);
        fn(v);
        for (uint32_t i = 1; i < count; ++i) {
          p = ReadVarint(p, &raw);
          v += static_cast<int32_t>(raw) + 1;
          fn(v);
        }
      }
    }
  }

  /// Appends the decoded values of `list` to `*out` in ascending order.
  void Decode(int32_t list, std::vector<int32_t>* out) const;

  /// Counts values of `list` whose bit is NOT set in `bits`. `bits` must
  /// hold BitmapWords(universe()) words (block-padded; see BitmapWords).
  /// This is the popcount kernel behind threshold-1 MarginalGain.
  int64_t CountAbsent(int32_t list, const uint64_t* bits) const;

  /// Full bounds-checked decode walk over the entire blob: framing sizes,
  /// directory contiguity, strictly increasing block keys, per-block
  /// counts, ascending in-universe values, dense popcounts matching the
  /// headers, reserved bits zero, and list/total counts consistent.
  /// Returns DataLoss naming the first violation.
  common::Status Validate() const;

 private:
  /// Re-derives the cached header fields and data pointer from bytes_.
  void Bind();

  const uint8_t* Data() const {
    return reinterpret_cast<const uint8_t*>(bytes_.data());
  }
  const uint8_t* DirEntry(int32_t list) const {
    MROAM_DCHECK(list >= 0 &&
                 static_cast<uint32_t>(list) < num_lists_);
    return Data() + kPostingsHeaderBytes +
           static_cast<size_t>(list) * kPostingsDirEntryBytes;
  }

  /// Unchecked LEB128 read (hot path; blob validated at construction).
  static const uint8_t* ReadVarint(const uint8_t* p, uint32_t* out) {
    uint32_t value = *p & 0x7f;
    uint32_t shift = 7;
    while (*p & 0x80) {
      ++p;
      value |= static_cast<uint32_t>(*p & 0x7f) << shift;
      shift += 7;
    }
    *out = value;
    return p + 1;
  }

  std::string owned_;       ///< backing bytes when owning; empty if borrowed
  std::string_view bytes_;  ///< the blob (== owned_ when owning)
  // Cached from the header by Bind().
  const uint8_t* data_ = nullptr;  ///< start of the block-stream data area
  uint32_t num_lists_ = 0;
  int32_t universe_ = 0;
  uint64_t total_count_ = 0;
  uint64_t data_bytes_ = 0;

  friend class PostingsBuilderAccess;  // test hook
};

}  // namespace mroam::cindex

#endif  // MROAM_CINDEX_POSTINGS_H_
