#ifndef MROAM_CINDEX_COMPRESSED_COUNTER_H_
#define MROAM_CINDEX_COMPRESSED_COUNTER_H_

#include <cstdint>
#include <vector>

#include "cindex/postings.h"
#include "common/logging.h"

namespace mroam::cindex {

/// influence::CoverageCounter's arithmetic over compressed posting lists:
/// per-trajectory coverage counts of one billboard set, the number of
/// trajectories at or past the impression threshold, and the marginal
/// gain/loss primitives the solvers evaluate in their inner loops.
///
/// Bit-identical to the plain counter by construction — every operation
/// decodes the same sorted trajectory ids the plain lists hold and runs
/// the same integer updates. The one kernel-level divergence is
/// threshold-1 MarginalGain, which answers from a covered-trajectory
/// bitmap via the dense popcount kernel (CountAbsent); "count == 0" and
/// "bit clear" are the same predicate, so the result is still exact.
///
/// Epoch bookkeeping stays in the influence::CoverageCounter wrapper —
/// this class only maintains counts and influence.
class CompressedCoverageCounter {
 public:
  /// `covered` maps billboard -> sorted trajectory lists and must outlive
  /// the counter. Its universe is the trajectory count.
  explicit CompressedCoverageCounter(const CompressedPostings* covered,
                                     uint16_t impression_threshold = 1)
      : covered_(covered),
        threshold_(impression_threshold),
        counts_(static_cast<size_t>(covered->universe()), 0),
        covered_bits_(BitmapWords(covered->universe()), 0) {
    MROAM_CHECK(impression_threshold >= 1);
  }

  void Add(int32_t o) {
    covered_->ForEach(o, [this](int32_t t) {
      MROAM_DCHECK(counts_[t] < UINT16_MAX);
      if (++counts_[t] == 1) {
        covered_bits_[static_cast<uint32_t>(t) >> 6] |=
            uint64_t{1} << (t & 63);
      }
      if (counts_[t] == threshold_) ++influence_;
    });
  }

  void Remove(int32_t o) {
    covered_->ForEach(o, [this](int32_t t) {
      MROAM_DCHECK(counts_[t] > 0);
      if (counts_[t]-- == threshold_) --influence_;
      if (counts_[t] == 0) {
        covered_bits_[static_cast<uint32_t>(t) >> 6] &=
            ~(uint64_t{1} << (t & 63));
      }
    });
  }

  int64_t MarginalGain(int32_t o) const {
    if (threshold_ == 1) {
      // counts_[t] == 0 iff bit t is clear: count o's uncovered
      // trajectories with the block popcount kernel.
      return covered_->CountAbsent(o, covered_bits_.data());
    }
    int64_t gain = 0;
    const uint16_t at_gain = threshold_ - 1;
    covered_->ForEach(o, [this, at_gain, &gain](int32_t t) {
      if (counts_[t] == at_gain) ++gain;
    });
    return gain;
  }

  int64_t MarginalLoss(int32_t o) const {
    int64_t loss = 0;
    covered_->ForEach(o, [this, &loss](int32_t t) {
      if (counts_[t] == threshold_) ++loss;
    });
    return loss;
  }

  /// I(S \ {rem} ∪ {add}) - I(S \ {rem}) without mutation; the same
  /// merge-pointer pass as the plain counter, with `rem`'s list decoded
  /// into reusable scratch (ForEach yields ascending order, so the merge
  /// invariant holds without a sort).
  int64_t MarginalGainAfterRemove(int32_t add, int32_t rem) const;

  uint16_t CountOf(int32_t t) const { return counts_[t]; }
  int64_t influence() const { return influence_; }
  uint16_t impression_threshold() const { return threshold_; }

  void Clear() {
    std::fill(counts_.begin(), counts_.end(), 0);
    std::fill(covered_bits_.begin(), covered_bits_.end(), 0);
    influence_ = 0;
  }

  const CompressedPostings& postings() const { return *covered_; }

 private:
  const CompressedPostings* covered_;
  uint16_t threshold_;
  std::vector<uint16_t> counts_;
  /// Bit t set iff counts_[t] > 0; block-padded (BitmapWords) for the
  /// dense kernel. Maintained on every Add/Remove — cheap relative to the
  /// count update it rides on.
  std::vector<uint64_t> covered_bits_;
  int64_t influence_ = 0;
  mutable std::vector<int32_t> rem_scratch_;  ///< MarginalGainAfterRemove
};

}  // namespace mroam::cindex

#endif  // MROAM_CINDEX_COMPRESSED_COUNTER_H_
