#include "cindex/compressed_counter.h"

#include <algorithm>

namespace mroam::cindex {

int64_t CompressedCoverageCounter::MarginalGainAfterRemove(int32_t add,
                                                           int32_t rem) const {
  // Same rule as the plain counter: trajectory t newly reaches the
  // threshold through `add` iff, after removing `rem`, its count is
  // threshold-1 — counts_[t] == threshold-1 (rem not covering t) or
  // counts_[t] == threshold (rem covering t).
  rem_scratch_.clear();
  covered_->Decode(rem, &rem_scratch_);
  const std::vector<int32_t>& rem_list = rem_scratch_;
  const uint16_t at_gain = threshold_ - 1;
  int64_t gain = 0;
  size_t ri = 0;
  covered_->ForEach(add, [&](int32_t t) {
    const uint16_t count = counts_[t];
    if (count != at_gain && count != threshold_) return;
    while (ri < rem_list.size() && rem_list[ri] < t) ++ri;
    const bool rem_covers = ri < rem_list.size() && rem_list[ri] == t;
    if (static_cast<int>(count) - (rem_covers ? 1 : 0) ==
        static_cast<int>(at_gain)) {
      ++gain;
    }
  });
  return gain;
}

}  // namespace mroam::cindex
