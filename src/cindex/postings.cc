#include "cindex/postings.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <string>

namespace mroam::cindex {

namespace {

void PutLE32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void PutLE64(std::string* out, uint64_t v) {
  PutLE32(out, static_cast<uint32_t>(v & 0xffffffffu));
  PutLE32(out, static_cast<uint32_t>(v >> 32));
}

void PutVarint(std::string* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Encodes one block's values (all sharing `key`, sorted ascending) and
/// appends header + payload to `*out`. Dense exactly when the sparse
/// encoding reaches the dense payload size, so the choice — and therefore
/// the whole blob — is a pure function of the input lists.
void EncodeBlock(uint32_t key, const int32_t* values, uint32_t count,
                 std::string* out, std::string* scratch) {
  const int32_t base = static_cast<int32_t>(key << kBlockSpanBits);
  scratch->clear();
  PutVarint(scratch, static_cast<uint32_t>(values[0] - base));
  for (uint32_t i = 1; i < count; ++i) {
    PutVarint(scratch,
              static_cast<uint32_t>(values[i] - values[i - 1]) - 1);
  }
  const bool dense = scratch->size() >= kBlockDenseBytes;
  uint32_t header = key | ((count - 1) << kBlockCountShift);
  if (dense) header |= kBlockDenseFlag;
  PutLE32(out, header);
  if (dense) {
    uint64_t words[kBlockWords] = {};
    for (uint32_t i = 0; i < count; ++i) {
      const uint32_t off = static_cast<uint32_t>(values[i] - base);
      words[off >> 6] |= uint64_t{1} << (off & 63);
    }
    for (uint32_t w = 0; w < kBlockWords; ++w) PutLE64(out, words[w]);
  } else {
    out->append(*scratch);
  }
}

/// Bounds-checked LEB128 read for Validate. Returns nullptr on overrun or
/// an over-long (> 32-bit) encoding.
const uint8_t* ReadVarintChecked(const uint8_t* p, const uint8_t* end,
                                 uint32_t* out) {
  uint32_t value = 0;
  uint32_t shift = 0;
  while (true) {
    if (p == end || shift > 28) return nullptr;
    const uint8_t byte = *p++;
    value |= static_cast<uint32_t>(byte & 0x7f) << shift;
    if (!(byte & 0x80)) break;
    shift += 7;
  }
  *out = value;
  return p;
}

common::Status Corrupt(const std::string& what) {
  return common::Status::DataLoss("compressed postings: " + what);
}

}  // namespace

CompressedPostings CompressedPostings::Build(
    const std::vector<std::vector<int32_t>>& lists, int32_t universe) {
  MROAM_CHECK(universe >= 0 && int64_t{universe} <= kMaxUniverse);
  std::string blob;
  blob.reserve(kPostingsHeaderBytes +
               lists.size() * kPostingsDirEntryBytes);

  uint64_t total_count = 0;
  std::string data;
  std::string dir;
  std::string scratch;
  for (const std::vector<int32_t>& list : lists) {
    const uint64_t offset = data.size();
    uint32_t blocks = 0;
    size_t i = 0;
    while (i < list.size()) {
      const int32_t v = list[i];
      MROAM_CHECK(v >= 0 && v < universe);
      MROAM_CHECK(i == 0 || list[i - 1] < v);  // sorted, duplicate-free
      const uint32_t key = static_cast<uint32_t>(v) >> kBlockSpanBits;
      size_t j = i + 1;
      while (j < list.size() &&
             (static_cast<uint32_t>(list[j]) >> kBlockSpanBits) == key) {
        MROAM_CHECK(list[j - 1] < list[j]);
        ++j;
      }
      EncodeBlock(key, list.data() + i, static_cast<uint32_t>(j - i), &data,
                  &scratch);
      ++blocks;
      i = j;
    }
    PutLE64(&dir, offset);
    PutLE32(&dir, static_cast<uint32_t>(list.size()));
    PutLE32(&dir, blocks);
    total_count += list.size();
  }

  PutLE32(&blob, kPostingsMagic);
  PutLE32(&blob, static_cast<uint32_t>(lists.size()));
  PutLE32(&blob, static_cast<uint32_t>(universe));
  PutLE32(&blob, 0);  // reserved
  PutLE64(&blob, total_count);
  PutLE64(&blob, data.size());
  blob.append(dir);
  blob.resize((blob.size() + kPostingsAlignment - 1) / kPostingsAlignment *
                  kPostingsAlignment,
              '\0');
  blob.append(data);

  CompressedPostings postings;
  postings.owned_ = std::move(blob);
  postings.bytes_ = postings.owned_;
  postings.Bind();
  MROAM_DCHECK(postings.Validate().ok());
  return postings;
}

common::Result<CompressedPostings> CompressedPostings::FromBytes(
    std::string_view bytes, Ownership ownership) {
  CompressedPostings postings;
  if (ownership == Ownership::kCopy) {
    postings.owned_.assign(bytes.data(), bytes.size());
    postings.bytes_ = postings.owned_;
  } else {
    postings.bytes_ = bytes;
  }
  postings.Bind();
  MROAM_RETURN_IF_ERROR(postings.Validate());
  return postings;
}

void CompressedPostings::Bind() {
  data_ = nullptr;
  num_lists_ = 0;
  universe_ = 0;
  total_count_ = 0;
  data_bytes_ = 0;
  if (bytes_.size() < kPostingsHeaderBytes) return;
  const uint8_t* p = Data();
  if (LoadLE32(p) != kPostingsMagic) return;
  num_lists_ = LoadLE32(p + 4);
  universe_ = static_cast<int32_t>(LoadLE32(p + 8));
  total_count_ = LoadLE64(p + 16);
  data_bytes_ = LoadLE64(p + 24);
  const size_t dir_end = kPostingsHeaderBytes +
                         static_cast<size_t>(num_lists_) *
                             kPostingsDirEntryBytes;
  const size_t data_start = (dir_end + kPostingsAlignment - 1) /
                            kPostingsAlignment * kPostingsAlignment;
  if (bytes_.size() >= data_start) data_ = Data() + data_start;
}

void CompressedPostings::Decode(int32_t list, std::vector<int32_t>* out) const {
  out->reserve(out->size() + ListSize(list));
  ForEach(list, [out](int32_t v) { out->push_back(v); });
}

int64_t CompressedPostings::CountAbsent(int32_t list,
                                        const uint64_t* bits) const {
  const uint8_t* entry = DirEntry(list);
  const uint8_t* p = data_ + LoadLE64(entry);
  const uint32_t blocks = LoadLE32(entry + 12);
  int64_t absent = 0;
  for (uint32_t b = 0; b < blocks; ++b) {
    const uint32_t header = LoadLE32(p);
    p += 4;
    const uint32_t key = header & kBlockKeyMask;
    if (header & kBlockDenseFlag) {
      const uint64_t* block_bits = bits + static_cast<size_t>(key) * kBlockWords;
      for (uint32_t w = 0; w < kBlockWords; ++w) {
        absent += std::popcount(LoadLE64(p + w * 8) & ~block_bits[w]);
      }
      p += kBlockDenseBytes;
    } else {
      const uint32_t count =
          ((header & kBlockCountMask) >> kBlockCountShift) + 1;
      const int32_t base = static_cast<int32_t>(key << kBlockSpanBits);
      uint32_t raw;
      p = ReadVarint(p, &raw);
      uint32_t v = static_cast<uint32_t>(base) + raw;
      absent += static_cast<int64_t>(~(bits[v >> 6] >> (v & 63)) & 1);
      for (uint32_t i = 1; i < count; ++i) {
        p = ReadVarint(p, &raw);
        v += raw + 1;
        absent += static_cast<int64_t>(~(bits[v >> 6] >> (v & 63)) & 1);
      }
    }
  }
  return absent;
}

common::Status CompressedPostings::Validate() const {
  if (bytes_.size() < kPostingsHeaderBytes) {
    return Corrupt("blob shorter than its fixed header");
  }
  const uint8_t* head = Data();
  if (LoadLE32(head) != kPostingsMagic) return Corrupt("bad magic");
  if (LoadLE32(head + 12) != 0) return Corrupt("reserved header word not zero");
  if (int64_t{universe_} > kMaxUniverse || universe_ < 0) {
    return Corrupt("universe exceeds the representable key range");
  }
  const size_t dir_end = kPostingsHeaderBytes +
                         static_cast<size_t>(num_lists_) *
                             kPostingsDirEntryBytes;
  const size_t data_start = (dir_end + kPostingsAlignment - 1) /
                            kPostingsAlignment * kPostingsAlignment;
  if (bytes_.size() != data_start + data_bytes_) {
    return Corrupt("blob size disagrees with header data_bytes");
  }
  for (size_t i = dir_end; i < data_start; ++i) {
    if (head[i] != 0) return Corrupt("directory padding not zero");
  }

  const uint8_t* const data = head + data_start;
  const uint8_t* const end = data + data_bytes_;
  uint64_t running_offset = 0;
  uint64_t running_total = 0;
  for (uint32_t list = 0; list < num_lists_; ++list) {
    const uint8_t* entry = head + kPostingsHeaderBytes +
                           static_cast<size_t>(list) * kPostingsDirEntryBytes;
    const uint64_t offset = LoadLE64(entry);
    const uint32_t count = LoadLE32(entry + 8);
    const uint32_t blocks = LoadLE32(entry + 12);
    if (offset != running_offset) {
      return Corrupt("directory offsets not contiguous");
    }
    const uint8_t* p = data + offset;
    int64_t prev = -1;
    uint64_t decoded = 0;
    int64_t prev_key = -1;
    for (uint32_t b = 0; b < blocks; ++b) {
      if (end - p < 4) return Corrupt("block header past the data area");
      const uint32_t header = LoadLE32(p);
      p += 4;
      if (header & kBlockReservedMask) {
        return Corrupt("reserved block-header bits set");
      }
      const uint32_t key = header & kBlockKeyMask;
      if (static_cast<int64_t>(key) <= prev_key) {
        return Corrupt("block keys not strictly increasing");
      }
      prev_key = key;
      const uint32_t block_count =
          ((header & kBlockCountMask) >> kBlockCountShift) + 1;
      const int64_t base = int64_t{key} << kBlockSpanBits;
      if (header & kBlockDenseFlag) {
        if (end - p < static_cast<ptrdiff_t>(kBlockDenseBytes)) {
          return Corrupt("dense payload past the data area");
        }
        uint32_t pop = 0;
        int64_t highest = -1;
        for (uint32_t w = 0; w < kBlockWords; ++w) {
          const uint64_t word = LoadLE64(p + w * 8);
          pop += static_cast<uint32_t>(std::popcount(word));
          if (word != 0) {
            highest = base + w * 64 + (63 - std::countl_zero(word));
          }
        }
        if (pop != block_count) {
          return Corrupt("dense popcount disagrees with the block header");
        }
        if (highest >= universe_) {
          return Corrupt("dense bit set past the universe");
        }
        prev = highest;
        p += kBlockDenseBytes;
      } else {
        int64_t v = base;
        for (uint32_t i = 0; i < block_count; ++i) {
          uint32_t raw;
          const uint8_t* next = ReadVarintChecked(p, end, &raw);
          if (next == nullptr) return Corrupt("truncated or over-long varint");
          p = next;
          v += (i == 0) ? raw : (int64_t{raw} + 1);
          if (v >= base + kBlockSpan) {
            return Corrupt("sparse value escapes its block span");
          }
          if (v >= universe_) return Corrupt("sparse value past the universe");
          prev = v;
        }
      }
      decoded += block_count;
    }
    if (decoded != count) {
      return Corrupt("decoded count disagrees with the directory");
    }
    (void)prev;
    running_offset = static_cast<uint64_t>(p - data);
    running_total += count;
  }
  if (running_offset != data_bytes_) {
    return Corrupt("data area larger than the sum of its lists");
  }
  if (running_total != total_count_) {
    return Corrupt("total count disagrees with the header");
  }
  return common::Status::Ok();
}

}  // namespace mroam::cindex
