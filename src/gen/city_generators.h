#ifndef MROAM_GEN_CITY_GENERATORS_H_
#define MROAM_GEN_CITY_GENERATORS_H_

#include <cstdint>

#include "common/rng.h"
#include "model/dataset.h"

namespace mroam::gen {

/// Generator for an NYC-like taxi-mode dataset (DESIGN.md §4).
///
/// The paper's NYC data (LAMAR billboards + TLC taxi trips) is proprietary
/// or requires heavy preprocessing. TLC trip records carry only the pickup
/// and dropoff locations, so a trajectory here is an OD pair: two points
/// drawn from a popularity mixture (compact hotspots — Times-Square
/// analogues — a broad hot core, and a uniform floor), snapped to a street
/// lattice. Billboards follow the same traffic density. This yields the
/// properties §7 of the paper relies on:
///  * heavy-tailed billboard influence (hotspot boards see a large share
///    of all pickups/dropoffs — Fig 1a);
///  * high coverage overlap among top billboards (they crowd the same few
///    hotspot blocks — slow-rising Fig 1b curve);
///  * supply I* a small multiple of |T|, so the paper's p grid (1%-20%)
///    stays satisfiable at low alpha.
struct NycLikeConfig {
  int32_t num_billboards = 1462;   ///< paper's Table 5 value
  int32_t num_trajectories = 60000;
  double width_m = 8000.0;         ///< Manhattan-ish extent (E-W)
  double height_m = 16000.0;       ///< (N-S)
  double avenue_spacing_m = 260.0; ///< N-S road spacing (x direction)
  double street_spacing_m = 130.0; ///< E-W road spacing (y direction)
  /// Trip-endpoint mixture masses (remainder is the uniform floor).
  double hotspot_mass = 0.3;       ///< P(endpoint near a hotspot)
  int32_t num_hotspots = 6;
  double hotspot_sigma_m = 400.0;  ///< hotspot radius
  double core_mass = 0.4;          ///< P(endpoint in the broad core)
  double core_sigma_m = 1800.0;    ///< hot-core Gaussian radius
  double trip_sigma_x_m = 1800.0;  ///< E-W spread of trip offsets
  double trip_sigma_y_m = 2400.0;  ///< N-S spread of trip offsets
  double taxi_speed_mps = 5.1;     ///< used for travel time (Table 5)
  /// Billboard placement weight exponent over local popularity: 1.0 makes
  /// billboards follow traffic density exactly; larger values concentrate
  /// them further.
  double billboard_popularity_exponent = 1.0;
  double billboard_jitter_m = 20.0;  ///< scatter around lattice nodes
};

/// Generates an NYC-like dataset. Deterministic given `rng`'s state.
model::Dataset GenerateNycLike(const NycLikeConfig& config,
                               common::Rng* rng);

/// Generator for an SG-like bus-mode dataset (DESIGN.md §4).
///
/// The paper's SG data (EZ-link smart cards + JCDecaux bus-stop panels) is
/// likewise gated. We synthesize a bus network:
///  * routes crossing the city with stops every ~400 m; every stop hosts
///    one billboard (paper: each bus stop is a billboard location);
///  * trajectories = rides on one route, recorded stop-to-stop — so a ride
///    only "meets" stops it passes, giving near-uniform influence (Fig 1a
///    purple) and low overlap (fast-rising Fig 1b curve);
///  * with points only at stops, influence is insensitive to lambda until
///    lambda reaches the scale of route intersections (Fig 12's SG shape).
struct SgLikeConfig {
  int32_t num_billboards = 4092;   ///< paper's Table 5 value (= #stops)
  int32_t num_trajectories = 80000;
  double width_m = 25000.0;
  double height_m = 15000.0;
  double stop_spacing_m = 400.0;
  double stop_spacing_jitter_m = 60.0;
  /// Routes reuse an existing stop (interchange) when they pass within
  /// this radius of it, like real bus networks sharing stops. Keeps
  /// distinct stops at least this far apart, which is why SG influence is
  /// insensitive to lambda until lambda approaches this scale (Fig 12).
  double stop_merge_radius_m = 150.0;
  double route_min_length_m = 8000.0;
  double route_max_length_m = 20000.0;
  /// Mean number of stops ridden past per trip (geometric-ish); with
  /// 400 m spacing, 10.5 stops ~= the paper's 4.2 km mean trip.
  double mean_ride_stops = 10.5;
  double bus_speed_mps = 5.5;      ///< plus dwell time per stop below
  double dwell_seconds_per_stop = 25.0;
  /// Skew of route ridership (weights ~ U[1, ridership_skew]); mild by
  /// default so influence stays more uniform than NYC (Fig 1a purple).
  double ridership_skew = 1.8;
};

/// Generates an SG-like dataset. Deterministic given `rng`'s state.
model::Dataset GenerateSgLike(const SgLikeConfig& config, common::Rng* rng);

}  // namespace mroam::gen

#endif  // MROAM_GEN_CITY_GENERATORS_H_
