#include "gen/city_generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "geo/grid_index.h"
#include "geo/polyline.h"

namespace mroam::gen {

namespace {

using common::Rng;
using geo::Point;

double Clamp(double v, double lo, double hi) {
  return std::min(std::max(v, lo), hi);
}

/// Snaps a coordinate to the nearest multiple of `spacing` within [0, max].
double Snap(double v, double spacing, double max) {
  double snapped = std::round(v / spacing) * spacing;
  return Clamp(snapped, 0.0, std::floor(max / spacing) * spacing);
}

/// The population structure of the synthetic city: hotspot centers plus
/// the broad core center, fixed per generated dataset.
struct NycGeography {
  Point core;
  std::vector<Point> hotspots;
};

NycGeography MakeGeography(const NycLikeConfig& cfg, Rng* rng) {
  NycGeography geo;
  geo.core = {cfg.width_m * 0.5, cfg.height_m * 0.42};
  for (int32_t h = 0; h < cfg.num_hotspots; ++h) {
    geo.hotspots.push_back(
        {Clamp(rng->Normal(geo.core.x, cfg.core_sigma_m), 0.0, cfg.width_m),
         Clamp(rng->Normal(geo.core.y, cfg.core_sigma_m), 0.0,
               cfg.height_m)});
  }
  return geo;
}

/// Projects a free point onto the street network: one coordinate snaps to
/// the nearest road line, the other stays continuous (people stand along
/// blocks, not only at intersections). Keeping a continuous coordinate is
/// what makes coverage respond smoothly to the influence radius lambda
/// (paper Fig 12, NYC curve).
Point SnapToStreetNetwork(const NycLikeConfig& cfg, Point p, Rng* rng) {
  if (rng->Bernoulli(0.5)) {
    p.y = Snap(p.y, cfg.street_spacing_m, cfg.height_m);  // on an E-W street
  } else {
    p.x = Snap(p.x, cfg.avenue_spacing_m, cfg.width_m);  // on a N-S avenue
  }
  return p;
}

/// Samples a trip endpoint from the hotspot/core/uniform mixture, placed
/// on the street network.
Point SampleNycEndpoint(const NycLikeConfig& cfg, const NycGeography& city,
                        Rng* rng) {
  Point p;
  double which = rng->UniformDouble();
  if (which < cfg.hotspot_mass && !city.hotspots.empty()) {
    const Point& h = city.hotspots[rng->UniformU64(city.hotspots.size())];
    p.x = Clamp(rng->Normal(h.x, cfg.hotspot_sigma_m), 0.0, cfg.width_m);
    p.y = Clamp(rng->Normal(h.y, cfg.hotspot_sigma_m), 0.0, cfg.height_m);
  } else if (which < cfg.hotspot_mass + cfg.core_mass) {
    p.x = Clamp(rng->Normal(city.core.x, cfg.core_sigma_m), 0.0, cfg.width_m);
    p.y =
        Clamp(rng->Normal(city.core.y, cfg.core_sigma_m), 0.0, cfg.height_m);
  } else {
    p.x = rng->UniformDouble(0.0, cfg.width_m);
    p.y = rng->UniformDouble(0.0, cfg.height_m);
  }
  return SnapToStreetNetwork(cfg, p, rng);
}

/// Popularity density at a point (unnormalized but consistent with the
/// endpoint mixture), so billboards follow traffic. Each mixture
/// component contributes mass/sigma^2-scaled Gaussian peaks, making
/// hotspot nodes ~(sigma_core/sigma_hotspot)^2 times denser than core
/// nodes per unit mass — the source of the influence heavy tail.
double NycPopularity(const NycLikeConfig& cfg, const NycGeography& city,
                     const Point& p) {
  const double area = cfg.width_m * cfg.height_m;
  double density = (1.0 - cfg.hotspot_mass - cfg.core_mass) / area;
  const double core_s2 = cfg.core_sigma_m * cfg.core_sigma_m;
  density += cfg.core_mass *
             std::exp(-0.5 * geo::SquaredDistance(p, city.core) / core_s2) /
             core_s2;
  const double hot_s2 = cfg.hotspot_sigma_m * cfg.hotspot_sigma_m;
  for (const Point& h : city.hotspots) {
    density += cfg.hotspot_mass /
               static_cast<double>(city.hotspots.size()) *
               std::exp(-0.5 * geo::SquaredDistance(p, h) / hot_s2) / hot_s2;
  }
  return density;
}

/// Departure-time model shared by both cities: morning and evening rush
/// peaks over a uniform floor, in seconds since midnight. Drawn from a
/// forked stream after all geometry, so the spatial output for a given
/// seed is independent of the time model.
void AssignStartTimes(model::Dataset* dataset, Rng* rng) {
  Rng time_rng = rng->Fork();
  for (model::Trajectory& t : dataset->trajectories) {
    double u = time_rng.UniformDouble();
    double start = 0.0;
    if (u < 0.30) {
      start = time_rng.Normal(8.5 * 3600.0, 5400.0);  // morning rush
    } else if (u < 0.60) {
      start = time_rng.Normal(18.0 * 3600.0, 5400.0);  // evening rush
    } else {
      start = time_rng.UniformDouble(0.0, 86400.0);
    }
    t.start_time_seconds = Clamp(start, 0.0, 86399.0);
  }
}

}  // namespace

model::Dataset GenerateNycLike(const NycLikeConfig& cfg, common::Rng* rng) {
  MROAM_CHECK(cfg.num_billboards > 0);
  MROAM_CHECK(cfg.num_trajectories >= 0);
  MROAM_CHECK(cfg.avenue_spacing_m > 0 && cfg.street_spacing_m > 0);

  model::Dataset dataset;
  dataset.name = "NYC-like";
  const NycGeography city = MakeGeography(cfg, rng);

  // --- Billboards: lattice nodes sampled by popularity^exponent. ---
  const int32_t nx =
      static_cast<int32_t>(std::floor(cfg.width_m / cfg.avenue_spacing_m)) + 1;
  const int32_t ny =
      static_cast<int32_t>(std::floor(cfg.height_m / cfg.street_spacing_m)) +
      1;
  std::vector<double> node_weights;
  node_weights.reserve(static_cast<size_t>(nx) * ny);
  for (int32_t ix = 0; ix < nx; ++ix) {
    for (int32_t iy = 0; iy < ny; ++iy) {
      Point node{ix * cfg.avenue_spacing_m, iy * cfg.street_spacing_m};
      node_weights.push_back(std::pow(NycPopularity(cfg, city, node),
                                      cfg.billboard_popularity_exponent));
    }
  }
  dataset.billboards.reserve(cfg.num_billboards);
  const size_t num_nodes = node_weights.size();
  for (int32_t i = 0; i < cfg.num_billboards; ++i) {
    size_t node = rng->WeightedIndex(node_weights);
    // Sample corners without replacement (when possible): each corner
    // hosts at most one billboard, so inventory spreads along the blocks
    // around a hotspot instead of stacking — top billboards still overlap
    // through shared hotspot audiences, but the union coverage of the
    // whole inventory stays high (feasibility of the paper's p grid).
    if (static_cast<size_t>(cfg.num_billboards) < num_nodes) {
      node_weights[node] = 0.0;
    }
    int32_t ix = static_cast<int32_t>(node) / ny;
    int32_t iy = static_cast<int32_t>(node) % ny;
    model::Billboard b;
    b.id = i;
    // Place the board part-way along a block from the sampled corner (on
    // the building face), with a small setback jitter.
    b.location = {ix * cfg.avenue_spacing_m, iy * cfg.street_spacing_m};
    if (rng->Bernoulli(0.5)) {
      b.location.x += rng->UniformDouble(-0.5, 0.5) * cfg.avenue_spacing_m;
    } else {
      b.location.y += rng->UniformDouble(-0.5, 0.5) * cfg.street_spacing_m;
    }
    b.location.x += rng->UniformDouble(-cfg.billboard_jitter_m,
                                       cfg.billboard_jitter_m);
    b.location.y += rng->UniformDouble(-cfg.billboard_jitter_m,
                                       cfg.billboard_jitter_m);
    b.location.x = Clamp(b.location.x, 0.0, cfg.width_m);
    b.location.y = Clamp(b.location.y, 0.0, cfg.height_m);
    dataset.billboards.push_back(b);
  }

  // --- Trajectories: OD pairs, like TLC trip records (pickup/dropoff
  // locations only). The destination is origin + a Gaussian offset so trip
  // lengths match the paper's 2.9 km mean instead of city-scale trips.
  dataset.trajectories.reserve(cfg.num_trajectories);
  for (int32_t i = 0; i < cfg.num_trajectories; ++i) {
    Point origin = SampleNycEndpoint(cfg, city, rng);
    Point dest;
    do {
      dest.x = Clamp(origin.x + rng->Normal(0.0, cfg.trip_sigma_x_m), 0.0,
                     cfg.width_m);
      dest.y = Clamp(origin.y + rng->Normal(0.0, cfg.trip_sigma_y_m), 0.0,
                     cfg.height_m);
      dest.x = Snap(dest.x, cfg.avenue_spacing_m, cfg.width_m);
      dest.y = Snap(dest.y, cfg.street_spacing_m, cfg.height_m);
    } while (dest == origin);

    model::Trajectory t;
    t.id = i;
    t.points = {origin, dest};
    // Travel time from the street (L1) distance a taxi actually drives.
    double street_dist =
        std::abs(dest.x - origin.x) + std::abs(dest.y - origin.y);
    t.travel_time_seconds = street_dist / cfg.taxi_speed_mps;
    dataset.trajectories.push_back(std::move(t));
  }
  AssignStartTimes(&dataset, rng);
  return dataset;
}

namespace {

/// One bus route: a gently turning polyline with stops along it.
struct BusRoute {
  std::vector<Point> path;
  /// Indices into the dataset's billboard array, in travel order.
  std::vector<model::BillboardId> stop_ids;
  std::vector<Point> stop_points;
  double ridership_weight = 1.0;
};

/// Generates a route polyline crossing the city with small heading noise.
std::vector<Point> GenerateRoutePath(const SgLikeConfig& cfg, Rng* rng) {
  const double length =
      rng->UniformDouble(cfg.route_min_length_m, cfg.route_max_length_m);
  Point pos{rng->UniformDouble(0.1 * cfg.width_m, 0.9 * cfg.width_m),
            rng->UniformDouble(0.1 * cfg.height_m, 0.9 * cfg.height_m)};
  double heading = rng->UniformDouble(0.0, 2.0 * 3.14159265358979323846);
  std::vector<Point> path{pos};
  double traveled = 0.0;
  const double seg = 500.0;
  while (traveled < length) {
    heading += rng->Normal(0.0, 0.25);
    Point next{pos.x + seg * std::cos(heading),
               pos.y + seg * std::sin(heading)};
    // Reflect off the city boundary so routes stay inside.
    if (next.x < 0.0 || next.x > cfg.width_m) {
      heading = 3.14159265358979323846 - heading;
      next.x = Clamp(next.x, 0.0, cfg.width_m);
    }
    if (next.y < 0.0 || next.y > cfg.height_m) {
      heading = -heading;
      next.y = Clamp(next.y, 0.0, cfg.height_m);
    }
    path.push_back(next);
    traveled += seg;
    pos = next;
  }
  return path;
}

}  // namespace

model::Dataset GenerateSgLike(const SgLikeConfig& cfg, common::Rng* rng) {
  MROAM_CHECK(cfg.num_billboards > 0);
  MROAM_CHECK(cfg.num_trajectories >= 0);
  MROAM_CHECK(cfg.stop_spacing_m > 0.0);
  MROAM_CHECK(cfg.mean_ride_stops >= 1.0);

  model::Dataset dataset;
  dataset.name = "SG-like";

  // --- Routes + stops: a shared stop pool. A route passing within
  // stop_merge_radius_m of an existing stop reuses it (interchange);
  // otherwise it creates a new stop with a billboard. Keep adding routes
  // until the pool reaches num_billboards.
  std::vector<BusRoute> routes;
  geo::GridIndex stop_grid(cfg.stop_merge_radius_m);
  int32_t next_stop_id = 0;
  while (next_stop_id < cfg.num_billboards) {
    BusRoute route;
    route.path = GenerateRoutePath(cfg, rng);
    route.ridership_weight = rng->UniformDouble(1.0, cfg.ridership_skew);
    const double route_length = geo::PolylineLength(route.path);
    double at = rng->UniformDouble(0.0, cfg.stop_spacing_m);
    while (at < route_length) {
      Point wanted = geo::PointAlong(route.path, at);
      // Reuse the nearest pooled stop within the merge radius, if any.
      std::vector<int32_t> near =
          stop_grid.QueryRadius(wanted, cfg.stop_merge_radius_m);
      model::BillboardId stop_id = model::kInvalidBillboard;
      double best_d = 1e300;
      for (int32_t candidate : near) {
        double d =
            geo::Distance(wanted, dataset.billboards[candidate].location);
        if (d < best_d) {
          best_d = d;
          stop_id = candidate;
        }
      }
      if (stop_id == model::kInvalidBillboard) {
        if (next_stop_id >= cfg.num_billboards) break;  // pool is full
        stop_id = next_stop_id++;
        model::Billboard b;
        b.id = stop_id;
        b.location = wanted;
        dataset.billboards.push_back(b);
        stop_grid.Insert(wanted, stop_id);
      }
      // Avoid a self-revisit producing two consecutive identical stops.
      if (route.stop_ids.empty() || route.stop_ids.back() != stop_id) {
        route.stop_ids.push_back(stop_id);
        route.stop_points.push_back(dataset.billboards[stop_id].location);
      }
      at += cfg.stop_spacing_m + rng->UniformDouble(-cfg.stop_spacing_jitter_m,
                                                    cfg.stop_spacing_jitter_m);
    }
    if (route.stop_ids.size() >= 2) {
      routes.push_back(std::move(route));
    }
  }
  MROAM_CHECK(!routes.empty());

  std::vector<double> route_weights;
  route_weights.reserve(routes.size());
  for (const BusRoute& r : routes) {
    route_weights.push_back(r.ridership_weight *
                            static_cast<double>(r.stop_ids.size()));
  }

  // --- Rides: board at a stop, ride a geometric number of stops. ---
  dataset.trajectories.reserve(cfg.num_trajectories);
  for (int32_t i = 0; i < cfg.num_trajectories; ++i) {
    const BusRoute& route = routes[rng->WeightedIndex(route_weights)];
    const size_t num_stops = route.stop_points.size();
    size_t board = static_cast<size_t>(rng->UniformU64(num_stops - 1));
    // Geometric ride length with the configured mean, at least one stop.
    double u = rng->UniformDouble();
    size_t ride =
        1 + static_cast<size_t>(-std::log(1.0 - u) * (cfg.mean_ride_stops - 1.0));
    size_t alight = std::min(num_stops - 1, board + ride);

    model::Trajectory t;
    t.id = i;
    t.points.assign(route.stop_points.begin() + board,
                    route.stop_points.begin() + alight + 1);
    double dist = geo::PolylineLength(t.points);
    t.travel_time_seconds =
        dist / cfg.bus_speed_mps +
        cfg.dwell_seconds_per_stop * static_cast<double>(alight - board);
    dataset.trajectories.push_back(std::move(t));
  }
  AssignStartTimes(&dataset, rng);
  return dataset;
}

}  // namespace mroam::gen
