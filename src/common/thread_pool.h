#ifndef MROAM_COMMON_THREAD_POOL_H_
#define MROAM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mroam::common {

/// Fixed-size pool of worker threads executing submitted tasks in FIFO
/// order. Built for deterministic fan-out/join parallelism (the
/// randomized-restart engine, DESIGN.md §5.4): no work stealing and no
/// priorities, so reproducibility is the caller's job — make every task
/// self-contained (its own Rng stream forked *before* submission, its own
/// output slot) and reduce results in task-index order afterwards.
///
/// Tasks may throw: the exception is captured in the future returned by
/// Submit and rethrown from future::get(). Workers never swallow errors.
class ThreadPool {
 public:
  /// Starts `num_threads` (>= 1) workers.
  explicit ThreadPool(int num_threads);

  /// Runs every already-queued task to completion, then joins the
  /// workers. Submitting during destruction is a programming error.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`. The future becomes ready when the task finishes and
  /// rethrows anything the task threw.
  std::future<void> Submit(std::function<void()> task);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// std::thread::hardware_concurrency clamped to >= 1 (the standard
  /// allows it to report 0 when unknown).
  static int HardwareThreads();

 private:
  void WorkerLoop();

  /// A queued task plus its enqueue timestamp, so the worker can report
  /// queue-wait latency to the metrics registry when it dequeues.
  struct QueuedTask {
    std::packaged_task<void()> task;
    int64_t enqueue_ns = 0;
  };

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<QueuedTask> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Runs fn(0), ..., fn(n-1) across `pool` and waits for all of them.
/// Tasks must write only to disjoint state. If any task throws, the
/// lowest-index exception is rethrown after every task has finished. A
/// null (or single-threaded) pool degenerates to an inline loop on the
/// calling thread — same results, no handoff.
void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& fn);

}  // namespace mroam::common

#endif  // MROAM_COMMON_THREAD_POOL_H_
