#ifndef MROAM_COMMON_LOGGING_H_
#define MROAM_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string_view>

namespace mroam::common {

/// Severity levels for MROAM_LOG.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum level actually emitted by MROAM_LOG.
LogLevel MinLogLevel();

/// Sets the process-wide minimum log level (tests silence output with it).
void SetMinLogLevel(LogLevel level);

/// Parses "debug"/"info"/"warning"/"error" (any case; "warn" also
/// accepted) into `*level`. Returns false — leaving `*level` untouched —
/// for anything else. The MROAM_LOG_LEVEL environment variable is routed
/// through this at startup.
bool ParseLogLevel(std::string_view text, LogLevel* level);

namespace internal {

/// Accumulates one log line and emits it (with level prefix) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after emitting (for CHECK failures).
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define MROAM_LOG(level)                                               \
  ::mroam::common::internal::LogMessage(                               \
      ::mroam::common::LogLevel::k##level, __FILE__, __LINE__)         \
      .stream()

/// Aborts with a message when `cond` does not hold. Active in all builds:
/// invariant violations in a solver are always bugs worth crashing on.
#define MROAM_CHECK(cond)                                              \
  if (cond) {                                                          \
  } else /* NOLINT */                                                  \
    ::mroam::common::internal::FatalLogMessage(__FILE__, __LINE__)     \
            .stream()                                                  \
        << "Check failed: " #cond " "

#define MROAM_CHECK_EQ(a, b) MROAM_CHECK((a) == (b))
#define MROAM_CHECK_NE(a, b) MROAM_CHECK((a) != (b))
#define MROAM_CHECK_LE(a, b) MROAM_CHECK((a) <= (b))
#define MROAM_CHECK_LT(a, b) MROAM_CHECK((a) < (b))
#define MROAM_CHECK_GE(a, b) MROAM_CHECK((a) >= (b))
#define MROAM_CHECK_GT(a, b) MROAM_CHECK((a) > (b))

/// Debug-only check for hot paths (compiled out in NDEBUG builds).
#ifdef NDEBUG
#define MROAM_DCHECK(cond) \
  if (true) {              \
  } else /* NOLINT */      \
    MROAM_CHECK(cond)
#else
#define MROAM_DCHECK(cond) MROAM_CHECK(cond)
#endif

}  // namespace mroam::common

#endif  // MROAM_COMMON_LOGGING_H_
