#ifndef MROAM_COMMON_FAULT_H_
#define MROAM_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace mroam::common {

// ---------------------------------------------------------------------------
// Deterministic fault injection for chaos testing the serving path.
//
// Code declares *named injection points* with MROAM_FAULT_POINT("name");
// each call returns a FaultAction saying whether to inject the fault this
// time and with what delay payload. Points are armed globally, either
// programmatically (tests) or via the MROAM_FAULT environment variable
// (operations), with a spec like
//
//   MROAM_FAULT="seed=7;serve.slow_read=0.5:25;serve.drop_connection=0.1"
//
// i.e. `seed=N` plus one `<point>=<probability>[:<delay_ms>]` entry per
// armed point, separated by ';' or ','. Every point draws from its own
// RNG stream forked from the master seed and the point's name, so the
// k-th decision at a given point is a pure function of (seed, point, k)
// regardless of how other points interleave — chaos runs replay.
//
// Cost when disarmed: one relaxed atomic load (the same discipline as the
// flight recorder). The MROAM_ENABLE_FAULT_INJECTION CMake option
// (default ON) compiles every point down to a constant when OFF.
// ---------------------------------------------------------------------------

/// Decision handed back by an armed fault point.
struct FaultAction {
  bool fire = false;     ///< inject the fault this time
  int64_t delay_ms = 0;  ///< configured delay payload (delay-style points)
};

class FaultInjector {
 public:
  static FaultInjector& Global();

  /// The hot-path check: false unless some spec is armed.
  static bool Armed() { return armed_.load(std::memory_order_relaxed); }

  /// Arms the injector from a spec (grammar above). Replaces any armed
  /// configuration and resets every point's RNG stream and counters.
  /// Fails with kInvalidArgument on a malformed spec, leaving the
  /// injector disarmed.
  Status ArmFromSpec(std::string_view spec);

  /// Disarms every point (MROAM_FAULT_POINT returns {false, 0} again).
  void Disarm();

  /// The decision for one arrival at `point`. Unarmed points never fire.
  FaultAction Decide(std::string_view point);

  /// How often `point` has fired since arming (tests / audit logs).
  int64_t FireCount(std::string_view point) const;

  /// "seed=7 serve.slow_read=0.5:25(fired 3/10)" — for log lines.
  std::string Summary() const;

 private:
  struct Point {
    std::string name;
    double probability = 0.0;
    int64_t delay_ms = 0;
    Rng rng;
    int64_t decisions = 0;
    int64_t fires = 0;
  };

  FaultInjector() = default;

  static std::atomic<bool> armed_;

  mutable std::mutex mu_;  ///< guards points_ (cold path: Armed() gates)
  uint64_t seed_ = 0;
  std::vector<Point> points_;
};

/// The injection-point macro. Yields a FaultAction; disarmed (the steady
/// state) it is one relaxed load. `point` must be a string literal-ish
/// stable name, namespaced like metrics ("serve.slow_read").
#ifdef MROAM_FAULT_DISABLED
#define MROAM_FAULT_POINT(point) (::mroam::common::FaultAction{})
#else
#define MROAM_FAULT_POINT(point)                                  \
  (::mroam::common::FaultInjector::Armed()                        \
       ? ::mroam::common::FaultInjector::Global().Decide(point)   \
       : ::mroam::common::FaultAction{})
#endif

}  // namespace mroam::common

#endif  // MROAM_COMMON_FAULT_H_
