#ifndef MROAM_COMMON_CRC32_H_
#define MROAM_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mroam::common {

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the checksum
/// guarding every snapshot section (docs/snapshot_format.md). `seed` lets
/// callers chain partial buffers: Crc32(b, Crc32(a)) == Crc32(a + b).
/// Crc32 of an empty buffer is 0.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace mroam::common

#endif  // MROAM_COMMON_CRC32_H_
