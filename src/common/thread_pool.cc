#include "common/thread_pool.h"

#include <exception>
#include <utility>

#include "common/logging.h"

namespace mroam::common {

ThreadPool::ThreadPool(int num_threads) {
  MROAM_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> result = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    MROAM_CHECK(!stopping_);
    queue_.push(std::move(wrapped));
  }
  cv_.notify_one();
  return result;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // a throwing task parks its exception in the future
  }
}

int ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    futures.push_back(pool->Submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace mroam::common
