#include "common/thread_pool.h"

#include <exception>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mroam::common {

ThreadPool::ThreadPool(int num_threads) {
  MROAM_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> result = wrapped.get_future();
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    MROAM_CHECK(!stopping_);
    queue_.push({std::move(wrapped), obs::Tracer::NowNanos()});
    depth = queue_.size();
  }
  cv_.notify_one();
  MROAM_COUNTER_ADD("threadpool.tasks_submitted", 1);
  MROAM_GAUGE_SET("threadpool.queue_depth", static_cast<int64_t>(depth));
  return result;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    QueuedTask queued;
    size_t depth = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      queued = std::move(queue_.front());
      queue_.pop();
      depth = queue_.size();
    }
    MROAM_GAUGE_SET("threadpool.queue_depth", static_cast<int64_t>(depth));
    const int64_t start_ns = obs::Tracer::NowNanos();
    MROAM_HISTOGRAM_OBSERVE(
        "threadpool.queue_wait_seconds",
        static_cast<double>(start_ns - queued.enqueue_ns) / 1e9);
    {
      MROAM_TRACE_SPAN("threadpool.task");
      queued.task();  // a throwing task parks its exception in the future
    }
    MROAM_HISTOGRAM_OBSERVE(
        "threadpool.task_seconds",
        static_cast<double>(obs::Tracer::NowNanos() - start_ns) / 1e9);
  }
}

int ThreadPool::HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(ThreadPool* pool, int64_t n,
                 const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    futures.push_back(pool->Submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace mroam::common
