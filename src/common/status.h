#ifndef MROAM_COMMON_STATUS_H_
#define MROAM_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace mroam::common {

/// Error category for a failed operation. Kept deliberately small: the
/// library signals errors through Status/Result instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kDataLoss,
  kIoError,
  kInternal,
  kDeadlineExceeded,
};

/// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value, modeled after absl::Status. Cheap to copy in
/// the success case (no message allocated).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error result, modeled after absl::StatusOr. A Result holding
/// a value reports ok(); otherwise status() carries the error.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding `value`. Intentionally implicit so that
  /// `return value;` works in functions returning Result<T>.
  Result(T value) : data_(std::move(value)) {}
  /// Constructs a failed Result from a non-OK `status`. Intentionally
  /// implicit so that `return Status::...;` works.
  Result(Status status) : data_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// The error status; Status::Ok() when a value is held.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  /// The held value. Requires ok().
  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define MROAM_RETURN_IF_ERROR(expr)                      \
  do {                                                   \
    ::mroam::common::Status _mroam_status = (expr);      \
    if (!_mroam_status.ok()) return _mroam_status;       \
  } while (false)

/// Evaluates a Result expression; on success binds its value to `lhs`,
/// otherwise returns the error to the caller.
#define MROAM_ASSIGN_OR_RETURN(lhs, expr)                \
  MROAM_ASSIGN_OR_RETURN_IMPL_(                          \
      MROAM_STATUS_CONCAT_(_mroam_result, __LINE__), lhs, expr)

#define MROAM_STATUS_CONCAT_INNER_(a, b) a##b
#define MROAM_STATUS_CONCAT_(a, b) MROAM_STATUS_CONCAT_INNER_(a, b)
#define MROAM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)     \
  auto tmp = (expr);                                     \
  if (!tmp.ok()) return tmp.status();                    \
  lhs = std::move(tmp).value()

}  // namespace mroam::common

#endif  // MROAM_COMMON_STATUS_H_
