#include "common/fault.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace mroam::common {

namespace {

/// FNV-1a over the point name: mixed into the master seed so each point
/// gets an independent, name-stable RNG stream.
uint64_t HashName(std::string_view name) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Arms the global injector from MROAM_FAULT at static-init time, the
/// same pattern as MROAM_TRACE / MROAM_FLIGHT. A malformed spec logs a
/// warning and leaves the injector disarmed rather than aborting: fault
/// injection must never be the thing that takes the process down.
[[maybe_unused]] const bool g_fault_env_armed = [] {
  const char* spec = std::getenv("MROAM_FAULT");
  if (spec == nullptr || spec[0] == '\0') return false;
  Status armed = FaultInjector::Global().ArmFromSpec(spec);
  if (!armed.ok()) {
    MROAM_LOG(Warning) << "ignoring malformed MROAM_FAULT spec: "
                       << armed.message();
    return false;
  }
  MROAM_LOG(Warning) << "fault injection armed: "
                     << FaultInjector::Global().Summary();
  return true;
}();

}  // namespace

std::atomic<bool> FaultInjector::armed_{false};

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

Status FaultInjector::ArmFromSpec(std::string_view spec) {
  uint64_t seed = 42;
  std::vector<Point> points;
  // ';' and ',' both separate entries (',' survives quoting in more
  // shells; ';' reads better in docs).
  std::string normalized(spec);
  for (char& c : normalized) {
    if (c == ',') c = ';';
  }
  for (std::string_view entry : Split(normalized, ';')) {
    entry = StripWhitespace(entry);
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("fault spec entry '" +
                                     std::string(entry) +
                                     "' is not <key>=<value>");
    }
    std::string_view key = StripWhitespace(entry.substr(0, eq));
    std::string_view value = StripWhitespace(entry.substr(eq + 1));
    if (key == "seed") {
      MROAM_ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(value));
      seed = static_cast<uint64_t>(parsed);
      continue;
    }
    Point point;
    point.name = std::string(key);
    std::string_view probability_text = value;
    size_t colon = value.find(':');
    if (colon != std::string_view::npos) {
      probability_text = value.substr(0, colon);
      MROAM_ASSIGN_OR_RETURN(point.delay_ms,
                             ParseInt64(value.substr(colon + 1)));
      if (point.delay_ms < 0) {
        return Status::InvalidArgument("fault point '" + point.name +
                                       "' has a negative delay");
      }
    }
    MROAM_ASSIGN_OR_RETURN(point.probability,
                           ParseDouble(probability_text));
    if (point.probability < 0.0 || point.probability > 1.0) {
      return Status::InvalidArgument(
          "fault point '" + point.name + "' probability " +
          std::string(probability_text) + " is outside [0, 1]");
    }
    points.push_back(std::move(point));
  }
  if (points.empty()) {
    return Status::InvalidArgument("fault spec '" + std::string(spec) +
                                   "' arms no points");
  }
  for (Point& point : points) {
    point.rng = Rng(seed ^ HashName(point.name));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    seed_ = seed;
    points_ = std::move(points);
  }
  armed_.store(true, std::memory_order_release);
  return Status::Ok();
}

void FaultInjector::Disarm() {
  armed_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
}

FaultAction FaultInjector::Decide(std::string_view point) {
  FaultAction action;
  if (!Armed()) return action;
  std::lock_guard<std::mutex> lock(mu_);
  for (Point& armed : points_) {
    if (armed.name != point) continue;
    ++armed.decisions;
    action.fire = armed.rng.Bernoulli(armed.probability);
    if (action.fire) {
      ++armed.fires;
      action.delay_ms = armed.delay_ms;
    }
    return action;
  }
  return action;
}

int64_t FaultInjector::FireCount(std::string_view point) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Point& armed : points_) {
    if (armed.name == point) return armed.fires;
  }
  return 0;
}

std::string FaultInjector::Summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "seed=";
  out += std::to_string(seed_);
  for (const Point& point : points_) {
    out += ' ';
    out += point.name;
    out += '=';
    out += FormatDouble(point.probability, 3);
    if (point.delay_ms > 0) {
      out += ':';
      out += std::to_string(point.delay_ms);
    }
    out += "(fired ";
    out += std::to_string(point.fires);
    out += '/';
    out += std::to_string(point.decisions);
    out += ')';
  }
  return out;
}

}  // namespace mroam::common
