#ifndef MROAM_COMMON_STRINGS_H_
#define MROAM_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mroam::common {

/// Splits `text` on `delim`, keeping empty fields ("a,,b" -> 3 fields).
std::vector<std::string_view> Split(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// Parses a whole string as a double; rejects trailing garbage.
Result<double> ParseDouble(std::string_view text);

/// Parses a whole string as a signed 64-bit integer.
Result<int64_t> ParseInt64(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Formats an integer count with thousands separators (1234567 -> 1,234,567).
std::string FormatWithCommas(int64_t value);

}  // namespace mroam::common

#endif  // MROAM_COMMON_STRINGS_H_
