#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace mroam::common {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  MROAM_DCHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  MROAM_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  MROAM_DCHECK(lo <= hi);
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  double u2 = UniformDouble();
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  MROAM_DCHECK(rate > 0.0);
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::Pareto(double scale, double alpha) {
  MROAM_DCHECK(scale > 0.0);
  MROAM_DCHECK(alpha > 0.0);
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return scale / std::pow(u, 1.0 / alpha);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  MROAM_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    MROAM_DCHECK(w >= 0.0);
    total += w;
  }
  MROAM_CHECK(total > 0.0);
  double target = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // floating-point edge: attribute to the last
}

Rng Rng::Fork() { return Rng(Next64()); }

}  // namespace mroam::common
