#include "common/status.h"

namespace mroam::common {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace mroam::common
