#include "common/logging.h"

#include <atomic>
#include <cstring>

namespace mroam::common {

namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel MinLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel()) {
    std::cerr << stream_.str() << "\n";
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[F " << Basename(file) << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal

}  // namespace mroam::common
