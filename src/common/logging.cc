#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>

namespace mroam::common {

namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

/// Routes MROAM_LOG_LEVEL into g_min_level once at process start, before
/// main. An unparsable value keeps the kInfo default and says so on
/// stderr (it cannot use MROAM_LOG: the chosen level is what's in doubt).
[[maybe_unused]] const bool g_env_level_applied = [] {
  const char* text = std::getenv("MROAM_LOG_LEVEL");
  if (text == nullptr || text[0] == '\0') return false;
  LogLevel level = LogLevel::kInfo;
  if (ParseLogLevel(text, &level)) {
    g_min_level.store(level, std::memory_order_relaxed);
    return true;
  }
  std::fprintf(stderr,
               "mroam: ignoring invalid MROAM_LOG_LEVEL=\"%s\" "
               "(want debug|info|warning|error)\n",
               text);
  return false;
}();

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel MinLogLevel() { return g_min_level.load(std::memory_order_relaxed); }

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}

bool ParseLogLevel(std::string_view text, LogLevel* level) {
  std::string lower(text);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug") {
    *level = LogLevel::kDebug;
  } else if (lower == "info") {
    *level = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *level = LogLevel::kWarning;
  } else if (lower == "error") {
    *level = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= MinLogLevel()) {
    std::cerr << stream_.str() << "\n";
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line) {
  stream_ << "[F " << Basename(file) << ":" << line << "] ";
}

FatalLogMessage::~FatalLogMessage() {
  std::cerr << stream_.str() << std::endl;
  std::abort();
}

}  // namespace internal

}  // namespace mroam::common
