#ifndef MROAM_COMMON_CSV_H_
#define MROAM_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace mroam::common {

/// One parsed CSV record (a row of unescaped fields).
using CsvRow = std::vector<std::string>;

/// Parses a single CSV line supporting RFC-4180 double-quote escaping.
/// Fails on unbalanced quotes or characters after a closing quote.
Result<CsvRow> ParseCsvLine(std::string_view line);

/// Escapes one field for CSV output (quotes when it contains , " or \n).
std::string EscapeCsvField(std::string_view field);

/// Joins fields into one CSV line (no trailing newline).
std::string JoinCsvRow(const CsvRow& row);

/// Reads a whole CSV file. Skips blank lines and lines starting with '#'.
/// When `expected_columns` > 0, every row must have exactly that many
/// fields; a mismatch yields DataLoss with the offending line number.
/// Reading is line-based: fields with embedded newlines are not supported
/// (a quoted field left open at end-of-line yields DataLoss).
Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path,
                                        int expected_columns = 0);

/// Writes rows to `path`, creating or truncating the file.
Status WriteCsvFile(const std::string& path,
                    const std::vector<CsvRow>& rows);

}  // namespace mroam::common

#endif  // MROAM_COMMON_CSV_H_
