#include "common/csv.h"

#include <fstream>

#include "common/strings.h"

namespace mroam::common {

Result<CsvRow> ParseCsvLine(std::string_view line) {
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      if (!field.empty() || field_was_quoted) {
        return Status::DataLoss("unexpected quote inside unquoted field");
      }
      in_quotes = true;
      field_was_quoted = true;
      ++i;
      continue;
    }
    if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
      field_was_quoted = false;
      ++i;
      continue;
    }
    if (field_was_quoted) {
      return Status::DataLoss("characters after closing quote");
    }
    field.push_back(c);
    ++i;
  }
  if (in_quotes) {
    return Status::DataLoss("unterminated quoted field");
  }
  row.push_back(std::move(field));
  return row;
}

std::string EscapeCsvField(std::string_view field) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string JoinCsvRow(const CsvRow& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += EscapeCsvField(row[i]);
  }
  return out;
}

Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path,
                                        int expected_columns) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open file: " + path);
  }
  std::vector<CsvRow> rows;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    Result<CsvRow> row = ParseCsvLine(trimmed);
    if (!row.ok()) {
      return Status::DataLoss(path + ":" + std::to_string(line_number) +
                              ": " + row.status().message());
    }
    if (expected_columns > 0 &&
        row->size() != static_cast<size_t>(expected_columns)) {
      return Status::DataLoss(path + ":" + std::to_string(line_number) +
                              ": expected " +
                              std::to_string(expected_columns) +
                              " columns, got " + std::to_string(row->size()));
    }
    rows.push_back(std::move(row).value());
  }
  if (in.bad()) {
    return Status::IoError("I/O error while reading: " + path);
  }
  return rows;
}

Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  for (const CsvRow& row : rows) {
    out << JoinCsvRow(row) << "\n";
  }
  out.flush();
  if (!out) {
    return Status::IoError("I/O error while writing: " + path);
  }
  return Status::Ok();
}

}  // namespace mroam::common
