#include "common/strings.h"

#include <charconv>
#include <cstdio>

namespace mroam::common {

std::vector<std::string_view> Split(std::string_view text, char delim) {
  std::vector<std::string_view> parts;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         (text[begin] == ' ' || text[begin] == '\t' || text[begin] == '\r' ||
          text[begin] == '\n')) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         (text[end - 1] == ' ' || text[end - 1] == '\t' ||
          text[end - 1] == '\r' || text[end - 1] == '\n')) {
    --end;
  }
  return text.substr(begin, end - begin);
}

Result<double> ParseDouble(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty()) {
    return Status::InvalidArgument("empty string is not a double");
  }
  double value = 0.0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument("not a double: '" + std::string(text) +
                                   "'");
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty()) {
    return Status::InvalidArgument("empty string is not an integer");
  }
  int64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument("not an integer: '" + std::string(text) +
                                   "'");
  }
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatWithCommas(int64_t value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  if (value < 0) out.push_back('-');
  size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  out.append(digits, 0, lead);
  for (size_t i = lead; i < digits.size(); i += 3) {
    out.push_back(',');
    out.append(digits, i, 3);
  }
  return out;
}

}  // namespace mroam::common
