#ifndef MROAM_COMMON_RNG_H_
#define MROAM_COMMON_RNG_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace mroam::common {

/// Deterministic pseudo-random generator (xoshiro256** seeded via
/// splitmix64). All randomized components in the library take an explicit
/// Rng so that every experiment is reproducible from a single seed.
///
/// Satisfies the UniformRandomBitGenerator concept, so it can also be used
/// with <random> distributions when needed.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  uint64_t operator()() { return Next64(); }
  uint64_t Next64();

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased
  /// (Lemire's rejection method).
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal variate (Box-Muller; uses one cached value).
  double Normal();

  /// Normal variate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Exponential variate with the given rate (> 0).
  double Exponential(double rate);

  /// Pareto-distributed variate >= scale with tail exponent alpha (> 0).
  /// Used to synthesize heavy-tailed billboard influence.
  double Pareto(double scale, double alpha);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires a non-empty vector with non-negative entries, positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformU64(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Returns a new Rng seeded deterministically from this stream. Use to
  /// give sub-components independent yet reproducible streams.
  Rng Fork();

 private:
  uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace mroam::common

#endif  // MROAM_COMMON_RNG_H_
