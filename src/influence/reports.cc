#include "influence/reports.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "influence/coverage_counter.h"

namespace mroam::influence {

namespace {

/// Billboard ids sorted by influence, descending (ties by id for
/// determinism).
std::vector<model::BillboardId> ByInfluenceDescending(
    const InfluenceIndex& index) {
  std::vector<model::BillboardId> ids(index.num_billboards());
  for (int32_t i = 0; i < index.num_billboards(); ++i) ids[i] = i;
  std::sort(ids.begin(), ids.end(),
            [&index](model::BillboardId a, model::BillboardId b) {
              int64_t ia = index.InfluenceOf(a);
              int64_t ib = index.InfluenceOf(b);
              if (ia != ib) return ia > ib;
              return a < b;
            });
  return ids;
}

}  // namespace

std::vector<double> InfluenceDistribution(const InfluenceIndex& index) {
  std::vector<model::BillboardId> ids = ByInfluenceDescending(index);
  if (ids.empty()) return {};
  double max_influence =
      static_cast<double>(std::max<int64_t>(1, index.InfluenceOf(ids[0])));
  std::vector<double> out;
  out.reserve(ids.size());
  for (model::BillboardId o : ids) {
    out.push_back(static_cast<double>(index.InfluenceOf(o)) / max_influence);
  }
  return out;
}

std::vector<double> ImpressionCurve(const InfluenceIndex& index,
                                    const std::vector<double>& percents) {
  std::vector<model::BillboardId> ids = ByInfluenceDescending(index);
  CoverageCounter counter(&index);
  std::vector<double> out;
  out.reserve(percents.size());
  size_t added = 0;
  const double total =
      std::max(1.0, static_cast<double>(index.num_trajectories()));
  for (double pct : percents) {
    MROAM_CHECK(pct >= 0.0 && pct <= 100.0);
    size_t want = static_cast<size_t>(
        std::llround(pct / 100.0 * static_cast<double>(ids.size())));
    while (added < want && added < ids.size()) {
      counter.Add(ids[added]);
      ++added;
    }
    out.push_back(static_cast<double>(counter.influence()) / total);
  }
  return out;
}

InfluenceSummary SummarizeInfluence(const InfluenceIndex& index) {
  InfluenceSummary s;
  const int32_t n = index.num_billboards();
  if (n == 0) return s;
  std::vector<model::BillboardId> ids = ByInfluenceDescending(index);
  int64_t supply = index.TotalSupply();
  s.max = index.InfluenceOf(ids[0]);
  s.mean = static_cast<double>(supply) / static_cast<double>(n);

  int64_t top_decile_supply = 0;
  int32_t decile = std::max(1, n / 10);
  for (int32_t i = 0; i < decile; ++i) {
    top_decile_supply += index.InfluenceOf(ids[i]);
  }
  s.top_decile_share = supply > 0 ? static_cast<double>(top_decile_supply) /
                                        static_cast<double>(supply)
                                  : 0.0;

  CoverageCounter counter(&index);
  int32_t half = std::max(1, n / 2);
  for (int32_t i = 0; i < half; ++i) counter.Add(ids[i]);
  s.coverage_ratio_top_half =
      index.num_trajectories() > 0
          ? static_cast<double>(counter.influence()) /
                static_cast<double>(index.num_trajectories())
          : 0.0;
  return s;
}

}  // namespace mroam::influence
