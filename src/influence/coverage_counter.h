#ifndef MROAM_INFLUENCE_COVERAGE_COUNTER_H_
#define MROAM_INFLUENCE_COVERAGE_COUNTER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "cindex/compressed_counter.h"
#include "common/logging.h"
#include "influence/influence_index.h"

namespace mroam::influence {

/// Incrementally maintains I(S) for one billboard set S under the meet
/// model: a per-trajectory count of how many billboards of S cover it,
/// plus the number of trajectories whose count reaches the impression
/// threshold.
///
/// With the default threshold of 1 this is the paper's influence measure
/// (per-pair influence is 0/1 and the noisy-or collapses to set-union).
/// A threshold m > 1 implements the impression-count model of Zhang et
/// al., KDD'19 [29] — an audience is influenced only after meeting the ad
/// at least m times — which the paper describes as an orthogonal choice
/// of measurement (§3.1).
///
/// Every operation costs O(|incidence list of the billboard|). This is the
/// data structure that makes the greedy selection rule and the local-search
/// move deltas cheap (DESIGN.md §5.1).
///
/// The counter runs over either index representation (IndexBackend): the
/// plain vector lists inline below, or the block-compressed kernels via a
/// delegated cindex::CompressedCoverageCounter — bit-identical by
/// construction and gated by the equivalence suites. Epoch bookkeeping
/// lives here in the wrapper either way, so the lazy-selection machinery
/// is backend-oblivious.
class CoverageCounter {
 public:
  /// Creates an empty counter over `index`'s trajectory universe with the
  /// given impression threshold (>= 1). The index must outlive the
  /// counter. Falls back to the compressed backend when the index holds
  /// no plain lists (mmap-served snapshots), whatever `backend` says.
  explicit CoverageCounter(const InfluenceIndex* index,
                           uint16_t impression_threshold = 1,
                           IndexBackend backend = IndexBackend::kPlain)
      : index_(index), threshold_(impression_threshold) {
    MROAM_CHECK(impression_threshold >= 1);
    if (backend == IndexBackend::kCompressed || !index->has_plain()) {
      compressed_.emplace(&index->compressed_covered(),
                          impression_threshold);
    } else {
      counts_.assign(static_cast<size_t>(index->num_trajectories()), 0);
    }
  }

  /// Adds billboard `o`'s coverage. Must not be called twice for the same
  /// billboard without an intervening Remove (the caller tracks set
  /// membership).
  void Add(model::BillboardId o) {
    if (compressed_) {
      compressed_->Add(o);
    } else {
      for (model::TrajectoryId t : index_->CoveredBy(o)) {
        MROAM_DCHECK(counts_[t] < UINT16_MAX);
        if (++counts_[t] == threshold_) ++influence_;
      }
    }
    ++epoch_;
  }

  /// Removes billboard `o`'s coverage (must currently be counted).
  void Remove(model::BillboardId o) {
    if (compressed_) {
      compressed_->Remove(o);
    } else {
      for (model::TrajectoryId t : index_->CoveredBy(o)) {
        MROAM_DCHECK(counts_[t] > 0);
        if (counts_[t]-- == threshold_) --influence_;
      }
    }
    ++epoch_;
    last_shrink_epoch_ = epoch_;
  }

  /// Influence gained if `o` were added: #trajectories in o's list one
  /// impression short of the threshold. Does not modify the counter.
  int64_t MarginalGain(model::BillboardId o) const {
    if (compressed_) return compressed_->MarginalGain(o);
    int64_t gain = 0;
    const uint16_t at_gain = threshold_ - 1;
    for (model::TrajectoryId t : index_->CoveredBy(o)) {
      if (counts_[t] == at_gain) ++gain;
    }
    return gain;
  }

  /// Influence lost if `o` were removed: #trajectories exactly at the
  /// threshold that `o` contributes to. Only meaningful when `o` is
  /// currently counted.
  int64_t MarginalLoss(model::BillboardId o) const {
    if (compressed_) return compressed_->MarginalLoss(o);
    int64_t loss = 0;
    for (model::TrajectoryId t : index_->CoveredBy(o)) {
      if (counts_[t] == threshold_) ++loss;
    }
    return loss;
  }

  /// Influence gained by adding `add` right after removing `rem`, i.e.
  /// I(S \ {rem} ∪ {add}) - I(S \ {rem}), in one pass without mutation.
  /// Requires rem currently counted and add not counted. Relies on both
  /// incidence lists being sorted ascending (an InfluenceIndex invariant,
  /// DCHECKed in debug builds) for its merge pointer.
  int64_t MarginalGainAfterRemove(model::BillboardId add,
                                  model::BillboardId rem) const;

  /// Number of billboards of S covering trajectory `t`.
  uint16_t CountOf(model::TrajectoryId t) const {
    return compressed_ ? compressed_->CountOf(t) : counts_[t];
  }

  /// Current I(S).
  int64_t influence() const {
    return compressed_ ? compressed_->influence() : influence_;
  }

  /// The backend this counter runs on.
  IndexBackend backend() const {
    return compressed_ ? IndexBackend::kCompressed : IndexBackend::kPlain;
  }

  /// The impression threshold m (1 = the paper's set-union measure).
  uint16_t impression_threshold() const { return threshold_; }

  /// Mutation stamp: advances on every Add/Remove/Clear (and on
  /// MarkStructuralChange). A value cached against this counter at epoch e
  /// describes the counter exactly iff epoch() still equals e.
  uint64_t epoch() const { return epoch_; }

  /// The epoch of the most recent *shrinking* mutation (Remove, Clear, or
  /// MarkStructuralChange). While only Add() advances epoch() past a stamp
  /// s >= last_shrink_epoch(), every count is non-decreasing, so with
  /// impression_threshold == 1 MarginalGain(o) is non-increasing: a gain
  /// cached at such a stamp remains a valid *upper bound*. This is the
  /// invariant the lazy greedy selector rests on (DESIGN.md §5.1). For
  /// thresholds > 1 gains are not monotone and no such bound holds.
  uint64_t last_shrink_epoch() const { return last_shrink_epoch_; }

  /// Invalidates every cached observation of this counter (advances the
  /// epoch as a shrink). Assignment::SwapSets calls this after swapping
  /// counter objects between advertisers, where "which advertiser this
  /// counter describes" changes without any Add/Remove.
  void MarkStructuralChange() {
    ++epoch_;
    last_shrink_epoch_ = epoch_;
  }

  /// Resets to the empty set.
  void Clear() {
    if (compressed_) {
      compressed_->Clear();
    } else {
      std::fill(counts_.begin(), counts_.end(), 0);
      influence_ = 0;
    }
    ++epoch_;
    last_shrink_epoch_ = epoch_;
  }

  const InfluenceIndex& index() const { return *index_; }

 private:
  const InfluenceIndex* index_;
  uint16_t threshold_;
  /// Plain backend state; empty when the compressed delegate is engaged.
  std::vector<uint16_t> counts_;
  int64_t influence_ = 0;
  uint64_t epoch_ = 1;              ///< 0 is reserved for "never stamped"
  uint64_t last_shrink_epoch_ = 1;
  /// Engaged iff running compressed; holds counts/influence then.
  std::optional<cindex::CompressedCoverageCounter> compressed_;
};

}  // namespace mroam::influence

#endif  // MROAM_INFLUENCE_COVERAGE_COUNTER_H_
