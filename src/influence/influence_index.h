#ifndef MROAM_INFLUENCE_INFLUENCE_INDEX_H_
#define MROAM_INFLUENCE_INFLUENCE_INDEX_H_

#include <cstdint>
#include <vector>

#include "cindex/postings.h"
#include "common/logging.h"
#include "common/rng.h"
#include "model/dataset.h"

namespace mroam::influence {

/// Which posting-list representation a CoverageCounter (and everything
/// stacked on it — Assignment, the greedies, local search) walks.
/// kPlain is the default; kCompressed routes marginals through the
/// block-compressed kernels in src/cindex, bit-identical by construction
/// (gated by the equivalence suites). Indexes without plain lists (the
/// mmap serving path) use kCompressed regardless of the knob.
enum class IndexBackend {
  kPlain,
  kCompressed,
};

/// Precomputed billboard -> trajectory incidence under the paper's meet
/// model: billboard o influences trajectory t iff some point of t lies
/// within `lambda` meters of o's location (§7.1.2). Built once per
/// (dataset, lambda); all algorithms work off these lists.
///
/// With incidence lists, the influence of a set S,
///   I(S) = sum_t [1 - prod_{o in S}(1 - I(o,t))],
/// reduces to the number of distinct trajectories present in the union of
/// the lists of S's billboards — which CoverageCounter maintains
/// incrementally.
///
/// Both directions are also held block-compressed (src/cindex): Build and
/// FromIncidence compress eagerly so the compressed backend is available
/// on any index, and FromCompressed constructs an index from compressed
/// blobs alone (no plain lists — the zero-copy mmap path), in which case
/// CoveredBy/CoveringOf are unavailable and callers must go through the
/// ForEachCovered/ForEachCovering dispatchers.
class InfluenceIndex {
 public:
  /// An empty index (no billboards, no trajectories). Useful as a member
  /// default before assignment from Build/FromIncidence.
  InfluenceIndex() = default;

  /// Builds the incidence lists by radius queries against a uniform grid
  /// over billboard locations. O(total trajectory points x candidates).
  static InfluenceIndex Build(const model::Dataset& dataset, double lambda);

  /// Builds an index directly from precomputed incidence lists (used by
  /// the temporal time-slot extension and by tests). Each list must be
  /// sorted, duplicate-free, and reference trajectory ids in
  /// [0, num_trajectories). `lambda` is carried for reporting only.
  static InfluenceIndex FromIncidence(
      std::vector<std::vector<model::TrajectoryId>> covered,
      int32_t num_trajectories, double lambda);

  /// Builds a plain-list-free index over compressed blobs (typically
  /// borrowed views into an mmapped snapshot — the caller keeps the
  /// mapping alive). `covered` maps billboards -> trajectories and
  /// `covering` the reverse; the two must describe the same incidence
  /// (universe/list counts and totals are CHECKed, content equality is
  /// the snapshot writer's contract).
  static InfluenceIndex FromCompressed(cindex::CompressedPostings covered,
                                       cindex::CompressedPostings covering,
                                       double lambda);

  /// Whether plain vector lists are present (false only for
  /// FromCompressed indexes).
  bool has_plain() const { return has_plain_; }

  /// Trajectories influenced by billboard `o`, sorted ascending.
  /// Requires has_plain().
  const std::vector<model::TrajectoryId>& CoveredBy(
      model::BillboardId o) const {
    MROAM_DCHECK(has_plain_);
    return covered_[o];
  }

  /// Billboards influencing trajectory `t`, sorted ascending — the reverse
  /// of CoveredBy. Built once with the index (O(total supply)) and shared
  /// by every consumer: the lazy greedy selector uses it to localize cache
  /// invalidation instead of rebuilding the reverse map per run, and the
  /// snapshot format persists it alongside the forward lists. Requires
  /// has_plain().
  const std::vector<model::BillboardId>& CoveringOf(
      model::TrajectoryId t) const {
    MROAM_DCHECK(has_plain_);
    return covering_[t];
  }

  /// Calls fn(TrajectoryId) for each trajectory billboard `o` influences,
  /// ascending, from whichever representation the index holds. The
  /// backend-agnostic form of CoveredBy for consumers that must work on
  /// compressed-only indexes.
  template <typename Fn>
  void ForEachCovered(model::BillboardId o, Fn&& fn) const {
    if (has_plain_) {
      for (model::TrajectoryId t : covered_[o]) fn(t);
    } else {
      covered_c_.ForEach(o, fn);
    }
  }

  /// Calls fn(BillboardId) for each billboard influencing trajectory `t`,
  /// ascending (backend-agnostic CoveringOf).
  template <typename Fn>
  void ForEachCovering(model::TrajectoryId t, Fn&& fn) const {
    if (has_plain_) {
      for (model::BillboardId o : covering_[t]) fn(o);
    } else {
      covering_c_.ForEach(t, fn);
    }
  }

  /// The full reverse index, aligned with trajectory ids (snapshot IO).
  /// Requires has_plain().
  const std::vector<std::vector<model::BillboardId>>& covering() const {
    MROAM_DCHECK(has_plain_);
    return covering_;
  }

  /// The full forward incidence, aligned with billboard ids (snapshot IO).
  /// Requires has_plain().
  const std::vector<std::vector<model::TrajectoryId>>& covered() const {
    MROAM_DCHECK(has_plain_);
    return covered_;
  }

  /// The block-compressed forward/reverse incidence. Always available:
  /// built eagerly by Build/FromIncidence, borrowed by FromCompressed.
  const cindex::CompressedPostings& compressed_covered() const {
    return covered_c_;
  }
  const cindex::CompressedPostings& compressed_covering() const {
    return covering_c_;
  }

  /// I({o}) — the number of trajectories billboard `o` influences.
  int64_t InfluenceOf(model::BillboardId o) const {
    return has_plain_ ? static_cast<int64_t>(covered_[o].size())
                      : static_cast<int64_t>(covered_c_.ListSize(o));
  }

  /// The host's supply I* = sum_o I({o}) (§7.1.3).
  int64_t TotalSupply() const { return total_supply_; }

  int32_t num_billboards() const { return num_billboards_; }
  int32_t num_trajectories() const { return num_trajectories_; }
  double lambda() const { return lambda_; }

  /// Exact I(S) for an arbitrary billboard set, by one-off union counting.
  /// O(sum |lists|); used by tests and reports, not by solver hot paths.
  int64_t InfluenceOfSet(const std::vector<model::BillboardId>& set) const;

 private:
  /// Derives covering_ from covered_ (called by Build/FromIncidence once
  /// the forward lists are final).
  void BuildReverseIndex();

  /// Compresses covered_/covering_ into covered_c_/covering_c_ (called
  /// after BuildReverseIndex; deterministic, so a snapshot round trip
  /// reproduces the blobs bit-exactly).
  void BuildCompressed();

  double lambda_ = 0.0;
  int32_t num_billboards_ = 0;
  int32_t num_trajectories_ = 0;
  int64_t total_supply_ = 0;
  bool has_plain_ = true;
  std::vector<std::vector<model::TrajectoryId>> covered_;
  /// Reverse incidence: covering_[t] lists the billboards whose covered_
  /// list contains t, ascending. Always sized num_trajectories_.
  std::vector<std::vector<model::BillboardId>> covering_;
  /// Block-compressed mirrors of covered_/covering_ (or the only
  /// representation, for FromCompressed indexes).
  cindex::CompressedPostings covered_c_;
  cindex::CompressedPostings covering_c_;
};

/// Reference implementation of the meet model by exhaustive distance
/// checks (no spatial index). For tests of InfluenceIndex::Build.
std::vector<std::vector<model::TrajectoryId>> BruteForceIncidence(
    const model::Dataset& dataset, double lambda);

/// Sets every billboard's rental cost to floor(tau * I(o) / 10) with
/// tau ~ U[0.9, 1.1], the model used in the paper (§7.1.2).
void AssignBillboardCosts(model::Dataset* dataset,
                          const InfluenceIndex& index, common::Rng* rng);

}  // namespace mroam::influence

#endif  // MROAM_INFLUENCE_INFLUENCE_INDEX_H_
