#ifndef MROAM_INFLUENCE_INFLUENCE_INDEX_H_
#define MROAM_INFLUENCE_INFLUENCE_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "model/dataset.h"

namespace mroam::influence {

/// Precomputed billboard -> trajectory incidence under the paper's meet
/// model: billboard o influences trajectory t iff some point of t lies
/// within `lambda` meters of o's location (§7.1.2). Built once per
/// (dataset, lambda); all algorithms work off these lists.
///
/// With incidence lists, the influence of a set S,
///   I(S) = sum_t [1 - prod_{o in S}(1 - I(o,t))],
/// reduces to the number of distinct trajectories present in the union of
/// the lists of S's billboards — which CoverageCounter maintains
/// incrementally.
class InfluenceIndex {
 public:
  /// An empty index (no billboards, no trajectories). Useful as a member
  /// default before assignment from Build/FromIncidence.
  InfluenceIndex() = default;

  /// Builds the incidence lists by radius queries against a uniform grid
  /// over billboard locations. O(total trajectory points x candidates).
  static InfluenceIndex Build(const model::Dataset& dataset, double lambda);

  /// Builds an index directly from precomputed incidence lists (used by
  /// the temporal time-slot extension and by tests). Each list must be
  /// sorted, duplicate-free, and reference trajectory ids in
  /// [0, num_trajectories). `lambda` is carried for reporting only.
  static InfluenceIndex FromIncidence(
      std::vector<std::vector<model::TrajectoryId>> covered,
      int32_t num_trajectories, double lambda);

  /// Trajectories influenced by billboard `o`, sorted ascending.
  const std::vector<model::TrajectoryId>& CoveredBy(
      model::BillboardId o) const {
    return covered_[o];
  }

  /// Billboards influencing trajectory `t`, sorted ascending — the reverse
  /// of CoveredBy. Built once with the index (O(total supply)) and shared
  /// by every consumer: the lazy greedy selector uses it to localize cache
  /// invalidation instead of rebuilding the reverse map per run, and the
  /// snapshot format persists it alongside the forward lists.
  const std::vector<model::BillboardId>& CoveringOf(
      model::TrajectoryId t) const {
    return covering_[t];
  }

  /// The full reverse index, aligned with trajectory ids (snapshot IO).
  const std::vector<std::vector<model::BillboardId>>& covering() const {
    return covering_;
  }

  /// The full forward incidence, aligned with billboard ids (snapshot IO).
  const std::vector<std::vector<model::TrajectoryId>>& covered() const {
    return covered_;
  }

  /// I({o}) — the number of trajectories billboard `o` influences.
  int64_t InfluenceOf(model::BillboardId o) const {
    return static_cast<int64_t>(covered_[o].size());
  }

  /// The host's supply I* = sum_o I({o}) (§7.1.3).
  int64_t TotalSupply() const { return total_supply_; }

  int32_t num_billboards() const {
    return static_cast<int32_t>(covered_.size());
  }
  int32_t num_trajectories() const { return num_trajectories_; }
  double lambda() const { return lambda_; }

  /// Exact I(S) for an arbitrary billboard set, by one-off union counting.
  /// O(sum |lists|); used by tests and reports, not by solver hot paths.
  int64_t InfluenceOfSet(const std::vector<model::BillboardId>& set) const;

 private:
  /// Derives covering_ from covered_ (called by Build/FromIncidence once
  /// the forward lists are final).
  void BuildReverseIndex();

  double lambda_ = 0.0;
  int32_t num_trajectories_ = 0;
  int64_t total_supply_ = 0;
  std::vector<std::vector<model::TrajectoryId>> covered_;
  /// Reverse incidence: covering_[t] lists the billboards whose covered_
  /// list contains t, ascending. Always sized num_trajectories_.
  std::vector<std::vector<model::BillboardId>> covering_;
};

/// Reference implementation of the meet model by exhaustive distance
/// checks (no spatial index). For tests of InfluenceIndex::Build.
std::vector<std::vector<model::TrajectoryId>> BruteForceIncidence(
    const model::Dataset& dataset, double lambda);

/// Sets every billboard's rental cost to floor(tau * I(o) / 10) with
/// tau ~ U[0.9, 1.1], the model used in the paper (§7.1.2).
void AssignBillboardCosts(model::Dataset* dataset,
                          const InfluenceIndex& index, common::Rng* rng);

}  // namespace mroam::influence

#endif  // MROAM_INFLUENCE_INFLUENCE_INDEX_H_
