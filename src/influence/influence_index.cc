#include "influence/influence_index.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "geo/grid_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mroam::influence {

InfluenceIndex InfluenceIndex::Build(const model::Dataset& dataset,
                                     double lambda) {
  MROAM_CHECK(lambda > 0.0);
  MROAM_TRACE_SPAN("influence.index_build");
  common::Stopwatch watch;
  InfluenceIndex index;
  index.lambda_ = lambda;
  index.num_billboards_ = static_cast<int32_t>(dataset.billboards.size());
  index.num_trajectories_ =
      static_cast<int32_t>(dataset.trajectories.size());
  index.covered_.assign(dataset.billboards.size(), {});

  geo::GridIndex grid(lambda);
  for (const model::Billboard& b : dataset.billboards) {
    grid.Insert(b.location, b.id);
  }

  // For each trajectory point, find billboards within lambda; dedupe per
  // trajectory before appending so each (o, t) pair is recorded once.
  std::vector<int32_t> hits;
  std::vector<model::BillboardId> met;
  for (const model::Trajectory& t : dataset.trajectories) {
    met.clear();
    for (const geo::Point& p : t.points) {
      hits.clear();
      grid.QueryRadius(p, lambda, &hits);
      met.insert(met.end(), hits.begin(), hits.end());
    }
    std::sort(met.begin(), met.end());
    met.erase(std::unique(met.begin(), met.end()), met.end());
    for (model::BillboardId o : met) {
      index.covered_[o].push_back(t.id);
    }
  }

  // Trajectories are processed in id order, so lists are already sorted.
  for (const auto& list : index.covered_) {
    MROAM_DCHECK(std::is_sorted(list.begin(), list.end()));
    index.total_supply_ += static_cast<int64_t>(list.size());
  }
  index.BuildReverseIndex();
  index.BuildCompressed();
  MROAM_COUNTER_ADD("influence.index_builds", 1);
  MROAM_HISTOGRAM_OBSERVE("influence.index_build_seconds",
                          watch.ElapsedSeconds());
  return index;
}

InfluenceIndex InfluenceIndex::FromIncidence(
    std::vector<std::vector<model::TrajectoryId>> covered,
    int32_t num_trajectories, double lambda) {
  // This is a public entry point fed by the temporal extension and IO
  // paths, so the preconditions are enforced in every build (MROAM_CHECK,
  // not DCHECK), each naming the offending incidence list.
  MROAM_CHECK(num_trajectories >= 0)
      << "FromIncidence: num_trajectories = " << num_trajectories;
  InfluenceIndex index;
  index.lambda_ = lambda;
  index.num_trajectories_ = num_trajectories;
  index.covered_ = std::move(covered);
  index.num_billboards_ = static_cast<int32_t>(index.covered_.size());
  for (size_t o = 0; o < index.covered_.size(); ++o) {
    const auto& list = index.covered_[o];
    MROAM_CHECK(std::is_sorted(list.begin(), list.end()))
        << "FromIncidence: incidence list of billboard " << o
        << " is not sorted ascending";
    MROAM_CHECK(std::adjacent_find(list.begin(), list.end()) == list.end())
        << "FromIncidence: incidence list of billboard " << o
        << " contains duplicate trajectory ids";
    if (!list.empty()) {
      MROAM_CHECK(list.front() >= 0 && list.back() < num_trajectories)
          << "FromIncidence: incidence list of billboard " << o
          << " references trajectory ids outside [0, " << num_trajectories
          << ")";
    }
    index.total_supply_ += static_cast<int64_t>(list.size());
  }
  index.BuildReverseIndex();
  index.BuildCompressed();
  return index;
}

InfluenceIndex InfluenceIndex::FromCompressed(
    cindex::CompressedPostings covered, cindex::CompressedPostings covering,
    double lambda) {
  // The two blobs must describe one incidence relation from both ends.
  // Universe/list-count symmetry and matching totals are cheap to verify
  // here; full content symmetry is the snapshot writer's contract (and
  // what the v2 round-trip tests pin down).
  MROAM_CHECK(covered.universe() ==
              static_cast<int32_t>(covering.num_lists()))
      << "FromCompressed: covered universe " << covered.universe()
      << " != covering list count " << covering.num_lists();
  MROAM_CHECK(covering.universe() ==
              static_cast<int32_t>(covered.num_lists()))
      << "FromCompressed: covering universe " << covering.universe()
      << " != covered list count " << covered.num_lists();
  MROAM_CHECK(covered.total_count() == covering.total_count())
      << "FromCompressed: forward/reverse posting totals disagree";
  InfluenceIndex index;
  index.lambda_ = lambda;
  index.has_plain_ = false;
  index.num_billboards_ = static_cast<int32_t>(covered.num_lists());
  index.num_trajectories_ = covered.universe();
  index.total_supply_ = static_cast<int64_t>(covered.total_count());
  index.covered_c_ = std::move(covered);
  index.covering_c_ = std::move(covering);
  return index;
}

void InfluenceIndex::BuildCompressed() {
  covered_c_ = cindex::CompressedPostings::Build(covered_, num_trajectories_);
  covering_c_ = cindex::CompressedPostings::Build(covering_, num_billboards_);
}

void InfluenceIndex::BuildReverseIndex() {
  covering_.assign(static_cast<size_t>(num_trajectories_), {});
  // Billboards are walked in ascending id order, so each covering list
  // comes out sorted without an explicit sort.
  for (size_t o = 0; o < covered_.size(); ++o) {
    for (model::TrajectoryId t : covered_[o]) {
      covering_[static_cast<size_t>(t)].push_back(
          static_cast<model::BillboardId>(o));
    }
  }
}

int64_t InfluenceIndex::InfluenceOfSet(
    const std::vector<model::BillboardId>& set) const {
  std::vector<model::TrajectoryId> all;
  for (model::BillboardId o : set) {
    MROAM_CHECK(o >= 0 && o < num_billboards());
    ForEachCovered(o, [&all](model::TrajectoryId t) { all.push_back(t); });
  }
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return static_cast<int64_t>(all.size());
}

std::vector<std::vector<model::TrajectoryId>> BruteForceIncidence(
    const model::Dataset& dataset, double lambda) {
  std::vector<std::vector<model::TrajectoryId>> covered(
      dataset.billboards.size());
  const double r2 = lambda * lambda;
  for (const model::Billboard& b : dataset.billboards) {
    for (const model::Trajectory& t : dataset.trajectories) {
      for (const geo::Point& p : t.points) {
        if (geo::SquaredDistance(p, b.location) <= r2) {
          covered[b.id].push_back(t.id);
          break;
        }
      }
    }
  }
  return covered;
}

void AssignBillboardCosts(model::Dataset* dataset,
                          const InfluenceIndex& index, common::Rng* rng) {
  for (model::Billboard& b : dataset->billboards) {
    double tau = rng->UniformDouble(0.9, 1.1);
    b.cost = std::floor(tau * static_cast<double>(index.InfluenceOf(b.id)) /
                        10.0);
  }
}

}  // namespace mroam::influence
