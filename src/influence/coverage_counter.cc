#include "influence/coverage_counter.h"

#include <algorithm>

namespace mroam::influence {

int64_t CoverageCounter::MarginalGainAfterRemove(model::BillboardId add,
                                                 model::BillboardId rem) const {
  if (compressed_) return compressed_->MarginalGainAfterRemove(add, rem);
  // A trajectory t newly reaches the threshold through `add` iff, after
  // removing `rem`, its count is threshold-1 — i.e. counts_[t] equals
  // threshold-1 (and rem does not cover t), or threshold (and rem covers
  // t). Membership in rem's sorted list is tested with a merge pointer.
  const auto& add_list = index_->CoveredBy(add);
  const auto& rem_list = index_->CoveredBy(rem);
  // The monotone merge pointer below silently returns wrong gains if
  // either list is unsorted; InfluenceIndex guarantees sortedness at
  // build time and this guards the precondition in debug builds.
  MROAM_DCHECK(std::is_sorted(add_list.begin(), add_list.end()));
  MROAM_DCHECK(std::is_sorted(rem_list.begin(), rem_list.end()));
  const uint16_t at_gain = threshold_ - 1;
  int64_t gain = 0;
  size_t ri = 0;
  for (model::TrajectoryId t : add_list) {
    const uint16_t count = counts_[t];
    if (count != at_gain && count != threshold_) continue;
    while (ri < rem_list.size() && rem_list[ri] < t) ++ri;
    const bool rem_covers =
        ri < rem_list.size() && rem_list[ri] == t;
    if (static_cast<int>(count) - (rem_covers ? 1 : 0) ==
        static_cast<int>(at_gain)) {
      ++gain;
    }
  }
  return gain;
}

}  // namespace mroam::influence
