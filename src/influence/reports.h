#ifndef MROAM_INFLUENCE_REPORTS_H_
#define MROAM_INFLUENCE_REPORTS_H_

#include <vector>

#include "influence/influence_index.h"

namespace mroam::influence {

/// Figure 1a series: billboard influences sorted descending, normalized by
/// the maximum influence. Empty if the dataset has no billboards.
std::vector<double> InfluenceDistribution(const InfluenceIndex& index);

/// Figure 1b series: for each requested percentage (0..100] of top
/// billboards (by influence, descending), the impression count — i.e. the
/// fraction of all trajectories covered by at least one selected billboard.
std::vector<double> ImpressionCurve(const InfluenceIndex& index,
                                    const std::vector<double>& percents);

/// Summary statistics of the per-billboard influence distribution, used by
/// generator calibration tests: mean, max, and the share of total supply
/// held by the top decile of billboards.
struct InfluenceSummary {
  double mean = 0.0;
  int64_t max = 0;
  double top_decile_share = 0.0;  ///< supply share of the top 10% boards
  double coverage_ratio_top_half = 0.0;  ///< distinct coverage of top 50% / |T|
};

InfluenceSummary SummarizeInfluence(const InfluenceIndex& index);

}  // namespace mroam::influence

#endif  // MROAM_INFLUENCE_REPORTS_H_
