#ifndef MROAM_PREP_RAW_INGEST_H_
#define MROAM_PREP_RAW_INGEST_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geo/projection.h"
#include "model/dataset.h"

namespace mroam::prep {

/// Column mapping for a raw trip CSV (0-based indices). Defaults match
/// the classic TLC yellow-cab schema slice (pickup/dropoff lon/lat plus a
/// trip-duration column); point it at whatever layout your export has.
struct TripColumns {
  int32_t pickup_lon = 0;
  int32_t pickup_lat = 1;
  int32_t dropoff_lon = 2;
  int32_t dropoff_lat = 3;
  /// Trip duration in seconds; -1 if the file has none (durations are
  /// then estimated from straight-line distance at `assumed_speed_mps`).
  int32_t duration_seconds = 4;
};

/// Column mapping for a raw billboard CSV (0-based indices).
struct BillboardColumns {
  int32_t lon = 0;
  int32_t lat = 1;
};

/// Cleaning rules applied while ingesting raw trips.
struct IngestConfig {
  /// Geographic crop in degrees; rows with any endpoint outside are
  /// dropped. Defaults accept everything.
  double min_lon = -180.0, max_lon = 180.0;
  double min_lat = -90.0, max_lat = 90.0;
  /// Trip-length sanity band (straight-line meters).
  double min_trip_m = 100.0;
  double max_trip_m = 100000.0;
  /// Used when duration_seconds is absent or non-positive.
  double assumed_speed_mps = 5.0;
  /// Rows that fail to parse are dropped (true, the default) or abort the
  /// ingest with DataLoss (false) — use false for curated inputs.
  bool skip_bad_rows = true;
};

/// Ingest accounting: how many raw rows ended up where.
struct IngestStats {
  int64_t rows_read = 0;
  int64_t rows_kept = 0;
  int64_t dropped_parse = 0;
  int64_t dropped_bounds = 0;
  int64_t dropped_length = 0;
};

/// Reads a raw trip CSV, cleans it per `config`, and projects endpoints
/// into planar meters with `projector`. Each kept row becomes an OD-pair
/// trajectory. `stats` (optional) receives the accounting.
common::Result<std::vector<model::Trajectory>> IngestTrips(
    const std::string& path, const TripColumns& columns,
    const IngestConfig& config, const geo::Projector& projector,
    IngestStats* stats = nullptr);

/// Reads a raw billboard CSV and projects locations into planar meters.
/// Rows outside the config's lon/lat crop are dropped.
common::Result<std::vector<model::Billboard>> IngestBillboards(
    const std::string& path, const BillboardColumns& columns,
    const IngestConfig& config, const geo::Projector& projector,
    IngestStats* stats = nullptr);

/// Convenience: ingest trips + billboards into a ready-to-index Dataset
/// (ids densified, dataset validated).
common::Result<model::Dataset> IngestDataset(
    const std::string& trips_path, const TripColumns& trip_columns,
    const std::string& billboards_path,
    const BillboardColumns& billboard_columns, const IngestConfig& config,
    const geo::Projector& projector, const std::string& name);

}  // namespace mroam::prep

#endif  // MROAM_PREP_RAW_INGEST_H_
