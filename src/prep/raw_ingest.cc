#include "prep/raw_ingest.h"

#include <algorithm>

#include "common/csv.h"
#include "common/strings.h"

namespace mroam::prep {

using common::CsvRow;
using common::Result;
using common::Status;

namespace {

/// Fetches and parses column `col` of `row` as a double.
Result<double> Field(const CsvRow& row, int32_t col) {
  if (col < 0 || static_cast<size_t>(col) >= row.size()) {
    return Status::DataLoss("column " + std::to_string(col) +
                            " out of range (row has " +
                            std::to_string(row.size()) + " fields)");
  }
  return common::ParseDouble(row[col]);
}

bool InBounds(const IngestConfig& config, double lon, double lat) {
  return lon >= config.min_lon && lon <= config.max_lon &&
         lat >= config.min_lat && lat <= config.max_lat;
}

}  // namespace

Result<std::vector<model::Trajectory>> IngestTrips(
    const std::string& path, const TripColumns& columns,
    const IngestConfig& config, const geo::Projector& projector,
    IngestStats* stats) {
  MROAM_ASSIGN_OR_RETURN(std::vector<CsvRow> rows,
                         common::ReadCsvFile(path));
  IngestStats local;
  std::vector<model::Trajectory> trips;
  trips.reserve(rows.size());
  for (const CsvRow& row : rows) {
    ++local.rows_read;
    auto plon = Field(row, columns.pickup_lon);
    auto plat = Field(row, columns.pickup_lat);
    auto dlon = Field(row, columns.dropoff_lon);
    auto dlat = Field(row, columns.dropoff_lat);
    if (!plon.ok() || !plat.ok() || !dlon.ok() || !dlat.ok()) {
      if (!config.skip_bad_rows) {
        return Status::DataLoss(path + ": unparseable trip row " +
                                std::to_string(local.rows_read));
      }
      ++local.dropped_parse;
      continue;
    }
    if (!InBounds(config, *plon, *plat) || !InBounds(config, *dlon, *dlat)) {
      ++local.dropped_bounds;
      continue;
    }
    geo::Point pickup = projector.Project(*plon, *plat);
    geo::Point dropoff = projector.Project(*dlon, *dlat);
    double length = geo::Distance(pickup, dropoff);
    if (length < config.min_trip_m || length > config.max_trip_m) {
      ++local.dropped_length;
      continue;
    }

    model::Trajectory t;
    t.id = static_cast<model::TrajectoryId>(trips.size());
    t.points = {pickup, dropoff};
    double duration = 0.0;
    if (columns.duration_seconds >= 0) {
      auto parsed = Field(row, columns.duration_seconds);
      if (parsed.ok()) duration = *parsed;
    }
    if (duration <= 0.0) {
      duration = length / config.assumed_speed_mps;
    }
    t.travel_time_seconds = duration;
    trips.push_back(std::move(t));
    ++local.rows_kept;
  }
  if (stats != nullptr) *stats = local;
  return trips;
}

Result<std::vector<model::Billboard>> IngestBillboards(
    const std::string& path, const BillboardColumns& columns,
    const IngestConfig& config, const geo::Projector& projector,
    IngestStats* stats) {
  MROAM_ASSIGN_OR_RETURN(std::vector<CsvRow> rows,
                         common::ReadCsvFile(path));
  IngestStats local;
  std::vector<model::Billboard> billboards;
  billboards.reserve(rows.size());
  for (const CsvRow& row : rows) {
    ++local.rows_read;
    auto lon = Field(row, columns.lon);
    auto lat = Field(row, columns.lat);
    if (!lon.ok() || !lat.ok()) {
      if (!config.skip_bad_rows) {
        return Status::DataLoss(path + ": unparseable billboard row " +
                                std::to_string(local.rows_read));
      }
      ++local.dropped_parse;
      continue;
    }
    if (!InBounds(config, *lon, *lat)) {
      ++local.dropped_bounds;
      continue;
    }
    model::Billboard b;
    b.id = static_cast<model::BillboardId>(billboards.size());
    b.location = projector.Project(*lon, *lat);
    billboards.push_back(b);
    ++local.rows_kept;
  }
  if (stats != nullptr) *stats = local;
  return billboards;
}

Result<model::Dataset> IngestDataset(
    const std::string& trips_path, const TripColumns& trip_columns,
    const std::string& billboards_path,
    const BillboardColumns& billboard_columns, const IngestConfig& config,
    const geo::Projector& projector, const std::string& name) {
  model::Dataset dataset;
  dataset.name = name;
  MROAM_ASSIGN_OR_RETURN(
      dataset.trajectories,
      IngestTrips(trips_path, trip_columns, config, projector));
  MROAM_ASSIGN_OR_RETURN(
      dataset.billboards,
      IngestBillboards(billboards_path, billboard_columns, config,
                       projector));
  model::ReindexDataset(&dataset);
  std::string problem = model::ValidateDataset(dataset);
  if (!problem.empty()) {
    return Status::Internal("ingested dataset invalid: " + problem);
  }
  return dataset;
}

}  // namespace mroam::prep
