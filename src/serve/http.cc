#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/fault.h"
#include "common/strings.h"

namespace mroam::serve {

using common::Result;
using common::Status;

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

using Clock = std::chrono::steady_clock;

/// Tracks one operation's whole-budget deadline; the idle budget is
/// re-applied per wait in WaitReadable/WaitWritable.
struct Deadline {
  explicit Deadline(const HttpTimeouts& timeouts)
      : idle_ms(timeouts.idle_ms), has_total(timeouts.total_ms >= 0) {
    if (has_total) {
      total = Clock::now() + std::chrono::milliseconds(timeouts.total_ms);
    }
  }

  int idle_ms;
  bool has_total;
  Clock::time_point total{};
};

/// poll()s `fd` for `events` under the idle and total budgets. EINTR
/// retries recompute the remaining budget, so a signal storm cannot
/// extend a deadline. Returns kDeadlineExceeded naming the budget that
/// ran out; POLLERR/POLLHUP fall through to the following recv/send,
/// which surfaces the socket error.
Status WaitReady(int fd, short events, const Deadline& deadline,
                 const char* what) {
  while (true) {
    int wait_ms = deadline.idle_ms;
    if (deadline.has_total) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline.total - Clock::now());
      const int remaining_ms =
          static_cast<int>(std::max<int64_t>(remaining.count(), 0));
      if (remaining_ms == 0) {
        return Status::DeadlineExceeded(std::string(what) +
                                        " exceeded its request budget");
      }
      wait_ms = wait_ms < 0 ? remaining_ms : std::min(wait_ms, remaining_ms);
    }
    if (wait_ms < 0) return Status::Ok();  // fully blocking
    pollfd pfd{fd, events, 0};
    int ready = poll(&pfd, 1, wait_ms);
    if (ready > 0) return Status::Ok();
    if (ready == 0) {
      if (deadline.idle_ms >= 0 && wait_ms == deadline.idle_ms) {
        return Status::DeadlineExceeded(std::string(what) +
                                        " idle for " +
                                        std::to_string(deadline.idle_ms) +
                                        "ms");
      }
      return Status::DeadlineExceeded(std::string(what) +
                                      " exceeded its request budget");
    }
    if (errno == EINTR) continue;
    return Status::IoError(std::string("poll failed: ") +
                           std::strerror(errno));
  }
}

/// One deadline-guarded recv. Returns 0 on orderly EOF; retries EINTR.
Result<size_t> RecvSome(int fd, char* chunk, size_t capacity,
                        const Deadline& deadline) {
  // Chaos: a slow-read fault stalls the reader before the deadline
  // check, burning the request budget exactly like a starved thread
  // would — so an injected stall longer than the budget surfaces as
  // kDeadlineExceeded, not a slow success.
  const common::FaultAction slow = MROAM_FAULT_POINT("serve.slow_read");
  if (slow.fire && slow.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(slow.delay_ms));
  }
  while (true) {
    MROAM_RETURN_IF_ERROR(WaitReady(fd, POLLIN, deadline, "HTTP read"));
    ssize_t n = recv(fd, chunk, capacity, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return Status::IoError(std::string("recv failed: ") +
                           std::strerror(errno));
  }
}

/// recv() until `marker` appears or a size/EOF/deadline limit trips.
/// Appends to *buffer; returns the offset just past the marker.
Result<size_t> ReadUntil(int fd, std::string* buffer, std::string_view marker,
                         size_t max_bytes, const Deadline& deadline) {
  // Resume each scan where the previous one could not yet have matched: a
  // marker absent from the first `size` bytes can only start within the
  // last marker.size()-1 of them. Without this the scan restarts at
  // offset 0 after every recv — O(head²) on dribbled input.
  size_t search_from = 0;
  while (true) {
    size_t pos = buffer->find(marker, search_from);
    if (pos != std::string::npos) return pos + marker.size();
    if (buffer->size() > max_bytes) {
      return Status::InvalidArgument("HTTP head exceeds " +
                                     std::to_string(max_bytes) + " bytes");
    }
    search_from = buffer->size() >= marker.size() - 1
                      ? buffer->size() - (marker.size() - 1)
                      : 0;
    char chunk[4096];
    MROAM_ASSIGN_OR_RETURN(size_t n,
                           RecvSome(fd, chunk, sizeof(chunk), deadline));
    if (n == 0) {
      return Status::IoError("connection closed before full HTTP head");
    }
    buffer->append(chunk, n);
  }
}

Status ReadExact(int fd, std::string* buffer, size_t total,
                 const Deadline& deadline) {
  while (buffer->size() < total) {
    char chunk[4096];
    size_t want = std::min(sizeof(chunk), total - buffer->size());
    MROAM_ASSIGN_OR_RETURN(size_t n, RecvSome(fd, chunk, want, deadline));
    if (n == 0) {
      return Status::IoError("connection closed before full HTTP body");
    }
    buffer->append(chunk, n);
  }
  return Status::Ok();
}

}  // namespace

std::string_view HttpRequest::HeaderOr(std::string_view name,
                                       std::string_view fallback) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return fallback;
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string_view HttpResponse::HeaderOr(std::string_view name,
                                        std::string_view fallback) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return fallback;
}

std::string HttpResponse::Serialize() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    HttpStatusReason(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

Result<HttpRequest> ParseRequestHead(std::string_view head) {
  HttpRequest request;
  size_t line_end = head.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    return Status::InvalidArgument("malformed HTTP request line: '" +
                                   std::string(request_line) + "'");
  }
  request.method = std::string(request_line.substr(0, sp1));
  request.target =
      std::string(common::StripWhitespace(request_line.substr(
          sp1 + 1, sp2 - sp1 - 1)));
  request.version = std::string(request_line.substr(sp2 + 1));
  if (request.method.empty() || request.target.empty() ||
      request.version.rfind("HTTP/", 0) != 0) {
    return Status::InvalidArgument("malformed HTTP request line: '" +
                                   std::string(request_line) + "'");
  }

  std::string_view rest = line_end == std::string_view::npos
                              ? std::string_view()
                              : head.substr(line_end + 2);
  for (std::string_view line : common::Split(rest, '\n')) {
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("malformed HTTP header line: '" +
                                     std::string(line) + "'");
    }
    request.headers.emplace_back(
        ToLower(common::StripWhitespace(line.substr(0, colon))),
        std::string(common::StripWhitespace(line.substr(colon + 1))));
  }
  return request;
}

Result<size_t> ParseContentLength(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("bad Content-Length: ''");
  }
  size_t length = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad Content-Length: '" +
                                     std::string(text) + "'");
    }
    size_t digit = static_cast<size_t>(c - '0');
    if (length > (kMaxHttpBodyBytes - digit) / 10) {
      return Status::InvalidArgument("Content-Length exceeds body limit: '" +
                                     std::string(text) + "'");
    }
    length = length * 10 + digit;
  }
  if (length > kMaxHttpBodyBytes) {
    return Status::InvalidArgument("Content-Length exceeds body limit: '" +
                                   std::string(text) + "'");
  }
  return length;
}

Result<HttpRequest> ReadHttpRequest(int fd, const HttpTimeouts& timeouts) {
  // One deadline spans head + body: the total budget is per request, not
  // per phase, so a client cannot double it by stalling at the boundary.
  const Deadline deadline(timeouts);
  std::string buffer;
  MROAM_ASSIGN_OR_RETURN(size_t body_start,
                         ReadUntil(fd, &buffer, "\r\n\r\n",
                                   kMaxHttpHeadBytes, deadline));
  MROAM_ASSIGN_OR_RETURN(
      HttpRequest request,
      ParseRequestHead(std::string_view(buffer).substr(0, body_start - 4)));

  // Every Content-Length header must parse strictly and agree: duplicate
  // headers with conflicting values are a request-smuggling staple, so
  // they are rejected rather than resolved by first- or last-wins.
  size_t length = 0;
  bool have_length = false;
  for (const auto& [key, value] : request.headers) {
    if (key != "content-length") continue;
    MROAM_ASSIGN_OR_RETURN(size_t parsed, ParseContentLength(value));
    if (have_length && parsed != length) {
      return Status::InvalidArgument(
          "conflicting duplicate Content-Length headers");
    }
    length = parsed;
    have_length = true;
  }
  request.body = buffer.substr(body_start);
  if (request.body.size() > length) {
    return Status::InvalidArgument("request body longer than Content-Length");
  }
  MROAM_RETURN_IF_ERROR(ReadExact(fd, &request.body, length, deadline));
  return request;
}

Status WriteAll(int fd, std::string_view data,
                const HttpTimeouts& timeouts) {
  const Deadline deadline(timeouts);
  const bool bounded = deadline.idle_ms >= 0 || deadline.has_total;
  // A blocking send() on a stream socket parks until EVERY byte is
  // queued, which would let a non-draining peer sail past the deadline
  // inside the syscall. With a budget armed, send non-blockingly and
  // let WaitReady own all the waiting (and the deadline enforcement).
  int flags = 0;
#ifdef MSG_NOSIGNAL
  flags |= MSG_NOSIGNAL;
#endif
  if (bounded) flags |= MSG_DONTWAIT;
  size_t sent = 0;
  while (sent < data.size()) {
    if (bounded) {
      MROAM_RETURN_IF_ERROR(WaitReady(fd, POLLOUT, deadline, "HTTP write"));
    }
    ssize_t n = send(fd, data.data() + sent, data.size() - sent, flags);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // re-poll
      return Status::IoError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<HttpResponse> HttpFetch(const std::string& host, int port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  // The serving layer's requests are small and latency-bound.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("HttpFetch needs a numeric IPv4 host, "
                                   "got '" + host + "'");
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    // An EINTR'd connect keeps going in the kernel; a second connect()
    // would report EALREADY. Wait for completion and read the outcome
    // from SO_ERROR instead of surfacing a spurious IoError.
    bool connected = false;
    if (errno == EINTR) {
      pollfd pfd{fd, POLLOUT, 0};
      int ready;
      do {
        ready = poll(&pfd, 1, -1);
      } while (ready < 0 && errno == EINTR);
      int error = 0;
      socklen_t error_len = sizeof(error);
      connected = ready > 0 &&
                  getsockopt(fd, SOL_SOCKET, SO_ERROR, &error,
                             &error_len) == 0 &&
                  error == 0;
      if (!connected) errno = error != 0 ? error : errno;
    }
    if (!connected) {
      Status status(common::StatusCode::kIoError,
                    "connect to " + host + ":" + std::to_string(port) +
                        " failed: " + std::strerror(errno));
      close(fd);
      return status;
    }
  }

  std::string request = method + " " + target + " HTTP/1.1\r\n" +
                        "Host: " + host + "\r\n" +
                        "Content-Length: " + std::to_string(body.size()) +
                        "\r\n" + "Connection: close\r\n\r\n" + body;
  Status write_status = WriteAll(fd, request);
  if (!write_status.ok()) {
    close(fd);
    return write_status;
  }

  // The server closes after one response, so read to EOF and parse.
  std::string raw;
  while (true) {
    char chunk[4096];
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status(common::StatusCode::kIoError,
                    std::string("recv failed: ") + std::strerror(errno));
      close(fd);
      return status;
    }
    raw.append(chunk, static_cast<size_t>(n));
    if (raw.size() > kMaxHttpHeadBytes + kMaxHttpBodyBytes) {
      close(fd);
      return Status::InvalidArgument("HTTP response too large");
    }
  }
  close(fd);

  size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::IoError("malformed HTTP response (no header terminator)");
  }
  std::string_view head = std::string_view(raw).substr(0, head_end);
  size_t line_end = head.find("\r\n");
  std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos) {
    return Status::IoError("malformed HTTP status line: '" +
                           std::string(status_line) + "'");
  }
  MROAM_ASSIGN_OR_RETURN(
      int64_t code,
      common::ParseInt64(status_line.substr(sp + 1, 3)));

  HttpResponse response;
  response.status = static_cast<int>(code);
  // Response headers (lowercased names), so callers can read Retry-After
  // on a shed or X-Mroam-Stale on a degraded read. Unparseable lines are
  // skipped rather than failing the fetch — the status and body are what
  // every caller needs.
  std::string_view header_block =
      line_end == std::string_view::npos
          ? std::string_view()
          : head.substr(line_end + 2);
  for (std::string_view line : common::Split(header_block, '\n')) {
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    size_t colon = line.find(':');
    if (line.empty() || colon == std::string_view::npos) continue;
    response.headers.emplace_back(
        ToLower(common::StripWhitespace(line.substr(0, colon))),
        std::string(common::StripWhitespace(line.substr(colon + 1))));
  }
  response.body = raw.substr(head_end + 4);
  return response;
}

std::pair<std::string_view, std::string_view> SplitTarget(
    std::string_view target) {
  size_t q = target.find('?');
  if (q == std::string_view::npos) {
    return {target, std::string_view()};
  }
  return {target.substr(0, q), target.substr(q + 1)};
}

std::string_view QueryParam(std::string_view query, std::string_view key) {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    std::string_view pair = query.substr(
        pos, amp == std::string_view::npos ? std::string_view::npos
                                           : amp - pos);
    size_t eq = pair.find('=');
    std::string_view name =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (name == key) {
      return eq == std::string_view::npos ? std::string_view()
                                          : pair.substr(eq + 1);
    }
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
  return std::string_view();
}

Result<double> ExtractJsonNumber(std::string_view json,
                                 std::string_view key) {
  std::string quoted;
  quoted.reserve(key.size() + 2);
  quoted.push_back('"');
  quoted.append(key);
  quoted.push_back('"');
  size_t pos = json.find(quoted);
  if (pos == std::string_view::npos) {
    return Status::InvalidArgument("missing JSON field '" +
                                   std::string(key) + "'");
  }
  pos += quoted.size();
  while (pos < json.size() &&
         (json[pos] == ' ' || json[pos] == '\t' || json[pos] == ':')) {
    ++pos;
  }
  size_t end = pos;
  while (end < json.size() &&
         (std::isdigit(static_cast<unsigned char>(json[end])) ||
          json[end] == '-' || json[end] == '+' || json[end] == '.' ||
          json[end] == 'e' || json[end] == 'E')) {
    ++end;
  }
  if (end == pos) {
    return Status::InvalidArgument("JSON field '" + std::string(key) +
                                   "' is not a number");
  }
  return common::ParseDouble(json.substr(pos, end - pos));
}

}  // namespace mroam::serve
