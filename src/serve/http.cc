#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/fault.h"
#include "common/strings.h"

namespace mroam::serve {

using common::Result;
using common::Status;

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

using Clock = std::chrono::steady_clock;

/// Tracks one operation's whole-budget deadline; the idle budget is
/// re-applied per wait in WaitReadable/WaitWritable.
struct Deadline {
  explicit Deadline(const HttpTimeouts& timeouts)
      : idle_ms(timeouts.idle_ms), has_total(timeouts.total_ms >= 0) {
    if (has_total) {
      total = Clock::now() + std::chrono::milliseconds(timeouts.total_ms);
    }
  }

  int idle_ms;
  bool has_total;
  Clock::time_point total{};
};

/// poll()s `fd` for `events` under the idle and total budgets. EINTR
/// retries recompute the remaining budget, so a signal storm cannot
/// extend a deadline. Returns kDeadlineExceeded naming the budget that
/// ran out; POLLERR/POLLHUP fall through to the following recv/send,
/// which surfaces the socket error.
Status WaitReady(int fd, short events, const Deadline& deadline,
                 const char* what) {
  while (true) {
    int wait_ms = deadline.idle_ms;
    // Which budget this wait is charged against. Attribution must be
    // explicit: the earlier `wait_ms == idle_ms` test misreported a
    // total-budget expiry as an idle timeout whenever the remaining
    // total happened to equal the idle budget — the idle budget is the
    // binding one only when it is strictly shorter than what is left of
    // the total.
    bool idle_binding = deadline.idle_ms >= 0;
    if (deadline.has_total) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(deadline.total - Clock::now());
      const int remaining_ms =
          static_cast<int>(std::max<int64_t>(remaining.count(), 0));
      if (remaining_ms == 0) {
        return Status::DeadlineExceeded(std::string(what) +
                                        " exceeded its request budget");
      }
      idle_binding = deadline.idle_ms >= 0 && deadline.idle_ms < remaining_ms;
      wait_ms = wait_ms < 0 ? remaining_ms : std::min(wait_ms, remaining_ms);
    }
    if (wait_ms < 0) return Status::Ok();  // fully blocking
    pollfd pfd{fd, events, 0};
    int ready = poll(&pfd, 1, wait_ms);
    if (ready > 0) return Status::Ok();
    if (ready == 0) {
      if (idle_binding) {
        return Status::DeadlineExceeded(std::string(what) +
                                        " idle for " +
                                        std::to_string(deadline.idle_ms) +
                                        "ms");
      }
      return Status::DeadlineExceeded(std::string(what) +
                                      " exceeded its request budget");
    }
    if (errno == EINTR) continue;
    return Status::IoError(std::string("poll failed: ") +
                           std::strerror(errno));
  }
}

/// One deadline-guarded recv. Returns 0 on orderly EOF; retries EINTR.
Result<size_t> RecvSome(int fd, char* chunk, size_t capacity,
                        const Deadline& deadline) {
  // Chaos: a slow-read fault stalls the reader before the deadline
  // check, burning the request budget exactly like a starved thread
  // would — so an injected stall longer than the budget surfaces as
  // kDeadlineExceeded, not a slow success.
  const common::FaultAction slow = MROAM_FAULT_POINT("serve.slow_read");
  if (slow.fire && slow.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(slow.delay_ms));
  }
  while (true) {
    MROAM_RETURN_IF_ERROR(WaitReady(fd, POLLIN, deadline, "HTTP read"));
    ssize_t n = recv(fd, chunk, capacity, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    return Status::IoError(std::string("recv failed: ") +
                           std::strerror(errno));
  }
}

/// recv() until `marker` appears or a size/EOF/deadline limit trips.
/// Appends to *buffer; returns the offset just past the marker.
Result<size_t> ReadUntil(int fd, std::string* buffer, std::string_view marker,
                         size_t max_bytes, const Deadline& deadline) {
  // Resume each scan where the previous one could not yet have matched: a
  // marker absent from the first `size` bytes can only start within the
  // last marker.size()-1 of them. Without this the scan restarts at
  // offset 0 after every recv — O(head²) on dribbled input.
  size_t search_from = 0;
  while (true) {
    size_t pos = buffer->find(marker, search_from);
    if (pos != std::string::npos) return pos + marker.size();
    if (buffer->size() > max_bytes) {
      return Status::InvalidArgument("HTTP head exceeds " +
                                     std::to_string(max_bytes) + " bytes");
    }
    search_from = buffer->size() >= marker.size() - 1
                      ? buffer->size() - (marker.size() - 1)
                      : 0;
    char chunk[4096];
    MROAM_ASSIGN_OR_RETURN(size_t n,
                           RecvSome(fd, chunk, sizeof(chunk), deadline));
    if (n == 0) {
      return Status::IoError("connection closed before full HTTP head");
    }
    buffer->append(chunk, n);
  }
}

Status ReadExact(int fd, std::string* buffer, size_t total,
                 const Deadline& deadline) {
  while (buffer->size() < total) {
    char chunk[4096];
    size_t want = std::min(sizeof(chunk), total - buffer->size());
    MROAM_ASSIGN_OR_RETURN(size_t n, RecvSome(fd, chunk, want, deadline));
    if (n == 0) {
      return Status::IoError("connection closed before full HTTP body");
    }
    buffer->append(chunk, n);
  }
  return Status::Ok();
}

}  // namespace

std::string_view HttpRequest::HeaderOr(std::string_view name,
                                       std::string_view fallback) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return fallback;
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string_view HttpResponse::HeaderOr(std::string_view name,
                                        std::string_view fallback) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return fallback;
}

std::string HttpResponse::Serialize() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    HttpStatusReason(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  for (const auto& [name, value] : headers) {
    // The framing headers are owned by this serializer; a caller that
    // echoes them into `headers` must not produce a duplicate (or
    // contradictory) line — on a kept-alive connection a second
    // Content-Length desynchronizes every later response.
    const std::string lower = ToLower(name);
    if (lower == "content-type" || lower == "content-length" ||
        lower == "connection") {
      continue;
    }
    out += name + ": " + value + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += body;
  return out;
}

Result<HttpRequest> ParseRequestHead(std::string_view head) {
  HttpRequest request;
  size_t line_end = head.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  // Exactly two single separating spaces: method SP target SP version.
  // `rfind` alone would quietly swallow a space *inside* the target
  // ("GET /a b HTTP/1.1" parsed as target "/a b"), which on a kept-alive
  // connection lets a malformed request smuggle past the router.
  if (sp1 == std::string_view::npos || sp2 == sp1 ||
      request_line.find(' ', sp1 + 1) != sp2) {
    return Status::InvalidArgument("malformed HTTP request line: '" +
                                   std::string(request_line) + "'");
  }
  request.method = std::string(request_line.substr(0, sp1));
  request.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.version = std::string(request_line.substr(sp2 + 1));
  if (request.method.empty() || request.target.empty() ||
      request.version.rfind("HTTP/", 0) != 0) {
    return Status::InvalidArgument("malformed HTTP request line: '" +
                                   std::string(request_line) + "'");
  }

  std::string_view rest = line_end == std::string_view::npos
                              ? std::string_view()
                              : head.substr(line_end + 2);
  for (std::string_view line : common::Split(rest, '\n')) {
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("malformed HTTP header line: '" +
                                     std::string(line) + "'");
    }
    std::string name = ToLower(common::StripWhitespace(line.substr(0, colon)));
    // ": value" has no field name; accepting it would register a header
    // under "" that HeaderOr("") then finds — reject like any other
    // malformed line.
    if (name.empty()) {
      return Status::InvalidArgument("malformed HTTP header line: '" +
                                     std::string(line) + "'");
    }
    request.headers.emplace_back(
        std::move(name),
        std::string(common::StripWhitespace(line.substr(colon + 1))));
  }
  return request;
}

Result<size_t> ParseContentLength(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("bad Content-Length: ''");
  }
  size_t length = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad Content-Length: '" +
                                     std::string(text) + "'");
    }
    size_t digit = static_cast<size_t>(c - '0');
    if (length > (kMaxHttpBodyBytes - digit) / 10) {
      return Status::InvalidArgument("Content-Length exceeds body limit: '" +
                                     std::string(text) + "'");
    }
    length = length * 10 + digit;
  }
  if (length > kMaxHttpBodyBytes) {
    return Status::InvalidArgument("Content-Length exceeds body limit: '" +
                                   std::string(text) + "'");
  }
  return length;
}

void RequestFramer::Feed(const char* data, size_t n) {
  buffer_.append(data, n);
}

RequestFramer::Outcome RequestFramer::Next(HttpRequest* request,
                                           common::Status* error) {
  static constexpr std::string_view kMarker = "\r\n\r\n";
  size_t pos = buffer_.find(kMarker, search_from_);
  if (pos == std::string::npos) {
    if (buffer_.size() > kMaxHttpHeadBytes) {
      *error = Status::InvalidArgument(
          "HTTP head exceeds " + std::to_string(kMaxHttpHeadBytes) +
          " bytes");
      return Outcome::kError;
    }
    // Resume the next scan where this one could not yet have matched: a
    // marker absent from the first `size` bytes can only start within
    // the last marker.size()-1 of them.
    search_from_ = buffer_.size() >= kMarker.size() - 1
                       ? buffer_.size() - (kMarker.size() - 1)
                       : 0;
    return Outcome::kNeedMore;
  }
  if (pos > kMaxHttpHeadBytes) {
    *error = Status::InvalidArgument(
        "HTTP head exceeds " + std::to_string(kMaxHttpHeadBytes) + " bytes");
    return Outcome::kError;
  }

  common::Result<HttpRequest> parsed =
      ParseRequestHead(std::string_view(buffer_).substr(0, pos));
  if (!parsed.ok()) {
    *error = parsed.status();
    return Outcome::kError;
  }

  // Every Content-Length header must parse strictly and agree — same
  // smuggling rules as ReadHttpRequest.
  size_t length = 0;
  bool have_length = false;
  for (const auto& [key, value] : parsed->headers) {
    if (key != "content-length") continue;
    common::Result<size_t> one = ParseContentLength(value);
    if (!one.ok()) {
      *error = one.status();
      return Outcome::kError;
    }
    if (have_length && *one != length) {
      *error = Status::InvalidArgument(
          "conflicting duplicate Content-Length headers");
      return Outcome::kError;
    }
    length = *one;
    have_length = true;
  }

  const size_t body_start = pos + kMarker.size();
  if (buffer_.size() - body_start < length) {
    // Head is complete but the body is still arriving; pin the scan to
    // the found marker so the re-find after the next Feed is O(1).
    search_from_ = pos;
    return Outcome::kNeedMore;
  }
  *request = std::move(*parsed);
  request->body = buffer_.substr(body_start, length);
  // Bytes past the body are NOT an error here (unlike the one-shot
  // reader): they are the next pipelined request.
  buffer_.erase(0, body_start + length);
  search_from_ = 0;
  return Outcome::kRequest;
}

Result<HttpRequest> ReadHttpRequest(int fd, const HttpTimeouts& timeouts) {
  // One deadline spans head + body: the total budget is per request, not
  // per phase, so a client cannot double it by stalling at the boundary.
  const Deadline deadline(timeouts);
  std::string buffer;
  MROAM_ASSIGN_OR_RETURN(size_t body_start,
                         ReadUntil(fd, &buffer, "\r\n\r\n",
                                   kMaxHttpHeadBytes, deadline));
  MROAM_ASSIGN_OR_RETURN(
      HttpRequest request,
      ParseRequestHead(std::string_view(buffer).substr(0, body_start - 4)));

  // Every Content-Length header must parse strictly and agree: duplicate
  // headers with conflicting values are a request-smuggling staple, so
  // they are rejected rather than resolved by first- or last-wins.
  size_t length = 0;
  bool have_length = false;
  for (const auto& [key, value] : request.headers) {
    if (key != "content-length") continue;
    MROAM_ASSIGN_OR_RETURN(size_t parsed, ParseContentLength(value));
    if (have_length && parsed != length) {
      return Status::InvalidArgument(
          "conflicting duplicate Content-Length headers");
    }
    length = parsed;
    have_length = true;
  }
  request.body = buffer.substr(body_start);
  if (request.body.size() > length) {
    return Status::InvalidArgument("request body longer than Content-Length");
  }
  MROAM_RETURN_IF_ERROR(ReadExact(fd, &request.body, length, deadline));
  return request;
}

Status WriteAll(int fd, std::string_view data,
                const HttpTimeouts& timeouts) {
  const Deadline deadline(timeouts);
  const bool bounded = deadline.idle_ms >= 0 || deadline.has_total;
  // A blocking send() on a stream socket parks until EVERY byte is
  // queued, which would let a non-draining peer sail past the deadline
  // inside the syscall. With a budget armed, send non-blockingly and
  // let WaitReady own all the waiting (and the deadline enforcement).
  int flags = 0;
#ifdef MSG_NOSIGNAL
  flags |= MSG_NOSIGNAL;
#endif
  if (bounded) flags |= MSG_DONTWAIT;
  size_t sent = 0;
  while (sent < data.size()) {
    if (bounded) {
      MROAM_RETURN_IF_ERROR(WaitReady(fd, POLLOUT, deadline, "HTTP write"));
    }
    ssize_t n = send(fd, data.data() + sent, data.size() - sent, flags);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // re-poll
      return Status::IoError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

namespace {

/// socket() + TCP_NODELAY + connect() to a numeric IPv4 host, with the
/// EINTR-resume dance; shared by HttpFetch and HttpClient::Connect.
Result<int> ConnectTcp(const std::string& host, int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  // The serving layer's requests are small and latency-bound.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("HTTP client needs a numeric IPv4 host, "
                                   "got '" + host + "'");
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    // An EINTR'd connect keeps going in the kernel; a second connect()
    // would report EALREADY. Wait for completion and read the outcome
    // from SO_ERROR instead of surfacing a spurious IoError.
    bool connected = false;
    if (errno == EINTR) {
      pollfd pfd{fd, POLLOUT, 0};
      int ready;
      do {
        ready = poll(&pfd, 1, -1);
      } while (ready < 0 && errno == EINTR);
      int error = 0;
      socklen_t error_len = sizeof(error);
      connected = ready > 0 &&
                  getsockopt(fd, SOL_SOCKET, SO_ERROR, &error,
                             &error_len) == 0 &&
                  error == 0;
      if (!connected) errno = error != 0 ? error : errno;
    }
    if (!connected) {
      Status status(common::StatusCode::kIoError,
                    "connect to " + host + ":" + std::to_string(port) +
                        " failed: " + std::strerror(errno));
      close(fd);
      return status;
    }
  }
  return fd;
}

}  // namespace

Result<HttpResponse> ParseResponseHead(std::string_view head) {
  size_t line_end = head.find("\r\n");
  std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos) {
    return Status::IoError("malformed HTTP status line: '" +
                           std::string(status_line) + "'");
  }
  MROAM_ASSIGN_OR_RETURN(int64_t code,
                         common::ParseInt64(status_line.substr(sp + 1, 3)));

  HttpResponse response;
  response.status = static_cast<int>(code);
  // Response headers (lowercased names), so callers can read Retry-After
  // on a shed or X-Mroam-Stale on a degraded read.
  std::string_view header_block =
      line_end == std::string_view::npos
          ? std::string_view()
          : head.substr(line_end + 2);
  for (std::string_view line : common::Split(header_block, '\n')) {
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    size_t colon = line.find(':');
    if (line.empty() || colon == std::string_view::npos) continue;
    response.headers.emplace_back(
        ToLower(common::StripWhitespace(line.substr(0, colon))),
        std::string(common::StripWhitespace(line.substr(colon + 1))));
  }
  return response;
}

Result<HttpResponse> HttpFetch(const std::string& host, int port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body) {
  MROAM_ASSIGN_OR_RETURN(int fd, ConnectTcp(host, port));

  std::string request = method + " " + target + " HTTP/1.1\r\n" +
                        "Host: " + host + "\r\n" +
                        "Content-Length: " + std::to_string(body.size()) +
                        "\r\n" + "Connection: close\r\n\r\n" + body;
  Status write_status = WriteAll(fd, request);
  if (!write_status.ok()) {
    close(fd);
    return write_status;
  }

  // The server closes after one response, so read to EOF and parse.
  std::string raw;
  while (true) {
    char chunk[4096];
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status(common::StatusCode::kIoError,
                    std::string("recv failed: ") + std::strerror(errno));
      close(fd);
      return status;
    }
    raw.append(chunk, static_cast<size_t>(n));
    if (raw.size() > kMaxHttpHeadBytes + kMaxHttpBodyBytes) {
      close(fd);
      return Status::InvalidArgument("HTTP response too large");
    }
  }
  close(fd);

  size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::IoError("malformed HTTP response (no header terminator)");
  }
  MROAM_ASSIGN_OR_RETURN(
      HttpResponse response,
      ParseResponseHead(std::string_view(raw).substr(0, head_end)));
  response.body = raw.substr(head_end + 4);
  return response;
}

HttpClient::~HttpClient() { Close(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : fd_(other.fd_),
      host_(std::move(other.host_)),
      buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    host_ = std::move(other.host_);
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Status HttpClient::Connect(const std::string& host, int port) {
  Close();
  MROAM_ASSIGN_OR_RETURN(int fd, ConnectTcp(host, port));
  fd_ = fd;
  host_ = host;
  buffer_.clear();
  return Status::Ok();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status HttpClient::Send(const std::string& method, const std::string& target,
                        const std::string& body,
                        const HttpTimeouts& timeouts) {
  if (fd_ < 0) return Status::IoError("HttpClient is not connected");
  std::string request = method + " " + target + " HTTP/1.1\r\n" +
                        "Host: " + host_ + "\r\n" +
                        "Content-Length: " + std::to_string(body.size()) +
                        "\r\n" + "Connection: keep-alive\r\n\r\n" + body;
  Status written = WriteAll(fd_, request, timeouts);
  if (!written.ok()) Close();
  return written;
}

Result<HttpResponse> HttpClient::ReadResponse(const HttpTimeouts& timeouts) {
  if (fd_ < 0) return Status::IoError("HttpClient is not connected");
  const Deadline deadline(timeouts);

  // Head: buffered bytes from the previous response may already hold it.
  size_t head_end;
  size_t search_from = 0;
  while (true) {
    head_end = buffer_.find("\r\n\r\n", search_from);
    if (head_end != std::string::npos) break;
    if (buffer_.size() > kMaxHttpHeadBytes) {
      Close();
      return Status::InvalidArgument("HTTP response head too large");
    }
    search_from = buffer_.size() >= 3 ? buffer_.size() - 3 : 0;
    char chunk[4096];
    common::Result<size_t> n = RecvSome(fd_, chunk, sizeof(chunk), deadline);
    if (!n.ok()) {
      Close();
      return n.status();
    }
    if (*n == 0) {
      Close();
      return Status::IoError("connection closed before full HTTP response");
    }
    buffer_.append(chunk, *n);
  }
  MROAM_ASSIGN_OR_RETURN(
      HttpResponse response,
      ParseResponseHead(std::string_view(buffer_).substr(0, head_end)));

  const size_t body_start = head_end + 4;
  std::string_view length_text = response.HeaderOr("content-length");
  if (!length_text.empty()) {
    MROAM_ASSIGN_OR_RETURN(size_t length, ParseContentLength(length_text));
    while (buffer_.size() - body_start < length) {
      char chunk[4096];
      common::Result<size_t> n =
          RecvSome(fd_, chunk, sizeof(chunk), deadline);
      if (!n.ok()) {
        Close();
        return n.status();
      }
      if (*n == 0) {
        Close();
        return Status::IoError("connection closed before full HTTP body");
      }
      buffer_.append(chunk, *n);
    }
    response.body = buffer_.substr(body_start, length);
    buffer_.erase(0, body_start + length);
  } else {
    // No Content-Length: the body runs to EOF (and so does the
    // connection).
    while (true) {
      char chunk[4096];
      common::Result<size_t> n =
          RecvSome(fd_, chunk, sizeof(chunk), deadline);
      if (!n.ok()) {
        Close();
        return n.status();
      }
      if (*n == 0) break;
      buffer_.append(chunk, *n);
      if (buffer_.size() > kMaxHttpHeadBytes + kMaxHttpBodyBytes) {
        Close();
        return Status::InvalidArgument("HTTP response too large");
      }
    }
    response.body = buffer_.substr(body_start);
    Close();
    return response;
  }
  // A server announcing close will not frame another response; drop the
  // connection now so the next Fetch reconnects instead of failing.
  if (response.HeaderOr("connection") == "close") Close();
  return response;
}

Result<HttpResponse> HttpClient::Fetch(const std::string& method,
                                       const std::string& target,
                                       const std::string& body,
                                       const HttpTimeouts& timeouts) {
  MROAM_RETURN_IF_ERROR(Send(method, target, body, timeouts));
  return ReadResponse(timeouts);
}

std::pair<std::string_view, std::string_view> SplitTarget(
    std::string_view target) {
  size_t q = target.find('?');
  if (q == std::string_view::npos) {
    return {target, std::string_view()};
  }
  return {target.substr(0, q), target.substr(q + 1)};
}

std::string_view QueryParam(std::string_view query, std::string_view key) {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    std::string_view pair = query.substr(
        pos, amp == std::string_view::npos ? std::string_view::npos
                                           : amp - pos);
    size_t eq = pair.find('=');
    std::string_view name =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (name == key) {
      return eq == std::string_view::npos ? std::string_view()
                                          : pair.substr(eq + 1);
    }
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
  return std::string_view();
}

Result<double> ExtractJsonNumber(std::string_view json,
                                 std::string_view key) {
  std::string quoted;
  quoted.reserve(key.size() + 2);
  quoted.push_back('"');
  quoted.append(key);
  quoted.push_back('"');
  size_t pos = json.find(quoted);
  if (pos == std::string_view::npos) {
    return Status::InvalidArgument("missing JSON field '" +
                                   std::string(key) + "'");
  }
  pos += quoted.size();
  while (pos < json.size() &&
         (json[pos] == ' ' || json[pos] == '\t' || json[pos] == ':')) {
    ++pos;
  }
  size_t end = pos;
  while (end < json.size() &&
         (std::isdigit(static_cast<unsigned char>(json[end])) ||
          json[end] == '-' || json[end] == '+' || json[end] == '.' ||
          json[end] == 'e' || json[end] == 'E')) {
    ++end;
  }
  if (end == pos) {
    return Status::InvalidArgument("JSON field '" + std::string(key) +
                                   "' is not a number");
  }
  return common::ParseDouble(json.substr(pos, end - pos));
}

}  // namespace mroam::serve
