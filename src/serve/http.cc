#include "serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace mroam::serve {

using common::Result;
using common::Status;

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

/// recv() until `marker` appears or a size/EOF limit trips. Appends to
/// *buffer; returns the offset just past the marker.
Result<size_t> ReadUntil(int fd, std::string* buffer,
                         std::string_view marker, size_t max_bytes) {
  // Resume each scan where the previous one could not yet have matched: a
  // marker absent from the first `size` bytes can only start within the
  // last marker.size()-1 of them. Without this the scan restarts at
  // offset 0 after every recv — O(head²) on dribbled input.
  size_t search_from = 0;
  while (true) {
    size_t pos = buffer->find(marker, search_from);
    if (pos != std::string::npos) return pos + marker.size();
    if (buffer->size() > max_bytes) {
      return Status::InvalidArgument("HTTP head exceeds " +
                                     std::to_string(max_bytes) + " bytes");
    }
    search_from = buffer->size() >= marker.size() - 1
                      ? buffer->size() - (marker.size() - 1)
                      : 0;
    char chunk[4096];
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return Status::IoError("connection closed before full HTTP head");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

Status ReadExact(int fd, std::string* buffer, size_t total) {
  while (buffer->size() < total) {
    char chunk[4096];
    size_t want = std::min(sizeof(chunk), total - buffer->size());
    ssize_t n = recv(fd, chunk, want, 0);
    if (n == 0) {
      return Status::IoError("connection closed before full HTTP body");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
  return Status::Ok();
}

}  // namespace

std::string_view HttpRequest::HeaderOr(std::string_view name,
                                       std::string_view fallback) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return fallback;
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string HttpResponse::Serialize() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    HttpStatusReason(status) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

Result<HttpRequest> ParseRequestHead(std::string_view head) {
  HttpRequest request;
  size_t line_end = head.find("\r\n");
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string_view::npos || sp2 == sp1) {
    return Status::InvalidArgument("malformed HTTP request line: '" +
                                   std::string(request_line) + "'");
  }
  request.method = std::string(request_line.substr(0, sp1));
  request.target =
      std::string(common::StripWhitespace(request_line.substr(
          sp1 + 1, sp2 - sp1 - 1)));
  request.version = std::string(request_line.substr(sp2 + 1));
  if (request.method.empty() || request.target.empty() ||
      request.version.rfind("HTTP/", 0) != 0) {
    return Status::InvalidArgument("malformed HTTP request line: '" +
                                   std::string(request_line) + "'");
  }

  std::string_view rest = line_end == std::string_view::npos
                              ? std::string_view()
                              : head.substr(line_end + 2);
  for (std::string_view line : common::Split(rest, '\n')) {
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::InvalidArgument("malformed HTTP header line: '" +
                                     std::string(line) + "'");
    }
    request.headers.emplace_back(
        ToLower(common::StripWhitespace(line.substr(0, colon))),
        std::string(common::StripWhitespace(line.substr(colon + 1))));
  }
  return request;
}

Result<size_t> ParseContentLength(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("bad Content-Length: ''");
  }
  size_t length = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad Content-Length: '" +
                                     std::string(text) + "'");
    }
    size_t digit = static_cast<size_t>(c - '0');
    if (length > (kMaxHttpBodyBytes - digit) / 10) {
      return Status::InvalidArgument("Content-Length exceeds body limit: '" +
                                     std::string(text) + "'");
    }
    length = length * 10 + digit;
  }
  if (length > kMaxHttpBodyBytes) {
    return Status::InvalidArgument("Content-Length exceeds body limit: '" +
                                   std::string(text) + "'");
  }
  return length;
}

Result<HttpRequest> ReadHttpRequest(int fd) {
  std::string buffer;
  MROAM_ASSIGN_OR_RETURN(size_t body_start,
                         ReadUntil(fd, &buffer, "\r\n\r\n",
                                   kMaxHttpHeadBytes));
  MROAM_ASSIGN_OR_RETURN(
      HttpRequest request,
      ParseRequestHead(std::string_view(buffer).substr(0, body_start - 4)));

  // Every Content-Length header must parse strictly and agree: duplicate
  // headers with conflicting values are a request-smuggling staple, so
  // they are rejected rather than resolved by first- or last-wins.
  size_t length = 0;
  bool have_length = false;
  for (const auto& [key, value] : request.headers) {
    if (key != "content-length") continue;
    MROAM_ASSIGN_OR_RETURN(size_t parsed, ParseContentLength(value));
    if (have_length && parsed != length) {
      return Status::InvalidArgument(
          "conflicting duplicate Content-Length headers");
    }
    length = parsed;
    have_length = true;
  }
  request.body = buffer.substr(body_start);
  if (request.body.size() > length) {
    return Status::InvalidArgument("request body longer than Content-Length");
  }
  MROAM_RETURN_IF_ERROR(ReadExact(fd, &request.body, length));
  return request;
}

Status WriteAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
#ifdef MSG_NOSIGNAL
    ssize_t n = send(fd, data.data() + sent, data.size() - sent,
                     MSG_NOSIGNAL);
#else
    ssize_t n = send(fd, data.data() + sent, data.size() - sent, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<HttpResponse> HttpFetch(const std::string& host, int port,
                               const std::string& method,
                               const std::string& target,
                               const std::string& body) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  // The serving layer's requests are small and latency-bound.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("HttpFetch needs a numeric IPv4 host, "
                                   "got '" + host + "'");
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status(common::StatusCode::kIoError,
                  "connect to " + host + ":" + std::to_string(port) +
                      " failed: " + std::strerror(errno));
    close(fd);
    return status;
  }

  std::string request = method + " " + target + " HTTP/1.1\r\n" +
                        "Host: " + host + "\r\n" +
                        "Content-Length: " + std::to_string(body.size()) +
                        "\r\n" + "Connection: close\r\n\r\n" + body;
  Status write_status = WriteAll(fd, request);
  if (!write_status.ok()) {
    close(fd);
    return write_status;
  }

  // The server closes after one response, so read to EOF and parse.
  std::string raw;
  while (true) {
    char chunk[4096];
    ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status(common::StatusCode::kIoError,
                    std::string("recv failed: ") + std::strerror(errno));
      close(fd);
      return status;
    }
    raw.append(chunk, static_cast<size_t>(n));
    if (raw.size() > kMaxHttpHeadBytes + kMaxHttpBodyBytes) {
      close(fd);
      return Status::InvalidArgument("HTTP response too large");
    }
  }
  close(fd);

  size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status::IoError("malformed HTTP response (no header terminator)");
  }
  std::string_view head = std::string_view(raw).substr(0, head_end);
  size_t line_end = head.find("\r\n");
  std::string_view status_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos) {
    return Status::IoError("malformed HTTP status line: '" +
                           std::string(status_line) + "'");
  }
  MROAM_ASSIGN_OR_RETURN(
      int64_t code,
      common::ParseInt64(status_line.substr(sp + 1, 3)));

  HttpResponse response;
  response.status = static_cast<int>(code);
  response.body = raw.substr(head_end + 4);
  return response;
}

std::pair<std::string_view, std::string_view> SplitTarget(
    std::string_view target) {
  size_t q = target.find('?');
  if (q == std::string_view::npos) {
    return {target, std::string_view()};
  }
  return {target.substr(0, q), target.substr(q + 1)};
}

std::string_view QueryParam(std::string_view query, std::string_view key) {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    std::string_view pair = query.substr(
        pos, amp == std::string_view::npos ? std::string_view::npos
                                           : amp - pos);
    size_t eq = pair.find('=');
    std::string_view name =
        eq == std::string_view::npos ? pair : pair.substr(0, eq);
    if (name == key) {
      return eq == std::string_view::npos ? std::string_view()
                                          : pair.substr(eq + 1);
    }
    if (amp == std::string_view::npos) break;
    pos = amp + 1;
  }
  return std::string_view();
}

Result<double> ExtractJsonNumber(std::string_view json,
                                 std::string_view key) {
  std::string quoted;
  quoted.reserve(key.size() + 2);
  quoted.push_back('"');
  quoted.append(key);
  quoted.push_back('"');
  size_t pos = json.find(quoted);
  if (pos == std::string_view::npos) {
    return Status::InvalidArgument("missing JSON field '" +
                                   std::string(key) + "'");
  }
  pos += quoted.size();
  while (pos < json.size() &&
         (json[pos] == ' ' || json[pos] == '\t' || json[pos] == ':')) {
    ++pos;
  }
  size_t end = pos;
  while (end < json.size() &&
         (std::isdigit(static_cast<unsigned char>(json[end])) ||
          json[end] == '-' || json[end] == '+' || json[end] == '.' ||
          json[end] == 'e' || json[end] == 'E')) {
    ++end;
  }
  if (end == pos) {
    return Status::InvalidArgument("JSON field '" + std::string(key) +
                                   "' is not a number");
  }
  return common::ParseDouble(json.substr(pos, end - pos));
}

}  // namespace mroam::serve
