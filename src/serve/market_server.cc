#include "serve/market_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mroam::serve {

using common::Status;

namespace {

HttpResponse JsonError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\":";
  obs::internal::AppendJsonString(&response.body, message);
  response.body += "}";
  MROAM_COUNTER_ADD("serve.http_errors", 1);
  return response;
}

void AppendBreakdownJson(std::string* out,
                         const core::RegretBreakdown& breakdown) {
  *out += "{\"total\":" + obs::internal::JsonDouble(breakdown.total) +
          ",\"excessive\":" +
          obs::internal::JsonDouble(breakdown.excessive) +
          ",\"unsatisfied_penalty\":" +
          obs::internal::JsonDouble(breakdown.unsatisfied_penalty) +
          ",\"satisfied_count\":" +
          std::to_string(breakdown.satisfied_count) +
          ",\"advertiser_count\":" +
          std::to_string(breakdown.advertiser_count) + "}";
}

}  // namespace

MarketServer::MarketServer(const influence::InfluenceIndex* index,
                           MarketServerConfig config)
    : index_(index),
      config_(std::move(config)),
      market_(index, config_.market) {
  MROAM_CHECK(config_.max_batch >= 1);
  MROAM_CHECK(config_.max_batch_delay_seconds >= 0.0);
  MROAM_CHECK(config_.num_threads >= 1);
  MROAM_CHECK(config_.max_connections >= 1);
  MROAM_CHECK(config_.max_queue >= 1);
  MROAM_CHECK(config_.degraded_watermark >= 1);
  MROAM_CHECK(config_.degraded_watermark <= config_.max_queue);
}

MarketServer::~MarketServer() { Stop(); }

Status MarketServer::Start() {
  MROAM_CHECK(!running_.load());
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::IoError(
        "cannot bind port " + std::to_string(config_.port) + ": " +
        std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    Status status = Status::IoError(std::string("getsockname failed: ") +
                                    std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);
  if (listen(listen_fd_, 128) != 0) {
    Status status = Status::IoError(std::string("listen failed: ") +
                                    std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  draining_.store(false);
  stopping_.store(false);
  last_commit_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
  pool_ = std::make_unique<common::ThreadPool>(config_.num_threads);
  flush_thread_ = std::thread([this] { FlushLoop(); });
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  running_.store(true, std::memory_order_release);
  MROAM_LOG(Info) << "mroam market server listening on port " << port_
                  << " (" << config_.num_threads << " workers, batch "
                  << config_.max_batch << "/"
                  << config_.max_batch_delay_seconds * 1e3 << "ms, policy "
                  << core::ReplanPolicyName(config_.market.policy) << ")";
  return Status::Ok();
}

void MarketServer::Stop() {
  if (listen_fd_ < 0 && !accept_thread_.joinable()) return;

  // 1. Stop accepting: new connections are refused, in-flight ones keep
  //    their worker. The batcher switches to immediate flush so queued
  //    arrivals (and any that in-flight requests still add) drain fast.
  draining_.store(true);
  batch_cv_.notify_all();
  conn_cv_.notify_all();  // wake an accept loop parked at the conn cap
  // shutdown() wakes the blocked accept(); the fd is closed only after
  // the accept thread is gone so it cannot race a reused descriptor.
  if (listen_fd_ >= 0) shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Drain workers: ThreadPool's destructor runs every queued task to
  //    completion; each blocked POST is released by the flush loop, which
  //    is still running in immediate mode.
  pool_.reset();

  // 3. Now nothing can enqueue: let the flush loop drain the tail and
  //    exit, then persist whatever MROAM_TRACE collected.
  stopping_.store(true);
  batch_cv_.notify_all();
  if (flush_thread_.joinable()) flush_thread_.join();
  running_.store(false, std::memory_order_release);

  common::Status flushed = obs::Tracer::Global().Flush();
  if (!flushed.ok()) {
    MROAM_LOG(Warning) << "trace flush failed: " << flushed;
  }
  MROAM_LOG(Info) << "mroam market server drained and stopped after "
                  << batches_flushed_.load() << " batches, day "
                  << market_.today();
}

void MarketServer::AcceptLoop() {
  while (true) {
    // Accept-side backpressure: at the connection cap, park until a
    // worker finishes instead of accepting. Pending clients queue in the
    // kernel backlog — bounded, and the kernel's overflow behavior
    // (drop/RST) pushes back on the client, not on this process's
    // memory.
    {
      std::unique_lock<std::mutex> lock(conn_mu_);
      conn_cv_.wait(lock, [this] {
        return draining_.load() ||
               open_connections_ < config_.max_connections;
      });
    }
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Closed by Stop() (or a fatal error): stop accepting either way.
      break;
    }
    if (draining_.load()) {
      close(fd);
      break;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      ++open_connections_;
      MROAM_GAUGE_SET("serve.open_connections", open_connections_);
    }
    pool_->Submit([this, fd] { HandleConnection(fd); });
  }
}

void MarketServer::HandleConnection(int fd) {
  MROAM_TRACE_SPAN("serve.request");
  common::Stopwatch watch;
  MROAM_COUNTER_ADD("serve.http_requests", 1);
  const HttpTimeouts read_timeouts{config_.read_idle_timeout_ms,
                                   config_.request_timeout_ms};
  const HttpTimeouts write_timeouts{config_.write_timeout_ms,
                                    config_.write_timeout_ms};
  common::Result<HttpRequest> request = ReadHttpRequest(fd, read_timeouts);
  MROAM_HISTOGRAM_OBSERVE("serve.stage.read_seconds",
                          watch.ElapsedSeconds());
  HttpResponse response;
  RequestTrace trace;
  if (!request.ok()) {
    if (request.status().code() == common::StatusCode::kDeadlineExceeded) {
      // Slow-loris / stalled read: reclaim the worker with an explicit
      // 408 so the client knows its request never entered admission.
      response = JsonError(408, request.status().message());
      read_timeouts_.fetch_add(1, std::memory_order_relaxed);
      MROAM_COUNTER_ADD("serve.read_timeouts", 1);
      MROAM_FLIGHT_EVENT("conn.read_timeout", trace.request_id);
    } else {
      response = JsonError(400, request.status().message());
    }
  } else {
    response = Handle(*request, &trace);
  }
  // Chaos: drop the connection mid-response — half the bytes, then RST
  // from the client's point of view. Any committed work stays committed;
  // the contract is that the *server* stays consistent, not the client.
  const common::FaultAction drop =
      MROAM_FAULT_POINT("serve.drop_connection");
  std::string wire = response.Serialize();
  if (drop.fire) {
    dropped_responses_.fetch_add(1, std::memory_order_relaxed);
    MROAM_COUNTER_ADD("serve.dropped_responses", 1);
    MROAM_FLIGHT_EVENT("conn.fault_drop", trace.request_id);
    wire.resize(wire.size() / 2);
  }
  Status written = WriteAll(fd, wire, write_timeouts);
  if (!written.ok()) {
    if (written.code() == common::StatusCode::kDeadlineExceeded) {
      write_timeouts_.fetch_add(1, std::memory_order_relaxed);
      MROAM_COUNTER_ADD("serve.write_timeouts", 1);
    }
    MROAM_LOG(Debug) << "response write failed: " << written;
  }
  close(fd);
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    --open_connections_;
    MROAM_GAUGE_SET("serve.open_connections", open_connections_);
  }
  conn_cv_.notify_all();
  // The respond stage of a submitted contract: replan finished -> the
  // group-commit response bytes are on the wire.
  if (trace.replan_done != std::chrono::steady_clock::time_point{}) {
    MROAM_HISTOGRAM_OBSERVE(
        "serve.stage.respond_seconds",
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      trace.replan_done)
            .count());
    MROAM_FLIGHT_EVENT("ticket.respond", trace.ticket);
  }
  MROAM_HISTOGRAM_OBSERVE("serve.request_seconds", watch.ElapsedSeconds());
}

HttpResponse MarketServer::Handle(const HttpRequest& request) {
  RequestTrace trace;
  return Handle(request, &trace);
}

HttpResponse MarketServer::Handle(const HttpRequest& request,
                                  RequestTrace* trace) {
  trace->request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto [path, query] = SplitTarget(request.target);
  // Route on the path first: a known path with the wrong method is a 405
  // naming the right one, and only a truly unknown path falls through to
  // the 404 listing every endpoint — so /debug/* typos are diagnosable
  // from the error body alone.
  if (path == "/contracts") {
    if (request.method != "POST") {
      return JsonError(405, "use POST to submit a contract");
    }
    return HandleSubmit(request, trace);
  }
  if (common::StartsWith(path, "/contracts/")) {
    if (request.method != "DELETE") {
      return JsonError(405, "use DELETE to withdraw a contract");
    }
    return HandleCancel(request);
  }
  const bool is_get_path =
      path == "/assignment" || path == "/report" || path == "/healthz" ||
      path == "/readyz" || path == "/metrics" || path == "/debug/vars" ||
      path == "/debug/flight" || path == "/debug/trace";
  if (is_get_path) {
    if (request.method != "GET") {
      return JsonError(405, "use GET for " + std::string(path));
    }
    if (path == "/assignment") return HandleAssignment();
    if (path == "/report") return HandleReport();
    if (path == "/healthz") return HandleHealth();
    if (path == "/readyz") return HandleReady();
    if (path == "/debug/vars") return HandleDebugVars();
    if (path == "/debug/flight") return HandleDebugFlight();
    if (path == "/debug/trace") return HandleDebugTrace(query);
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4";
    response.body =
        obs::MetricsRegistry::Global().Snapshot().ToPrometheus();
    return response;
  }
  HttpResponse response = JsonError(
      404, "no such endpoint: " + std::string(path));
  response.body.pop_back();  // reopen the JsonError object
  response.body +=
      ",\"known_endpoints\":[\"POST /contracts\","
      "\"DELETE /contracts/<id>\",\"GET /assignment\",\"GET /report\","
      "\"GET /healthz\",\"GET /readyz\",\"GET /metrics\","
      "\"GET /debug/vars\",\"GET /debug/flight\","
      "\"GET /debug/trace?ms=N\"]}";
  return response;
}

bool MarketServer::Overloaded(size_t* depth) {
  size_t queued;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    queued = queue_.size();
  }
  if (depth != nullptr) *depth = queued;
  return queued >= static_cast<size_t>(config_.degraded_watermark);
}

void MarketServer::AddStaleHeader(HttpResponse* response) {
  const int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  const int64_t age_ms =
      std::max<int64_t>(
          0, now_ns - last_commit_ns_.load(std::memory_order_relaxed)) /
      1000000;
  response->headers.emplace_back("X-Mroam-Stale", std::to_string(age_ms));
  MROAM_COUNTER_ADD("serve.stale_reads", 1);
}

HttpResponse MarketServer::HandleSubmit(const HttpRequest& request,
                                        RequestTrace* trace) {
  common::Result<double> demand = ExtractJsonNumber(request.body, "demand");
  common::Result<double> payment =
      ExtractJsonNumber(request.body, "payment");
  if (!demand.ok()) return JsonError(400, demand.status().message());
  if (!payment.ok()) return JsonError(400, payment.status().message());
  if (*demand < 1.0 || *demand > 9e15 ||
      *demand != static_cast<double>(static_cast<int64_t>(*demand))) {
    return JsonError(400, "demand must be a positive integer");
  }
  if (*payment <= 0.0) {
    return JsonError(400, "payment must be positive");
  }
  if (stopping_.load() || draining_.load()) {
    return JsonError(503, "server is draining");
  }

  market::Advertiser terms;
  terms.demand = static_cast<int64_t>(*demand);
  terms.payment = *payment;

  std::future<SubmitOutcome> future;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    // Bounded admission: past the high-watermark the request is shed
    // with 429 and a Retry-After derived from the flush cadence (how
    // long the backlog takes to replan at one batch per delay window) —
    // the overload contract's "bounded queue, explicit shedding" half.
    const size_t depth = queue_.size();
    if (depth >= static_cast<size_t>(config_.max_queue)) {
      shed_total_.fetch_add(1, std::memory_order_relaxed);
      MROAM_COUNTER_ADD("serve.shed_total", 1);
      MROAM_FLIGHT_EVENT("ticket.shed", trace->request_id);
      const double pending_batches = std::ceil(
          static_cast<double>(depth) /
          static_cast<double>(config_.max_batch));
      const int64_t retry_after_s = std::clamp<int64_t>(
          static_cast<int64_t>(std::ceil(
              pending_batches * config_.max_batch_delay_seconds)),
          1, 60);
      HttpResponse shed = JsonError(
          429, "admission queue full (" + std::to_string(depth) +
                   " waiting); retry after " +
                   std::to_string(retry_after_s) + "s");
      shed.headers.emplace_back("Retry-After",
                                std::to_string(retry_after_s));
      return shed;
    }
    MROAM_FLIGHT_EVENT("ticket.enqueue", trace->request_id);
    PendingArrival pending;
    pending.terms = terms;
    pending.enqueued = std::chrono::steady_clock::now();
    pending.request_id = trace->request_id;
    future = pending.outcome.get_future();
    queue_.push_back(std::move(pending));
    MROAM_GAUGE_SET("serve.queue_depth",
                    static_cast<int64_t>(queue_.size()));
  }
  batch_cv_.notify_all();
  // Group commit: the response is the contract's post-replan outcome.
  SubmitOutcome outcome = future.get();
  trace->ticket = outcome.ticket;
  trace->replan_done = outcome.replan_done;
  return std::move(outcome.response);
}

HttpResponse MarketServer::HandleDebugVars() {
  HttpResponse response;
  response.body = obs::MetricsRegistry::Global().Snapshot().ToJson();
  return response;
}

HttpResponse MarketServer::HandleDebugFlight() {
  HttpResponse response;
  response.body = obs::FlightRecorder::Global().DumpJson();
  return response;
}

HttpResponse MarketServer::HandleDebugTrace(std::string_view query) {
  double ms = 250.0;
  std::string_view text = QueryParam(query, "ms");
  if (!text.empty()) {
    common::Result<int64_t> parsed = common::ParseInt64(text);
    if (!parsed.ok() || *parsed < 1 || *parsed > 10000) {
      return JsonError(400, "ms must be an integer in [1, 10000], got '" +
                                std::string(text) + "'");
    }
    ms = static_cast<double>(*parsed);
  }
  // Blocks this worker for the window (bounded at 10s); concurrent
  // captures serialize inside CaptureWindow.
  HttpResponse response;
  response.body = obs::Tracer::Global().CaptureWindow(ms / 1e3);
  return response;
}

HttpResponse MarketServer::HandleCancel(const HttpRequest& request) {
  std::string_view id_text =
      std::string_view(request.target).substr(strlen("/contracts/"));
  common::Result<int64_t> ticket = common::ParseInt64(id_text);
  if (!ticket.ok()) {
    return JsonError(400, "bad contract id '" + std::string(id_text) + "'");
  }
  bool cancelled;
  int32_t active;
  {
    std::lock_guard<std::mutex> lock(market_mu_);
    cancelled = market_.Cancel(*ticket);
    active = market_.active_contracts();
  }
  if (!cancelled) {
    return JsonError(404,
                     "no active contract " + std::to_string(*ticket));
  }
  MROAM_COUNTER_ADD("serve.contracts_cancelled", 1);
  MROAM_GAUGE_SET("serve.active_contracts", active);
  HttpResponse response;
  response.body = "{\"cancelled\":" + std::to_string(*ticket) +
                  ",\"active_contracts\":" + std::to_string(active) + "}";
  return response;
}

HttpResponse MarketServer::HandleAssignment() {
  HttpResponse response;
  // Degraded mode: reads keep answering from the last committed book —
  // never blocked on the replan backlog — but an overloaded server says
  // so explicitly, so a caller can tell "fresh" from "best effort".
  if (Overloaded()) AddStaleHeader(&response);
  std::lock_guard<std::mutex> lock(market_mu_);
  const auto& terms = market_.ActiveTerms();
  const auto& sets = market_.ActiveSets();
  const auto& tickets = market_.ActiveTickets();
  response.body = "{\"day\":" + std::to_string(market_.today()) +
                  ",\"contracts\":[";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) response.body += ",";
    std::vector<model::BillboardId> sorted = sets[i];
    std::sort(sorted.begin(), sorted.end());
    response.body += "{\"ticket\":" + std::to_string(tickets[i]) +
                     ",\"demand\":" + std::to_string(terms[i].demand) +
                     ",\"payment\":" +
                     obs::internal::JsonDouble(terms[i].payment) +
                     ",\"influence\":" +
                     std::to_string(index_->InfluenceOfSet(sorted)) +
                     ",\"billboards\":[";
    for (size_t k = 0; k < sorted.size(); ++k) {
      if (k > 0) response.body += ",";
      response.body += std::to_string(sorted[k]);
    }
    response.body += "]}";
  }
  response.body += "]}";
  return response;
}

HttpResponse MarketServer::HandleReport() {
  HttpResponse response;
  size_t queued;
  if (Overloaded(&queued)) AddStaleHeader(&response);
  std::lock_guard<std::mutex> lock(market_mu_);
  response.body =
      "{\"day\":" + std::to_string(market_.today()) +
      ",\"policy\":";
  obs::internal::AppendJsonString(
      &response.body, core::ReplanPolicyName(config_.market.policy));
  response.body +=
      ",\"active_contracts\":" + std::to_string(market_.active_contracts()) +
      ",\"batches_flushed\":" + std::to_string(batches_flushed_.load()) +
      ",\"queue_depth\":" + std::to_string(queued) +
      ",\"shed_total\":" + std::to_string(shed_total_.load()) +
      ",\"read_timeouts\":" + std::to_string(read_timeouts_.load()) +
      ",\"last_day\":{\"arrived\":" + std::to_string(last_day_.arrived) +
      ",\"expired\":" + std::to_string(last_day_.expired) +
      ",\"cancelled\":" + std::to_string(last_day_.cancelled) +
      ",\"churn_boards\":" + std::to_string(last_day_.churn_boards) +
      ",\"boards_touched\":" + std::to_string(last_day_.boards_touched) +
      ",\"reoptimized_advertisers\":" +
      std::to_string(last_day_.reoptimized_advertisers) +
      ",\"mode\":\"" + core::ReplanModeName(last_day_.mode) + "\"" +
      ",\"full_solve_fallback\":" +
      (last_day_.full_solve_fallback ? "true" : "false") +
      ",\"seconds\":" + obs::internal::JsonDouble(last_day_.seconds) +
      ",\"stage_seconds\":{\"queue_wait\":" +
      obs::internal::JsonDouble(
          last_day_.report.PhaseSeconds("serve.queue_wait")) +
      ",\"replan\":" +
      obs::internal::JsonDouble(
          last_day_.report.PhaseSeconds("serve.replan")) +
      "}" +
      ",\"breakdown\":";
  AppendBreakdownJson(&response.body, last_day_.breakdown);
  response.body += "}}";
  return response;
}

HttpResponse MarketServer::HandleHealth() {
  // Liveness only: 200 for as long as the process can answer at all —
  // an overloaded or draining server is still *alive*. Restart decisions
  // key on this; routing decisions key on /readyz.
  HttpResponse response;
  std::lock_guard<std::mutex> lock(market_mu_);
  response.body =
      "{\"status\":\"ok\",\"day\":" + std::to_string(market_.today()) +
      ",\"active_contracts\":" + std::to_string(market_.active_contracts()) +
      "}";
  return response;
}

HttpResponse MarketServer::HandleReady() {
  size_t depth = 0;
  const bool overloaded = Overloaded(&depth);
  const bool draining = draining_.load() || stopping_.load();
  HttpResponse response;
  const char* state = draining ? "draining"
                     : overloaded ? "overloaded"
                                  : "ok";
  response.status = (draining || overloaded) ? 503 : 200;
  response.body =
      std::string("{\"status\":\"") + state +
      "\",\"queue_depth\":" + std::to_string(depth) +
      ",\"degraded_watermark\":" +
      std::to_string(config_.degraded_watermark) +
      ",\"shed_total\":" + std::to_string(shed_total_.load()) + "}";
  return response;
}

void MarketServer::FlushLoop() {
  std::unique_lock<std::mutex> lock(batch_mu_);
  while (true) {
    batch_cv_.wait(lock, [this] {
      return stopping_.load() || !queue_.empty();
    });
    if (queue_.empty()) {
      if (stopping_.load()) return;
      continue;
    }
    if (!draining_.load()) {
      // Admission batching: hold the batch open until it is full or the
      // oldest arrival has waited out the delay budget.
      const auto deadline =
          queue_.front().enqueued +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(
                  config_.max_batch_delay_seconds));
      batch_cv_.wait_until(lock, deadline, [this] {
        return stopping_.load() || draining_.load() ||
               static_cast<int>(queue_.size()) >= config_.max_batch;
      });
    }
    lock.unlock();
    FlushBatch();
    lock.lock();
  }
}

void MarketServer::FlushBatch() {
  MROAM_TRACE_SPAN("serve.flush_batch");
  std::vector<PendingArrival> batch;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    batch.swap(queue_);
    MROAM_GAUGE_SET("serve.queue_depth", 0);
  }
  if (batch.empty()) return;

  const auto now = std::chrono::steady_clock::now();
  std::vector<market::Advertiser> arrivals;
  arrivals.reserve(batch.size());
  double queue_wait_total = 0.0;
  for (const PendingArrival& pending : batch) {
    arrivals.push_back(pending.terms);
    const double waited =
        std::chrono::duration<double>(now - pending.enqueued).count();
    queue_wait_total += waited;
    MROAM_HISTOGRAM_OBSERVE("serve.stage.queue_wait_seconds", waited);
    // Legacy name kept for dashboards that predate the stage histograms.
    MROAM_HISTOGRAM_OBSERVE("serve.admission_wait_seconds", waited);
    MROAM_FLIGHT_EVENT("ticket.flush", pending.request_id);
  }

  // Chaos: a delayed replan backs the admission queue up, which is what
  // drives the shed / degraded-mode paths in a reproducible run.
  const common::FaultAction delay = MROAM_FAULT_POINT("serve.delay_replan");
  if (delay.fire && delay.delay_ms > 0) {
    MROAM_FLIGHT_EVENT("replan.fault_delay", delay.delay_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay.delay_ms));
  }

  common::Stopwatch watch;
  core::DayResult day;
  std::vector<std::string> outcomes(batch.size());
  std::vector<int64_t> admitted;
  {
    std::lock_guard<std::mutex> lock(market_mu_);
    day = market_.AdvanceDay(std::move(arrivals));
    const double replan_seconds = watch.ElapsedSeconds();
    admitted = day.admitted_tickets;

    // Per-arrival outcome: admitted_tickets aligns with the batch order;
    // look each ticket up in the replanned deployment.
    std::unordered_map<int64_t, size_t> position;
    const auto& tickets = market_.ActiveTickets();
    for (size_t i = 0; i < tickets.size(); ++i) position[tickets[i]] = i;
    const auto& sets = market_.ActiveSets();
    const auto& terms = market_.ActiveTerms();
    for (size_t i = 0; i < batch.size(); ++i) {
      const int64_t ticket = day.admitted_tickets[i];
      auto it = position.find(ticket);
      MROAM_CHECK(it != position.end());
      const int64_t influence = index_->InfluenceOfSet(sets[it->second]);
      const bool satisfied = influence >= terms[it->second].demand;
      outcomes[i] = "{\"ticket\":" + std::to_string(ticket) +
                    ",\"day\":" + std::to_string(day.day) +
                    ",\"satisfied\":" + (satisfied ? "true" : "false") +
                    ",\"influence\":" + std::to_string(influence) +
                    ",\"active_contracts\":" +
                    std::to_string(day.active_contracts) + "}";
    }
    // Stage accounting rides in the day's RunReport, so GET /report can
    // show where this batch's wall time went (queue_wait is summed over
    // the batch's arrivals, like parallel solver phases).
    day.report.AddPhase("serve.queue_wait", queue_wait_total);
    day.report.AddPhase("serve.replan", replan_seconds);
    last_day_ = std::move(day);
    MROAM_GAUGE_SET("serve.active_contracts", market_.active_contracts());
  }
  const auto replan_done = std::chrono::steady_clock::now();
  last_commit_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          replan_done.time_since_epoch())
          .count(),
      std::memory_order_relaxed);
  MROAM_HISTOGRAM_OBSERVE("serve.stage.replan_seconds",
                          watch.ElapsedSeconds());
  MROAM_HISTOGRAM_OBSERVE("serve.replan_seconds", watch.ElapsedSeconds());
  MROAM_COUNTER_ADD("serve.batches", 1);
  MROAM_COUNTER_ADD("serve.contracts_admitted",
                    static_cast<int64_t>(batch.size()));
  // Per-flush churn and replan telemetry (last_day_ holds today's result
  // under market_mu_; these are the aggregate views).
  MROAM_COUNTER_ADD("serve.churn_arrived", last_day_.arrived);
  MROAM_COUNTER_ADD("serve.churn_expired", last_day_.expired);
  MROAM_COUNTER_ADD("serve.churn_cancelled", last_day_.cancelled);
  MROAM_HISTOGRAM_OBSERVE("serve.boards_touched",
                          static_cast<double>(last_day_.boards_touched));
  if (last_day_.mode == core::ReplanMode::kIncremental) {
    MROAM_COUNTER_ADD("serve.replan_incremental", 1);
    MROAM_HISTOGRAM_OBSERVE(
        "serve.reoptimized_advertisers",
        static_cast<double>(last_day_.reoptimized_advertisers));
  }
  if (last_day_.full_solve_fallback) {
    MROAM_COUNTER_ADD("serve.replan_full_fallback", 1);
  }
  batches_flushed_.fetch_add(1, std::memory_order_relaxed);

  for (size_t i = 0; i < batch.size(); ++i) {
    SubmitOutcome outcome;
    outcome.response.body = std::move(outcomes[i]);
    outcome.replan_done = replan_done;
    outcome.ticket = admitted[i];
    MROAM_FLIGHT_EVENT("ticket.replan_done", outcome.ticket);
    batch[i].outcome.set_value(std::move(outcome));
  }
}

}  // namespace mroam::serve
