#include "serve/market_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/fault.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/timer_wheel.h"

namespace mroam::serve {

using common::Status;

namespace {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

HttpResponse JsonError(int status, const std::string& message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\":";
  obs::internal::AppendJsonString(&response.body, message);
  response.body += "}";
  MROAM_COUNTER_ADD("serve.http_errors", 1);
  return response;
}

void AppendBreakdownJson(std::string* out,
                         const core::RegretBreakdown& breakdown) {
  *out += "{\"total\":" + obs::internal::JsonDouble(breakdown.total) +
          ",\"excessive\":" +
          obs::internal::JsonDouble(breakdown.excessive) +
          ",\"unsatisfied_penalty\":" +
          obs::internal::JsonDouble(breakdown.unsatisfied_penalty) +
          ",\"satisfied_count\":" +
          std::to_string(breakdown.satisfied_count) +
          ",\"advertiser_count\":" +
          std::to_string(breakdown.advertiser_count) + "}";
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Per-request Connection negotiation: HTTP/1.1 defaults to keep-alive
/// with "close" honored; HTTP/1.0 defaults to close unless the client
/// asks to keep alive.
bool WantsKeepAlive(const HttpRequest& request) {
  const std::string_view connection = request.HeaderOr("connection");
  if (EqualsIgnoreCase(connection, "close")) return false;
  if (request.version == "HTTP/1.0") {
    return EqualsIgnoreCase(connection, "keep-alive");
  }
  return true;
}

double SecondsSince(TimePoint start, TimePoint now) {
  return std::chrono::duration<double>(now - start).count();
}

}  // namespace

// ---------------------------------------------------------------------------
// EventLoop: one thread owns every connection as a state machine around a
// level-triggered epoll set. Reads feed a RequestFramer; complete requests
// are served inline (the admission hot path) or dispatched to the worker
// pool, whose results come back over an eventfd. All read/write deadlines
// live on a TimerWheel keyed by connection id; cancellation is lazy — a
// fired entry re-checks the connection's actual deadlines.
// ---------------------------------------------------------------------------
struct MarketServer::EventLoop {
  /// epoll user-data tags for the two non-connection fds; connection ids
  /// start above them.
  static constexpr uint64_t kListenerTag = 1;
  static constexpr uint64_t kWakeTag = 2;

  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    RequestFramer framer;
    std::string out;
    size_t out_off = 0;
    uint32_t interest = 0;  ///< current epoll event mask
    bool closed = false;
    bool close_after_write = false;  ///< this response is the last one
    bool handler_inflight = false;   ///< a pool handler owns the request
    bool pending_keep_alive = false;  ///< negotiated for the in-pool request
    bool request_started = false;  ///< some bytes of the next request read
    bool served_any = false;       ///< >=1 response sent (idle close is quiet)
    bool saw_eof = false;
    TimePoint idle_deadline{};   ///< next-byte / keep-alive idle budget
    TimePoint total_deadline{};  ///< whole-request budget
    TimePoint write_deadline{};  ///< response drain budget
    TimePoint resume_at{};       ///< serve.slow_read stall expiry
    TimePoint request_start{};   ///< first byte of the current request
    TimePoint active_request_start{};  ///< dispatch-time copy
    TimePoint armed_until{};     ///< earliest pending wheel entry
  };

  struct Completion {
    uint64_t conn_id = 0;
    int64_t request_id = 0;
    HttpResponse response;
  };

  explicit EventLoop(MarketServer* server) : server_(server) {}

  ~EventLoop() {
    if (epfd_ >= 0) close(epfd_);
    if (wake_fd_ >= 0) close(wake_fd_);
  }

  Status Init() {
    epfd_ = epoll_create1(0);
    if (epfd_ < 0) {
      return Status::IoError(std::string("epoll_create1 failed: ") +
                             std::strerror(errno));
    }
    wake_fd_ = eventfd(0, EFD_NONBLOCK);
    if (wake_fd_ < 0) {
      return Status::IoError(std::string("eventfd failed: ") +
                             std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    if (epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
      return Status::IoError(std::string("epoll_ctl(eventfd) failed: ") +
                             std::strerror(errno));
    }
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerTag;
    if (epoll_ctl(epfd_, EPOLL_CTL_ADD, server_->listen_fd_, &ev) != 0) {
      return Status::IoError(std::string("epoll_ctl(listener) failed: ") +
                             std::strerror(errno));
    }
    listener_registered_ = true;
    return Status::Ok();
  }

  /// Cross-thread kick: drain request from Stop(), completed handlers.
  void Wake() {
    uint64_t one = 1;
    ssize_t n;
    do {
      n = write(wake_fd_, &one, sizeof(one));
    } while (n < 0 && errno == EINTR);
  }

  void RequestStop() {
    drain_requested_.store(true, std::memory_order_release);
    Wake();
  }

  /// Called from pool threads when a dispatched handler finishes.
  void PostCompletion(uint64_t conn_id, int64_t request_id,
                      HttpResponse response) {
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      completions_.push_back(
          Completion{conn_id, request_id, std::move(response)});
    }
    Wake();
  }

  void Run() {
    std::vector<uint64_t> due;
    epoll_event events[64];
    while (true) {
      if (drain_requested_.load(std::memory_order_acquire) &&
          !drain_started_) {
        BeginDrain();
      }
      if (drain_started_ && conns_.empty() && dead_.empty()) break;

      int timeout = wheel_.MsUntilNext(Clock::now());
      // Heartbeat cap: a wheel kept empty by lazy re-arming must not
      // park the loop forever, and a long timer should not delay drain
      // checks unduly.
      timeout = timeout < 0 ? 100 : std::min(timeout, 100);
      int n = epoll_wait(epfd_, events, 64, timeout);
      if (n < 0 && errno != EINTR) {
        MROAM_LOG(Warning) << "epoll_wait failed: " << std::strerror(errno);
        break;
      }
      for (int i = 0; i < std::max(n, 0); ++i) {
        const uint64_t tag = events[i].data.u64;
        if (tag == kListenerTag) {
          AcceptReady();
          continue;
        }
        if (tag == kWakeTag) {
          uint64_t drained;
          while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
          }
          continue;
        }
        Conn* c = Find(tag);
        if (c == nullptr) continue;
        if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0 &&
            (events[i].events & EPOLLIN) == 0) {
          CloseConn(c);
          continue;
        }
        if ((events[i].events & EPOLLIN) != 0) OnReadable(c);
        c = Find(tag);
        if (c != nullptr && (events[i].events & EPOLLOUT) != 0) FlushOut(c);
      }

      DrainCompletions();

      due.clear();
      wheel_.Advance(Clock::now(), &due);
      for (uint64_t id : due) OnTimer(id);
      Reap();
    }
    // Drain finished: every connection is closed; leftover completions
    // (handlers whose connection died first) are dropped with the loop.
    Reap();
  }

 private:
  Conn* Find(uint64_t id) {
    auto it = conns_.find(id);
    if (it == conns_.end() || it->second->closed) return nullptr;
    return it->second.get();
  }

  size_t OpenCount() const { return conns_.size() - dead_.size(); }

  void PublishOpenGauge() {
    MROAM_GAUGE_SET("serve.open_connections",
                    static_cast<int64_t>(OpenCount()));
  }

  void AcceptReady() {
    while (!drain_started_ &&
           OpenCount() < static_cast<size_t>(server_->config_.max_connections)) {
      int fd = accept4(server_->listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN, or the listener is gone (Stop())
      }
      int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Conn>();
      Conn* c = conn.get();
      c->fd = fd;
      c->id = next_conn_id_++;
      conns_.emplace(c->id, std::move(conn));
      const auto now = Clock::now();
      if (server_->config_.read_idle_timeout_ms >= 0) {
        c->idle_deadline = now + std::chrono::milliseconds(
                                     server_->config_.read_idle_timeout_ms);
      }
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = c->id;
      if (epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        MROAM_LOG(Warning) << "epoll_ctl(add conn) failed: "
                           << std::strerror(errno);
        conns_.erase(c->id);
        close(fd);
        continue;
      }
      c->interest = EPOLLIN;
      ArmWheel(c);
      PublishOpenGauge();
    }
    // Accept-side backpressure: at the connection cap stop watching the
    // listener; pending clients queue in the kernel backlog — bounded,
    // and the kernel's overflow behavior (drop/RST) pushes back on the
    // client, not on this process's memory.
    if (OpenCount() >= static_cast<size_t>(server_->config_.max_connections)) {
      PauseListener();
    }
  }

  void PauseListener() {
    if (!listener_registered_) return;
    epoll_ctl(epfd_, EPOLL_CTL_DEL, server_->listen_fd_, nullptr);
    listener_registered_ = false;
  }

  void ResumeListener() {
    if (listener_registered_ || drain_started_) return;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerTag;
    if (epoll_ctl(epfd_, EPOLL_CTL_ADD, server_->listen_fd_, &ev) == 0) {
      listener_registered_ = true;
    }
  }

  void CloseConn(Conn* c) {
    if (c->closed) return;
    c->closed = true;
    epoll_ctl(epfd_, EPOLL_CTL_DEL, c->fd, nullptr);
    close(c->fd);
    c->fd = -1;
    dead_.push_back(c->id);
    PublishOpenGauge();
  }

  /// Deferred reaping: CloseConn only marks, so a call chain holding a
  /// Conn* never frees it out from under itself.
  void Reap() {
    if (dead_.empty()) return;
    for (uint64_t id : dead_) conns_.erase(id);
    dead_.clear();
    if (OpenCount() <
        static_cast<size_t>(server_->config_.max_connections)) {
      ResumeListener();
    }
  }

  void UpdateInterest(Conn* c) {
    if (c->closed) return;
    const bool want_read = !c->handler_inflight && !c->saw_eof &&
                           !c->close_after_write &&
                           c->resume_at == TimePoint{};
    uint32_t want = want_read ? static_cast<uint32_t>(EPOLLIN) : 0u;
    if (c->out_off < c->out.size()) want |= EPOLLOUT;
    if (want == c->interest) return;
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = c->id;
    epoll_ctl(epfd_, EPOLL_CTL_MOD, c->fd, &ev);
    c->interest = want;
  }

  /// Schedules the connection's earliest live deadline on the wheel
  /// (skipping when an already-pending entry fires at or before it).
  void ArmWheel(Conn* c) {
    if (c->closed) return;
    TimePoint next = TimePoint::max();
    if (!c->handler_inflight) {
      if (c->idle_deadline != TimePoint{}) {
        next = std::min(next, c->idle_deadline);
      }
      if (c->total_deadline != TimePoint{}) {
        next = std::min(next, c->total_deadline);
      }
    }
    if (c->write_deadline != TimePoint{}) {
      next = std::min(next, c->write_deadline);
    }
    if (c->resume_at != TimePoint{}) next = std::min(next, c->resume_at);
    if (next == TimePoint::max()) return;
    if (c->armed_until != TimePoint{} && c->armed_until <= next) return;
    wheel_.Schedule(c->id, next);
    c->armed_until = next;
  }

  void OnTimer(uint64_t id) {
    Conn* c = Find(id);
    if (c == nullptr) return;
    c->armed_until = TimePoint{};
    const auto now = Clock::now();

    if (c->write_deadline != TimePoint{} && now >= c->write_deadline) {
      server_->write_timeouts_.fetch_add(1, std::memory_order_relaxed);
      MROAM_COUNTER_ADD("serve.write_timeouts", 1);
      MROAM_LOG(Debug) << "response write timed out; dropping connection";
      CloseConn(c);
      return;
    }
    if (!c->handler_inflight) {
      // The total budget outranks the idle budget: when both have
      // expired the request ran out of budget, it did not merely idle.
      if (c->total_deadline != TimePoint{} && now >= c->total_deadline) {
        ReadTimeout(c, "HTTP read exceeded its request budget");
        return;
      }
      if (c->idle_deadline != TimePoint{} && now >= c->idle_deadline) {
        if (!c->request_started && c->served_any) {
          // Keep-alive idle between requests: reclaim quietly — there
          // is no request to answer 408 to.
          CloseConn(c);
        } else {
          ReadTimeout(c, "HTTP read idle for " +
                             std::to_string(
                                 server_->config_.read_idle_timeout_ms) +
                             "ms");
        }
        return;
      }
    }
    if (c->resume_at != TimePoint{} && now >= c->resume_at) {
      c->resume_at = TimePoint{};
      UpdateInterest(c);
      OnReadable(c);
      return;
    }
    ArmWheel(c);
  }

  /// A tripped mid-request read deadline: explicit 408, then close — the
  /// same contract the blocking reader had.
  void ReadTimeout(Conn* c, const std::string& message) {
    server_->read_timeouts_.fetch_add(1, std::memory_order_relaxed);
    MROAM_COUNTER_ADD("serve.read_timeouts", 1);
    MROAM_COUNTER_ADD("serve.http_requests", 1);
    MROAM_FLIGHT_EVENT("conn.read_timeout", 0);
    c->idle_deadline = TimePoint{};
    c->total_deadline = TimePoint{};
    c->request_started = false;
    c->active_request_start = c->request_start;
    QueueResponse(c, JsonError(408, message), /*keep_alive=*/false,
                  /*request_id=*/0);
  }

  void OnReadable(Conn* c) {
    if (c->closed || c->resume_at != TimePoint{}) return;
    // Chaos: a slow-read fault stalls this connection's reader (the
    // deadlines keep running, so an injected stall longer than the
    // budget surfaces as a 408, not a slow success) — without stalling
    // the loop itself.
    const common::FaultAction slow = MROAM_FAULT_POINT("serve.slow_read");
    if (slow.fire && slow.delay_ms > 0) {
      c->resume_at = Clock::now() + std::chrono::milliseconds(slow.delay_ms);
      UpdateInterest(c);
      ArmWheel(c);
      return;
    }

    const auto now = Clock::now();
    char chunk[16384];
    bool got_bytes = false;
    while (true) {
      ssize_t n = recv(c->fd, chunk, sizeof(chunk), 0);
      if (n > 0) {
        got_bytes = true;
        if (!c->request_started) {
          c->request_started = true;
          c->request_start = now;
          if (server_->config_.request_timeout_ms >= 0) {
            c->total_deadline =
                now + std::chrono::milliseconds(
                          server_->config_.request_timeout_ms);
          }
        }
        c->framer.Feed(chunk, static_cast<size_t>(n));
        if (c->framer.buffered_bytes() >
            kMaxHttpHeadBytes + kMaxHttpBodyBytes) {
          // A peer pumping more than one max-size request ahead of the
          // handler gets its pipeline cut, not unbounded buffering.
          CloseConn(c);
          return;
        }
        if (static_cast<size_t>(n) < sizeof(chunk)) break;
        continue;
      }
      if (n == 0) {
        c->saw_eof = true;
        break;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(c);
      return;
    }
    if (got_bytes && server_->config_.read_idle_timeout_ms >= 0) {
      c->idle_deadline = now + std::chrono::milliseconds(
                                   server_->config_.read_idle_timeout_ms);
    }

    ProcessRequests(c);
    if (c->closed) return;
    if (c->saw_eof && c->out_off >= c->out.size() && !c->handler_inflight) {
      // Orderly EOF with nothing left to send: mid-request it matches
      // the blocking reader's silent close; between requests it is just
      // the peer hanging up.
      CloseConn(c);
      return;
    }
    UpdateReadState(c);
  }

  /// Frames and dispatches every complete buffered request, stopping at
  /// a pool dispatch (one in-flight request per connection keeps
  /// pipelined responses in order).
  void ProcessRequests(Conn* c) {
    while (!c->closed && !c->handler_inflight && !c->close_after_write) {
      HttpRequest request;
      Status error = Status::Ok();
      const RequestFramer::Outcome outcome = c->framer.Next(&request, &error);
      if (outcome == RequestFramer::Outcome::kNeedMore) break;
      MROAM_COUNTER_ADD("serve.http_requests", 1);
      const auto now = Clock::now();
      if (c->request_start == TimePoint{}) c->request_start = now;
      MROAM_HISTOGRAM_OBSERVE("serve.stage.read_seconds",
                              SecondsSince(c->request_start, now));
      c->active_request_start = c->request_start;
      if (outcome == RequestFramer::Outcome::kError) {
        // Malformed framing desynchronizes the stream: answer 400 and
        // close, even mid-pipeline.
        QueueResponse(c, JsonError(400, std::string(error.message())),
                      /*keep_alive=*/false, /*request_id=*/0);
        break;
      }

      // This request is consumed; the total budget now covers the next
      // one (if its bytes are already buffered, its clock starts now).
      c->request_started = c->framer.MidRequest();
      c->request_start = c->request_started ? now : TimePoint{};
      c->total_deadline =
          c->request_started && server_->config_.request_timeout_ms >= 0
              ? now + std::chrono::milliseconds(
                          server_->config_.request_timeout_ms)
              : TimePoint{};

      const bool keep = WantsKeepAlive(request) && !drain_started_;
      const auto [path, query] = SplitTarget(request.target);
      const bool inline_path =
          (path == "/contracts" && request.method == "POST") ||
          common::StartsWith(path, "/tickets/");
      if (inline_path) {
        // Admission hot path: validation + a queue push (or a ticket
        // table lookup) under short locks — served on the loop, no
        // handoff.
        MROAM_TRACE_SPAN("serve.request");
        RequestTrace trace;
        HttpResponse response = server_->Handle(request, &trace);
        QueueResponse(c, std::move(response), keep, trace.request_id);
        continue;
      }
      // Everything else may take the market lock or deliberately block
      // (/debug/trace): run it on the pool and complete back to the
      // loop. Reads stay off until the response is queued, so the
      // framer cannot run ahead of the one in-flight request.
      c->handler_inflight = true;
      c->pending_keep_alive = keep;
      const uint64_t conn_id = c->id;
      server_->pool_->Submit(
          [this, conn_id, request = std::move(request)]() mutable {
            MROAM_TRACE_SPAN("serve.request");
            RequestTrace trace;
            HttpResponse response = server_->Handle(request, &trace);
            PostCompletion(conn_id, trace.request_id, std::move(response));
          });
      break;
    }
  }

  void DrainCompletions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      batch.swap(completions_);
    }
    for (Completion& done : batch) {
      Conn* c = Find(done.conn_id);
      if (c == nullptr) {
        MROAM_LOG(Debug) << "dropping response for closed connection";
        continue;
      }
      c->handler_inflight = false;
      const bool keep = c->pending_keep_alive && !drain_started_;
      QueueResponse(c, std::move(done.response), keep, done.request_id);
      if (c->closed) continue;
      ProcessRequests(c);
      if (c->closed) continue;
      if (c->saw_eof && c->out_off >= c->out.size() &&
          !c->handler_inflight) {
        CloseConn(c);
        continue;
      }
      UpdateReadState(c);
    }
  }

  /// Recomputes read interest and deadline arming after request
  /// processing settles.
  void UpdateReadState(Conn* c) {
    if (c->closed) return;
    if (c->handler_inflight) {
      // No read deadlines while the server itself is the slow party.
      c->idle_deadline = TimePoint{};
    } else if (c->idle_deadline == TimePoint{} &&
               server_->config_.read_idle_timeout_ms >= 0) {
      c->idle_deadline =
          Clock::now() + std::chrono::milliseconds(
                             server_->config_.read_idle_timeout_ms);
    }
    UpdateInterest(c);
    ArmWheel(c);
  }

  void QueueResponse(Conn* c, HttpResponse response, bool keep_alive,
                     int64_t request_id) {
    if (c->closed) return;
    response.keep_alive = keep_alive;
    if (!keep_alive) c->close_after_write = true;
    std::string wire = response.Serialize();
    // Chaos: drop the connection mid-response — half the bytes, then
    // RST from the client's point of view. Any committed work stays
    // committed; the contract is that the *server* stays consistent,
    // not the client.
    const common::FaultAction drop =
        MROAM_FAULT_POINT("serve.drop_connection");
    if (drop.fire) {
      server_->dropped_responses_.fetch_add(1, std::memory_order_relaxed);
      MROAM_COUNTER_ADD("serve.dropped_responses", 1);
      MROAM_FLIGHT_EVENT("conn.fault_drop", request_id);
      wire.resize(wire.size() / 2);
      c->close_after_write = true;
    }
    c->out += wire;
    c->served_any = true;
    if (c->write_deadline == TimePoint{} &&
        server_->config_.write_timeout_ms >= 0) {
      c->write_deadline = Clock::now() + std::chrono::milliseconds(
                                             server_->config_.write_timeout_ms);
    }
    if (c->active_request_start != TimePoint{}) {
      MROAM_HISTOGRAM_OBSERVE(
          "serve.request_seconds",
          SecondsSince(c->active_request_start, Clock::now()));
      c->active_request_start = TimePoint{};
    }
    FlushOut(c);
    if (!c->closed) {
      UpdateInterest(c);
      ArmWheel(c);
    }
  }

  void FlushOut(Conn* c) {
    if (c->closed) return;
    int flags = MSG_DONTWAIT;
#ifdef MSG_NOSIGNAL
    flags |= MSG_NOSIGNAL;
#endif
    while (c->out_off < c->out.size()) {
      ssize_t n = send(c->fd, c->out.data() + c->out_off,
                       c->out.size() - c->out_off, flags);
      if (n >= 0) {
        c->out_off += static_cast<size_t>(n);
        continue;
      }
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(c);
      return;
    }
    if (c->out_off >= c->out.size()) {
      c->out.clear();
      c->out_off = 0;
      c->write_deadline = TimePoint{};
      if (c->close_after_write && !c->handler_inflight) {
        CloseConn(c);
        return;
      }
    }
    UpdateInterest(c);
  }

  /// Drain entry: unhook the listener, serve whatever is already
  /// buffered (with Connection: close forced), and close every
  /// connection that has nothing left in flight. The loop then runs on
  /// until in-flight handlers and response buffers finish.
  void BeginDrain() {
    drain_started_ = true;
    PauseListener();
    std::vector<uint64_t> ids;
    ids.reserve(conns_.size());
    for (const auto& [id, conn] : conns_) ids.push_back(id);
    for (uint64_t id : ids) {
      Conn* c = Find(id);
      if (c == nullptr) continue;
      OnReadable(c);
      c = Find(id);
      if (c == nullptr) continue;
      if (c->out_off >= c->out.size() && !c->handler_inflight) {
        CloseConn(c);
      }
    }
    Reap();
  }

  MarketServer* server_;
  int epfd_ = -1;
  int wake_fd_ = -1;
  TimerWheel wheel_;
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  std::vector<uint64_t> dead_;
  uint64_t next_conn_id_ = 16;
  bool listener_registered_ = false;
  bool drain_started_ = false;
  std::atomic<bool> drain_requested_{false};

  std::mutex completions_mu_;
  std::vector<Completion> completions_;
};

MarketServer::MarketServer(const influence::InfluenceIndex* index,
                           MarketServerConfig config)
    : index_(index),
      config_(std::move(config)),
      market_(index, config_.market) {
  if (!config_.initial_book.empty()) {
    market_.RestoreBook(config_.initial_book);
    // The 202 path mints tickets with ++next_ticket_, so the mirror sits
    // one below the next ticket DailyMarket will assign at flush.
    next_ticket_ = config_.initial_book.next_ticket - 1;
    MROAM_LOG(Info) << "restored contract book: day "
                    << config_.initial_book.day << ", "
                    << config_.initial_book.entries.size()
                    << " active contracts, next ticket "
                    << config_.initial_book.next_ticket;
  }
  MROAM_CHECK(config_.max_batch >= 1);
  MROAM_CHECK(config_.max_batch_delay_seconds >= 0.0);
  MROAM_CHECK(config_.num_threads >= 1);
  MROAM_CHECK(config_.max_connections >= 1);
  MROAM_CHECK(config_.max_queue >= 1);
  MROAM_CHECK(config_.degraded_watermark >= 1);
  MROAM_CHECK(config_.degraded_watermark <= config_.max_queue);
  MROAM_CHECK(config_.ticket_history >= 1);
}

MarketServer::~MarketServer() { Stop(); }

Status MarketServer::Start() {
  MROAM_CHECK(!running_.load());
  // The listener itself must be non-blocking: the event loop's accept
  // drains until EAGAIN, and a level-triggered wakeup can race a peer
  // that resets before accept (a blocking listener would park the whole
  // loop inside accept4).
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(config_.port));
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::IoError(
        "cannot bind port " + std::to_string(config_.port) + ": " +
        std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    Status status = Status::IoError(std::string("getsockname failed: ") +
                                    std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  port_ = ntohs(addr.sin_port);
  if (listen(listen_fd_, 128) != 0) {
    Status status = Status::IoError(std::string("listen failed: ") +
                                    std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  draining_.store(false);
  stopping_.store(false);
  last_commit_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
  loop_ = std::make_unique<EventLoop>(this);
  Status loop_status = loop_->Init();
  if (!loop_status.ok()) {
    loop_.reset();
    close(listen_fd_);
    listen_fd_ = -1;
    return loop_status;
  }
  pool_ = std::make_unique<common::ThreadPool>(config_.num_threads);
  flush_thread_ = std::thread([this] { FlushLoop(); });
  loop_thread_ = std::thread([this] { loop_->Run(); });
  running_.store(true, std::memory_order_release);
  MROAM_LOG(Info) << "mroam market server listening on port " << port_
                  << " (event loop + " << config_.num_threads
                  << " workers, batch " << config_.max_batch << "/"
                  << config_.max_batch_delay_seconds * 1e3 << "ms, policy "
                  << core::ReplanPolicyName(config_.market.policy) << ")";
  return Status::Ok();
}

void MarketServer::Stop() {
  if (listen_fd_ < 0 && !loop_thread_.joinable()) return;

  // 1. Drain the event loop: the listener is unhooked, buffered requests
  //    are answered with Connection: close, in-flight handlers finish,
  //    and every connection closes. The batcher switches to immediate
  //    flush so queued arrivals commit fast.
  draining_.store(true);
  batch_cv_.notify_all();
  if (loop_) loop_->RequestStop();
  if (loop_thread_.joinable()) loop_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Drain workers: ThreadPool's destructor runs every queued task to
  //    completion (their completions land in the loop's queue and are
  //    dropped with it — the connections are gone).
  pool_.reset();

  // 3. Now nothing can enqueue: let the flush loop drain the tail and
  //    exit, then persist whatever MROAM_TRACE collected. Ticket polls
  //    for the drained batch would answer committed — the table outlives
  //    the sockets.
  stopping_.store(true);
  batch_cv_.notify_all();
  if (flush_thread_.joinable()) flush_thread_.join();
  loop_.reset();
  running_.store(false, std::memory_order_release);

  common::Status flushed = obs::Tracer::Global().Flush();
  if (!flushed.ok()) {
    MROAM_LOG(Warning) << "trace flush failed: " << flushed;
  }
  MROAM_LOG(Info) << "mroam market server drained and stopped after "
                  << batches_flushed_.load() << " batches, day "
                  << market_.today();
}

HttpResponse MarketServer::Handle(const HttpRequest& request) {
  RequestTrace trace;
  return Handle(request, &trace);
}

HttpResponse MarketServer::Handle(const HttpRequest& request,
                                  RequestTrace* trace) {
  trace->request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto [path, query] = SplitTarget(request.target);
  // Route on the path first: a known path with the wrong method is a 405
  // naming the right one, and only a truly unknown path falls through to
  // the 404 listing every endpoint — so /debug/* typos are diagnosable
  // from the error body alone.
  if (path == "/contracts") {
    if (request.method != "POST") {
      return JsonError(405, "use POST to submit a contract");
    }
    return HandleSubmit(request, trace);
  }
  if (common::StartsWith(path, "/contracts/")) {
    if (request.method != "DELETE") {
      return JsonError(405, "use DELETE to withdraw a contract");
    }
    return HandleCancel(request);
  }
  if (common::StartsWith(path, "/tickets/")) {
    if (request.method != "GET") {
      return JsonError(405, "use GET to poll a ticket");
    }
    return HandleTicket(request);
  }
  const bool is_get_path =
      path == "/assignment" || path == "/report" || path == "/healthz" ||
      path == "/readyz" || path == "/metrics" || path == "/debug/vars" ||
      path == "/debug/flight" || path == "/debug/trace";
  if (is_get_path) {
    if (request.method != "GET") {
      return JsonError(405, "use GET for " + std::string(path));
    }
    if (path == "/assignment") return HandleAssignment();
    if (path == "/report") return HandleReport();
    if (path == "/healthz") return HandleHealth();
    if (path == "/readyz") return HandleReady();
    if (path == "/debug/vars") return HandleDebugVars();
    if (path == "/debug/flight") return HandleDebugFlight();
    if (path == "/debug/trace") return HandleDebugTrace(query);
    HttpResponse response;
    response.content_type = "text/plain; version=0.0.4";
    response.body =
        obs::MetricsRegistry::Global().Snapshot().ToPrometheus();
    return response;
  }
  HttpResponse response = JsonError(
      404, "no such endpoint: " + std::string(path));
  response.body.pop_back();  // reopen the JsonError object
  response.body +=
      ",\"known_endpoints\":[\"POST /contracts\","
      "\"DELETE /contracts/<id>\",\"GET /tickets/<id>\","
      "\"GET /assignment\",\"GET /report\","
      "\"GET /healthz\",\"GET /readyz\",\"GET /metrics\","
      "\"GET /debug/vars\",\"GET /debug/flight\","
      "\"GET /debug/trace?ms=N\"]}";
  return response;
}

bool MarketServer::Overloaded(size_t* depth) {
  size_t queued;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    queued = queue_.size();
  }
  if (depth != nullptr) *depth = queued;
  return queued >= static_cast<size_t>(config_.degraded_watermark);
}

void MarketServer::AddStaleHeader(HttpResponse* response) {
  const int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  const int64_t age_ms =
      std::max<int64_t>(
          0, now_ns - last_commit_ns_.load(std::memory_order_relaxed)) /
      1000000;
  response->headers.emplace_back("X-Mroam-Stale", std::to_string(age_ms));
  MROAM_COUNTER_ADD("serve.stale_reads", 1);
}

HttpResponse MarketServer::HandleSubmit(const HttpRequest& request,
                                        RequestTrace* trace) {
  common::Result<double> demand = ExtractJsonNumber(request.body, "demand");
  common::Result<double> payment =
      ExtractJsonNumber(request.body, "payment");
  if (!demand.ok()) return JsonError(400, demand.status().message());
  if (!payment.ok()) return JsonError(400, payment.status().message());
  if (*demand < 1.0 || *demand > 9e15 ||
      *demand != static_cast<double>(static_cast<int64_t>(*demand))) {
    return JsonError(400, "demand must be a positive integer");
  }
  if (*payment <= 0.0) {
    return JsonError(400, "payment must be positive");
  }
  if (stopping_.load() || draining_.load()) {
    return JsonError(503, "server is draining");
  }

  market::Advertiser terms;
  terms.demand = static_cast<int64_t>(*demand);
  terms.payment = *payment;

  int64_t ticket;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    // Bounded admission: past the high-watermark the request is shed
    // with 429 and a Retry-After derived from the flush cadence (how
    // long the backlog takes to replan at one batch per delay window) —
    // the overload contract's "bounded queue, explicit shedding" half.
    const size_t depth = queue_.size();
    if (depth >= static_cast<size_t>(config_.max_queue)) {
      shed_total_.fetch_add(1, std::memory_order_relaxed);
      MROAM_COUNTER_ADD("serve.shed_total", 1);
      MROAM_FLIGHT_EVENT("ticket.shed", trace->request_id);
      const double pending_batches = std::ceil(
          static_cast<double>(depth) /
          static_cast<double>(config_.max_batch));
      const int64_t retry_after_s = std::clamp<int64_t>(
          static_cast<int64_t>(std::ceil(
              pending_batches * config_.max_batch_delay_seconds)),
          1, 60);
      HttpResponse shed = JsonError(
          429, "admission queue full (" + std::to_string(depth) +
                   " waiting); retry after " +
                   std::to_string(retry_after_s) + "s");
      shed.headers.emplace_back("Retry-After",
                                std::to_string(retry_after_s));
      return shed;
    }
    MROAM_FLIGHT_EVENT("ticket.enqueue", trace->request_id);
    // Mint the ticket now so the 202 can name it: the server-side
    // sequence mirrors DailyMarket's (both 1-based, monotone in arrival
    // order through this single queue), which FlushBatch verifies.
    ticket = ++next_ticket_;
    {
      // Registered while batch_mu_ is held, so a queued arrival is
      // never invisible to a concurrent GET /tickets poll.
      std::lock_guard<std::mutex> tickets_lock(tickets_mu_);
      pending_tickets_.insert(ticket);
    }
    PendingArrival pending;
    pending.terms = terms;
    pending.enqueued = std::chrono::steady_clock::now();
    pending.request_id = trace->request_id;
    pending.ticket = ticket;
    queue_.push_back(std::move(pending));
    MROAM_GAUGE_SET("serve.queue_depth",
                    static_cast<int64_t>(queue_.size()));
  }
  batch_cv_.notify_all();
  trace->ticket = ticket;
  // Admission decoupled from replanning: accept immediately, let the
  // client poll GET /tickets/<id> for the group-commit outcome.
  HttpResponse response;
  response.status = 202;
  response.body = "{\"ticket\":" + std::to_string(ticket) +
                  ",\"status\":\"pending\"}";
  return response;
}

HttpResponse MarketServer::HandleTicket(const HttpRequest& request) {
  const auto [path, query] = SplitTarget(request.target);
  std::string_view id_text = path.substr(strlen("/tickets/"));
  common::Result<int64_t> ticket = common::ParseInt64(id_text);
  if (!ticket.ok()) {
    return JsonError(400, "bad ticket id '" + std::string(id_text) + "'");
  }
  {
    std::lock_guard<std::mutex> lock(tickets_mu_);
    auto committed = committed_tickets_.find(*ticket);
    if (committed != committed_tickets_.end()) {
      HttpResponse response;
      response.body = committed->second;
      return response;
    }
    if (pending_tickets_.count(*ticket) != 0) {
      HttpResponse response;
      response.body = "{\"ticket\":" + std::to_string(*ticket) +
                      ",\"status\":\"pending\"}";
      return response;
    }
  }
  return JsonError(404, "no such ticket " + std::to_string(*ticket) +
                            " (unknown, or evicted from the result "
                            "history)");
}

market::ContractBook MarketServer::ExportBook() {
  std::lock_guard<std::mutex> lock(market_mu_);
  return market_.ExportBook();
}

MarketServer::TicketState MarketServer::TicketStatus(int64_t ticket) const {
  std::lock_guard<std::mutex> lock(tickets_mu_);
  if (committed_tickets_.count(ticket) != 0) return TicketState::kCommitted;
  if (pending_tickets_.count(ticket) != 0) return TicketState::kPending;
  return TicketState::kUnknown;
}

HttpResponse MarketServer::HandleDebugVars() {
  HttpResponse response;
  response.body = obs::MetricsRegistry::Global().Snapshot().ToJson();
  return response;
}

HttpResponse MarketServer::HandleDebugFlight() {
  HttpResponse response;
  response.body = obs::FlightRecorder::Global().DumpJson();
  return response;
}

HttpResponse MarketServer::HandleDebugTrace(std::string_view query) {
  double ms = 250.0;
  std::string_view text = QueryParam(query, "ms");
  if (!text.empty()) {
    common::Result<int64_t> parsed = common::ParseInt64(text);
    if (!parsed.ok() || *parsed < 1 || *parsed > 10000) {
      return JsonError(400, "ms must be an integer in [1, 10000], got '" +
                                std::string(text) + "'");
    }
    ms = static_cast<double>(*parsed);
  }
  // Blocks this worker for the window (bounded at 10s); concurrent
  // captures serialize inside CaptureWindow.
  HttpResponse response;
  response.body = obs::Tracer::Global().CaptureWindow(ms / 1e3);
  return response;
}

HttpResponse MarketServer::HandleCancel(const HttpRequest& request) {
  std::string_view id_text =
      std::string_view(request.target).substr(strlen("/contracts/"));
  common::Result<int64_t> ticket = common::ParseInt64(id_text);
  if (!ticket.ok()) {
    return JsonError(400, "bad contract id '" + std::string(id_text) + "'");
  }
  bool cancelled;
  int32_t active;
  {
    std::lock_guard<std::mutex> lock(market_mu_);
    cancelled = market_.Cancel(*ticket);
    active = market_.active_contracts();
  }
  if (!cancelled) {
    return JsonError(404,
                     "no active contract " + std::to_string(*ticket));
  }
  MROAM_COUNTER_ADD("serve.contracts_cancelled", 1);
  MROAM_GAUGE_SET("serve.active_contracts", active);
  HttpResponse response;
  response.body = "{\"cancelled\":" + std::to_string(*ticket) +
                  ",\"active_contracts\":" + std::to_string(active) + "}";
  return response;
}

HttpResponse MarketServer::HandleAssignment() {
  HttpResponse response;
  // Degraded mode: reads keep answering from the last committed book —
  // never blocked on the replan backlog — but an overloaded server says
  // so explicitly, so a caller can tell "fresh" from "best effort".
  if (Overloaded()) AddStaleHeader(&response);
  std::lock_guard<std::mutex> lock(market_mu_);
  const auto& terms = market_.ActiveTerms();
  const auto& sets = market_.ActiveSets();
  const auto& tickets = market_.ActiveTickets();
  response.body = "{\"day\":" + std::to_string(market_.today()) +
                  ",\"contracts\":[";
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) response.body += ",";
    std::vector<model::BillboardId> sorted = sets[i];
    std::sort(sorted.begin(), sorted.end());
    response.body += "{\"ticket\":" + std::to_string(tickets[i]) +
                     ",\"demand\":" + std::to_string(terms[i].demand) +
                     ",\"payment\":" +
                     obs::internal::JsonDouble(terms[i].payment) +
                     ",\"influence\":" +
                     std::to_string(index_->InfluenceOfSet(sorted)) +
                     ",\"billboards\":[";
    for (size_t k = 0; k < sorted.size(); ++k) {
      if (k > 0) response.body += ",";
      response.body += std::to_string(sorted[k]);
    }
    response.body += "]}";
  }
  response.body += "]}";
  return response;
}

HttpResponse MarketServer::HandleReport() {
  HttpResponse response;
  size_t queued;
  if (Overloaded(&queued)) AddStaleHeader(&response);
  std::lock_guard<std::mutex> lock(market_mu_);
  response.body =
      "{\"day\":" + std::to_string(market_.today()) +
      ",\"policy\":";
  obs::internal::AppendJsonString(
      &response.body, core::ReplanPolicyName(config_.market.policy));
  response.body +=
      ",\"active_contracts\":" + std::to_string(market_.active_contracts()) +
      ",\"batches_flushed\":" + std::to_string(batches_flushed_.load()) +
      ",\"queue_depth\":" + std::to_string(queued) +
      ",\"shed_total\":" + std::to_string(shed_total_.load()) +
      ",\"read_timeouts\":" + std::to_string(read_timeouts_.load()) +
      ",\"last_day\":{\"arrived\":" + std::to_string(last_day_.arrived) +
      ",\"expired\":" + std::to_string(last_day_.expired) +
      ",\"cancelled\":" + std::to_string(last_day_.cancelled) +
      ",\"churn_boards\":" + std::to_string(last_day_.churn_boards) +
      ",\"boards_touched\":" + std::to_string(last_day_.boards_touched) +
      ",\"reoptimized_advertisers\":" +
      std::to_string(last_day_.reoptimized_advertisers) +
      ",\"mode\":\"" + core::ReplanModeName(last_day_.mode) + "\"" +
      ",\"full_solve_fallback\":" +
      (last_day_.full_solve_fallback ? "true" : "false") +
      ",\"seconds\":" + obs::internal::JsonDouble(last_day_.seconds) +
      ",\"stage_seconds\":{\"queue_wait\":" +
      obs::internal::JsonDouble(
          last_day_.report.PhaseSeconds("serve.queue_wait")) +
      ",\"replan\":" +
      obs::internal::JsonDouble(
          last_day_.report.PhaseSeconds("serve.replan")) +
      "}" +
      ",\"breakdown\":";
  AppendBreakdownJson(&response.body, last_day_.breakdown);
  response.body += "}}";
  return response;
}

HttpResponse MarketServer::HandleHealth() {
  // Liveness only: 200 for as long as the process can answer at all —
  // an overloaded or draining server is still *alive*. Restart decisions
  // key on this; routing decisions key on /readyz.
  HttpResponse response;
  std::lock_guard<std::mutex> lock(market_mu_);
  response.body =
      "{\"status\":\"ok\",\"day\":" + std::to_string(market_.today()) +
      ",\"active_contracts\":" + std::to_string(market_.active_contracts()) +
      "}";
  return response;
}

HttpResponse MarketServer::HandleReady() {
  size_t depth = 0;
  const bool overloaded = Overloaded(&depth);
  const bool draining = draining_.load() || stopping_.load();
  HttpResponse response;
  const char* state = draining ? "draining"
                     : overloaded ? "overloaded"
                                  : "ok";
  response.status = (draining || overloaded) ? 503 : 200;
  response.body =
      std::string("{\"status\":\"") + state +
      "\",\"queue_depth\":" + std::to_string(depth) +
      ",\"degraded_watermark\":" +
      std::to_string(config_.degraded_watermark) +
      ",\"shed_total\":" + std::to_string(shed_total_.load()) + "}";
  return response;
}

void MarketServer::FlushLoop() {
  std::unique_lock<std::mutex> lock(batch_mu_);
  while (true) {
    batch_cv_.wait(lock, [this] {
      return stopping_.load() || !queue_.empty();
    });
    if (queue_.empty()) {
      if (stopping_.load()) return;
      continue;
    }
    if (!draining_.load()) {
      // Admission batching: hold the batch open until it is full or the
      // oldest arrival has waited out the delay budget.
      const auto deadline =
          queue_.front().enqueued +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(
                  config_.max_batch_delay_seconds));
      batch_cv_.wait_until(lock, deadline, [this] {
        return stopping_.load() || draining_.load() ||
               static_cast<int>(queue_.size()) >= config_.max_batch;
      });
    }
    lock.unlock();
    FlushBatch();
    lock.lock();
  }
}

void MarketServer::FlushBatch() {
  MROAM_TRACE_SPAN("serve.flush_batch");
  std::vector<PendingArrival> batch;
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    batch.swap(queue_);
    MROAM_GAUGE_SET("serve.queue_depth", 0);
  }
  if (batch.empty()) return;

  const auto now = std::chrono::steady_clock::now();
  std::vector<market::Advertiser> arrivals;
  arrivals.reserve(batch.size());
  double queue_wait_total = 0.0;
  for (const PendingArrival& pending : batch) {
    arrivals.push_back(pending.terms);
    const double waited =
        std::chrono::duration<double>(now - pending.enqueued).count();
    queue_wait_total += waited;
    MROAM_HISTOGRAM_OBSERVE("serve.stage.queue_wait_seconds", waited);
    // Legacy name kept for dashboards that predate the stage histograms.
    MROAM_HISTOGRAM_OBSERVE("serve.admission_wait_seconds", waited);
    MROAM_FLIGHT_EVENT("ticket.flush", pending.request_id);
  }

  // Chaos: a delayed replan backs the admission queue up, which is what
  // drives the shed / degraded-mode paths in a reproducible run.
  const common::FaultAction delay = MROAM_FAULT_POINT("serve.delay_replan");
  if (delay.fire && delay.delay_ms > 0) {
    MROAM_FLIGHT_EVENT("replan.fault_delay", delay.delay_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(delay.delay_ms));
  }

  common::Stopwatch watch;
  core::DayResult day;
  std::vector<std::string> outcomes(batch.size());
  {
    std::lock_guard<std::mutex> lock(market_mu_);
    day = market_.AdvanceDay(std::move(arrivals));
    const double replan_seconds = watch.ElapsedSeconds();

    // Per-arrival outcome: admitted_tickets aligns with the batch order;
    // look each ticket up in the replanned deployment.
    std::unordered_map<int64_t, size_t> position;
    const auto& tickets = market_.ActiveTickets();
    for (size_t i = 0; i < tickets.size(); ++i) position[tickets[i]] = i;
    const auto& sets = market_.ActiveSets();
    const auto& terms = market_.ActiveTerms();
    for (size_t i = 0; i < batch.size(); ++i) {
      const int64_t ticket = day.admitted_tickets[i];
      // The 202 promised this ticket number before the replan ran; the
      // two mints must agree or polls would retrieve someone else's
      // contract.
      MROAM_CHECK(ticket == batch[i].ticket);
      auto it = position.find(ticket);
      MROAM_CHECK(it != position.end());
      const int64_t influence = index_->InfluenceOfSet(sets[it->second]);
      const bool satisfied = influence >= terms[it->second].demand;
      outcomes[i] = "{\"ticket\":" + std::to_string(ticket) +
                    ",\"status\":\"committed\"" +
                    ",\"day\":" + std::to_string(day.day) +
                    ",\"satisfied\":" + (satisfied ? "true" : "false") +
                    ",\"influence\":" + std::to_string(influence) +
                    ",\"active_contracts\":" +
                    std::to_string(day.active_contracts) + "}";
    }
    // Stage accounting rides in the day's RunReport, so GET /report can
    // show where this batch's wall time went (queue_wait is summed over
    // the batch's arrivals, like parallel solver phases).
    day.report.AddPhase("serve.queue_wait", queue_wait_total);
    day.report.AddPhase("serve.replan", replan_seconds);
    last_day_ = std::move(day);
    MROAM_GAUGE_SET("serve.active_contracts", market_.active_contracts());
  }
  const auto replan_done = std::chrono::steady_clock::now();
  last_commit_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          replan_done.time_since_epoch())
          .count(),
      std::memory_order_relaxed);
  MROAM_HISTOGRAM_OBSERVE("serve.stage.replan_seconds",
                          watch.ElapsedSeconds());
  MROAM_HISTOGRAM_OBSERVE("serve.replan_seconds", watch.ElapsedSeconds());
  MROAM_COUNTER_ADD("serve.batches", 1);
  MROAM_COUNTER_ADD("serve.contracts_admitted",
                    static_cast<int64_t>(batch.size()));
  // Per-flush churn and replan telemetry (last_day_ holds today's result
  // under market_mu_; these are the aggregate views).
  MROAM_COUNTER_ADD("serve.churn_arrived", last_day_.arrived);
  MROAM_COUNTER_ADD("serve.churn_expired", last_day_.expired);
  MROAM_COUNTER_ADD("serve.churn_cancelled", last_day_.cancelled);
  MROAM_HISTOGRAM_OBSERVE("serve.boards_touched",
                          static_cast<double>(last_day_.boards_touched));
  if (last_day_.mode == core::ReplanMode::kIncremental) {
    MROAM_COUNTER_ADD("serve.replan_incremental", 1);
    MROAM_HISTOGRAM_OBSERVE(
        "serve.reoptimized_advertisers",
        static_cast<double>(last_day_.reoptimized_advertisers));
  }
  if (last_day_.full_solve_fallback) {
    MROAM_COUNTER_ADD("serve.replan_full_fallback", 1);
  }
  batches_flushed_.fetch_add(1, std::memory_order_relaxed);

  // Group-commit publish: move each outcome into the ticket table (the
  // respond stage — replan finished -> result visible to polls), with
  // the oldest committed results evicted past the history bound.
  {
    std::lock_guard<std::mutex> lock(tickets_mu_);
    for (size_t i = 0; i < batch.size(); ++i) {
      const int64_t ticket = batch[i].ticket;
      pending_tickets_.erase(ticket);
      committed_tickets_[ticket] = std::move(outcomes[i]);
      committed_order_.push_back(ticket);
    }
    while (committed_tickets_.size() >
           static_cast<size_t>(config_.ticket_history)) {
      committed_tickets_.erase(committed_order_.front());
      committed_order_.pop_front();
    }
  }
  const auto published = std::chrono::steady_clock::now();
  const double respond_seconds =
      std::chrono::duration<double>(published - replan_done).count();
  for (const PendingArrival& pending : batch) {
    MROAM_FLIGHT_EVENT("ticket.replan_done", pending.ticket);
    MROAM_FLIGHT_EVENT("ticket.respond", pending.ticket);
    MROAM_HISTOGRAM_OBSERVE("serve.stage.respond_seconds", respond_seconds);
  }
}

}  // namespace mroam::serve
