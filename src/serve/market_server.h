#ifndef MROAM_SERVE_MARKET_SERVER_H_
#define MROAM_SERVE_MARKET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/daily_market.h"
#include "serve/http.h"

namespace mroam::serve {

/// Configuration of the long-running market host.
struct MarketServerConfig {
  /// TCP port to listen on; 0 picks an ephemeral port (tests/benches read
  /// it back via MarketServer::port()).
  int port = 8080;
  /// Connection-handling workers (reuses common::ThreadPool). Each worker
  /// owns one request end to end, so this bounds in-flight requests.
  int num_threads = 4;
  /// Admission batching: a queued contract waits until either the batch
  /// reaches `max_batch` arrivals or the oldest has waited
  /// `max_batch_delay_seconds`, then the whole batch replans as one
  /// market "day" (core::DailyMarket::AdvanceDay).
  int max_batch = 64;
  double max_batch_delay_seconds = 0.05;
  /// Day-loop configuration: replan policy (either ReplanPolicy works),
  /// solver, contract duration in days — where one "day" is one admission
  /// batch flush.
  core::DailyMarketConfig market;
};

/// The always-on host process the paper's operational setting assumes
/// (§1): advertisers submit contracts over HTTP, an admission batcher
/// groups arrivals, and every flush replans the market through
/// core::DailyMarket. Endpoints:
///
///   POST   /contracts       {"demand": I_i, "payment": L_i} -> ticket;
///                           the response is sent after the contract's
///                           batch has been replanned, so it reports the
///                           achieved influence and satisfaction.
///   DELETE /contracts/<id>  withdraw a contract by ticket.
///   GET    /assignment      active contracts with their billboard sets.
///   GET    /report          last replan's regret breakdown + server stats.
///   GET    /metrics         Prometheus exposition of the obs registry.
///   GET    /healthz         liveness probe.
///
/// Stop() (also run by the destructor) performs a graceful drain: the
/// listener closes first, in-flight requests finish, every queued
/// arrival is flushed through a final replan, and MROAM_TRACE output is
/// flushed to disk.
class MarketServer {
 public:
  /// `index` must outlive the server.
  MarketServer(const influence::InfluenceIndex* index,
               MarketServerConfig config);
  ~MarketServer();

  MarketServer(const MarketServer&) = delete;
  MarketServer& operator=(const MarketServer&) = delete;

  /// Binds, listens, and starts the accept/flush/worker threads. Fails
  /// with kIoError when the port cannot be bound.
  common::Status Start();

  /// Graceful shutdown (idempotent): stop accepting, drain in-flight
  /// requests and queued batches, join all threads, flush traces.
  void Stop();

  /// The bound TCP port (after Start()).
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Batches flushed so far (tests/report).
  int64_t batches_flushed() const {
    return batches_flushed_.load(std::memory_order_relaxed);
  }

  /// Routes one parsed request to its handler — the testable core of the
  /// server loop (no sockets involved).
  HttpResponse Handle(const HttpRequest& request);

 private:
  /// One queued contract arrival waiting for its batch to flush.
  struct PendingArrival {
    market::Advertiser terms;
    std::promise<HttpResponse> response;
    std::chrono::steady_clock::time_point enqueued;
  };

  void AcceptLoop();
  void FlushLoop();
  void HandleConnection(int fd);
  /// Drains the current queue through one DailyMarket::AdvanceDay and
  /// fulfils each arrival's promise. Called with batch_mu_ NOT held.
  void FlushBatch();

  HttpResponse HandleSubmit(const HttpRequest& request);
  HttpResponse HandleCancel(const HttpRequest& request);
  HttpResponse HandleAssignment();
  HttpResponse HandleReport();
  HttpResponse HandleHealth();

  const influence::InfluenceIndex* index_;
  MarketServerConfig config_;
  int port_ = 0;
  int listen_fd_ = -1;

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};  ///< flush immediately, no delay wait
  std::atomic<bool> stopping_{false};  ///< flush loop may exit once empty
  std::atomic<int64_t> batches_flushed_{0};

  std::thread accept_thread_;
  std::thread flush_thread_;
  std::unique_ptr<common::ThreadPool> pool_;

  std::mutex batch_mu_;  ///< guards queue_
  std::condition_variable batch_cv_;
  std::vector<PendingArrival> queue_;

  std::mutex market_mu_;  ///< guards market_ and last_day_
  core::DailyMarket market_;
  core::DayResult last_day_;
};

}  // namespace mroam::serve

#endif  // MROAM_SERVE_MARKET_SERVER_H_
