#ifndef MROAM_SERVE_MARKET_SERVER_H_
#define MROAM_SERVE_MARKET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/daily_market.h"
#include "serve/http.h"

namespace mroam::serve {

/// Configuration of the long-running market host.
struct MarketServerConfig {
  /// TCP port to listen on; 0 picks an ephemeral port (tests/benches read
  /// it back via MarketServer::port()).
  int port = 8080;
  /// Handler workers (reuses common::ThreadPool). The event loop serves
  /// the hot admission path inline; handlers that take the market lock
  /// or block (reads, /debug/trace captures) run here, so this bounds
  /// in-flight *blocking* handlers, not connections.
  int num_threads = 4;
  /// Admission batching: a queued contract waits until either the batch
  /// reaches `max_batch` arrivals or the oldest has waited
  /// `max_batch_delay_seconds`, then the whole batch replans as one
  /// market "day" (core::DailyMarket::AdvanceDay).
  int max_batch = 64;
  double max_batch_delay_seconds = 0.05;
  /// Day-loop configuration: replan policy (either ReplanPolicy works),
  /// solver, contract duration in days — where one "day" is one admission
  /// batch flush.
  core::DailyMarketConfig market;

  // --- Overload contract (DESIGN.md §6.2) --------------------------------
  /// Per-connection read deadlines: `read_idle_timeout_ms` bounds the wait
  /// between bytes (slow-loris) — and, on a kept-alive connection, how
  /// long an idle connection is retained between requests — while
  /// `request_timeout_ms` bounds one whole head+body read. A deadline
  /// tripped mid-request answers 408; one tripped between requests just
  /// closes. -1 disables (connections are then retained forever).
  int read_idle_timeout_ms = 5000;
  int request_timeout_ms = 15000;
  /// Bound on draining the response buffer to a peer; one that stops
  /// reading its socket costs at most this long before the connection is
  /// reclaimed.
  int write_timeout_ms = 5000;
  /// Accept-side connection cap: at most this many connections are open
  /// at once. At the cap the event loop stops accepting, so further
  /// clients queue in the kernel backlog (and eventually time out there)
  /// instead of growing an unbounded fd backlog in-process.
  int max_connections = 256;
  /// Admission high-watermark: past it POST /contracts sheds with 429 +
  /// Retry-After instead of queueing unboundedly.
  int max_queue = 1024;
  /// Degraded-mode threshold (<= max_queue): at this queue depth the
  /// server stops claiming readiness (GET /readyz -> 503) and stamps
  /// reads with X-Mroam-Stale, while still serving the last committed
  /// book.
  int degraded_watermark = 256;
  /// Committed ticket results retained for GET /tickets/<id>; the oldest
  /// are evicted past this bound (a poll after eviction sees 404).
  int ticket_history = 1 << 16;

  /// Contract book to restore at construction (snapshot v2's
  /// kContractBook section, as loaded by LoadIndexSnapshot or
  /// MappedSnapshot): the market resumes at the stored day with every
  /// stored contract active and the ticket sequence continuing where the
  /// exporting server stopped, so tickets stay unique across a restart.
  /// Default (empty) starts a fresh book.
  market::ContractBook initial_book;
};

/// The always-on host process the paper's operational setting assumes
/// (§1): advertisers submit contracts over HTTP, an admission batcher
/// groups arrivals, and every flush replans the market through
/// core::DailyMarket.
///
/// Serving model: one epoll event loop (level-triggered, non-blocking
/// sockets) owns every connection as a small state machine — read bytes
/// into an incremental RequestFramer, dispatch complete requests,
/// stream out queued responses. Connections are persistent: HTTP/1.1
/// keep-alive with pipelining, Connection negotiated per request.
/// Deadlines (read idle / request total / write) live on a hashed
/// TimerWheel, so slow-loris protection survives without a
/// thread-per-connection. The admission path (POST /contracts,
/// GET /tickets/<id>) is served inline on the loop; handlers that take
/// the market lock or block run on the worker pool and complete back to
/// the loop over an eventfd.
///
/// Endpoints:
///
///   POST   /contracts       {"demand": I_i, "payment": L_i} -> 202 with
///                           a ticket; admission is decoupled from
///                           replanning, so the response returns
///                           immediately and the group-commit result is
///                           polled via the ticket.
///   GET    /tickets/<id>    the ticket's group-commit result: 200 with
///                           {"status":"pending"} before the batch
///                           flushes, 200 with the committed outcome
///                           (satisfied/influence/day) after, 404 for an
///                           unknown or evicted ticket.
///   DELETE /contracts/<id>  withdraw a contract by ticket.
///   GET    /assignment      active contracts with their billboard sets.
///   GET    /report          last replan's regret breakdown + server stats.
///   GET    /metrics         Prometheus exposition of the obs registry.
///   GET    /healthz         liveness probe: 200 while the process runs,
///                           even overloaded or draining.
///   GET    /readyz          readiness probe: 503 while overloaded
///                           (queue at the degraded watermark) or
///                           draining, 200 otherwise — the signal a load
///                           balancer keys on.
///   GET    /debug/vars      metrics registry snapshot as JSON.
///   GET    /debug/flight    flight-recorder ring dump (last ~16k spans).
///   GET    /debug/trace?ms=N  records spans for N ms (default 250, max
///                           10000) and returns Chrome trace-event JSON —
///                           a bounded Perfetto capture with no restart.
///
/// Ticket lifecycle tracing: every request is minted a request id at
/// routing time (RequestTrace); a submitted contract's id rides with it
/// through the admission queue, the batch replan, and the group-commit
/// publish, leaving flight-recorder events (ticket.enqueue,
/// ticket.flush, ticket.replan_done, ticket.respond) and per-stage
/// histograms (serve.stage.queue_wait/replan/respond/read _seconds) on
/// the way — the raw material for /debug/flight and BENCH_serve
/// percentiles.
///
/// Stop() (also run by the destructor) performs a graceful drain: the
/// listener closes first, in-flight requests finish and their
/// connections close, every queued arrival is flushed through a final
/// replan (polls for those tickets are answered until the server object
/// dies), and MROAM_TRACE output is flushed to disk.
class MarketServer {
 public:
  /// `index` must outlive the server.
  MarketServer(const influence::InfluenceIndex* index,
               MarketServerConfig config);
  ~MarketServer();

  MarketServer(const MarketServer&) = delete;
  MarketServer& operator=(const MarketServer&) = delete;

  /// Binds, listens, and starts the event-loop/flush/worker threads.
  /// Fails with kIoError when the port cannot be bound.
  common::Status Start();

  /// Graceful shutdown (idempotent): stop accepting, finish in-flight
  /// requests, drain queued batches, join all threads, flush traces.
  void Stop();

  /// The bound TCP port (after Start()).
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Batches flushed so far (tests/report).
  int64_t batches_flushed() const {
    return batches_flushed_.load(std::memory_order_relaxed);
  }
  /// Submissions shed with 429 at the admission high-watermark.
  int64_t shed_total() const {
    return shed_total_.load(std::memory_order_relaxed);
  }
  /// Requests answered 408 after a read deadline tripped mid-request.
  int64_t read_timeouts() const {
    return read_timeouts_.load(std::memory_order_relaxed);
  }
  /// Responses deliberately cut short by the serve.drop_connection fault.
  int64_t dropped_responses() const {
    return dropped_responses_.load(std::memory_order_relaxed);
  }

  /// Snapshots the market's open book (day, ticket sequence, active
  /// contracts with their deployments) — what a draining host hands to
  /// io::SaveIndexSnapshot so a restart resumes instead of starting
  /// empty. Meaningful after Stop() (every queued arrival has flushed);
  /// callable any time for inspection.
  market::ContractBook ExportBook();

  /// Where a ticket is in its lifecycle, as served by GET /tickets/<id>
  /// (exposed directly for post-drain assertions in tests).
  enum class TicketState { kUnknown, kPending, kCommitted };
  TicketState TicketStatus(int64_t ticket) const;

  /// Per-request trace context, minted at routing time and threaded
  /// through the submit path so stage accounting can attribute the
  /// enqueue to the right ticket. Zero-initialized for non-contract
  /// requests.
  struct RequestTrace {
    int64_t request_id = 0;
    int64_t ticket = -1;  ///< set by a successful submit
  };

  /// Routes one parsed request to its handler — the testable core of the
  /// server loop (no sockets involved).
  HttpResponse Handle(const HttpRequest& request);
  /// Same, with the caller observing the request's trace context.
  HttpResponse Handle(const HttpRequest& request, RequestTrace* trace);

 private:
  struct EventLoop;  // epoll loop + connection state machines (.cc only)
  friend struct EventLoop;

  /// One queued contract arrival waiting for its batch to flush. The
  /// ticket is minted at admission (the 202 body) and must match what
  /// DailyMarket assigns at flush — both count monotonically in arrival
  /// order, which FlushBatch MROAM_CHECKs.
  struct PendingArrival {
    market::Advertiser terms;
    std::chrono::steady_clock::time_point enqueued;
    int64_t request_id = 0;
    int64_t ticket = 0;
  };

  void FlushLoop();
  /// Drains the current queue through one DailyMarket::AdvanceDay and
  /// publishes each arrival's outcome to the ticket table. Called with
  /// batch_mu_ NOT held.
  void FlushBatch();

  HttpResponse HandleSubmit(const HttpRequest& request,
                            RequestTrace* trace);
  HttpResponse HandleTicket(const HttpRequest& request);
  HttpResponse HandleCancel(const HttpRequest& request);
  HttpResponse HandleAssignment();
  HttpResponse HandleReport();
  HttpResponse HandleHealth();
  HttpResponse HandleReady();
  HttpResponse HandleDebugVars();
  HttpResponse HandleDebugFlight();
  HttpResponse HandleDebugTrace(std::string_view query);

  const influence::InfluenceIndex* index_;
  MarketServerConfig config_;
  int port_ = 0;
  int listen_fd_ = -1;

  /// Degraded-mode probe: current queue depth vs the watermark. Sets
  /// *depth (when non-null) as a side effect.
  bool Overloaded(size_t* depth = nullptr);
  /// Stamps X-Mroam-Stale with the age of the last committed book.
  void AddStaleHeader(HttpResponse* response);

  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};  ///< flush immediately, no delay wait
  std::atomic<bool> stopping_{false};  ///< flush loop may exit once empty
  std::atomic<int64_t> batches_flushed_{0};
  std::atomic<int64_t> next_request_id_{0};
  std::atomic<int64_t> shed_total_{0};
  std::atomic<int64_t> read_timeouts_{0};
  std::atomic<int64_t> write_timeouts_{0};
  std::atomic<int64_t> dropped_responses_{0};
  /// steady_clock nanos of the last committed book (Start(), then every
  /// FlushBatch) — the numerator of X-Mroam-Stale.
  std::atomic<int64_t> last_commit_ns_{0};

  std::thread loop_thread_;
  std::thread flush_thread_;
  std::unique_ptr<common::ThreadPool> pool_;
  std::unique_ptr<EventLoop> loop_;

  std::mutex batch_mu_;  ///< guards queue_ and next_ticket_
  std::condition_variable batch_cv_;
  std::vector<PendingArrival> queue_;
  /// Server-side ticket sequence, mirrored from DailyMarket's (both are
  /// 1-based and monotone in arrival order) so the 202 can name the
  /// ticket before the replan runs.
  int64_t next_ticket_ = 0;

  /// Ticket table for GET /tickets/<id>. Lock order: batch_mu_ before
  /// tickets_mu_ (HandleSubmit registers the pending entry while holding
  /// both, so a queued arrival is never invisible to a poll).
  mutable std::mutex tickets_mu_;
  std::unordered_set<int64_t> pending_tickets_;
  std::unordered_map<int64_t, std::string> committed_tickets_;
  std::deque<int64_t> committed_order_;  ///< eviction FIFO

  std::mutex market_mu_;  ///< guards market_ and last_day_
  core::DailyMarket market_;
  core::DayResult last_day_;
};

}  // namespace mroam::serve

#endif  // MROAM_SERVE_MARKET_SERVER_H_
