// mroam_serve: the long-running market host (README "Serving").
//
// Boot paths:
//   --snapshot PATH   cold-start from a binary index snapshot: no CSV
//                     parsing, no O(|U| x |T|) index build — the obs
//                     report shows io.snapshot_load_seconds and no
//                     influence.index_build_seconds entry.
//   --snapshot PATH --mmap
//                     zero-copy cold start: the (v2) snapshot is mmapped
//                     and the compressed posting blobs are served straight
//                     out of the mapping — no decoded incidence copy ever
//                     exists, so boot cost is page faults plus one CRC
//                     pass and resident memory stays bounded by the file.
//   --gen nyc|sg      generate a synthetic city and build the index
//                     in-process (slow path; useful with --save-snapshot
//                     to produce the snapshot for later cold starts).
//
// A v2 snapshot also carries the serving layer's open contract book;
// both snapshot boot paths restore it, and a drain with --save-snapshot
// persists the current book, so a restart resumes the market instead of
// starting empty.
//
// The process serves until SIGTERM/SIGINT, then drains: in-flight
// requests finish, queued arrivals are flushed through a final replan,
// and MROAM_TRACE output (if enabled) reaches disk.

#include <signal.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "gen/city_generators.h"
#include "influence/influence_index.h"
#include "io/mmap_snapshot.h"
#include "io/snapshot_io.h"
#include "obs/crash_handler.h"
#include "obs/metrics.h"
#include "serve/market_server.h"

namespace {

using mroam::common::ParseDouble;
using mroam::common::ParseInt64;
using mroam::common::Status;

struct Options {
  std::string snapshot;       // load path ("" = none)
  bool mmap = false;          // zero-copy --snapshot boot
  std::string save_snapshot;  // save path ("" = none)
  std::string gen;            // "nyc" | "sg" | ""
  int32_t gen_billboards = 400;
  int32_t gen_trajectories = 20000;
  double lambda = 100.0;
  uint64_t seed = 42;
  int port = 8080;
  int threads = 4;
  int batch_max = 64;
  double batch_delay_ms = 50.0;
  std::string policy = "lock";  // "lock" | "reopt" | "incremental"
  std::string method = "gglobal";
  double replan_drift = 0.1;  // --policy incremental: fallback bound
  int32_t duration_days = 7;
  bool once = false;  // start, print, stop — for smoke tests
  // Overload contract knobs (MarketServerConfig defaults).
  int read_idle_timeout_ms = 5000;
  int request_timeout_ms = 15000;
  int write_timeout_ms = 5000;
  int max_connections = 256;
  int max_queue = 1024;
  int degraded_watermark = 256;
  int ticket_history = 1 << 16;
};

/// Distinct exit status for a failed --snapshot cold start, so process
/// supervisors can tell "snapshot missing/corrupt" (redeploy the artifact)
/// from a generic boot failure.
constexpr int kExitSnapshotLoadFailed = 3;

void PrintUsage() {
  std::fprintf(stderr, R"(usage: mroam_serve [options]

boot (exactly one of):
  --snapshot PATH        cold-start from a binary index snapshot
  --gen nyc|sg           generate a synthetic city and build the index

options:
  --mmap                 with --snapshot: mmap the (v2) snapshot and serve
                         the compressed index zero-copy out of the mapping
  --save-snapshot PATH   write the booted index as a snapshot before
                         serving, and again with the open contract book on
                         drain (incompatible with --mmap)
  --billboards N         with --gen: billboard count (default 400)
  --trajectories N       with --gen: trajectory count (default 20000)
  --lambda METERS        with --gen: influence radius (default 100)
  --seed N               with --gen: generator seed (default 42)
  --port N               TCP port; 0 = ephemeral (default 8080)
  --threads N            connection workers (default 4)
  --batch-max N          admission batch size (default 64)
  --batch-delay-ms F     max admission delay before flush (default 50)
  --policy lock|reopt|incremental
                         replan policy (default lock)
  --replan-drift F       with --policy incremental: regret drift allowed
                         before a full-solve fallback, as a fraction of
                         the active payment volume; negative forces a
                         full solve every day (default 0.1)
  --method gorder|gglobal|als|bls
                         solver for full solves (default gglobal)
  --duration-days N      contract term in batch-days (default 7)
  --once                 start, print the port, shut down (smoke test)

overload contract:
  --read-idle-timeout-ms N
                         max wait between request bytes before 408;
                         -1 blocks forever (default 5000)
  --request-timeout-ms N max whole-request read budget before 408;
                         -1 blocks forever (default 15000)
  --write-timeout-ms N   max response-write stall before the worker is
                         reclaimed; -1 blocks forever (default 5000)
  --max-connections N    accept-side cap on open connections (default 256)
  --max-queue N          admission high-watermark; past it POST /contracts
                         sheds with 429 + Retry-After (default 1024)
  --degraded-watermark N queue depth at which /readyz turns 503 and reads
                         carry X-Mroam-Stale (default 256)
  --ticket-history N     committed ticket results kept for GET /tickets/<id>
                         before eviction (default 65536)

exit status: 0 ok, 1 boot/serve failure, 2 usage error, 3 snapshot
load/map failure (--snapshot path missing, corrupt, or — with --mmap —
not a v2 snapshot).
)");
}

bool ParseFlag(int argc, char** argv, int* i, std::string_view name,
               std::string* out) {
  if (argv[*i] != std::string("--") + std::string(name)) return false;
  if (*i + 1 >= argc) {
    MROAM_LOG(Error) << "flag --" << name << " needs a value";
    std::exit(2);
  }
  *out = argv[++*i];
  return true;
}

Status ParseOptions(int argc, char** argv, Options* options) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else if (arg == "--once") {
      options->once = true;
    } else if (arg == "--mmap") {
      options->mmap = true;
    } else if (ParseFlag(argc, argv, &i, "snapshot", &options->snapshot) ||
               ParseFlag(argc, argv, &i, "save-snapshot",
                         &options->save_snapshot) ||
               ParseFlag(argc, argv, &i, "gen", &options->gen) ||
               ParseFlag(argc, argv, &i, "policy", &options->policy) ||
               ParseFlag(argc, argv, &i, "method", &options->method)) {
      // handled
    } else if (ParseFlag(argc, argv, &i, "billboards", &value)) {
      MROAM_ASSIGN_OR_RETURN(int64_t n, ParseInt64(value));
      options->gen_billboards = static_cast<int32_t>(n);
    } else if (ParseFlag(argc, argv, &i, "trajectories", &value)) {
      MROAM_ASSIGN_OR_RETURN(int64_t n, ParseInt64(value));
      options->gen_trajectories = static_cast<int32_t>(n);
    } else if (ParseFlag(argc, argv, &i, "lambda", &value)) {
      MROAM_ASSIGN_OR_RETURN(options->lambda, ParseDouble(value));
    } else if (ParseFlag(argc, argv, &i, "seed", &value)) {
      MROAM_ASSIGN_OR_RETURN(int64_t n, ParseInt64(value));
      options->seed = static_cast<uint64_t>(n);
    } else if (ParseFlag(argc, argv, &i, "port", &value)) {
      MROAM_ASSIGN_OR_RETURN(int64_t n, ParseInt64(value));
      options->port = static_cast<int>(n);
    } else if (ParseFlag(argc, argv, &i, "threads", &value)) {
      MROAM_ASSIGN_OR_RETURN(int64_t n, ParseInt64(value));
      options->threads = static_cast<int>(n);
    } else if (ParseFlag(argc, argv, &i, "batch-max", &value)) {
      MROAM_ASSIGN_OR_RETURN(int64_t n, ParseInt64(value));
      options->batch_max = static_cast<int>(n);
    } else if (ParseFlag(argc, argv, &i, "batch-delay-ms", &value)) {
      MROAM_ASSIGN_OR_RETURN(options->batch_delay_ms, ParseDouble(value));
    } else if (ParseFlag(argc, argv, &i, "replan-drift", &value)) {
      MROAM_ASSIGN_OR_RETURN(options->replan_drift, ParseDouble(value));
    } else if (ParseFlag(argc, argv, &i, "duration-days", &value)) {
      MROAM_ASSIGN_OR_RETURN(int64_t n, ParseInt64(value));
      options->duration_days = static_cast<int32_t>(n);
    } else if (ParseFlag(argc, argv, &i, "read-idle-timeout-ms", &value)) {
      MROAM_ASSIGN_OR_RETURN(int64_t n, ParseInt64(value));
      options->read_idle_timeout_ms = static_cast<int>(n);
    } else if (ParseFlag(argc, argv, &i, "request-timeout-ms", &value)) {
      MROAM_ASSIGN_OR_RETURN(int64_t n, ParseInt64(value));
      options->request_timeout_ms = static_cast<int>(n);
    } else if (ParseFlag(argc, argv, &i, "write-timeout-ms", &value)) {
      MROAM_ASSIGN_OR_RETURN(int64_t n, ParseInt64(value));
      options->write_timeout_ms = static_cast<int>(n);
    } else if (ParseFlag(argc, argv, &i, "max-connections", &value)) {
      MROAM_ASSIGN_OR_RETURN(int64_t n, ParseInt64(value));
      options->max_connections = static_cast<int>(n);
    } else if (ParseFlag(argc, argv, &i, "max-queue", &value)) {
      MROAM_ASSIGN_OR_RETURN(int64_t n, ParseInt64(value));
      options->max_queue = static_cast<int>(n);
    } else if (ParseFlag(argc, argv, &i, "degraded-watermark", &value)) {
      MROAM_ASSIGN_OR_RETURN(int64_t n, ParseInt64(value));
      options->degraded_watermark = static_cast<int>(n);
    } else if (ParseFlag(argc, argv, &i, "ticket-history", &value)) {
      MROAM_ASSIGN_OR_RETURN(int64_t n, ParseInt64(value));
      options->ticket_history = static_cast<int>(n);
    } else {
      return Status::InvalidArgument("unknown flag '" + arg + "'");
    }
  }
  if (options->snapshot.empty() == options->gen.empty()) {
    return Status::InvalidArgument(
        "exactly one of --snapshot and --gen is required");
  }
  if (options->mmap && options->snapshot.empty()) {
    return Status::InvalidArgument("--mmap requires --snapshot");
  }
  if (options->mmap && !options->save_snapshot.empty()) {
    return Status::InvalidArgument(
        "--save-snapshot needs the decoded dataset, which a --mmap boot "
        "never materializes; load without --mmap to re-save");
  }
  if (!options->gen.empty() && options->gen != "nyc" &&
      options->gen != "sg") {
    return Status::InvalidArgument("--gen must be nyc or sg, got '" +
                                   options->gen + "'");
  }
  if (options->policy != "lock" && options->policy != "reopt" &&
      options->policy != "incremental") {
    return Status::InvalidArgument(
        "--policy must be lock, reopt, or incremental, got '" +
        options->policy + "'");
  }
  return Status::Ok();
}

mroam::common::Result<mroam::core::Method> MethodFromName(
    const std::string& name) {
  using mroam::core::Method;
  if (name == "gorder") return Method::kGOrder;
  if (name == "gglobal") return Method::kGGlobal;
  if (name == "als") return Method::kAls;
  if (name == "bls") return Method::kBls;
  return Status::InvalidArgument("unknown --method '" + name + "'");
}

/// Boots the dataset + index per the chosen path. On the snapshot path no
/// index build runs — that is the tentpole's cold-start guarantee.
Status Boot(const Options& options, mroam::io::IndexSnapshot* booted) {
  mroam::common::Stopwatch watch;
  if (!options.snapshot.empty()) {
    MROAM_ASSIGN_OR_RETURN(*booted,
                           mroam::io::LoadIndexSnapshot(options.snapshot));
    MROAM_LOG(Info) << "cold start from " << options.snapshot << ": "
                    << booted->index.num_billboards() << " billboards, "
                    << booted->index.num_trajectories()
                    << " trajectories, supply "
                    << booted->index.TotalSupply() << " in "
                    << watch.ElapsedSeconds() << "s (no index build)";
    return Status::Ok();
  }

  mroam::common::Rng rng(options.seed);
  if (options.gen == "nyc") {
    mroam::gen::NycLikeConfig config;
    config.num_billboards = options.gen_billboards;
    config.num_trajectories = options.gen_trajectories;
    booted->dataset = mroam::gen::GenerateNycLike(config, &rng);
  } else {
    mroam::gen::SgLikeConfig config;
    config.num_billboards = options.gen_billboards;
    config.num_trajectories = options.gen_trajectories;
    booted->dataset = mroam::gen::GenerateSgLike(config, &rng);
  }
  booted->index = mroam::influence::InfluenceIndex::Build(booted->dataset,
                                                          options.lambda);
  MROAM_LOG(Info) << "generated " << booted->dataset.name << " and built "
                  << "the index in " << watch.ElapsedSeconds() << "s";
  return Status::Ok();
}

int Run(const Options& options) {
  // Exactly one of the two boot forms owns the index: `mapped` keeps a
  // borrowed-postings index alive over the mmap for the whole serving
  // lifetime, `booted` holds a decoded dataset + index.
  mroam::io::IndexSnapshot booted;
  std::optional<mroam::io::MappedSnapshot> mapped;
  const mroam::influence::InfluenceIndex* index = nullptr;
  const mroam::market::ContractBook* book = nullptr;
  Status status = Status::Ok();
  if (options.mmap) {
    mroam::common::Stopwatch watch;
    auto result = mroam::io::MappedSnapshot::Map(options.snapshot);
    if (!result.ok()) {
      MROAM_LOG(Error) << "snapshot map failed (" << options.snapshot
                       << "): " << result.status().ToString()
                       << " — exiting with status "
                       << kExitSnapshotLoadFailed
                       << " (redeploy or regenerate the snapshot)";
      return kExitSnapshotLoadFailed;
    }
    mapped.emplace(std::move(*result));
    index = &mapped->index();
    book = &mapped->book();
    MROAM_LOG(Info) << "zero-copy cold start from " << options.snapshot
                    << ": " << index->num_billboards() << " billboards, "
                    << index->num_trajectories() << " trajectories, supply "
                    << index->TotalSupply() << " served from a "
                    << mapped->file_bytes() << "-byte mapping in "
                    << watch.ElapsedSeconds() << "s (no decode)";
  } else {
    status = Boot(options, &booted);
    if (!status.ok()) {
      if (!options.snapshot.empty()) {
        MROAM_LOG(Error) << "snapshot load failed (" << options.snapshot
                         << "): " << status.ToString()
                         << " — exiting with status "
                         << kExitSnapshotLoadFailed
                         << " (redeploy or regenerate the snapshot)";
        return kExitSnapshotLoadFailed;
      }
      MROAM_LOG(Error) << "boot failed: " << status.ToString();
      return 1;
    }
    index = &booted.index;
    book = &booted.book;
  }

  if (!options.save_snapshot.empty()) {
    status = mroam::io::SaveIndexSnapshot(options.save_snapshot,
                                          booted.dataset, booted.index,
                                          booted.book);
    if (!status.ok()) {
      MROAM_LOG(Error) << "snapshot save failed: " << status.ToString();
      return 1;
    }
  }

  mroam::serve::MarketServerConfig config;
  config.port = options.port;
  config.num_threads = options.threads;
  config.max_batch = options.batch_max;
  config.max_batch_delay_seconds = options.batch_delay_ms / 1000.0;
  config.read_idle_timeout_ms = options.read_idle_timeout_ms;
  config.request_timeout_ms = options.request_timeout_ms;
  config.write_timeout_ms = options.write_timeout_ms;
  config.max_connections = options.max_connections;
  config.max_queue = options.max_queue;
  config.degraded_watermark = options.degraded_watermark;
  config.ticket_history = options.ticket_history;
  config.market.contract_duration_days = options.duration_days;
  if (options.policy == "reopt") {
    config.market.policy = mroam::core::ReplanPolicy::kReoptimizeAll;
  } else if (options.policy == "incremental") {
    config.market.policy = mroam::core::ReplanPolicy::kIncremental;
  } else {
    config.market.policy = mroam::core::ReplanPolicy::kLockExisting;
  }
  config.market.incremental.max_regret_drift = options.replan_drift;
  auto method = MethodFromName(options.method);
  if (!method.ok()) {
    MROAM_LOG(Error) << method.status().ToString();
    return 2;
  }
  config.market.solver.method = *method;
  config.market.solver.seed = options.seed;
  config.initial_book = *book;

  mroam::serve::MarketServer server(index, config);
  status = server.Start();
  if (!status.ok()) {
    MROAM_LOG(Error) << "server start failed: " << status.ToString();
    return 1;
  }
  // The line tools grep for ("listening on ...").
  std::printf("mroam_serve listening on port %d\n", server.port());
  std::fflush(stdout);

  if (!options.once) {
    // Block signals in every thread the server spawns from here on would
    // inherit the mask anyway; we blocked before Start() in main(), so a
    // plain sigwait here owns delivery of SIGTERM/SIGINT.
    sigset_t set;
    sigemptyset(&set);
    sigaddset(&set, SIGTERM);
    sigaddset(&set, SIGINT);
    int sig = 0;
    sigwait(&set, &sig);
    MROAM_LOG(Info) << "received " << (sig == SIGTERM ? "SIGTERM" : "SIGINT")
                    << ", draining";
  }

  server.Stop();
  if (!options.save_snapshot.empty()) {
    // Persist the drained book so the next boot resumes this market
    // (every queued arrival has flushed by now, so the book is final).
    status = mroam::io::SaveIndexSnapshot(options.save_snapshot,
                                          booted.dataset, booted.index,
                                          server.ExportBook());
    if (!status.ok()) {
      MROAM_LOG(Error) << "drain-time snapshot save failed: "
                       << status.ToString();
    }
  }
  MROAM_LOG(Info) << "drained after " << server.batches_flushed()
                  << " admission batches; metrics snapshot:\n"
                  << mroam::obs::MetricsRegistry::Global()
                         .Snapshot()
                         .ToPrometheus();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Block SIGTERM/SIGINT before any thread exists so every thread
  // inherits the mask and sigwait in Run() is the sole consumer. SIGPIPE
  // is ignored outright: a client hanging up mid-response must not kill
  // the server (WriteAll also passes MSG_NOSIGNAL, this is belt and
  // braces for the non-send paths).
  sigset_t set;
  sigemptyset(&set);
  sigaddset(&set, SIGTERM);
  sigaddset(&set, SIGINT);
  pthread_sigmask(SIG_BLOCK, &set, nullptr);
  signal(SIGPIPE, SIG_IGN);
  // Fatal signals dump the flight recorder + metrics snapshot to
  // mroam_crash_report.json (override with MROAM_CRASH_REPORT) before
  // re-raising, so a wedged or crashed server leaves a post-mortem.
  mroam::obs::InstallCrashHandler();

  Options options;
  Status status = ParseOptions(argc, argv, &options);
  if (!status.ok()) {
    std::fprintf(stderr, "mroam_serve: %s\n",
                 std::string(status.message()).c_str());
    PrintUsage();
    return 2;
  }
  return Run(options);
}
