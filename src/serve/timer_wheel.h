#ifndef MROAM_SERVE_TIMER_WHEEL_H_
#define MROAM_SERVE_TIMER_WHEEL_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mroam::serve {

/// Hashed timing wheel for connection deadlines on the serve event loop.
///
/// Entries are (id, deadline) pairs hashed into tick-granular slots; one
/// Advance() walks only the slots between the previous position and
/// `now`, so N armed connections cost O(due) per loop iteration instead
/// of O(N log N) heap churn. Cancellation is lazy: re-arming a
/// connection's deadline just schedules another entry, and the owner
/// re-checks the connection's *actual* deadline when an entry fires
/// (re-scheduling if it moved, ignoring it if the connection is gone).
/// That trades a few spurious wakeups for O(1) arm/disarm — the usual
/// wheel bargain.
///
/// Single-threaded by design: owned and driven by the event loop, never
/// shared.
class TimerWheel {
 public:
  using Clock = std::chrono::steady_clock;

  /// `tick_ms` is the firing granularity (deadlines fire up to one tick
  /// late); `num_slots` spans tick_ms * num_slots before entries lap.
  explicit TimerWheel(int tick_ms = 8, int num_slots = 512);

  /// Schedules `id` to fire at `deadline` (immediately-due deadlines
  /// fire on the next Advance). The same id may be scheduled many times.
  void Schedule(uint64_t id, Clock::time_point deadline);

  /// Advances the wheel to `now`, appending every id whose deadline has
  /// passed to *due (slot order, not strict deadline order).
  void Advance(Clock::time_point now, std::vector<uint64_t>* due);

  /// Milliseconds until the earliest scheduled deadline (0 when already
  /// due), or -1 when the wheel is empty — the event loop's poll
  /// timeout. O(pending); the serve loop's pending set is bounded by
  /// the connection cap.
  int MsUntilNext(Clock::time_point now) const;

  size_t pending() const { return pending_; }

 private:
  struct Entry {
    uint64_t id;
    Clock::time_point deadline;
  };

  int64_t TickOf(Clock::time_point t) const;

  const int tick_ms_;
  std::vector<std::vector<Entry>> slots_;
  int64_t cursor_tick_;  ///< last tick whose slot has been swept
  size_t pending_ = 0;
};

}  // namespace mroam::serve

#endif  // MROAM_SERVE_TIMER_WHEEL_H_
