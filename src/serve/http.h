#ifndef MROAM_SERVE_HTTP_H_
#define MROAM_SERVE_HTTP_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace mroam::serve {

// ---------------------------------------------------------------------------
// Minimal dependency-free HTTP/1.1 plumbing over POSIX sockets: just enough
// protocol for the market serving layer (MarketServer) and its load
// generator / test clients. Persistent connections are first-class:
// requests are framed incrementally (RequestFramer) so one connection can
// carry many pipelined requests, and the Connection header is negotiated
// per request (HTTP/1.1 defaults to keep-alive, "close" is honored,
// HTTP/1.0 closes unless the client asks to keep alive). No TLS, no
// chunked encoding — the serving layer's clients are command-line tools
// and benches on the same host.
// ---------------------------------------------------------------------------

/// Upper bound on request head (request line + headers) accepted by the
/// reader; larger requests fail with kInvalidArgument.
inline constexpr size_t kMaxHttpHeadBytes = 64 * 1024;
/// Upper bound on a request/response body.
inline constexpr size_t kMaxHttpBodyBytes = 16 * 1024 * 1024;

/// Read/write deadlines for one socket operation. Two budgets compose:
/// `idle_ms` bounds the wait for the *next* byte (a slow-loris client
/// dribbling one byte per minute trips it), `total_ms` bounds the whole
/// operation (a client dribbling fast enough to stay under the idle
/// budget still cannot pin a thread forever). -1 disables a budget; the
/// default is fully blocking, matching the pre-deadline behavior.
struct HttpTimeouts {
  int idle_ms = -1;
  int total_ms = -1;
};

struct HttpRequest {
  std::string method;   ///< "GET", "POST", ... (uppercase as sent)
  std::string target;   ///< request target, e.g. "/contracts/12"
  std::string version;  ///< "HTTP/1.1"
  /// Header (name, value) pairs; names are lowercased by the parser.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Value of the named header (lowercase), or "" when absent.
  std::string_view HeaderOr(std::string_view name,
                            std::string_view fallback = "") const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  /// Extra response headers beyond Content-Type/Content-Length/Connection
  /// (e.g. Retry-After on a shed, X-Mroam-Stale on a degraded read).
  /// Serialized verbatim; on fetched responses, names are lowercased by
  /// the client-side parser.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  /// Whether the connection stays open after this response; Serialize
  /// emits the matching Connection header. Defaults to close, so one-shot
  /// callers (tests, error paths) stay correct without negotiating.
  bool keep_alive = false;

  /// Full HTTP/1.1 wire form. Content-Type, Content-Length and Connection
  /// are owned by the serializer: caller-supplied duplicates in `headers`
  /// are dropped rather than emitted twice (a duplicated framing header
  /// desynchronizes every later request on a kept-alive connection).
  std::string Serialize() const;

  /// Value of the named header (lowercase for fetched responses), or ""
  /// when absent.
  std::string_view HeaderOr(std::string_view name,
                            std::string_view fallback = "") const;
};

/// Canonical reason phrase for the status codes the server emits
/// ("OK", "Bad Request", ...); "Unknown" otherwise.
const char* HttpStatusReason(int status);

/// Parses a request head (everything before the blank line, excluding the
/// final CRLF CRLF) into method/target/version/headers. Strict on the
/// request line: exactly two single spaces, so a target with an embedded
/// space ("GET /a b HTTP/1.1") is rejected instead of silently parsed as
/// "/a b". Header lines must carry a non-empty name (": value" is
/// malformed). The body is NOT consumed here — callers read it per
/// Content-Length.
common::Result<HttpRequest> ParseRequestHead(std::string_view head);

/// Parses a response head (status line + headers, excluding the blank
/// line) into status and lowercased header pairs; the body is not
/// touched. Unparseable header lines are skipped rather than failing —
/// the status and body are what every caller needs.
common::Result<HttpResponse> ParseResponseHead(std::string_view head);

/// Strict Content-Length parse: ASCII digits only — no sign, whitespace,
/// 0x prefix, or trailing junk (all of which strtoull-style parsing would
/// quietly accept, a classic request-smuggling vector) — rejecting empty
/// input and values above kMaxHttpBodyBytes. Exposed for tests;
/// ReadHttpRequest applies it to every Content-Length header and rejects
/// duplicates with conflicting values.
common::Result<size_t> ParseContentLength(std::string_view text);

/// Incremental request parser for persistent connections: feed raw bytes
/// as they arrive, pull complete requests out one at a time. Bytes after
/// a complete request stay buffered — they are the next pipelined
/// request, not an error. Single-owner (one framer per connection); the
/// head scan resumes where the previous one left off, so dribbled input
/// stays O(n).
class RequestFramer {
 public:
  enum class Outcome {
    kRequest,   ///< *request holds the next complete request
    kNeedMore,  ///< a prefix is buffered; feed more bytes
    kError,     ///< malformed framing; the connection must close
  };

  /// Appends newly received bytes.
  void Feed(const char* data, size_t n);

  /// Frames the next complete request out of the buffer. On kRequest the
  /// consumed bytes are removed; on kError *error carries the parse
  /// failure (the stream is desynchronized — close after responding).
  Outcome Next(HttpRequest* request, common::Status* error);

  /// True when the buffer holds bytes of a not-yet-complete request —
  /// the difference between "idle between requests" (quiet close) and
  /// "stalled mid-request" (408) for the server's deadline handling.
  bool MidRequest() const { return !buffer_.empty(); }

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  size_t search_from_ = 0;
};

/// Reads one full request (head + Content-Length body) from a connected
/// socket. Fails with kInvalidArgument on malformed input, kIoError on
/// socket errors or EOF mid-request, and kDeadlineExceeded when either
/// `timeouts` budget runs out (the default timeouts block forever).
/// Interrupted syscalls (EINTR) are always retried, with the remaining
/// budget recomputed.
common::Result<HttpRequest> ReadHttpRequest(int fd,
                                            const HttpTimeouts& timeouts = {});

/// Writes all of `data` to `fd` (retrying short writes and EINTR,
/// ignoring SIGPIPE — a half-closed peer surfaces as kIoError, never a
/// signal). With timeouts, a peer that stops draining its receive window
/// fails the write with kDeadlineExceeded instead of blocking forever.
common::Status WriteAll(int fd, std::string_view data,
                        const HttpTimeouts& timeouts = {});

/// Blocking single-request HTTP client for benches and tests: connects to
/// host:port, sends `method target` with `body` and Connection: close,
/// returns the parsed response. The connection is closed afterwards.
common::Result<HttpResponse> HttpFetch(const std::string& host, int port,
                                       const std::string& method,
                                       const std::string& target,
                                       const std::string& body = "");

/// Persistent (keep-alive) HTTP/1.1 client for benches and tests. One
/// connection carries many requests; Send() without an interleaved
/// ReadResponse() pipelines. Responses are framed by Content-Length
/// (falling back to read-to-EOF when the server omits it). Move-only;
/// not thread-safe.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();
  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to a numeric IPv4 host:port (closing any prior connection).
  common::Status Connect(const std::string& host, int port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Sends one request with Connection: keep-alive, without waiting for
  /// the response — call ReadResponse() once per Send(), in order.
  common::Status Send(const std::string& method, const std::string& target,
                      const std::string& body = "",
                      const HttpTimeouts& timeouts = {});

  /// Reads the next response off the connection. A server that announced
  /// Connection: close (or EOF mid-stream) closes the client; a fresh
  /// Connect() is needed afterwards.
  common::Result<HttpResponse> ReadResponse(const HttpTimeouts& timeouts = {});

  /// Send + ReadResponse in one call (the common non-pipelined case).
  common::Result<HttpResponse> Fetch(const std::string& method,
                                     const std::string& target,
                                     const std::string& body = "",
                                     const HttpTimeouts& timeouts = {});

 private:
  int fd_ = -1;
  std::string host_;
  std::string buffer_;  ///< bytes past the previously framed response
};

/// Extracts a top-level numeric JSON field (e.g. `"demand": 120`) from a
/// flat JSON object without a full parser. Fails with kInvalidArgument
/// when the key is missing or its value is not a number.
common::Result<double> ExtractJsonNumber(std::string_view json,
                                         std::string_view key);

/// Splits a request target at the first '?': "/debug/trace?ms=250"
/// becomes {"/debug/trace", "ms=250"}. A target without a query string
/// yields an empty second element. Fragments are not handled (clients in
/// this repo never send them).
std::pair<std::string_view, std::string_view> SplitTarget(
    std::string_view target);

/// Value of `key` in an urlencoded query string ("a=1&b=2"), or "" when
/// absent or valueless. No percent-decoding — the serving layer's query
/// parameters are plain integers.
std::string_view QueryParam(std::string_view query, std::string_view key);

}  // namespace mroam::serve

#endif  // MROAM_SERVE_HTTP_H_
