#ifndef MROAM_SERVE_HTTP_H_
#define MROAM_SERVE_HTTP_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace mroam::serve {

// ---------------------------------------------------------------------------
// Minimal dependency-free HTTP/1.1 plumbing over POSIX sockets: just enough
// protocol for the market serving layer (MarketServer) and its load
// generator / test clients. One request per connection; every response
// carries Content-Length and Connection: close. No TLS, no chunked
// encoding, no keep-alive — the serving layer's clients are command-line
// tools and benches on the same host.
// ---------------------------------------------------------------------------

/// Upper bound on request head (request line + headers) accepted by the
/// reader; larger requests fail with kInvalidArgument.
inline constexpr size_t kMaxHttpHeadBytes = 64 * 1024;
/// Upper bound on a request/response body.
inline constexpr size_t kMaxHttpBodyBytes = 16 * 1024 * 1024;

/// Read/write deadlines for one socket operation. Two budgets compose:
/// `idle_ms` bounds the wait for the *next* byte (a slow-loris client
/// dribbling one byte per minute trips it), `total_ms` bounds the whole
/// operation (a client dribbling fast enough to stay under the idle
/// budget still cannot pin a thread forever). -1 disables a budget; the
/// default is fully blocking, matching the pre-deadline behavior.
struct HttpTimeouts {
  int idle_ms = -1;
  int total_ms = -1;
};

struct HttpRequest {
  std::string method;   ///< "GET", "POST", ... (uppercase as sent)
  std::string target;   ///< request target, e.g. "/contracts/12"
  std::string version;  ///< "HTTP/1.1"
  /// Header (name, value) pairs; names are lowercased by the parser.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Value of the named header (lowercase), or "" when absent.
  std::string_view HeaderOr(std::string_view name,
                            std::string_view fallback = "") const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  /// Extra response headers beyond Content-Type/Content-Length/Connection
  /// (e.g. Retry-After on a shed, X-Mroam-Stale on a degraded read).
  /// Serialized verbatim; on fetched responses, names are lowercased by
  /// the client-side parser.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Full HTTP/1.1 wire form with Content-Length and Connection: close.
  std::string Serialize() const;

  /// Value of the named header (lowercase for fetched responses), or ""
  /// when absent.
  std::string_view HeaderOr(std::string_view name,
                            std::string_view fallback = "") const;
};

/// Canonical reason phrase for the status codes the server emits
/// ("OK", "Bad Request", ...); "Unknown" otherwise.
const char* HttpStatusReason(int status);

/// Parses a request head (everything before the blank line, excluding the
/// final CRLF CRLF) into method/target/version/headers. The body is NOT
/// consumed here — callers read it per Content-Length.
common::Result<HttpRequest> ParseRequestHead(std::string_view head);

/// Strict Content-Length parse: ASCII digits only — no sign, whitespace,
/// 0x prefix, or trailing junk (all of which strtoull-style parsing would
/// quietly accept, a classic request-smuggling vector) — rejecting empty
/// input and values above kMaxHttpBodyBytes. Exposed for tests;
/// ReadHttpRequest applies it to every Content-Length header and rejects
/// duplicates with conflicting values.
common::Result<size_t> ParseContentLength(std::string_view text);

/// Reads one full request (head + Content-Length body) from a connected
/// socket. Fails with kInvalidArgument on malformed input, kIoError on
/// socket errors or EOF mid-request, and kDeadlineExceeded when either
/// `timeouts` budget runs out (the default timeouts block forever).
/// Interrupted syscalls (EINTR) are always retried, with the remaining
/// budget recomputed.
common::Result<HttpRequest> ReadHttpRequest(int fd,
                                            const HttpTimeouts& timeouts = {});

/// Writes all of `data` to `fd` (retrying short writes and EINTR,
/// ignoring SIGPIPE — a half-closed peer surfaces as kIoError, never a
/// signal). With timeouts, a peer that stops draining its receive window
/// fails the write with kDeadlineExceeded instead of blocking forever.
common::Status WriteAll(int fd, std::string_view data,
                        const HttpTimeouts& timeouts = {});

/// Blocking single-request HTTP client for benches and tests: connects to
/// host:port, sends `method target` with `body`, returns the parsed
/// response. The connection is closed afterwards.
common::Result<HttpResponse> HttpFetch(const std::string& host, int port,
                                       const std::string& method,
                                       const std::string& target,
                                       const std::string& body = "");

/// Extracts a top-level numeric JSON field (e.g. `"demand": 120`) from a
/// flat JSON object without a full parser. Fails with kInvalidArgument
/// when the key is missing or its value is not a number.
common::Result<double> ExtractJsonNumber(std::string_view json,
                                         std::string_view key);

/// Splits a request target at the first '?': "/debug/trace?ms=250"
/// becomes {"/debug/trace", "ms=250"}. A target without a query string
/// yields an empty second element. Fragments are not handled (clients in
/// this repo never send them).
std::pair<std::string_view, std::string_view> SplitTarget(
    std::string_view target);

/// Value of `key` in an urlencoded query string ("a=1&b=2"), or "" when
/// absent or valueless. No percent-decoding — the serving layer's query
/// parameters are plain integers.
std::string_view QueryParam(std::string_view query, std::string_view key);

}  // namespace mroam::serve

#endif  // MROAM_SERVE_HTTP_H_
