#ifndef MROAM_SERVE_HTTP_H_
#define MROAM_SERVE_HTTP_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace mroam::serve {

// ---------------------------------------------------------------------------
// Minimal dependency-free HTTP/1.1 plumbing over POSIX sockets: just enough
// protocol for the market serving layer (MarketServer) and its load
// generator / test clients. One request per connection; every response
// carries Content-Length and Connection: close. No TLS, no chunked
// encoding, no keep-alive — the serving layer's clients are command-line
// tools and benches on the same host.
// ---------------------------------------------------------------------------

/// Upper bound on request head (request line + headers) accepted by the
/// reader; larger requests fail with kInvalidArgument.
inline constexpr size_t kMaxHttpHeadBytes = 64 * 1024;
/// Upper bound on a request/response body.
inline constexpr size_t kMaxHttpBodyBytes = 16 * 1024 * 1024;

struct HttpRequest {
  std::string method;   ///< "GET", "POST", ... (uppercase as sent)
  std::string target;   ///< request target, e.g. "/contracts/12"
  std::string version;  ///< "HTTP/1.1"
  /// Header (name, value) pairs; names are lowercased by the parser.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Value of the named header (lowercase), or "" when absent.
  std::string_view HeaderOr(std::string_view name,
                            std::string_view fallback = "") const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  /// Full HTTP/1.1 wire form with Content-Length and Connection: close.
  std::string Serialize() const;
};

/// Canonical reason phrase for the status codes the server emits
/// ("OK", "Bad Request", ...); "Unknown" otherwise.
const char* HttpStatusReason(int status);

/// Parses a request head (everything before the blank line, excluding the
/// final CRLF CRLF) into method/target/version/headers. The body is NOT
/// consumed here — callers read it per Content-Length.
common::Result<HttpRequest> ParseRequestHead(std::string_view head);

/// Strict Content-Length parse: ASCII digits only — no sign, whitespace,
/// 0x prefix, or trailing junk (all of which strtoull-style parsing would
/// quietly accept, a classic request-smuggling vector) — rejecting empty
/// input and values above kMaxHttpBodyBytes. Exposed for tests;
/// ReadHttpRequest applies it to every Content-Length header and rejects
/// duplicates with conflicting values.
common::Result<size_t> ParseContentLength(std::string_view text);

/// Reads one full request (head + Content-Length body) from a connected
/// socket. Blocking; fails with kInvalidArgument on malformed input,
/// kIoError on socket errors or EOF mid-request.
common::Result<HttpRequest> ReadHttpRequest(int fd);

/// Writes all of `data` to `fd` (retrying short writes, ignoring SIGPIPE).
common::Status WriteAll(int fd, std::string_view data);

/// Blocking single-request HTTP client for benches and tests: connects to
/// host:port, sends `method target` with `body`, returns the parsed
/// response. The connection is closed afterwards.
common::Result<HttpResponse> HttpFetch(const std::string& host, int port,
                                       const std::string& method,
                                       const std::string& target,
                                       const std::string& body = "");

/// Extracts a top-level numeric JSON field (e.g. `"demand": 120`) from a
/// flat JSON object without a full parser. Fails with kInvalidArgument
/// when the key is missing or its value is not a number.
common::Result<double> ExtractJsonNumber(std::string_view json,
                                         std::string_view key);

/// Splits a request target at the first '?': "/debug/trace?ms=250"
/// becomes {"/debug/trace", "ms=250"}. A target without a query string
/// yields an empty second element. Fragments are not handled (clients in
/// this repo never send them).
std::pair<std::string_view, std::string_view> SplitTarget(
    std::string_view target);

/// Value of `key` in an urlencoded query string ("a=1&b=2"), or "" when
/// absent or valueless. No percent-decoding — the serving layer's query
/// parameters are plain integers.
std::string_view QueryParam(std::string_view query, std::string_view key);

}  // namespace mroam::serve

#endif  // MROAM_SERVE_HTTP_H_
