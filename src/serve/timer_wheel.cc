#include "serve/timer_wheel.h"

#include <algorithm>

#include "common/logging.h"

namespace mroam::serve {

TimerWheel::TimerWheel(int tick_ms, int num_slots)
    : tick_ms_(tick_ms),
      slots_(static_cast<size_t>(num_slots)),
      cursor_tick_(TickOf(Clock::now())) {
  MROAM_CHECK(tick_ms >= 1);
  MROAM_CHECK(num_slots >= 2);
}

int64_t TimerWheel::TickOf(Clock::time_point t) const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             t.time_since_epoch())
             .count() /
         tick_ms_;
}

void TimerWheel::Schedule(uint64_t id, Clock::time_point deadline) {
  // A deadline at or before the swept cursor would land in a slot the
  // cursor has already passed and wait a full lap; pin it to the next
  // tick instead so it fires on the next Advance.
  const int64_t tick = std::max(TickOf(deadline), cursor_tick_ + 1);
  auto& slot = slots_[static_cast<size_t>(tick) % slots_.size()];
  slot.push_back(Entry{id, deadline});
  ++pending_;
}

void TimerWheel::Advance(Clock::time_point now, std::vector<uint64_t>* due) {
  const int64_t target = TickOf(now);
  if (target <= cursor_tick_) return;
  // Walking more ticks than there are slots would revisit slots; one
  // full sweep covers everything.
  const int64_t span = std::min<int64_t>(target - cursor_tick_,
                                         static_cast<int64_t>(slots_.size()));
  for (int64_t t = cursor_tick_ + 1; t <= cursor_tick_ + span; ++t) {
    auto& slot = slots_[static_cast<size_t>(t) % slots_.size()];
    size_t keep = 0;
    for (size_t i = 0; i < slot.size(); ++i) {
      // Fire once the entry's tick has been swept, even when `now` sits
      // a hair before the deadline inside that tick: retaining the
      // entry would strand it in an already-passed slot for a full lap
      // (and pin MsUntilNext at ~0, busy-polling the owner). A sub-tick
      // early fire is safe — the owner re-checks the real deadline and
      // re-arms (lazy cancellation), costing one spurious wakeup.
      if (slot[i].deadline <= now || TickOf(slot[i].deadline) <= target) {
        due->push_back(slot[i].id);
        --pending_;
      } else {
        // Scheduled a lap (or more) ahead; stays for a later visit.
        slot[keep++] = slot[i];
      }
    }
    slot.resize(keep);
  }
  cursor_tick_ = target;
}

int TimerWheel::MsUntilNext(Clock::time_point now) const {
  if (pending_ == 0) return -1;
  Clock::time_point earliest = Clock::time_point::max();
  for (const auto& slot : slots_) {
    for (const Entry& entry : slot) {
      earliest = std::min(earliest, entry.deadline);
    }
  }
  const auto wait = std::chrono::duration_cast<std::chrono::milliseconds>(
      earliest - now);
  // Round up to the tick so the wake-up lands past the deadline instead
  // of one poll early.
  return static_cast<int>(
      std::clamp<int64_t>(wait.count() + 1, 0, 60 * 1000));
}

}  // namespace mroam::serve
