#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <utility>

namespace mroam::obs {

std::atomic<bool> Tracer::enabled_{false};

namespace {

/// Reads MROAM_TRACE once at process start; a non-empty value arms the
/// tracer and registers an exit-time flush, so any binary linked against
/// mroam becomes traceable without code changes.
[[maybe_unused]] const bool g_trace_env_armed = [] {
  const char* path = std::getenv("MROAM_TRACE");
  if (path == nullptr || path[0] == '\0') return false;
  Tracer::Global().Enable(path);
  return true;
}();

}  // namespace

Tracer::Tracer() : epoch_ns_(NowNanos()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

int64_t Tracer::NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Tracer::Enable(std::string path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    path_ = std::move(path);
  }
  enabled_.store(true, std::memory_order_relaxed);
  // One exit-time flush covers both env-armed and programmatic enables;
  // flushing with no buffered spans just rewrites an empty trace.
  static const bool registered = [] {
    std::atexit([] {
      common::Status status = Tracer::Global().Flush();
      if (!status.ok()) {
        std::fprintf(stderr, "mroam tracer flush failed: %s\n",
                     status.message().c_str());
      }
    });
    return true;
  }();
  static_cast<void>(registered);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    buffer = owned.get();
    std::lock_guard<std::mutex> lock(mu_);
    buffer->tid = static_cast<uint32_t>(buffers_.size());
    buffers_.push_back(std::move(owned));
  }
  return buffer;
}

void Tracer::Record(const char* name, int64_t id, int64_t start_ns,
                    int64_t end_ns) {
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->spans.push_back({name, id, start_ns, end_ns - start_ns});
}

std::string Tracer::DumpJson() {
  std::string out =
      "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    for (const SpanRecord& span : buffer->spans) {
      if (!first) out += ",\n";
      first = false;
      char line[256];
      // Chrome trace events use microsecond timestamps; keep nanosecond
      // precision with a fractional part.
      const double ts_us =
          static_cast<double>(span.start_ns - epoch_ns_) / 1e3;
      const double dur_us = static_cast<double>(span.dur_ns) / 1e3;
      if (span.id >= 0) {
        std::snprintf(line, sizeof(line),
                      "{\"name\":\"%s\",\"cat\":\"mroam\",\"ph\":\"X\","
                      "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
                      "\"args\":{\"id\":%lld}}",
                      span.name, buffer->tid, ts_us, dur_us,
                      static_cast<long long>(span.id));
      } else {
        std::snprintf(line, sizeof(line),
                      "{\"name\":\"%s\",\"cat\":\"mroam\",\"ph\":\"X\","
                      "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
                      span.name, buffer->tid, ts_us, dur_us);
      }
      out += line;
    }
  }
  out += "\n]\n}\n";
  return out;
}

common::Status Tracer::Flush() {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    path = path_;
  }
  if (path.empty()) return common::Status::Ok();
  // An empty flush must not clobber a file a previous flush wrote: a
  // server's graceful Stop() flushes explicitly, and the process-exit
  // flush that follows would otherwise truncate the trace to nothing.
  const bool have_spans = SpanCount() > 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!have_spans && flushed_once_) return common::Status::Ok();
    flushed_once_ = true;
  }
  const std::string json = DumpJson();
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return common::Status::IoError("cannot open trace file " + path);
  }
  out << json;
  if (!out) {
    return common::Status::IoError("short write to trace file " + path);
  }
  Clear();
  return common::Status::Ok();
}

std::string Tracer::CaptureWindow(double seconds) {
  std::lock_guard<std::mutex> capture_lock(capture_mu_);
  const bool was_enabled = Enabled();
  if (!was_enabled) {
    // Memory-only window: arm recording without touching path_, so no
    // exit-time flush is registered and an MROAM_TRACE path configured
    // by a previous session is not clobbered.
    Clear();
    enabled_.store(true, std::memory_order_relaxed);
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  std::string json;
  if (!was_enabled) {
    enabled_.store(false, std::memory_order_relaxed);
    json = DumpJson();
    Clear();
  } else {
    json = DumpJson();
  }
  return json;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->spans.clear();
  }
}

int64_t Tracer::SpanCount() {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += static_cast<int64_t>(buffer->spans.size());
  }
  return total;
}

}  // namespace mroam::obs
