#ifndef MROAM_OBS_FLIGHT_RECORDER_H_
#define MROAM_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mroam::obs {

/// Ring count and per-ring capacity of the flight recorder. Memory is
/// bounded at kFlightRings * kFlightRingEvents * sizeof(Slot) (~1 MB)
/// regardless of how long the process runs or how many threads record.
inline constexpr uint32_t kFlightRings = 32;
inline constexpr uint32_t kFlightRingEvents = 512;

/// Always-on in-memory flight recorder: the last ~16k span/event records,
/// kept in per-thread ring buffers so a wedged or crashed process can
/// show what it was doing. Unlike the Tracer (opt-in, unbounded buffers,
/// flushed to a file), the recorder is ON by default (MROAM_FLIGHT=0
/// disables), never allocates after construction, and overwrites its
/// oldest records forever.
///
/// Writers are wait-free: a thread claims a slot with one relaxed
/// fetch_add on its ring's ticket counter and fills it with relaxed
/// stores, so a record costs a few nanoseconds and never blocks —
/// MROAM_TRACE's steady-state cost regime, per DESIGN.md §6. Threads are
/// assigned rings round-robin; more than kFlightRings concurrently hot
/// threads alias onto shared rings and stay correct via the per-slot
/// sequence protocol (a reader drops any slot whose sequence moved while
/// it was being read — a seqlock per slot, with every field an atomic so
/// the protocol is also race-free under TSan).
///
/// Readers (DumpJson, the /debug/flight endpoint, the fatal-signal crash
/// handler) never take a lock: WriteEventsJson is async-signal-safe —
/// fixed-size stack buffers, no allocation, plain write(2) — so it can
/// run from a SIGSEGV handler.
///
/// Span names must be string literals (only the pointer is stored), the
/// same contract as the Tracer.
class FlightRecorder {
 public:
  /// One decoded record (Snapshot output, oldest first).
  struct Event {
    const char* name = nullptr;
    int64_t id = -1;     ///< span/ticket tag; -1 = none
    int64_t t_ns = 0;    ///< completion time (Tracer::NowNanos clock)
    int64_t dur_ns = 0;  ///< 0 for instant events
    uint32_t ring = 0;   ///< writer ring index (≈ thread)
  };

  static FlightRecorder& Global();

  /// The hot-path check. True unless MROAM_FLIGHT=0/off or SetEnabled.
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Appends one completed span ending at `end_ns`. `name` must be a
  /// string literal. No-op when disabled.
  void Record(const char* name, int64_t id, int64_t end_ns, int64_t dur_ns);

  /// Appends one instant event stamped now. No-op when disabled.
  void RecordEvent(const char* name, int64_t id = -1);

  /// Copies out every currently-valid record, oldest first (by t_ns).
  /// Concurrent writers may overwrite slots mid-scan; torn slots are
  /// dropped, so the result is always internally consistent.
  std::vector<Event> Snapshot() const;

  /// {"enabled":...,"dropped_approx":...,"events":[...]} for
  /// GET /debug/flight and tests.
  std::string DumpJson() const;

  /// Async-signal-safe: writes the ring contents to `fd` as the inside
  /// of a JSON array ("{...},{...}" — no enclosing brackets), unsorted.
  /// Safe to call from a fatal-signal handler.
  void WriteEventsJson(int fd) const;

  /// Number of currently-valid records (tests / diagnostics).
  int64_t EventCount() const;

  /// Total records ever claimed minus retained capacity — roughly how
  /// many records have been overwritten (diagnostics).
  int64_t DroppedApprox() const;

  /// Invalidates every slot (test isolation; not signal-safe to race
  /// with, but writers may continue normally).
  void Clear();

 private:
  /// One seqlock-protected record slot. seq == 0 means empty/being
  /// written; seq == ticket+1 (unique, strictly increasing per slot)
  /// means valid. Every field is an atomic so concurrent read/overwrite
  /// is defined behavior; the seq re-check makes it also *consistent*.
  struct Slot {
    std::atomic<uint64_t> seq{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<int64_t> id{-1};
    std::atomic<int64_t> t_ns{0};
    std::atomic<int64_t> dur_ns{0};
  };
  struct alignas(64) Ring {
    std::atomic<uint64_t> next{0};  ///< ticket counter; slot = next % N
    Slot slots[kFlightRingEvents];
  };

  FlightRecorder() = default;
  static uint32_t ThisThreadRing();
  /// Reads one slot under the seq protocol; false when empty or torn.
  static bool ReadSlot(const Slot& slot, uint32_t ring, Event* out);

  static std::atomic<bool> enabled_;
  Ring rings_[kFlightRings];
};

/// Drops one instant lifecycle event into the flight recorder (e.g.
/// "ticket.enqueue" tagged with the request id). `name` must be a string
/// literal.
#define MROAM_FLIGHT_EVENT(name, id)                                      \
  do {                                                                    \
    if (::mroam::obs::FlightRecorder::Enabled()) {                        \
      ::mroam::obs::FlightRecorder::Global().RecordEvent(name, id);       \
    }                                                                     \
  } while (0)

}  // namespace mroam::obs

#endif  // MROAM_OBS_FLIGHT_RECORDER_H_
