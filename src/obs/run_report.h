#ifndef MROAM_OBS_RUN_REPORT_H_
#define MROAM_OBS_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace mroam::obs {

/// Structured telemetry of one solver (or market) run: where the wall
/// time went, what the metrics registry counted while the run was in
/// flight, and how each advertiser came out. Produced by core::Solve on
/// every SolveResult and serialized by the bench harness into
/// BENCH_<name>.json, so per-phase cost is machine-diffable across PRs.
struct RunReport {
  /// What ran — a method name ("BLS"), a policy, or a bench label.
  std::string label;

  struct Phase {
    std::string name;
    double seconds = 0.0;
  };
  /// Per-phase wall time. For parallel phases (restart tasks) the value
  /// is the *sum across tasks* — CPU seconds, not elapsed wall time.
  std::vector<Phase> phases;

  /// Delta of the global metrics registry over the run. With concurrent
  /// runs in one process the deltas mix; the solvers themselves are
  /// instrumented per run, so single-run-at-a-time processes (every
  /// bench and test binary) get exact per-run numbers.
  MetricsSnapshot metrics;

  struct AdvertiserOutcome {
    int64_t id = 0;
    int64_t demand = 0;
    double payment = 0.0;
    int64_t influence = 0;
    double regret = 0.0;
    bool satisfied = false;
  };
  /// Per-advertiser regret breakdown of the final deployment.
  std::vector<AdvertiserOutcome> advertisers;

  void AddPhase(std::string name, double seconds);
  /// Seconds of the named phase, or 0 when absent.
  double PhaseSeconds(const std::string& name) const;

  /// Compact JSON object (phases, metrics, advertisers) for embedding in
  /// larger documents.
  std::string ToJson() const;

  /// One-line human summary ("phases: greedy=0.12s ... moves=34") for the
  /// end-of-solve Info log.
  std::string OneLineSummary() const;
};

}  // namespace mroam::obs

#endif  // MROAM_OBS_RUN_REPORT_H_
