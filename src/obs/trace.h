#ifndef MROAM_OBS_TRACE_H_
#define MROAM_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/flight_recorder.h"

namespace mroam::obs {

/// Process-wide scoped-span tracer. Disabled by default: the only cost a
/// span pays then is one relaxed atomic load (measured at well under a
/// nanosecond on the bench fixture, DESIGN.md §6). Enabled either by the
/// MROAM_TRACE=<path> environment variable (spans are flushed to <path>
/// as Chrome trace-event JSON at process exit — load the file in Perfetto
/// or chrome://tracing) or programmatically via Enable().
///
/// Spans are buffered per thread (one mutex-guarded buffer per thread,
/// uncontended in steady state) and merged at Flush()/DumpJson() time.
/// Span names must be string literals (or otherwise outlive the tracer):
/// only the pointer is stored on the hot path.
class Tracer {
 public:
  static Tracer& Global();

  /// True when spans are being recorded. The hot-path check.
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Starts recording; Flush() (and process exit) writes to `path`.
  /// An empty path records in memory only (DumpJson for tests).
  void Enable(std::string path);

  /// Stops recording. Already-buffered spans are kept until Flush/Clear.
  void Disable();

  /// Appends one completed span to the calling thread's buffer.
  void Record(const char* name, int64_t id, int64_t start_ns,
              int64_t end_ns);

  /// Serializes all buffered spans as a Chrome trace-event JSON document.
  std::string DumpJson();

  /// Writes DumpJson() to the Enable() path and clears the buffers.
  /// No-op (Ok) when no path was configured.
  common::Status Flush();

  /// Drops all buffered spans (test isolation).
  void Clear();

  /// Bounded on-demand capture (GET /debug/trace?ms=...): records spans
  /// for `seconds` of wall time, then returns the Chrome trace-event
  /// JSON. When the tracer was disabled, it is enabled in memory only
  /// for the window and restored (buffers cleared) afterwards — the
  /// MROAM_TRACE path, if any, is untouched. When the tracer was
  /// already enabled (an MROAM_TRACE session), the window just dumps
  /// the live buffers without clearing them. Concurrent captures
  /// serialize on an internal mutex; the caller blocks for the window.
  std::string CaptureWindow(double seconds);

  /// Buffered span count across all threads (tests / diagnostics).
  int64_t SpanCount();

  /// Monotonic clock used for span timestamps, in nanoseconds.
  static int64_t NowNanos();

 private:
  struct SpanRecord {
    const char* name;
    int64_t id;  ///< -1 = none; else emitted as args.id
    int64_t start_ns;
    int64_t dur_ns;
  };
  struct ThreadBuffer {
    std::mutex mu;
    uint32_t tid = 0;
    std::vector<SpanRecord> spans;
  };

  Tracer();
  ThreadBuffer* BufferForThisThread();

  static std::atomic<bool> enabled_;

  const int64_t epoch_ns_;  ///< trace timestamps are relative to this
  std::mutex capture_mu_;   ///< serializes CaptureWindow sessions
  std::mutex mu_;           ///< guards buffers_ registration and path_
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::string path_;
  /// Whether a flush already wrote path_; an empty follow-up flush (e.g.
  /// the process-exit hook after a server's explicit Stop() flush) then
  /// leaves the file alone instead of truncating it.
  bool flushed_once_ = false;
};

/// RAII span: records [construction, destruction) under `name` when the
/// tracer is enabled at construction time — and, always, into the
/// flight recorder's ring buffers (FlightRecorder, on by default) so
/// the last spans survive for /debug/flight and crash reports. With
/// both sinks off the constructor cost is two relaxed loads; in the
/// always-on steady state (tracer off, recorder on) a span costs two
/// clock reads plus one wait-free ring write. `name` must be a string
/// literal. Pass `id` >= 0 to tag the span (e.g. a restart index or a
/// ticket); it is emitted as args.id in the trace and as the flight
/// record's id.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, int64_t id = -1)
      : to_tracer_(Tracer::Enabled()),
        to_flight_(FlightRecorder::Enabled()) {
    // The sink set is latched here: a span live across Disable() still
    // records (spans are never torn), and one armed mid-span does not
    // capture a partial measurement.
    if (!to_tracer_ && !to_flight_) return;
    name_ = name;
    id_ = id;
    start_ns_ = Tracer::NowNanos();
  }

  ~ScopedSpan() {
    if (name_ == nullptr) return;
    const int64_t end_ns = Tracer::NowNanos();
    if (to_tracer_) {
      Tracer::Global().Record(name_, id_, start_ns_, end_ns);
    }
    if (to_flight_) {
      FlightRecorder::Global().Record(name_, id_, end_ns,
                                      end_ns - start_ns_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  int64_t id_ = -1;
  int64_t start_ns_ = 0;
  bool to_tracer_ = false;
  bool to_flight_ = false;
};

#define MROAM_OBS_CONCAT_INNER(a, b) a##b
#define MROAM_OBS_CONCAT(a, b) MROAM_OBS_CONCAT_INNER(a, b)

// MROAM_TRACE_SPAN("name") traces the enclosing scope. Compiled to
// nothing when the MROAM_ENABLE_TRACING CMake option is OFF.
#ifndef MROAM_TRACING_DISABLED
#define MROAM_TRACE_SPAN(name)                                        \
  ::mroam::obs::ScopedSpan MROAM_OBS_CONCAT(mroam_span_, __LINE__)(name)
#define MROAM_TRACE_SPAN_ID(name, id)                                 \
  ::mroam::obs::ScopedSpan MROAM_OBS_CONCAT(mroam_span_, __LINE__)(name, id)
#else
#define MROAM_TRACE_SPAN(name) static_cast<void>(0)
#define MROAM_TRACE_SPAN_ID(name, id) static_cast<void>(0)
#endif

}  // namespace mroam::obs

#endif  // MROAM_OBS_TRACE_H_
