#ifndef MROAM_OBS_METRICS_H_
#define MROAM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mroam::obs {

/// Number of independent write shards per metric. Threads are assigned a
/// shard round-robin on first use, so with up to kMetricShards concurrently
/// hot threads every increment is a relaxed fetch_add on a private cache
/// line; more threads alias onto shared shards and stay correct, just with
/// occasional line sharing. Snapshot() merges the shards.
inline constexpr uint32_t kMetricShards = 16;

namespace internal {

/// The calling thread's shard slot (stable for the thread's lifetime).
uint32_t ThisThreadShard();

/// Appends `text` to `out` as a quoted, escaped JSON string.
void AppendJsonString(std::string* out, const std::string& text);

/// Compact double for JSON: integral values print without a fraction,
/// everything else keeps enough digits to round-trip timing data.
std::string JsonDouble(double value);

/// Prometheus text-format escaping. HELP text escapes backslash and
/// newline; label values additionally escape the double quote
/// (exposition format spec — unescaped values break scrapers).
std::string PrometheusEscapeHelp(const std::string& text);
std::string PrometheusEscapeLabel(const std::string& text);

struct alignas(64) PaddedCounterCell {
  std::atomic<int64_t> value{0};
};

/// fetch_add for atomic<double> without relying on C++20 library support.
inline void AtomicAddDouble(std::atomic<double>* target, double delta) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + delta,
                                        std::memory_order_relaxed)) {
  }
}

}  // namespace internal

/// Monotonically increasing event count (moves applied, tasks run, ...).
/// Add is wait-free on the caller's shard; Value sums the shards.
class Counter {
 public:
  void Add(int64_t delta = 1) {
    cells_[internal::ThisThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  int64_t Value() const {
    int64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void Reset() {
    for (auto& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  internal::PaddedCounterCell cells_[kMetricShards];
};

/// Instantaneous level (queue depth, active workers, ...). Set is
/// last-writer-wins; Add is an atomic delta.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram of double observations (typically seconds).
/// Bucket i counts observations <= bounds[i]; one implicit overflow bucket
/// counts the rest. Observations also accumulate into sum/count so means
/// are exact. Sharded like Counter.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts (bounds().size() + 1 entries, last = overflow).
  std::vector<int64_t> BucketCounts() const;
  int64_t TotalCount() const;
  double Sum() const;
  void Reset();

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<int64_t>> buckets;
    std::atomic<double> sum{0.0};
    std::atomic<int64_t> count{0};
  };

  std::vector<double> bounds_;  ///< ascending upper bounds
  std::vector<Shard> shards_;
};

/// One exported value set, decoupled from the live metric objects — safe
/// to hold, diff, and serialize while the registry keeps counting.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    int64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<int64_t> counts;  ///< bounds.size() + 1, last = overflow
    int64_t count = 0;
    double sum = 0.0;

    /// Estimated q-quantile (q in [0,1]) from the bucket counts: linear
    /// interpolation inside the winning bucket, with bucket 0 anchored
    /// at zero (observations are assumed non-negative — latencies) and
    /// the overflow bucket pinned to the largest finite bound. Returns
    /// 0 when the histogram is empty.
    double Quantile(double q) const;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Value of the named counter, or 0 when absent.
  int64_t CounterOf(const std::string& name) const;
  /// The named histogram, or nullptr when absent.
  const HistogramValue* FindHistogram(const std::string& name) const;

  /// Per-run delta: counters and histogram counts/sums subtract `before`
  /// (metrics absent from `before` pass through unchanged); gauges keep
  /// this snapshot's value. Zero-valued counters/histograms are dropped,
  /// so a delta carries only what the run actually touched.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& before) const;

  /// Compact JSON object: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{"count":..,"sum":..,"buckets":[..]}}}.
  std::string ToJson() const;

  /// Prometheus text exposition format ('.' becomes '_', histograms get
  /// cumulative _bucket{le=...} series plus _sum and _count).
  std::string ToPrometheus() const;
};

/// Process-wide metric registry. Get* registers on first use and returns a
/// stable pointer — cache it in a function-local static at the call site
/// (the MROAM_*_METRIC macros below do exactly that). All methods are
/// thread-safe; Snapshot() may run concurrently with hot-path writers.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies on first registration only (later calls return the
  /// existing histogram regardless of bounds).
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = DefaultLatencyBuckets());

  /// 1us .. ~100s in half-decade steps — covers index builds down to
  /// single queue waits.
  static std::vector<double> DefaultLatencyBuckets();

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (names stay registered). Tests only —
  /// concurrent writers may interleave with the reset.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;  // guards the maps, not the metric hot paths
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// Hot-path helpers: resolve the metric once per call site, then the
// operation is a relaxed atomic on a sharded cell.
#define MROAM_COUNTER_ADD(name, delta)                                  \
  do {                                                                  \
    static ::mroam::obs::Counter* mroam_counter_ =                      \
        ::mroam::obs::MetricsRegistry::Global().GetCounter(name);       \
    mroam_counter_->Add(delta);                                         \
  } while (0)

#define MROAM_GAUGE_SET(name, value)                                    \
  do {                                                                  \
    static ::mroam::obs::Gauge* mroam_gauge_ =                          \
        ::mroam::obs::MetricsRegistry::Global().GetGauge(name);         \
    mroam_gauge_->Set(value);                                           \
  } while (0)

#define MROAM_GAUGE_ADD(name, delta)                                    \
  do {                                                                  \
    static ::mroam::obs::Gauge* mroam_gauge_ =                          \
        ::mroam::obs::MetricsRegistry::Global().GetGauge(name);         \
    mroam_gauge_->Add(delta);                                           \
  } while (0)

#define MROAM_HISTOGRAM_OBSERVE(name, value)                            \
  do {                                                                  \
    static ::mroam::obs::Histogram* mroam_histogram_ =                  \
        ::mroam::obs::MetricsRegistry::Global().GetHistogram(name);     \
    mroam_histogram_->Observe(value);                                   \
  } while (0)

}  // namespace mroam::obs

#endif  // MROAM_OBS_METRICS_H_
