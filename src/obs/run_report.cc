#include "obs/run_report.h"

#include <cstdio>

namespace mroam::obs {

using internal::AppendJsonString;
using internal::JsonDouble;

void RunReport::AddPhase(std::string name, double seconds) {
  phases.push_back({std::move(name), seconds});
}

double RunReport::PhaseSeconds(const std::string& name) const {
  for (const Phase& phase : phases) {
    if (phase.name == name) return phase.seconds;
  }
  return 0.0;
}

std::string RunReport::ToJson() const {
  std::string out = "{\"label\":";
  AppendJsonString(&out, label);
  out += ",\"phases\":{";
  for (size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonString(&out, phases[i].name);
    out.push_back(':');
    out += JsonDouble(phases[i].seconds);
  }
  out += "},\"metrics\":" + metrics.ToJson();
  out += ",\"advertisers\":[";
  for (size_t i = 0; i < advertisers.size(); ++i) {
    const AdvertiserOutcome& a = advertisers[i];
    if (i > 0) out.push_back(',');
    out += "{\"id\":" + std::to_string(a.id) +
           ",\"demand\":" + std::to_string(a.demand) +
           ",\"payment\":" + JsonDouble(a.payment) +
           ",\"influence\":" + std::to_string(a.influence) +
           ",\"regret\":" + JsonDouble(a.regret) +
           ",\"satisfied\":" + (a.satisfied ? "true" : "false") + "}";
  }
  out += "]}";
  return out;
}

std::string RunReport::OneLineSummary() const {
  std::string out = label.empty() ? std::string("run") : label;
  out += " phases:";
  if (phases.empty()) out += " none";
  for (const Phase& phase : phases) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %s=%.3fs", phase.name.c_str(),
                  phase.seconds);
    out += buf;
  }
  const int64_t moves = metrics.CounterOf("als.moves_applied") +
                        metrics.CounterOf("bls.moves_applied");
  if (moves > 0) out += " moves=" + std::to_string(moves);
  if (!advertisers.empty()) {
    int64_t satisfied = 0;
    for (const AdvertiserOutcome& a : advertisers) {
      if (a.satisfied) ++satisfied;
    }
    out += " satisfied=" + std::to_string(satisfied) + "/" +
           std::to_string(static_cast<int64_t>(advertisers.size()));
  }
  return out;
}

}  // namespace mroam::obs
