#include "obs/flight_recorder.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mroam::obs {

std::atomic<bool> FlightRecorder::enabled_{true};

namespace {

/// Reads MROAM_FLIGHT once at process start; "0"/"off"/"false" disables
/// the recorder for processes that want the pure 0.7 ns span path back.
[[maybe_unused]] const bool g_flight_env_armed = [] {
  const char* value = std::getenv("MROAM_FLIGHT");
  if (value != nullptr &&
      (std::strcmp(value, "0") == 0 || std::strcmp(value, "off") == 0 ||
       std::strcmp(value, "false") == 0)) {
    FlightRecorder::SetEnabled(false);
  }
  return true;
}();

/// write(2) with short-write/EINTR retry; errors are swallowed (this
/// runs inside a crash handler — there is nobody to report to).
void WriteRaw(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = write(fd, data + sent, size - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

/// Copies `name` into `out`, replacing anything that would need JSON
/// escaping with '_'. Span names are plain identifiers; this just keeps
/// the signal-safe path from having to implement \uXXXX escapes.
void SanitizeName(const char* name, char* out, size_t out_size) {
  size_t i = 0;
  for (; name[i] != '\0' && i + 1 < out_size; ++i) {
    const unsigned char c = static_cast<unsigned char>(name[i]);
    out[i] = (c < 0x20 || c == '"' || c == '\\' || c >= 0x7f) ? '_'
                                                              : name[i];
  }
  out[i] = '\0';
}

}  // namespace

FlightRecorder& FlightRecorder::Global() {
  // Leaked singleton, same as the Tracer/registry: the crash handler may
  // run during process teardown and must never touch a destroyed object.
  static FlightRecorder* recorder = new FlightRecorder();
  return *recorder;
}

uint32_t FlightRecorder::ThisThreadRing() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t ring =
      next.fetch_add(1, std::memory_order_relaxed) % kFlightRings;
  return ring;
}

void FlightRecorder::Record(const char* name, int64_t id, int64_t end_ns,
                            int64_t dur_ns) {
  if (!Enabled()) return;
  Ring& ring = rings_[ThisThreadRing()];
  const uint64_t ticket = ring.next.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring.slots[ticket % kFlightRingEvents];
  // Seqlock write: invalidate, fill, publish. A reader that overlaps the
  // fill sees seq == 0 (or a moved seq) and drops the slot.
  slot.seq.store(0, std::memory_order_release);
  slot.name.store(name, std::memory_order_relaxed);
  slot.id.store(id, std::memory_order_relaxed);
  slot.t_ns.store(end_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.seq.store(ticket + 1, std::memory_order_release);
}

void FlightRecorder::RecordEvent(const char* name, int64_t id) {
  Record(name, id, Tracer::NowNanos(), 0);
}

bool FlightRecorder::ReadSlot(const Slot& slot, uint32_t ring, Event* out) {
  const uint64_t seq_before = slot.seq.load(std::memory_order_acquire);
  if (seq_before == 0) return false;
  out->name = slot.name.load(std::memory_order_relaxed);
  out->id = slot.id.load(std::memory_order_relaxed);
  out->t_ns = slot.t_ns.load(std::memory_order_relaxed);
  out->dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
  out->ring = ring;
  // Torn read check: a concurrent writer invalidates seq before touching
  // the fields, so an unchanged nonzero seq means the fields are one
  // consistent record. Every field is its own atomic, so a lost race here
  // is never UB — at worst a mixed record, which this check drops. (No
  // atomic_thread_fence: gcc's tsan rejects it, and the per-field atomics
  // make it unnecessary for race-freedom.)
  if (slot.seq.load(std::memory_order_acquire) != seq_before) return false;
  return out->name != nullptr;
}

std::vector<FlightRecorder::Event> FlightRecorder::Snapshot() const {
  std::vector<Event> events;
  events.reserve(256);
  for (uint32_t r = 0; r < kFlightRings; ++r) {
    for (const Slot& slot : rings_[r].slots) {
      Event event;
      if (ReadSlot(slot, r, &event)) events.push_back(event);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.t_ns < b.t_ns; });
  return events;
}

std::string FlightRecorder::DumpJson() const {
  const std::vector<Event> events = Snapshot();
  std::string out = "{\"enabled\":";
  out += Enabled() ? "true" : "false";
  out += ",\"dropped_approx\":" + std::to_string(DroppedApprox());
  out += ",\"events\":[";
  for (size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (i > 0) out.push_back(',');
    out += "{\"name\":";
    internal::AppendJsonString(&out, e.name);
    out += ",\"ring\":" + std::to_string(e.ring);
    if (e.id >= 0) out += ",\"id\":" + std::to_string(e.id);
    out += ",\"t_ns\":" + std::to_string(e.t_ns) +
           ",\"dur_ns\":" + std::to_string(e.dur_ns) + "}";
  }
  out += "]}";
  return out;
}

void FlightRecorder::WriteEventsJson(int fd) const {
  char line[256];
  char name[96];
  bool first = true;
  for (uint32_t r = 0; r < kFlightRings; ++r) {
    for (const Slot& slot : rings_[r].slots) {
      Event event;
      if (!ReadSlot(slot, r, &event)) continue;
      SanitizeName(event.name, name, sizeof(name));
      const int n = std::snprintf(
          line, sizeof(line),
          "%s{\"name\":\"%s\",\"ring\":%u,\"id\":%lld,\"t_ns\":%lld,"
          "\"dur_ns\":%lld}",
          first ? "" : ",", name, r, static_cast<long long>(event.id),
          static_cast<long long>(event.t_ns),
          static_cast<long long>(event.dur_ns));
      if (n > 0) WriteRaw(fd, line, static_cast<size_t>(n));
      first = false;
    }
  }
}

int64_t FlightRecorder::EventCount() const {
  int64_t total = 0;
  for (uint32_t r = 0; r < kFlightRings; ++r) {
    for (const Slot& slot : rings_[r].slots) {
      Event event;
      if (ReadSlot(slot, r, &event)) ++total;
    }
  }
  return total;
}

int64_t FlightRecorder::DroppedApprox() const {
  int64_t dropped = 0;
  for (const Ring& ring : rings_) {
    const uint64_t claimed = ring.next.load(std::memory_order_relaxed);
    if (claimed > kFlightRingEvents) {
      dropped += static_cast<int64_t>(claimed - kFlightRingEvents);
    }
  }
  return dropped;
}

void FlightRecorder::Clear() {
  for (Ring& ring : rings_) {
    for (Slot& slot : ring.slots) {
      slot.seq.store(0, std::memory_order_release);
    }
    ring.next.store(0, std::memory_order_relaxed);
  }
}

}  // namespace mroam::obs
