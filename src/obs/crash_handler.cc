#include "obs/crash_handler.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace mroam::obs {
namespace {

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

/// Fixed storage: the handler must not allocate to learn its own path.
char g_report_path[512] = {0};
std::atomic<bool> g_installed{false};
std::atomic<bool> g_in_handler{false};

const char* SignalName(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    default: return "SIG?";
  }
}

void WriteRaw(int fd, const char* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    ssize_t n = write(fd, data + sent, size - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    sent += static_cast<size_t>(n);
  }
}

void RestoreAndRaise(int sig) {
  signal(sig, SIG_DFL);
  raise(sig);
}

/// The closing phase-1 tail. Phase 2 seeks back over exactly this many
/// bytes to replace the `null` placeholder with the real snapshot, so
/// the file is valid JSON even if phase 2 never runs (or dies midway
/// after the fsync barrier below).
constexpr char kNullTail[] = "],\"metrics\":null}";

void CrashHandler(int sig) {
  // A fault inside the handler (or a second thread crashing
  // concurrently) must not recurse: first entry wins, everyone else
  // re-raises straight away.
  if (g_in_handler.exchange(true)) {
    RestoreAndRaise(sig);
    return;
  }

  const int fd =
      open(g_report_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    // Phase 1: async-signal-safe. Header + flight-recorder events +
    // "metrics":null — complete, parseable JSON.
    char head[160];
    int n = std::snprintf(head, sizeof(head),
                          "{\"signal\":%d,\"signal_name\":\"%s\","
                          "\"pid\":%d,\"events\":[",
                          sig, SignalName(sig), static_cast<int>(getpid()));
    if (n > 0) WriteRaw(fd, head, static_cast<size_t>(n));
    FlightRecorder::Global().WriteEventsJson(fd);
    WriteRaw(fd, kNullTail, sizeof(kNullTail) - 1);
    fsync(fd);

    // Phase 2: best effort. Serializing the metrics snapshot allocates
    // and briefly takes the registry's registration mutex; for the
    // common "wedged process killed with SEGV" case this always
    // succeeds, and if the crash was *inside* malloc or the registry the
    // re-entry guard re-raises and phase 1's file stands.
    const std::string metrics =
        MetricsRegistry::Global().Snapshot().ToJson();
    if (lseek(fd, -static_cast<off_t>(sizeof(kNullTail) - 1), SEEK_END) >=
        0) {
      WriteRaw(fd, "],\"metrics\":", 12);
      WriteRaw(fd, metrics.data(), metrics.size());
      WriteRaw(fd, "}", 1);
    }
    close(fd);
  }
  RestoreAndRaise(sig);
}

}  // namespace

void InstallCrashHandler(const char* path) {
  if (path == nullptr || path[0] == '\0') {
    path = std::getenv("MROAM_CRASH_REPORT");
  }
  if (path == nullptr || path[0] == '\0') {
    path = "mroam_crash_report.json";
  }
  std::snprintf(g_report_path, sizeof(g_report_path), "%s", path);

  // Touch the singletons now so the handler never runs their first-use
  // initialization (which could allocate) inside a signal context.
  FlightRecorder::Global();
  MetricsRegistry::Global();

  if (g_installed.exchange(true)) return;  // path updated above
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = CrashHandler;
  sigemptyset(&action.sa_mask);
  // No SA_RESETHAND: the handler restores SIG_DFL itself after writing,
  // and the re-entry guard covers a fault inside the handler.
  for (int sig : kFatalSignals) {
    sigaction(sig, &action, nullptr);
  }
}

const char* CrashReportPath() { return g_report_path; }

}  // namespace mroam::obs
