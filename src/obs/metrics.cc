#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

namespace mroam::obs {

namespace internal {

uint32_t ThisThreadShard() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return shard;
}

/// JSON string escaping for metric names (ASCII control chars, quote,
/// backslash). Metric names are plain identifiers in practice, but the
/// exporter must not produce invalid JSON for any input.
void AppendJsonString(std::string* out, const std::string& text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonDouble(double value) {
  if (value == static_cast<double>(static_cast<int64_t>(value)) &&
      std::abs(value) < 1e15) {
    return std::to_string(static_cast<int64_t>(value));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::string PrometheusEscapeHelp(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string PrometheusEscapeLabel(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "mroam_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace
}  // namespace internal

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  shards_ = std::vector<Shard>(kMetricShards);
  for (Shard& shard : shards_) {
    shard.buckets = std::vector<std::atomic<int64_t>>(bounds_.size() + 1);
  }
}

void Histogram::Observe(double value) {
  Shard& shard = shards_[internal::ThisThreadShard()];
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAddDouble(&shard.sum, value);
  shard.count.fetch_add(1, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> counts(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i < counts.size(); ++i) {
      counts[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

int64_t Histogram::TotalCount() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.count.store(0, std::memory_order_relaxed);
  }
}

int64_t MetricsSnapshot::CounterOf(const std::string& name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& before) const {
  MetricsSnapshot delta;
  for (const CounterValue& c : counters) {
    int64_t value = c.value - before.CounterOf(c.name);
    if (value != 0) delta.counters.push_back({c.name, value});
  }
  delta.gauges = gauges;
  for (const HistogramValue& h : histograms) {
    HistogramValue d = h;
    if (const HistogramValue* b = before.FindHistogram(h.name)) {
      d.count -= b->count;
      d.sum -= b->sum;
      for (size_t i = 0; i < d.counts.size() && i < b->counts.size(); ++i) {
        d.counts[i] -= b->counts[i];
      }
    }
    if (d.count != 0) delta.histograms.push_back(std::move(d));
  }
  return delta;
}

std::string MetricsSnapshot::ToJson() const {
  using internal::AppendJsonString;
  using internal::JsonDouble;
  std::string out = "{\"counters\":{";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonString(&out, counters[i].name);
    out.push_back(':');
    out += std::to_string(counters[i].value);
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i > 0) out.push_back(',');
    AppendJsonString(&out, gauges[i].name);
    out.push_back(':');
    out += std::to_string(gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramValue& h = histograms[i];
    if (i > 0) out.push_back(',');
    AppendJsonString(&out, h.name);
    out += ":{\"count\":" + std::to_string(h.count) +
           ",\"sum\":" + JsonDouble(h.sum) + ",\"buckets\":[";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out.push_back(',');
      out += "{\"le\":";
      out += b < h.bounds.size() ? JsonDouble(h.bounds[b]) : "\"+Inf\"";
      out += ",\"count\":" + std::to_string(h.counts[b]) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsSnapshot::ToPrometheus() const {
  using internal::JsonDouble;
  using internal::PrometheusEscapeHelp;
  using internal::PrometheusEscapeLabel;
  using internal::PrometheusName;
  std::string out;
  // A family (metric name) may carry exactly one # HELP / # TYPE pair
  // per exposition — duplicates break scrapers. Distinct dotted names
  // can collide after sanitization ("a.b" and "a_b"), and a counter and
  // a gauge may share a sanitized name, so collisions are disambiguated
  // with a type suffix instead of emitting a second header.
  std::set<std::string> families;
  const auto family = [&families](const std::string& raw,
                                  const char* kind) {
    std::string name = PrometheusName(raw);
    if (!families.insert(name).second) {
      const std::string base = name + "_" + kind;
      name = base;
      for (int n = 2; !families.insert(name).second; ++n) {
        name = base + std::to_string(n);
      }
    }
    return name;
  };
  const auto header = [&out](const std::string& name, const char* type,
                             const std::string& raw) {
    out += "# HELP " + name + " mroam " + type + " '" +
           PrometheusEscapeHelp(raw) + "'\n";
    out += "# TYPE " + name + " " + type + "\n";
  };
  for (const CounterValue& c : counters) {
    const std::string name = family(c.name, "counter");
    header(name, "counter", c.name);
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeValue& g : gauges) {
    const std::string name = family(g.name, "gauge");
    header(name, "gauge", g.name);
    out += name + " " + std::to_string(g.value) + "\n";
  }
  for (const HistogramValue& h : histograms) {
    const std::string name = family(h.name, "histogram");
    header(name, "histogram", h.name);
    int64_t cumulative = 0;
    for (size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      const std::string le =
          b < h.bounds.size() ? JsonDouble(h.bounds[b]) : "+Inf";
      out += name + "_bucket{le=\"" + PrometheusEscapeLabel(le) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += name + "_sum " + JsonDouble(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

double MetricsSnapshot::HistogramValue::Quantile(double q) const {
  if (count <= 0 || counts.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  int64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const int64_t before = cumulative;
    cumulative += counts[i];
    if (counts[i] <= 0 || static_cast<double>(cumulative) < target) {
      continue;
    }
    if (i >= bounds.size()) {
      // Overflow bucket: no finite upper edge; pin to the largest bound.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    double frac =
        (target - static_cast<double>(before)) /
        static_cast<double>(counts[i]);
    frac = std::min(1.0, std::max(0.0, frac));
    return lo + (hi - lo) * frac;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

std::vector<double> MetricsRegistry::DefaultLatencyBuckets() {
  return {1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3,
          1e-2, 5e-2, 1e-1, 5e-1, 1.0,  5.0,  10.0, 100.0};
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramValue h;
    h.name = name;
    h.bounds = histogram->bounds();
    h.counts = histogram->BucketCounts();
    h.count = histogram->TotalCount();
    h.sum = histogram->Sum();
    snapshot.histograms.push_back(std::move(h));
  }
  return snapshot;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace mroam::obs
