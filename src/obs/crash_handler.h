#ifndef MROAM_OBS_CRASH_HANDLER_H_
#define MROAM_OBS_CRASH_HANDLER_H_

namespace mroam::obs {

/// Installs fatal-signal handlers (SIGSEGV, SIGABRT, SIGBUS, SIGFPE,
/// SIGILL) that write a crash-report JSON before re-raising the signal
/// with its default disposition (so exit codes, core dumps, and waitpid
/// semantics are unchanged). The report holds the flight recorder's last
/// events plus a metrics-registry snapshot:
///
///   {"signal":11,"signal_name":"SIGSEGV","pid":...,
///    "events":[{"name":"serve.request","t_ns":...,...},...],
///    "metrics":{...}}
///
/// `path == nullptr` resolves the output path from the
/// MROAM_CRASH_REPORT environment variable, falling back to
/// "mroam_crash_report.json" in the working directory.
///
/// The handler writes in two phases. Phase 1 — header plus flight events
/// plus `"metrics":null` — uses only async-signal-safe calls (open/
/// write/snprintf on stack buffers, lock-free ring reads), so the file
/// is complete, valid JSON even for the nastiest crash. Phase 2 then
/// best-effort rewrites the trailing `null` with a real metrics
/// snapshot; that path allocates and takes the registry's registration
/// mutex, so a crash *inside* the metrics subsystem may leave phase 1's
/// output. A re-entry guard makes a fault during the handler re-raise
/// immediately instead of recursing.
///
/// Idempotent; later calls just update the path.
void InstallCrashHandler(const char* path = nullptr);

/// The path the installed handler writes to ("" before installation).
const char* CrashReportPath();

}  // namespace mroam::obs

#endif  // MROAM_OBS_CRASH_HANDLER_H_
