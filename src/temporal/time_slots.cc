#include "temporal/time_slots.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace mroam::temporal {

namespace {

std::string FormatClock(double seconds) {
  int total_minutes = static_cast<int>(std::lround(seconds / 60.0));
  char buf[16];
  // Window ends may land on 24:00, which reads better than 00:00 here.
  std::snprintf(buf, sizeof(buf), "%02d:%02d", total_minutes / 60,
                total_minutes % 60);
  return buf;
}

}  // namespace

std::string TemporalMarket::SlotLabel(model::BillboardId s) const {
  MROAM_CHECK(s >= 0 && static_cast<size_t>(s) < slots.size());
  const Slot& slot = slots[s];
  return "billboard " + std::to_string(slot.base_billboard) + " @ " +
         FormatClock(slot.window.begin_seconds) + "-" +
         FormatClock(slot.window.end_seconds);
}

TemporalMarket BuildTemporalMarket(const model::Dataset& dataset,
                                   const TemporalConfig& config) {
  MROAM_CHECK(config.slots_per_day >= 1);
  MROAM_CHECK(config.day_length_seconds > 0.0);

  // Geometric incidence first (who could ever see whom).
  influence::InfluenceIndex geometric =
      influence::InfluenceIndex::Build(dataset, config.lambda);

  TemporalMarket market;
  const int32_t k = config.slots_per_day;
  const double window_len = config.day_length_seconds / k;

  std::vector<std::vector<model::TrajectoryId>> covered;
  covered.reserve(static_cast<size_t>(geometric.num_billboards()) * k);
  market.slots.reserve(covered.capacity());

  for (model::BillboardId o = 0; o < geometric.num_billboards(); ++o) {
    for (int32_t s = 0; s < k; ++s) {
      Slot slot;
      slot.base_billboard = o;
      slot.slot_index = s;
      slot.window = {s * window_len, (s + 1) * window_len};

      std::vector<model::TrajectoryId> list;
      for (model::TrajectoryId t : geometric.CoveredBy(o)) {
        const model::Trajectory& trajectory = dataset.trajectories[t];
        if (slot.window.Overlaps(trajectory.start_time_seconds,
                                 trajectory.travel_time_seconds)) {
          list.push_back(t);
        }
      }
      covered.push_back(std::move(list));
      market.slots.push_back(slot);
    }
  }
  market.index = influence::InfluenceIndex::FromIncidence(
      std::move(covered), geometric.num_trajectories(), config.lambda);
  return market;
}

}  // namespace mroam::temporal
