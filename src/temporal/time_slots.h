#ifndef MROAM_TEMPORAL_TIME_SLOTS_H_
#define MROAM_TEMPORAL_TIME_SLOTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "influence/influence_index.h"
#include "model/dataset.h"

namespace mroam::temporal {

/// A daily time window [begin_seconds, end_seconds) since midnight.
struct TimeWindow {
  double begin_seconds = 0.0;
  double end_seconds = 86400.0;

  /// True when an audience active over [start, start+duration] can see a
  /// billboard lit during this window (interval overlap, half-open).
  bool Overlaps(double start_seconds, double duration_seconds) const {
    return start_seconds < end_seconds &&
           start_seconds + duration_seconds >= begin_seconds;
  }
};

/// One sellable slot of a digital billboard: the physical billboard plus
/// the daily window during which it displays the ad.
struct Slot {
  model::BillboardId base_billboard = model::kInvalidBillboard;
  int32_t slot_index = 0;  ///< 0-based within the day
  TimeWindow window;
};

/// Configuration of the temporal expansion.
struct TemporalConfig {
  /// Number of equal-length daily windows every billboard is split into.
  /// 1 reproduces the static model exactly.
  int32_t slots_per_day = 4;
  double day_length_seconds = 86400.0;
  /// Influence radius for the underlying geometric meet model.
  double lambda = 100.0;
};

/// The temporal market: an InfluenceIndex whose "billboards" are slots
/// (paper §3.2: "we treat each digital billboard as multiple billboards,
/// one for a certain time slot"), built by intersecting geometric
/// incidence with the audience's active time interval. The regular
/// solvers run on it unchanged; `slots` maps slot ids back to physical
/// billboards and windows.
struct TemporalMarket {
  influence::InfluenceIndex index;
  std::vector<Slot> slots;

  /// Human-readable label for slot `s`, e.g. "billboard 17 @ 06:00-12:00".
  std::string SlotLabel(model::BillboardId s) const;
};

/// Builds the slot-expanded market from a dataset with trajectory start
/// times. Requires config.slots_per_day >= 1 and positive day length.
TemporalMarket BuildTemporalMarket(const model::Dataset& dataset,
                                   const TemporalConfig& config);

}  // namespace mroam::temporal

#endif  // MROAM_TEMPORAL_TIME_SLOTS_H_
