#include "market/contract_io.h"

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include <gtest/gtest.h>

namespace mroam::market {
namespace {

class ContractIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mroam_contract_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string PathFor(const std::string& name) {
    return (dir_ / name).string();
  }
  void WriteFile(const std::string& name, const std::string& contents) {
    std::ofstream out(PathFor(name));
    out << contents;
  }

  std::filesystem::path dir_;
};

TEST_F(ContractIoTest, RoundTrip) {
  std::vector<Advertiser> ads(2);
  ads[0] = {.id = 0, .demand = 1000, .payment = 1250.5};
  ads[1] = {.id = 1, .demand = 500, .payment = 480.0};
  ASSERT_TRUE(SaveAdvertisersCsv(PathFor("ads.csv"), ads).ok());
  auto back = LoadAdvertisersCsv(PathFor("ads.csv"));
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].demand, 1000);
  EXPECT_NEAR((*back)[0].payment, 1250.5, 0.01);
  EXPECT_EQ((*back)[1].id, 1);
}

TEST_F(ContractIoTest, AcceptsShuffledDenseIds) {
  WriteFile("ads.csv", "1,50,55\n0,100,90\n");
  auto back = LoadAdvertisersCsv(PathFor("ads.csv"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[0].demand, 100);
  EXPECT_EQ((*back)[1].demand, 50);
}

TEST_F(ContractIoTest, RejectsNonDenseIds) {
  WriteFile("ads.csv", "0,100,90\n2,50,55\n");
  auto back = LoadAdvertisersCsv(PathFor("ads.csv"));
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), common::StatusCode::kDataLoss);
}

TEST_F(ContractIoTest, RejectsNonPositiveDemand) {
  WriteFile("ads.csv", "0,0,90\n");
  EXPECT_FALSE(LoadAdvertisersCsv(PathFor("ads.csv")).ok());
  WriteFile("ads2.csv", "0,-5,90\n");
  EXPECT_FALSE(LoadAdvertisersCsv(PathFor("ads2.csv")).ok());
}

TEST_F(ContractIoTest, RejectsNonPositivePayment) {
  WriteFile("ads.csv", "0,10,0\n");
  EXPECT_FALSE(LoadAdvertisersCsv(PathFor("ads.csv")).ok());
}

TEST_F(ContractIoTest, RejectsMalformedNumbers) {
  WriteFile("ads.csv", "0,ten,90\n");
  EXPECT_FALSE(LoadAdvertisersCsv(PathFor("ads.csv")).ok());
  WriteFile("ads2.csv", "0,10\n");
  EXPECT_FALSE(LoadAdvertisersCsv(PathFor("ads2.csv")).ok());
}

TEST_F(ContractIoTest, MissingFileIsIoError) {
  auto back = LoadAdvertisersCsv(PathFor("missing.csv"));
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), common::StatusCode::kIoError);
}

TEST_F(ContractIoTest, SkipsComments) {
  WriteFile("ads.csv", "# id,demand,payment\n0,10,9\n");
  auto back = LoadAdvertisersCsv(PathFor("ads.csv"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 1u);
}

}  // namespace
}  // namespace mroam::market
