#include "core/local_search.h"

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "test_util.h"

namespace mroam::core {
namespace {

using mroam::testing::Adv;
using mroam::testing::IndexFromIncidence;
using mroam::testing::PaperExampleAdvertisers;
using mroam::testing::PaperExampleIncidence;

/// Paper Example 3 with x = 5: o0={t0..t3}, o1={t0,t1,t2,t4}, o2={t4,t5};
/// advertisers a0 (I=5, L=5) and a1 (I=4, L=4). Starting from
/// S0={o0,o1}, S1={o2}, swapping whole sets makes things worse, but
/// exchanging o0 with o2 reaches zero regret — the separation between ALS
/// and BLS the paper uses to motivate BLS.
class ExampleThreeTest : public ::testing::Test {
 protected:
  ExampleThreeTest()
      : index_(IndexFromIncidence(
            {{0, 1, 2, 3}, {0, 1, 2, 4}, {4, 5}}, 6, &dataset_)) {}

  Assignment InitialPlan() {
    Assignment s(&index_, {Adv(0, 5, 5.0), Adv(1, 4, 4.0)},
                 RegretParams{0.5});
    s.Assign(0, 0);
    s.Assign(1, 0);
    s.Assign(2, 1);
    return s;
  }

  model::Dataset dataset_;
  influence::InfluenceIndex index_;
};

TEST_F(ExampleThreeTest, InitialRegretsMatchThePaper) {
  Assignment s = InitialPlan();
  EXPECT_EQ(s.InfluenceOf(0), 5);
  EXPECT_EQ(s.InfluenceOf(1), 2);
  // R = (x - 1) - 2*gamma = 4 - 1 = 3 at gamma = 0.5.
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 3.0);
  // Swapping the whole sets yields x + 1 - 2*gamma = 5: strictly worse.
  EXPECT_GT(s.DeltaSwapSets(0, 1), 0.0);
}

TEST_F(ExampleThreeTest, AlsCannotEscape) {
  Assignment s = InitialPlan();
  LocalSearchConfig config;
  LocalSearchStats stats = AdvertiserDrivenLocalSearch(&s, config);
  EXPECT_EQ(stats.moves_applied, 0);
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 3.0);
  s.VerifyInvariants();
}

TEST_F(ExampleThreeTest, BlsFindsTheZeroRegretExchange) {
  Assignment s = InitialPlan();
  LocalSearchConfig config;
  common::Rng rng(1);
  LocalSearchStats stats = BillboardDrivenLocalSearch(&s, config, &rng);
  EXPECT_GT(stats.moves_applied, 0);
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 0.0);
  EXPECT_EQ(s.InfluenceOf(0), 5);
  EXPECT_EQ(s.InfluenceOf(1), 4);
  s.VerifyInvariants();
}

class PaperExampleSearchTest : public ::testing::Test {
 protected:
  PaperExampleSearchTest()
      : index_(IndexFromIncidence(PaperExampleIncidence(), 20, &dataset_)) {}

  model::Dataset dataset_;
  influence::InfluenceIndex index_;
};

TEST_F(PaperExampleSearchTest, LocalSearchNeverWorsensTheGreedyPlan) {
  for (SearchStrategy strategy : {SearchStrategy::kAdvertiserDriven,
                                  SearchStrategy::kBillboardDriven}) {
    Assignment s(&index_, PaperExampleAdvertisers(), RegretParams{0.5});
    SynchronousGreedy(&s);
    double greedy_regret = s.TotalRegret();
    LocalSearchConfig config;
    common::Rng rng(2);
    if (strategy == SearchStrategy::kAdvertiserDriven) {
      AdvertiserDrivenLocalSearch(&s, config);
    } else {
      BillboardDrivenLocalSearch(&s, config, &rng);
    }
    EXPECT_LE(s.TotalRegret(), greedy_regret + 1e-9);
    s.VerifyInvariants();
  }
}

TEST_F(PaperExampleSearchTest, BlsRepairsTheGreedyPlanToZero) {
  // SynchronousGreedy ends at 13.25 here (see greedy_test); a perfect
  // partition exists, and billboard-level moves can reach it.
  Assignment s(&index_, PaperExampleAdvertisers(), RegretParams{0.5});
  SynchronousGreedy(&s);
  LocalSearchConfig config;
  common::Rng rng(3);
  BillboardDrivenLocalSearch(&s, config, &rng);
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 0.0);
}

TEST_F(PaperExampleSearchTest, RandomizedFrameworkIsDeterministicPerSeed) {
  LocalSearchConfig config;
  config.restarts = 3;
  for (SearchStrategy strategy : {SearchStrategy::kAdvertiserDriven,
                                  SearchStrategy::kBillboardDriven}) {
    common::Rng rng_a(7), rng_b(7);
    Assignment a = RandomizedLocalSearch(index_, PaperExampleAdvertisers(),
                                         RegretParams{0.5}, strategy, config,
                                         &rng_a);
    Assignment b = RandomizedLocalSearch(index_, PaperExampleAdvertisers(),
                                         RegretParams{0.5}, strategy, config,
                                         &rng_b);
    EXPECT_DOUBLE_EQ(a.TotalRegret(), b.TotalRegret());
    for (int32_t adv = 0; adv < a.num_advertisers(); ++adv) {
      EXPECT_EQ(a.InfluenceOf(adv), b.InfluenceOf(adv));
    }
  }
}

TEST_F(PaperExampleSearchTest, FrameworkNeverWorseThanSynchronousGreedy) {
  Assignment greedy(&index_, PaperExampleAdvertisers(), RegretParams{0.5});
  SynchronousGreedy(&greedy);
  LocalSearchConfig config;
  config.restarts = 2;
  common::Rng rng(11);
  Assignment best = RandomizedLocalSearch(
      index_, PaperExampleAdvertisers(), RegretParams{0.5},
      SearchStrategy::kBillboardDriven, config, &rng);
  EXPECT_LE(best.TotalRegret(), greedy.TotalRegret() + 1e-9);
  best.VerifyInvariants();
}

// Algorithm 3 fidelity regression: the greedy incumbent must get local
// search applied even with zero restarts. On this fixture the greedy plan
// (regret 13.25) is known to be improvable by billboard exchanges, so the
// pre-fix behavior (returning the raw greedy plan) is strictly worse.
TEST_F(PaperExampleSearchTest, ZeroRestartsStillSearchesTheIncumbent) {
  Assignment greedy(&index_, PaperExampleAdvertisers(), RegretParams{0.5});
  SynchronousGreedy(&greedy);
  ASSERT_GT(greedy.TotalRegret(), 0.0);  // precondition: improvable

  for (SearchStrategy strategy : {SearchStrategy::kAdvertiserDriven,
                                  SearchStrategy::kBillboardDriven}) {
    LocalSearchConfig config;
    config.restarts = 0;
    common::Rng rng(5);
    LocalSearchStats stats;
    Assignment best = RandomizedLocalSearch(
        index_, PaperExampleAdvertisers(), RegretParams{0.5}, strategy,
        config, &rng, &stats);
    // The incumbent was actually searched (effort counters moved) and is
    // never worse than the plain greedy plan.
    EXPECT_GT(stats.deltas_evaluated, 0);
    EXPECT_LE(best.TotalRegret(), greedy.TotalRegret() + 1e-9);
    if (strategy == SearchStrategy::kBillboardDriven) {
      // BLS provably repairs this plan to zero (see
      // BlsRepairsTheGreedyPlanToZero) — restarts must not be required.
      EXPECT_DOUBLE_EQ(best.TotalRegret(), 0.0);
    }
    best.VerifyInvariants();
  }
}

TEST_F(PaperExampleSearchTest, ParallelRestartsMatchSerialBitForBit) {
  LocalSearchConfig config;
  config.restarts = 5;
  for (SearchStrategy strategy : {SearchStrategy::kAdvertiserDriven,
                                  SearchStrategy::kBillboardDriven}) {
    common::Rng rng_serial(13), rng_parallel(13);
    LocalSearchConfig serial_cfg = config;
    serial_cfg.num_threads = 1;
    LocalSearchConfig parallel_cfg = config;
    parallel_cfg.num_threads = 8;
    LocalSearchStats serial_stats, parallel_stats;
    Assignment serial = RandomizedLocalSearch(
        index_, PaperExampleAdvertisers(), RegretParams{0.5}, strategy,
        serial_cfg, &rng_serial, &serial_stats);
    Assignment parallel = RandomizedLocalSearch(
        index_, PaperExampleAdvertisers(), RegretParams{0.5}, strategy,
        parallel_cfg, &rng_parallel, &parallel_stats);
    EXPECT_EQ(serial.TotalRegret(), parallel.TotalRegret());
    for (int32_t a = 0; a < serial.num_advertisers(); ++a) {
      EXPECT_EQ(serial.BillboardsOf(a), parallel.BillboardsOf(a));
    }
    EXPECT_EQ(serial_stats.deltas_evaluated, parallel_stats.deltas_evaluated);
    EXPECT_EQ(serial_stats.moves_applied, parallel_stats.moves_applied);
    EXPECT_EQ(serial_stats.sweeps, parallel_stats.sweeps);
  }
}

// Satellite of the telemetry PR: LocalSearchStats is reduced over the
// restart tasks in task-index order, so the aggregate totals must be a
// pure function of the seed — identical for every thread count, not just
// the serial/8-way pair above.
TEST_F(PaperExampleSearchTest, StatsAggregateDeterministicAcrossThreadCounts) {
  LocalSearchConfig config;
  config.restarts = 6;
  for (SearchStrategy strategy : {SearchStrategy::kAdvertiserDriven,
                                  SearchStrategy::kBillboardDriven}) {
    LocalSearchConfig baseline_cfg = config;
    baseline_cfg.num_threads = 1;
    common::Rng baseline_rng(29);
    LocalSearchStats baseline_stats;
    Assignment baseline = RandomizedLocalSearch(
        index_, PaperExampleAdvertisers(), RegretParams{0.5}, strategy,
        baseline_cfg, &baseline_rng, &baseline_stats);

    for (int32_t threads : {2, 3, 8}) {
      LocalSearchConfig cfg = config;
      cfg.num_threads = threads;
      common::Rng rng(29);
      LocalSearchStats stats;
      Assignment result = RandomizedLocalSearch(
          index_, PaperExampleAdvertisers(), RegretParams{0.5}, strategy,
          cfg, &rng, &stats);
      EXPECT_EQ(stats.sweeps, baseline_stats.sweeps) << threads;
      EXPECT_EQ(stats.moves_applied, baseline_stats.moves_applied) << threads;
      EXPECT_EQ(stats.deltas_evaluated, baseline_stats.deltas_evaluated)
          << threads;
      EXPECT_EQ(result.TotalRegret(), baseline.TotalRegret()) << threads;
    }
  }
}

// Exercises the first-improvement exchange scans (moves 1-2) across many
// sweeps on a randomized instance: the scan lists are snapshots, so the
// mid-scan mutations must not touch freed storage (run under
// -DMROAM_SANITIZE=address to make any violation fatal).
TEST(FirstImprovementTest, ScanSurvivesMidSweepListMutation) {
  common::Rng gen(97);
  const int32_t num_billboards = 14;
  const int32_t num_trajectories = 40;
  std::vector<std::vector<model::TrajectoryId>> covered(num_billboards);
  for (auto& list : covered) {
    for (int32_t t = 0; t < num_trajectories; ++t) {
      if (gen.Bernoulli(0.3)) list.push_back(t);
    }
  }
  model::Dataset d;
  auto index = IndexFromIncidence(covered, num_trajectories, &d);
  Assignment s(&index,
               {Adv(0, 12, 12.0), Adv(1, 9, 9.0), Adv(2, 5, 5.0)},
               RegretParams{0.5});
  // Deliberately bad initial assignment so many exchanges fire.
  for (model::BillboardId o = 0; o < 9; ++o) {
    s.Assign(o, o % 3);
  }
  LocalSearchConfig config;
  config.best_improvement = false;  // the first-improvement path
  LocalSearchStats stats = BillboardDrivenLocalSearch(&s, config, &gen);
  EXPECT_GT(stats.moves_applied, 0);
  s.VerifyInvariants();
}

TEST(BlsMovesTest, ReleaseMoveTrimsPureExcess) {
  // One advertiser already satisfied exactly by o0; o1 adds only excess,
  // so BLS must release it.
  model::Dataset d;
  auto index = IndexFromIncidence({{0, 1}, {2}}, 3, &d);
  Assignment s(&index, {Adv(0, 2, 10.0)}, RegretParams{0.5});
  s.Assign(0, 0);
  s.Assign(1, 0);  // influence 3 > demand 2: regret 5
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 5.0);
  LocalSearchConfig config;
  common::Rng rng(1);
  BillboardDrivenLocalSearch(&s, config, &rng);
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 0.0);
  EXPECT_EQ(s.OwnerOf(1), market::kNoAdvertiser);
}

TEST(BlsMovesTest, ReplaceMoveUpgradesToFreeBillboard) {
  // a0 demands 3 and holds o0 (2 trajectories); free o1 covers exactly 3.
  model::Dataset d;
  auto index = IndexFromIncidence({{0, 1}, {2, 3, 4}}, 5, &d);
  Assignment s(&index, {Adv(0, 3, 9.0)}, RegretParams{0.5});
  s.Assign(0, 0);
  LocalSearchConfig config;
  common::Rng rng(1);
  BillboardDrivenLocalSearch(&s, config, &rng);
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 0.0);
  EXPECT_EQ(s.OwnerOf(1), 0);
}

TEST(BlsMovesTest, GreedyCompletionMoveAllocatesFreePool) {
  // Nothing assigned; the sweep's move 4 must invoke SynchronousGreedy
  // and adopt its (better) plan.
  model::Dataset d;
  auto index = IndexFromIncidence({{0}, {1}}, 2, &d);
  Assignment s(&index, {Adv(0, 2, 6.0)}, RegretParams{0.5});
  LocalSearchConfig config;
  common::Rng rng(1);
  BillboardDrivenLocalSearch(&s, config, &rng);
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 0.0);
  EXPECT_EQ(s.BillboardsOf(0).size(), 2u);
}

TEST(ImprovementRatioTest, LargeRatioBlocksSmallImprovements) {
  // The zero-regret exchange of Example 3 improves by 3 (100% of the
  // objective); with r far above that the move is rejected.
  model::Dataset d;
  auto index = IndexFromIncidence(
      {{0, 1, 2, 3}, {0, 1, 2, 4}, {4, 5}}, 6, &d);
  Assignment s(&index, {Adv(0, 5, 5.0), Adv(1, 4, 4.0)}, RegretParams{0.5});
  s.Assign(0, 0);
  s.Assign(1, 0);
  s.Assign(2, 1);
  LocalSearchConfig strict;
  strict.improvement_ratio = 10.0;  // demands 10x the current total
  common::Rng rng(1);
  BillboardDrivenLocalSearch(&s, strict, &rng);
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 3.0);  // nothing accepted
}

TEST(MaxSweepsTest, CapsIterations) {
  model::Dataset d;
  auto index = IndexFromIncidence({{0}, {1}, {2}, {3}}, 4, &d);
  Assignment s(&index, {Adv(0, 2, 4.0), Adv(1, 2, 4.0)}, RegretParams{0.5});
  LocalSearchConfig config;
  config.max_sweeps = 1;
  common::Rng rng(1);
  LocalSearchStats stats = BillboardDrivenLocalSearch(&s, config, &rng);
  EXPECT_LE(stats.sweeps, 1);
}

TEST(BestImprovementTest, FindsTheSteepestExchange) {
  // Two improving exchanges exist for a0<->a1; best-improvement must take
  // the steeper one in a single move. Setup: a0 (demand 4, payment 8)
  // holds o2={0}; a1 holds o0={1,2,3,4} (4) and o1={1,2} while demanding
  // 1 (payment 2). Exchanging o2<->o0 fixes a0 exactly; o2<->o1 helps
  // less.
  model::Dataset d;
  auto index = IndexFromIncidence(
      {{1, 2, 3, 4}, {1, 2}, {0}}, 5, &d);
  auto build = [&]() {
    Assignment s(&index, {Adv(0, 4, 8.0), Adv(1, 1, 2.0)},
                 RegretParams{0.5});
    s.Assign(2, 0);
    s.Assign(0, 1);
    s.Assign(1, 1);
    return s;
  };

  Assignment greedy_first = build();
  Assignment steepest = build();
  LocalSearchConfig first_cfg;
  first_cfg.max_sweeps = 1;
  LocalSearchConfig best_cfg = first_cfg;
  best_cfg.best_improvement = true;
  common::Rng rng1(1), rng2(1);
  LocalSearchStats first_stats =
      BillboardDrivenLocalSearch(&greedy_first, first_cfg, &rng1);
  LocalSearchStats best_stats =
      BillboardDrivenLocalSearch(&steepest, best_cfg, &rng2);
  // Both improve, and the steepest-descent variant is at least as good
  // after the single allowed sweep while evaluating at least as many
  // deltas.
  EXPECT_GT(first_stats.moves_applied, 0);
  EXPECT_GT(best_stats.moves_applied, 0);
  EXPECT_LE(steepest.TotalRegret(), greedy_first.TotalRegret() + 1e-9);
  EXPECT_GE(best_stats.deltas_evaluated, first_stats.deltas_evaluated);
  steepest.VerifyInvariants();
}

TEST(BestImprovementTest, StillReachesZeroOnExampleThree) {
  model::Dataset d;
  auto index = IndexFromIncidence(
      {{0, 1, 2, 3}, {0, 1, 2, 4}, {4, 5}}, 6, &d);
  Assignment s(&index, {Adv(0, 5, 5.0), Adv(1, 4, 4.0)}, RegretParams{0.5});
  s.Assign(0, 0);
  s.Assign(1, 0);
  s.Assign(2, 1);
  LocalSearchConfig config;
  config.best_improvement = true;
  common::Rng rng(1);
  BillboardDrivenLocalSearch(&s, config, &rng);
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 0.0);
}

TEST(SearchStatsTest, CountersReflectWork) {
  model::Dataset d;
  auto index = IndexFromIncidence(
      {{0, 1, 2, 3}, {0, 1, 2, 4}, {4, 5}}, 6, &d);
  Assignment s(&index, {Adv(0, 5, 5.0), Adv(1, 4, 4.0)}, RegretParams{0.5});
  s.Assign(0, 0);
  s.Assign(1, 0);
  s.Assign(2, 1);
  LocalSearchConfig config;
  common::Rng rng(1);
  LocalSearchStats stats = BillboardDrivenLocalSearch(&s, config, &rng);
  EXPECT_GE(stats.sweeps, 1);
  EXPECT_GE(stats.moves_applied, 1);
  EXPECT_GE(stats.deltas_evaluated, stats.moves_applied);
}

TEST(SampledExchangeTest, SamplingStillFindsImprovingMoves) {
  // Same as Example 3 but with candidate sampling enabled; the improving
  // exchange is one of only 2x1 pairs, so sampling finds it quickly.
  model::Dataset d;
  auto index = IndexFromIncidence(
      {{0, 1, 2, 3}, {0, 1, 2, 4}, {4, 5}}, 6, &d);
  Assignment s(&index, {Adv(0, 5, 5.0), Adv(1, 4, 4.0)}, RegretParams{0.5});
  s.Assign(0, 0);
  s.Assign(1, 0);
  s.Assign(2, 1);
  LocalSearchConfig config;
  config.max_exchange_candidates = 1;  // force the sampled path
  config.max_sweeps = 50;
  common::Rng rng(123);
  BillboardDrivenLocalSearch(&s, config, &rng);
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 0.0);
}

}  // namespace
}  // namespace mroam::core
