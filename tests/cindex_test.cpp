// Tests of the block-compressed posting-list codec (src/cindex): encode /
// decode round trips across density regimes, wire-level validation of
// corrupted blobs, ownership semantics, the popcount kernel, and the
// bit-identity of the compressed coverage counter — and of whole solver
// runs — against the plain backend.
#include "cindex/postings.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cindex/compressed_counter.h"
#include "common/rng.h"
#include "core/solver.h"
#include "gen/city_generators.h"
#include "influence/coverage_counter.h"
#include "influence/influence_index.h"
#include "test_util.h"

namespace mroam::cindex {
namespace {

using Lists = std::vector<std::vector<int32_t>>;

/// Random sorted duplicate-free lists mixing density regimes: per list a
/// random density in [0, 0.9] over a random window of the universe, so
/// some blocks encode sparse (varints) and some dense (bitmaps).
Lists RandomLists(common::Rng* rng, int32_t num_lists, int32_t universe) {
  Lists lists(num_lists);
  for (auto& list : lists) {
    if (rng->Bernoulli(0.1)) continue;  // keep some lists empty
    const double density = rng->UniformDouble(0.0, 0.9);
    const int32_t lo = static_cast<int32_t>(rng->UniformU64(universe));
    const int32_t hi =
        lo + static_cast<int32_t>(rng->UniformU64(universe - lo)) + 1;
    for (int32_t v = lo; v < hi; ++v) {
      if (rng->Bernoulli(density)) list.push_back(v);
    }
  }
  return lists;
}

Lists DecodeAll(const CompressedPostings& postings) {
  Lists out(postings.num_lists());
  for (uint32_t i = 0; i < postings.num_lists(); ++i) {
    postings.Decode(static_cast<int32_t>(i), &out[i]);
  }
  return out;
}

TEST(CompressedPostingsTest, RoundTripsHandcraftedRegimes) {
  // Universe straddles a block boundary and is not a multiple of the
  // span; lists cover the edge values, an empty list, a singleton, a
  // fully dense block, and values in the final partial block.
  const int32_t span = static_cast<int32_t>(kBlockSpan);
  const int32_t universe = 2 * span + 37;
  Lists lists;
  lists.push_back({});                        // empty list
  lists.push_back({0});                       // first representable value
  lists.push_back({universe - 1});            // last representable value
  lists.push_back({0, 511, 512, 1023, 1024, universe - 1});  // boundaries
  std::vector<int32_t> dense;
  for (int32_t v = span; v < 2 * span; ++v) dense.push_back(v);
  lists.push_back(dense);                     // one fully dense block
  std::vector<int32_t> tail;
  for (int32_t v = 2 * span; v < universe; v += 2) tail.push_back(v);
  lists.push_back(tail);                      // the partial final block

  CompressedPostings postings = CompressedPostings::Build(lists, universe);
  ASSERT_EQ(postings.Validate(), common::Status());
  EXPECT_EQ(postings.num_lists(), lists.size());
  EXPECT_EQ(postings.universe(), universe);

  uint64_t total = 0;
  for (size_t i = 0; i < lists.size(); ++i) {
    EXPECT_EQ(postings.ListSize(static_cast<int32_t>(i)), lists[i].size());
    total += lists[i].size();
  }
  EXPECT_EQ(postings.total_count(), total);
  EXPECT_EQ(DecodeAll(postings), lists);
}

TEST(CompressedPostingsTest, RoundTripsRandomizedLists) {
  common::Rng rng(7);
  for (int32_t universe : {1, 63, 512, 513, 4096, 10000}) {
    Lists lists = RandomLists(&rng, 40, universe);
    CompressedPostings postings = CompressedPostings::Build(lists, universe);
    ASSERT_EQ(postings.Validate(), common::Status()) << "universe " << universe;
    EXPECT_EQ(DecodeAll(postings), lists) << "universe " << universe;

    // ForEach agrees with Decode and yields ascending order.
    for (uint32_t i = 0; i < postings.num_lists(); ++i) {
      std::vector<int32_t> walked;
      postings.ForEach(static_cast<int32_t>(i),
                       [&walked](int32_t v) { walked.push_back(v); });
      EXPECT_EQ(walked, lists[i]);
    }
  }
}

TEST(CompressedPostingsTest, ReencodeIsBitIdentical) {
  // The dense/sparse choice is deterministic, so re-building from the
  // decoded lists reproduces the blob byte for byte — the property the v2
  // snapshot loader uses as its integrity check.
  common::Rng rng(11);
  Lists lists = RandomLists(&rng, 60, 3000);
  CompressedPostings a = CompressedPostings::Build(lists, 3000);
  CompressedPostings b = CompressedPostings::Build(DecodeAll(a), 3000);
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(CompressedPostingsTest, FromBytesCopyAndBorrowServeTheSameData) {
  common::Rng rng(13);
  Lists lists = RandomLists(&rng, 25, 2000);
  CompressedPostings built = CompressedPostings::Build(lists, 2000);
  std::string wire(built.bytes());

  auto copied = CompressedPostings::FromBytes(wire, Ownership::kCopy);
  ASSERT_TRUE(copied.ok()) << copied.status();
  auto borrowed = CompressedPostings::FromBytes(wire, Ownership::kBorrow);
  ASSERT_TRUE(borrowed.ok()) << borrowed.status();

  EXPECT_EQ(DecodeAll(*copied), lists);
  EXPECT_EQ(DecodeAll(*borrowed), lists);
  // The borrow really is zero-copy: it points into the caller's buffer.
  EXPECT_EQ(borrowed->bytes().data(), wire.data());
  EXPECT_NE(copied->bytes().data(), wire.data());

  // An owning copy stays valid after the wire buffer is destroyed.
  CompressedPostings kept = *copied;
  wire.assign(wire.size(), '\0');
  EXPECT_EQ(DecodeAll(kept), lists);
}

TEST(CompressedPostingsTest, CopyAndMoveSemantics) {
  common::Rng rng(17);
  Lists lists = RandomLists(&rng, 10, 1500);
  CompressedPostings original = CompressedPostings::Build(lists, 1500);

  CompressedPostings copy = original;  // owning copy: self-contained
  EXPECT_NE(copy.bytes().data(), original.bytes().data());
  EXPECT_EQ(DecodeAll(copy), lists);

  CompressedPostings moved = std::move(original);
  EXPECT_EQ(DecodeAll(moved), lists);
  EXPECT_TRUE(original.empty());  // NOLINT(bugprone-use-after-move): spec'd

  CompressedPostings assigned;
  assigned = std::move(moved);
  EXPECT_EQ(DecodeAll(assigned), lists);
  EXPECT_EQ(assigned.Validate(), common::Status());
}

TEST(CompressedPostingsTest, RejectsCorruptedBlobs) {
  common::Rng rng(19);
  Lists lists = RandomLists(&rng, 20, 2500);
  CompressedPostings built = CompressedPostings::Build(lists, 2500);
  const std::string wire(built.bytes());

  auto rejects = [](std::string blob, const char* what) {
    auto parsed = CompressedPostings::FromBytes(blob, Ownership::kCopy);
    EXPECT_FALSE(parsed.ok()) << "accepted blob with " << what;
  };

  rejects("", "no bytes");
  rejects(wire.substr(0, 8), "a truncated header");
  {
    std::string bad = wire;
    bad[0] ^= 0x01;
    rejects(bad, "a wrong magic");
  }
  {
    std::string bad = wire;
    bad[4] ^= 0x01;  // num_lists LSB: directory size no longer fits
    rejects(bad, "a tampered list count");
  }
  {
    std::string bad = wire;
    bad[16] ^= 0x01;  // total_count LSB vs the directory sums
    rejects(bad, "a tampered total count");
  }
  // Truncation anywhere in the body is caught.
  for (size_t len = kPostingsHeaderBytes; len < wire.size();
       len += 1 + wire.size() / 97) {
    rejects(wire.substr(0, len), "a truncated body");
  }
}

TEST(CompressedPostingsTest, ValidateCatchesBlockHeaderTampering) {
  // A list dense enough that its first block is a bitmap.
  std::vector<int32_t> dense;
  for (int32_t v = 0; v < 400; ++v) dense.push_back(v);
  CompressedPostings built = CompressedPostings::Build({dense}, 1024);
  const std::string wire(built.bytes());
  // Locate the first block header: data starts at the 64-byte-aligned
  // offset after header + directory.
  size_t data_off = kPostingsHeaderBytes + kPostingsDirEntryBytes;
  data_off = (data_off + kPostingsAlignment - 1) / kPostingsAlignment *
             kPostingsAlignment;
  ASSERT_LT(data_off + 4, wire.size());

  {
    std::string bad = wire;
    bad[data_off + 3] = static_cast<char>(
        bad[data_off + 3] ^ 0x80);  // clear the dense flag on a bitmap block
    auto parsed = CompressedPostings::FromBytes(bad, Ownership::kCopy);
    EXPECT_FALSE(parsed.ok()) << "accepted a flipped dense flag";
  }
  {
    std::string bad = wire;
    bad[data_off + 3] ^= 0x20;  // set a reserved header bit
    auto parsed = CompressedPostings::FromBytes(bad, Ownership::kCopy);
    EXPECT_FALSE(parsed.ok()) << "accepted a reserved header bit";
  }
  {
    std::string bad = wire;
    bad[data_off + 2] ^= 0x10;  // perturb the stored (count - 1)
    auto parsed = CompressedPostings::FromBytes(bad, Ownership::kCopy);
    EXPECT_FALSE(parsed.ok()) << "accepted a tampered block count";
  }
}

TEST(CompressedPostingsTest, CountAbsentMatchesBruteForce) {
  common::Rng rng(23);
  const int32_t universe = 3000;
  Lists lists = RandomLists(&rng, 30, universe);
  CompressedPostings postings = CompressedPostings::Build(lists, universe);

  // Random block-padded bitmap (the caller contract) with bits past the
  // universe left zero, as CompressedCoverageCounter maintains it.
  std::vector<uint64_t> bits(BitmapWords(universe), 0);
  for (int32_t t = 0; t < universe; ++t) {
    if (rng.Bernoulli(0.4)) bits[t >> 6] |= uint64_t{1} << (t & 63);
  }
  for (uint32_t i = 0; i < postings.num_lists(); ++i) {
    int64_t expected = 0;
    for (int32_t v : lists[i]) {
      if ((bits[v >> 6] & (uint64_t{1} << (v & 63))) == 0) ++expected;
    }
    EXPECT_EQ(postings.CountAbsent(static_cast<int32_t>(i), bits.data()),
              expected)
        << "list " << i;
  }
}

// --- counter equivalence -------------------------------------------------

TEST(CompressedCounterTest, MatchesPlainCounterUnderRandomOperations) {
  common::Rng rng(29);
  const int32_t num_billboards = 60;
  const int32_t num_trajectories = 900;
  Lists lists = RandomLists(&rng, num_billboards, num_trajectories);
  influence::InfluenceIndex index = influence::InfluenceIndex::FromIncidence(
      lists, num_trajectories, testing::kFixtureLambda);

  for (uint16_t threshold : {uint16_t{1}, uint16_t{2}, uint16_t{3}}) {
    influence::CoverageCounter plain(&index, threshold,
                                     influence::IndexBackend::kPlain);
    influence::CoverageCounter comp(&index, threshold,
                                    influence::IndexBackend::kCompressed);
    ASSERT_EQ(plain.backend(), influence::IndexBackend::kPlain);
    ASSERT_EQ(comp.backend(), influence::IndexBackend::kCompressed);

    std::vector<bool> in_set(num_billboards, false);
    std::vector<int32_t> members;
    for (int step = 0; step < 2000; ++step) {
      const int32_t o =
          static_cast<int32_t>(rng.UniformU64(num_billboards));
      if (!in_set[o]) {
        plain.Add(o);
        comp.Add(o);
        in_set[o] = true;
        members.push_back(o);
      } else if (rng.Bernoulli(0.5)) {
        plain.Remove(o);
        comp.Remove(o);
        in_set[o] = false;
        members.erase(std::find(members.begin(), members.end(), o));
      }
      ASSERT_EQ(comp.influence(), plain.influence())
          << "threshold " << threshold << " step " << step;

      const int32_t probe =
          static_cast<int32_t>(rng.UniformU64(num_billboards));
      if (!in_set[probe]) {
        ASSERT_EQ(comp.MarginalGain(probe), plain.MarginalGain(probe))
            << "threshold " << threshold << " step " << step;
        if (!members.empty()) {
          const int32_t rem = members[rng.UniformU64(members.size())];
          ASSERT_EQ(comp.MarginalGainAfterRemove(probe, rem),
                    plain.MarginalGainAfterRemove(probe, rem))
              << "threshold " << threshold << " step " << step;
        }
      } else {
        ASSERT_EQ(comp.MarginalLoss(probe), plain.MarginalLoss(probe))
            << "threshold " << threshold << " step " << step;
      }
      const int32_t t =
          static_cast<int32_t>(rng.UniformU64(num_trajectories));
      ASSERT_EQ(comp.CountOf(t), plain.CountOf(t));
    }
  }
}

TEST(CompressedCounterTest, ClearResetsToEmpty) {
  Lists lists = {{0, 1, 2}, {1, 2, 3}, {}};
  influence::InfluenceIndex index = influence::InfluenceIndex::FromIncidence(
      lists, 4, testing::kFixtureLambda);
  influence::CoverageCounter counter(&index, 1,
                                     influence::IndexBackend::kCompressed);
  counter.Add(0);
  counter.Add(1);
  EXPECT_EQ(counter.influence(), 4);
  counter.Clear();
  EXPECT_EQ(counter.influence(), 0);
  for (int32_t t = 0; t < 4; ++t) EXPECT_EQ(counter.CountOf(t), 0);
  EXPECT_EQ(counter.MarginalGain(0), 3);
}

// --- compressed-only indexes (the mmap serving shape) --------------------

TEST(FromCompressedTest, ServesTheSameIncidenceWithoutPlainLists) {
  common::Rng rng(31);
  gen::NycLikeConfig config;
  config.num_billboards = 80;
  config.num_trajectories = 1200;
  model::Dataset dataset = gen::GenerateNycLike(config, &rng);
  influence::InfluenceIndex full = influence::InfluenceIndex::Build(
      dataset, 150.0);

  influence::InfluenceIndex compact = influence::InfluenceIndex::FromCompressed(
      full.compressed_covered(), full.compressed_covering(), full.lambda());
  EXPECT_FALSE(compact.has_plain());
  EXPECT_EQ(compact.num_billboards(), full.num_billboards());
  EXPECT_EQ(compact.num_trajectories(), full.num_trajectories());
  EXPECT_EQ(compact.TotalSupply(), full.TotalSupply());
  EXPECT_EQ(compact.lambda(), full.lambda());

  for (int32_t o = 0; o < full.num_billboards(); ++o) {
    EXPECT_EQ(compact.InfluenceOf(o), full.InfluenceOf(o));
    std::vector<model::TrajectoryId> walked;
    compact.ForEachCovered(o, [&walked](model::TrajectoryId t) {
      walked.push_back(t);
    });
    EXPECT_EQ(walked, full.CoveredBy(o)) << "billboard " << o;
  }
  for (int32_t t = 0; t < full.num_trajectories(); ++t) {
    std::vector<model::BillboardId> walked;
    compact.ForEachCovering(t, [&walked](model::BillboardId o) {
      walked.push_back(o);
    });
    EXPECT_EQ(walked, full.CoveringOf(t)) << "trajectory " << t;
  }

  // A counter over a plain-free index engages the compressed backend even
  // when asked for kPlain — there is nothing else to walk.
  influence::CoverageCounter counter(&compact, 1,
                                     influence::IndexBackend::kPlain);
  EXPECT_EQ(counter.backend(), influence::IndexBackend::kCompressed);
  counter.Add(0);
  EXPECT_EQ(counter.influence(), full.InfluenceOf(0));
}

// --- whole-solver bit-identity -------------------------------------------

TEST(SolverBackendTest, CompressedBackendIsBitIdenticalAcrossMethods) {
  common::Rng rng(37);
  gen::NycLikeConfig gen_config;
  gen_config.num_billboards = 60;
  gen_config.num_trajectories = 800;
  model::Dataset dataset = gen::GenerateNycLike(gen_config, &rng);
  influence::InfluenceIndex index =
      influence::InfluenceIndex::Build(dataset, 200.0);
  influence::AssignBillboardCosts(&dataset, index, &rng);
  std::vector<market::Advertiser> advertisers = {
      testing::Adv(0, 120, 40.0), testing::Adv(1, 300, 90.0),
      testing::Adv(2, 50, 15.0)};

  for (core::Method method : core::AllMethods()) {
    for (int32_t threads : {1, 4}) {
      core::SolverConfig config;
      config.method = method;
      config.seed = 5;
      config.local_search.num_threads = threads;

      core::SolverConfig compressed = config;
      compressed.backend = influence::IndexBackend::kCompressed;

      core::SolveResult plain = core::Solve(index, advertisers, config);
      core::SolveResult comp = core::Solve(index, advertisers, compressed);
      EXPECT_EQ(comp.sets, plain.sets)
          << core::MethodName(method) << " threads " << threads;
      EXPECT_EQ(comp.influences, plain.influences)
          << core::MethodName(method) << " threads " << threads;
      EXPECT_DOUBLE_EQ(comp.breakdown.total, plain.breakdown.total)
          << core::MethodName(method) << " threads " << threads;
    }
  }
}

TEST(SolverBackendTest, ImpressionThresholdRunsMatchToo) {
  influence::InfluenceIndex index = testing::IndexFromIncidence(
      testing::PaperExampleIncidence(), 20);
  core::SolverConfig config;
  config.method = core::Method::kBls;
  config.impression_threshold = 2;

  core::SolverConfig compressed = config;
  compressed.backend = influence::IndexBackend::kCompressed;

  core::SolveResult plain =
      core::Solve(index, testing::PaperExampleAdvertisers(), config);
  core::SolveResult comp =
      core::Solve(index, testing::PaperExampleAdvertisers(), compressed);
  EXPECT_EQ(comp.sets, plain.sets);
  EXPECT_EQ(comp.influences, plain.influences);
  EXPECT_DOUBLE_EQ(comp.breakdown.total, plain.breakdown.total);
}

}  // namespace
}  // namespace mroam::cindex
