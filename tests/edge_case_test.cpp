// Edge cases across the solver stack: degenerate markets, zero-influence
// inventories, single-billboard economies, and boundary workloads.
#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/local_search.h"
#include "core/solver.h"
#include "test_util.h"

namespace mroam::core {
namespace {

using mroam::testing::Adv;
using mroam::testing::IndexFromIncidence;

TEST(EdgeCaseTest, NoAdvertisersIsANoOp) {
  model::Dataset d;
  auto index = IndexFromIncidence({{0}, {1}}, 2, &d);
  for (Method method : AllMethods()) {
    SolverConfig config;
    config.method = method;
    SolveResult result = Solve(index, {}, config);
    EXPECT_TRUE(result.sets.empty()) << MethodName(method);
    EXPECT_DOUBLE_EQ(result.breakdown.total, 0.0);
    EXPECT_EQ(result.breakdown.advertiser_count, 0);
  }
}

TEST(EdgeCaseTest, NoBillboardsLeavesEveryoneUnserved) {
  model::Dataset d;
  auto index = IndexFromIncidence({}, 3, &d);
  std::vector<market::Advertiser> ads = {Adv(0, 2, 5.0), Adv(1, 1, 3.0)};
  for (Method method : AllMethods()) {
    SolverConfig config;
    config.method = method;
    SolveResult result = Solve(index, ads, config);
    EXPECT_DOUBLE_EQ(result.breakdown.total, 8.0) << MethodName(method);
    EXPECT_EQ(result.breakdown.satisfied_count, 0);
  }
}

TEST(EdgeCaseTest, AllZeroInfluenceBillboards) {
  model::Dataset d;
  auto index = IndexFromIncidence({{}, {}, {}}, 2, &d);
  std::vector<market::Advertiser> ads = {Adv(0, 1, 2.0)};
  for (Method method : AllMethods()) {
    SolverConfig config;
    config.method = method;
    SolveResult result = Solve(index, ads, config);
    // Nothing can be satisfied; no method may loop forever.
    EXPECT_DOUBLE_EQ(result.breakdown.total, 2.0) << MethodName(method);
  }
}

TEST(EdgeCaseTest, SingleBillboardSingleAdvertiser) {
  model::Dataset d;
  auto index = IndexFromIncidence({{0, 1, 2}}, 3, &d);
  std::vector<market::Advertiser> ads = {Adv(0, 3, 9.0)};
  for (Method method : AllMethods()) {
    SolverConfig config;
    config.method = method;
    SolveResult result = Solve(index, ads, config);
    EXPECT_DOUBLE_EQ(result.breakdown.total, 0.0) << MethodName(method);
    EXPECT_EQ(result.influences[0], 3);
  }
}

TEST(EdgeCaseTest, DemandOfOne) {
  model::Dataset d;
  auto index = IndexFromIncidence({{0}}, 1, &d);
  std::vector<market::Advertiser> ads = {Adv(0, 1, 1.0)};
  SolverConfig config;
  config.method = Method::kBls;
  SolveResult result = Solve(index, ads, config);
  EXPECT_DOUBLE_EQ(result.breakdown.total, 0.0);
}

TEST(EdgeCaseTest, MoreAdvertisersThanBillboards) {
  model::Dataset d;
  auto index = IndexFromIncidence({{0}, {1}}, 2, &d);
  std::vector<market::Advertiser> ads = {Adv(0, 1, 3.0), Adv(1, 1, 2.0),
                                         Adv(2, 1, 1.0), Adv(3, 1, 0.5)};
  for (Method method : AllMethods()) {
    SolverConfig config;
    config.method = method;
    SolveResult result = Solve(index, ads, config);
    EXPECT_LE(result.breakdown.satisfied_count, 2) << MethodName(method);
    EXPECT_GE(result.breakdown.satisfied_count, 1) << MethodName(method);
  }
}

TEST(EdgeCaseTest, IdenticalBillboardsAreInterchangeable) {
  // Five identical billboards; any two satisfy the advertiser... but the
  // coverage fully overlaps, so more than one adds nothing.
  model::Dataset d;
  auto index = IndexFromIncidence(
      {{0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 1}}, 2, &d);
  std::vector<market::Advertiser> ads = {Adv(0, 2, 6.0)};
  SolverConfig config;
  config.method = Method::kBls;
  SolveResult result = Solve(index, ads, config);
  EXPECT_DOUBLE_EQ(result.breakdown.total, 0.0);
  EXPECT_EQ(result.sets[0].size(), 1u);  // one board suffices; extras waste
}

TEST(EdgeCaseTest, LocalSearchOnEmptyAssignmentTerminates) {
  model::Dataset d;
  auto index = IndexFromIncidence({{0}, {1}}, 2, &d);
  Assignment s(&index, {Adv(0, 5, 5.0)}, RegretParams{0.5});
  LocalSearchConfig config;
  common::Rng rng(1);
  // ALS with a single advertiser has no pairs; must return immediately.
  LocalSearchStats stats = AdvertiserDrivenLocalSearch(&s, config);
  EXPECT_EQ(stats.moves_applied, 0);
  // BLS will allocate via the greedy move and then stop.
  BillboardDrivenLocalSearch(&s, config, &rng);
  EXPECT_EQ(s.BillboardsOf(0).size(), 2u);
}

TEST(EdgeCaseTest, HugePaymentSmallDemand) {
  // Extremely budget-effective advertiser must be served first by G-Order.
  model::Dataset d;
  auto index = IndexFromIncidence({{0}}, 1, &d);
  std::vector<market::Advertiser> ads = {Adv(0, 1, 1e9), Adv(1, 1, 1.0)};
  SolverConfig config;
  config.method = Method::kGOrder;
  SolveResult result = Solve(index, ads, config);
  EXPECT_EQ(result.influences[0], 1);
  EXPECT_EQ(result.influences[1], 0);
}

TEST(EdgeCaseTest, GammaBoundariesAreAccepted) {
  model::Dataset d;
  auto index = IndexFromIncidence({{0}}, 1, &d);
  for (double gamma : {0.0, 1.0}) {
    SolverConfig config;
    config.regret.gamma = gamma;
    SolveResult result = Solve(index, {Adv(0, 2, 4.0)}, config);
    EXPECT_GE(result.breakdown.total, 0.0);
  }
}

}  // namespace
}  // namespace mroam::core
