#include "common/logging.h"

#include <gtest/gtest.h>

namespace mroam::common {
namespace {

TEST(ParseLogLevelTest, ParsesEveryCanonicalName) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(ParseLogLevelTest, AcceptsWarnAlias) {
  LogLevel level = LogLevel::kDebug;
  EXPECT_TRUE(ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
}

TEST(ParseLogLevelTest, IsCaseInsensitive) {
  LogLevel level = LogLevel::kDebug;
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("eRrOr", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(ParseLogLevelTest, RejectsUnknownTextAndLeavesLevelUntouched) {
  LogLevel level = LogLevel::kWarning;
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_FALSE(ParseLogLevel("2", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  // Whitespace and decoration are not trimmed: the env var must be exact.
  EXPECT_FALSE(ParseLogLevel(" info", &level));
  EXPECT_FALSE(ParseLogLevel("info ", &level));
  EXPECT_FALSE(ParseLogLevel("log-info", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
}

TEST(MinLogLevelTest, SetterRoundTrips) {
  LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  SetMinLogLevel(original);
  EXPECT_EQ(MinLogLevel(), original);
}

}  // namespace
}  // namespace mroam::common
