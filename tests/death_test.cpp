// Death tests: misuse of the solver-state API must crash loudly (the
// library treats broken solver invariants as unrecoverable bugs).
#include <gtest/gtest.h>

#include "core/assignment.h"
#include "test_util.h"

namespace mroam::core {
namespace {

using mroam::testing::Adv;
using mroam::testing::IndexFromIncidence;

class AssignmentDeathTest : public ::testing::Test {
 protected:
  AssignmentDeathTest()
      : index_(IndexFromIncidence({{0, 1}, {2}, {}}, 3, &dataset_)) {}

  Assignment Make() {
    return Assignment(&index_, {Adv(0, 2, 4.0), Adv(1, 1, 2.0)},
                      RegretParams{0.5});
  }

  model::Dataset dataset_;
  influence::InfluenceIndex index_;
};

TEST_F(AssignmentDeathTest, DoubleAssignCrashes) {
  Assignment s = Make();
  s.Assign(0, 0);
  EXPECT_DEATH(s.Assign(0, 1), "Check failed");
}

TEST_F(AssignmentDeathTest, ReleaseOfFreeBillboardCrashes) {
  Assignment s = Make();
  EXPECT_DEATH(s.Release(0), "Check failed");
}

TEST_F(AssignmentDeathTest, AssignToUnknownAdvertiserCrashes) {
  Assignment s = Make();
  EXPECT_DEATH(s.Assign(0, 7), "Check failed");
}

TEST_F(AssignmentDeathTest, ExchangeWithinOneAdvertiserCrashes) {
  Assignment s = Make();
  s.Assign(0, 0);
  s.Assign(1, 0);
  EXPECT_DEATH(s.ExchangeAcross(0, 1), "Check failed");
}

TEST_F(AssignmentDeathTest, ReplaceWithAssignedBillboardCrashes) {
  Assignment s = Make();
  s.Assign(0, 0);
  s.Assign(1, 1);
  EXPECT_DEATH(s.Replace(0, 1), "Check failed");
}

TEST_F(AssignmentDeathTest, InvalidGammaCrashes) {
  EXPECT_DEATH(Assignment(&index_, {Adv(0, 2, 4.0)}, RegretParams{1.5}),
               "Check failed");
}

TEST_F(AssignmentDeathTest, NonPositiveDemandCrashes) {
  EXPECT_DEATH(Assignment(&index_, {Adv(0, 0, 4.0)}, RegretParams{0.5}),
               "Check failed");
}

// FromIncidence is a public ingestion point, so its precondition checks
// stay on in release builds and must name the offending incidence list.
TEST(FromIncidenceDeathTest, UnsortedListCrashesNamingBillboard) {
  EXPECT_DEATH(
      influence::InfluenceIndex::FromIncidence({{0, 2}, {1, 0}}, 3, 1.0),
      "incidence list of billboard 1 is not sorted");
}

TEST(FromIncidenceDeathTest, DuplicateIdsCrashNamingBillboard) {
  EXPECT_DEATH(
      influence::InfluenceIndex::FromIncidence({{}, {}, {1, 1}}, 3, 1.0),
      "incidence list of billboard 2 contains duplicate");
}

TEST(FromIncidenceDeathTest, OutOfRangeIdsCrashNamingBillboard) {
  EXPECT_DEATH(influence::InfluenceIndex::FromIncidence({{0, 3}}, 3, 1.0),
               "incidence list of billboard 0 references trajectory ids "
               "outside");
}

TEST(FromIncidenceDeathTest, NegativeTrajectoryCountCrashes) {
  EXPECT_DEATH(influence::InfluenceIndex::FromIncidence({}, -1, 1.0),
               "num_trajectories");
}

}  // namespace
}  // namespace mroam::core
