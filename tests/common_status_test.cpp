#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace mroam::common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Internal("boom").message(), "boom");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::DataLoss("row 7 malformed");
  EXPECT_EQ(s.ToString(), "DataLoss: row 7 malformed");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::NotFound("gone");
  EXPECT_EQ(os.str(), "NotFound: gone");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::DataLoss("a"));
}

TEST(StatusCodeNameTest, AllCodesNamed) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

namespace helpers {

Status FailWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chain(int x) {
  MROAM_RETURN_IF_ERROR(FailWhenNegative(x));
  return Status::Ok();
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  MROAM_ASSIGN_OR_RETURN(int half, Half(x));
  MROAM_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

}  // namespace helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::Chain(1).ok());
  EXPECT_EQ(helpers::Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  Result<int> ok = helpers::Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  Result<int> first_fails = helpers::Quarter(9);
  EXPECT_FALSE(first_fails.ok());

  Result<int> second_fails = helpers::Quarter(6);  // 6/2=3 is odd
  EXPECT_FALSE(second_fails.ok());
}

}  // namespace
}  // namespace mroam::common
