#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace mroam::obs {
namespace {

/// Every test leaves the global tracer disabled and empty so suites can
/// run in any order.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(Tracer::Enabled());
  {
    MROAM_TRACE_SPAN("never.recorded");
    MROAM_TRACE_SPAN_ID("never.recorded.id", 7);
  }
  EXPECT_EQ(Tracer::Global().SpanCount(), 0);
}

TEST_F(TraceTest, EnableRecordsScopedSpans) {
  Tracer::Global().Enable("");  // memory only
  EXPECT_TRUE(Tracer::Enabled());
  {
    MROAM_TRACE_SPAN("unit.outer");
    { MROAM_TRACE_SPAN_ID("unit.inner", 3); }
  }
#ifndef MROAM_TRACING_DISABLED
  EXPECT_EQ(Tracer::Global().SpanCount(), 2);
#else
  EXPECT_EQ(Tracer::Global().SpanCount(), 0);
#endif
}

TEST_F(TraceTest, DisableStopsNewSpansButKeepsBuffered) {
  Tracer::Global().Enable("");
  { ScopedSpan span("kept.span"); }
  ASSERT_EQ(Tracer::Global().SpanCount(), 1);
  Tracer::Global().Disable();
  { ScopedSpan span("dropped.span"); }
  EXPECT_EQ(Tracer::Global().SpanCount(), 1);
}

TEST_F(TraceTest, SpanOpenAcrossDisableStillRecords) {
  // A span that was live when Disable() hit latched its name at
  // construction, so it still records — spans are never torn.
  Tracer::Global().Enable("");
  {
    ScopedSpan span("straddles.disable");
    Tracer::Global().Disable();
  }
  EXPECT_EQ(Tracer::Global().SpanCount(), 1);
}

TEST_F(TraceTest, DumpJsonIsChromeTraceShaped) {
  Tracer::Global().Enable("");
  { ScopedSpan span("shape.plain"); }
  { ScopedSpan span("shape.tagged", 42); }
  std::string json = Tracer::Global().DumpJson();

  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shape.plain\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shape.tagged\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"mroam\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"id\":42}"), std::string::npos);
  // Durations are complete events with non-negative timestamps.
  EXPECT_EQ(json.find("\"ts\":-"), std::string::npos);
}

TEST_F(TraceTest, ClearDropsBufferedSpans) {
  Tracer::Global().Enable("");
  { ScopedSpan span("to.clear"); }
  ASSERT_GT(Tracer::Global().SpanCount(), 0);
  Tracer::Global().Clear();
  EXPECT_EQ(Tracer::Global().SpanCount(), 0);
  EXPECT_EQ(Tracer::Global().DumpJson().find("to.clear"), std::string::npos);
}

TEST_F(TraceTest, FlushWritesTheTraceFileAndClears) {
  const std::string path = ::testing::TempDir() + "mroam_trace_test.json";
  Tracer::Global().Enable(path);
  { ScopedSpan span("flushed.span", 1); }
  common::Status status = Tracer::Global().Flush();
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(Tracer::Global().SpanCount(), 0);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("flushed.span"), std::string::npos);
  EXPECT_NE(contents.str().find("\"traceEvents\""), std::string::npos);
  std::remove(path.c_str());
  // Leave no path configured for later tests / process exit.
  Tracer::Global().Enable("");
}

TEST_F(TraceTest, FlushWithoutPathIsANoOp) {
  Tracer::Global().Enable("");
  { ScopedSpan span("memory.only"); }
  common::Status status = Tracer::Global().Flush();
  EXPECT_TRUE(status.ok());
  // Nothing was written anywhere, and the buffer is kept.
  EXPECT_EQ(Tracer::Global().SpanCount(), 1);
}

TEST_F(TraceTest, NowNanosIsMonotonic) {
  int64_t previous = Tracer::NowNanos();
  for (int i = 0; i < 1000; ++i) {
    int64_t now = Tracer::NowNanos();
    EXPECT_GE(now, previous);
    previous = now;
  }
}

}  // namespace
}  // namespace mroam::obs
