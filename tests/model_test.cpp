#include "model/dataset.h"

#include <gtest/gtest.h>

namespace mroam::model {
namespace {

Dataset TwoTrajectoryDataset() {
  Dataset d;
  d.name = "fixture";
  Billboard b0;
  b0.id = 0;
  b0.location = {0, 0};
  d.billboards.push_back(b0);

  Trajectory t0;
  t0.id = 0;
  t0.points = {{0, 0}, {3000, 4000}};  // 5 km
  t0.travel_time_seconds = 600;
  Trajectory t1;
  t1.id = 1;
  t1.points = {{0, 0}, {0, 1000}};  // 1 km
  t1.travel_time_seconds = 200;
  d.trajectories = {t0, t1};
  return d;
}

TEST(ComputeStatsTest, AveragesMatchHandComputation) {
  DatasetStats stats = ComputeStats(TwoTrajectoryDataset());
  EXPECT_EQ(stats.num_billboards, 1u);
  EXPECT_EQ(stats.num_trajectories, 2u);
  EXPECT_DOUBLE_EQ(stats.avg_distance_km, 3.0);
  EXPECT_DOUBLE_EQ(stats.avg_travel_time_sec, 400.0);
  EXPECT_DOUBLE_EQ(stats.avg_points_per_trajectory, 2.0);
}

TEST(ComputeStatsTest, EmptyDataset) {
  Dataset d;
  DatasetStats stats = ComputeStats(d);
  EXPECT_EQ(stats.num_trajectories, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_distance_km, 0.0);
}

TEST(ReindexDatasetTest, AssignsDenseIds) {
  Dataset d = TwoTrajectoryDataset();
  d.billboards[0].id = 99;
  d.trajectories[1].id = 42;
  ReindexDataset(&d);
  EXPECT_EQ(d.billboards[0].id, 0);
  EXPECT_EQ(d.trajectories[0].id, 0);
  EXPECT_EQ(d.trajectories[1].id, 1);
}

TEST(ValidateDatasetTest, AcceptsValid) {
  EXPECT_EQ(ValidateDataset(TwoTrajectoryDataset()), "");
}

TEST(ValidateDatasetTest, RejectsNonDenseBillboardIds) {
  Dataset d = TwoTrajectoryDataset();
  d.billboards[0].id = 5;
  EXPECT_NE(ValidateDataset(d), "");
}

TEST(ValidateDatasetTest, RejectsNonDenseTrajectoryIds) {
  Dataset d = TwoTrajectoryDataset();
  d.trajectories[1].id = 7;
  EXPECT_NE(ValidateDataset(d), "");
}

TEST(ValidateDatasetTest, RejectsEmptyTrajectory) {
  Dataset d = TwoTrajectoryDataset();
  d.trajectories[0].points.clear();
  EXPECT_NE(ValidateDataset(d), "");
}

}  // namespace
}  // namespace mroam::model
