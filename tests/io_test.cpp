#include "io/dataset_io.h"

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include <gtest/gtest.h>

namespace mroam::io {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mroam_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Dir() { return dir_.string(); }
  std::string PathFor(const std::string& name) {
    return (dir_ / name).string();
  }
  void WriteFile(const std::string& name, const std::string& contents) {
    std::ofstream out(PathFor(name));
    out << contents;
  }

  std::filesystem::path dir_;
};

model::Dataset SampleDataset() {
  model::Dataset d;
  d.name = "sample";
  for (int i = 0; i < 3; ++i) {
    model::Billboard b;
    b.id = i;
    b.location = {100.0 * i + 0.25, 50.0 * i};
    d.billboards.push_back(b);
  }
  model::Trajectory t0;
  t0.id = 0;
  t0.points = {{0, 0}, {10.5, 20.25}};
  t0.start_time_seconds = 30600.0;  // 08:30
  t0.travel_time_seconds = 120.5;
  model::Trajectory t1;
  t1.id = 1;
  t1.points = {{5, 5}};
  t1.start_time_seconds = 64800.0;  // 18:00
  t1.travel_time_seconds = 60.0;
  d.trajectories = {t0, t1};
  return d;
}

TEST_F(DatasetIoTest, BillboardRoundTrip) {
  model::Dataset d = SampleDataset();
  ASSERT_TRUE(SaveBillboardsCsv(PathFor("b.csv"), d.billboards).ok());
  auto back = LoadBillboardsCsv(PathFor("b.csv"));
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ((*back)[i].id, i);
    EXPECT_NEAR((*back)[i].location.x, d.billboards[i].location.x, 0.01);
    EXPECT_NEAR((*back)[i].location.y, d.billboards[i].location.y, 0.01);
  }
}

TEST_F(DatasetIoTest, TrajectoryRoundTrip) {
  model::Dataset d = SampleDataset();
  ASSERT_TRUE(SaveTrajectoriesCsv(PathFor("t.csv"), d.trajectories).ok());
  auto back = LoadTrajectoriesCsv(PathFor("t.csv"));
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].points.size(), 2u);
  EXPECT_NEAR((*back)[0].points[1].x, 10.5, 0.01);
  EXPECT_NEAR((*back)[0].start_time_seconds, 30600.0, 0.01);
  EXPECT_NEAR((*back)[0].travel_time_seconds, 120.5, 0.01);
  EXPECT_EQ((*back)[1].points.size(), 1u);
  EXPECT_NEAR((*back)[1].start_time_seconds, 64800.0, 0.01);
}

TEST_F(DatasetIoTest, FullDatasetRoundTrip) {
  model::Dataset d = SampleDataset();
  ASSERT_TRUE(SaveDataset(Dir(), d).ok());
  auto back = LoadDataset(Dir(), "loaded");
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->name, "loaded");
  EXPECT_EQ(back->billboards.size(), 3u);
  EXPECT_EQ(back->trajectories.size(), 2u);
  EXPECT_EQ(model::ValidateDataset(*back), "");
}

TEST_F(DatasetIoTest, SaveCreatesMissingDirectoriesRecursively) {
  model::Dataset d = SampleDataset();
  std::string deep = PathFor("brand/new/deep/dir");
  ASSERT_FALSE(std::filesystem::exists(deep));
  ASSERT_TRUE(SaveDataset(deep, d).ok());
  auto back = LoadDataset(deep, "deep");
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->billboards.size(), 3u);
}

TEST_F(DatasetIoTest, SaveReportsIoErrorWhenDirectoryIsAFile) {
  model::Dataset d = SampleDataset();
  WriteFile("blocker", "i am a file, not a directory");
  common::Status status = SaveDataset(PathFor("blocker/sub"), d);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kIoError);
}

TEST_F(DatasetIoTest, LoadAcceptsShuffledIds) {
  WriteFile("b.csv", "2,20,0\n0,0,0\n1,10,0\n");
  auto back = LoadBillboardsCsv(PathFor("b.csv"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[2].location.x, 20.0);
}

TEST_F(DatasetIoTest, LoadRejectsNonDenseIds) {
  WriteFile("b.csv", "0,0,0\n2,20,0\n");
  auto back = LoadBillboardsCsv(PathFor("b.csv"));
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), common::StatusCode::kDataLoss);
}

TEST_F(DatasetIoTest, LoadRejectsWrongColumnCount) {
  WriteFile("b.csv", "0,0\n");
  EXPECT_FALSE(LoadBillboardsCsv(PathFor("b.csv")).ok());
}

TEST_F(DatasetIoTest, LoadRejectsNonNumericField) {
  WriteFile("b.csv", "0,zero,0\n");
  auto back = LoadBillboardsCsv(PathFor("b.csv"));
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), common::StatusCode::kInvalidArgument);
}

TEST_F(DatasetIoTest, LoadRejectsTrajectoryWithoutPoints) {
  WriteFile("t.csv", "0,0,60,\n");
  EXPECT_FALSE(LoadTrajectoriesCsv(PathFor("t.csv")).ok());
}

TEST_F(DatasetIoTest, LoadRejectsMalformedPointPair) {
  WriteFile("t.csv", "0,0,60,1 2;3\n");
  auto back = LoadTrajectoriesCsv(PathFor("t.csv"));
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), common::StatusCode::kDataLoss);
}

TEST_F(DatasetIoTest, MissingDirectoryIsIoError) {
  auto back = LoadDataset(Dir() + "/does_not_exist", "x");
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), common::StatusCode::kIoError);
}

}  // namespace
}  // namespace mroam::io
