// End-to-end tests of the impression-count influence measure (threshold
// m > 1, the [29]-style model the paper calls an orthogonal measurement
// choice in §3.1): Assignment semantics, solver behavior, and the
// monotone effect of raising the threshold.
#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/solver.h"
#include "test_util.h"

namespace mroam::core {
namespace {

using mroam::testing::Adv;
using mroam::testing::IndexFromIncidence;

TEST(ImpressionModelTest, AssignmentCountsThresholdedInfluence) {
  model::Dataset d;
  // o0={0,1}, o1={0,1}, o2={1}.
  auto index = IndexFromIncidence({{0, 1}, {0, 1}, {1}}, 2, &d);
  Assignment s(&index, {Adv(0, 2, 4.0)}, RegretParams{0.5},
               /*impression_threshold=*/2);
  EXPECT_EQ(s.impression_threshold(), 2);
  s.Assign(0, 0);
  EXPECT_EQ(s.InfluenceOf(0), 0);
  s.Assign(1, 0);
  EXPECT_EQ(s.InfluenceOf(0), 2);  // both trajectories met twice
  s.VerifyInvariants();
  EXPECT_TRUE(s.IsSatisfied(0));
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 0.0);
}

TEST(ImpressionModelTest, MoveDeltasRemainConsistent) {
  model::Dataset d;
  auto index = IndexFromIncidence(
      {{0, 1, 2}, {0, 1}, {1, 2}, {2, 3}}, 4, &d);
  Assignment s(&index, {Adv(0, 3, 9.0), Adv(1, 2, 4.0)}, RegretParams{0.5},
               /*impression_threshold=*/2);
  s.Assign(0, 0);
  s.Assign(1, 0);
  s.Assign(2, 1);
  s.Assign(3, 1);
  double delta = s.DeltaExchangeAcross(1, 3);
  double before = s.TotalRegret();
  s.ExchangeAcross(1, 3);
  EXPECT_NEAR(s.TotalRegret() - before, delta, 1e-9);
  s.VerifyInvariants();
}

TEST(ImpressionModelTest, SolverRunsUnderThreshold) {
  model::Dataset d;
  // Four billboards, pairwise-overlapping coverage so a threshold of two
  // is attainable.
  auto index = IndexFromIncidence(
      {{0, 1, 2}, {0, 1, 2}, {2, 3, 4}, {2, 3, 4}}, 5, &d);
  std::vector<market::Advertiser> ads = {Adv(0, 3, 9.0), Adv(1, 3, 9.0)};
  double g_global = -1.0;
  for (Method method : AllMethods()) {
    SolverConfig config;
    config.method = method;
    config.impression_threshold = 2;
    config.local_search.restarts = 5;
    SolveResult result = Solve(index, ads, config);
    EXPECT_GE(result.breakdown.total, 0.0) << MethodName(method);
    if (method == Method::kGGlobal) g_global = result.breakdown.total;
    if (method == Method::kGOrder) {
      // Sequential serving finds both overlapping pairs exactly.
      EXPECT_EQ(result.breakdown.satisfied_count, 2);
      EXPECT_DOUBLE_EQ(result.breakdown.total, 0.0);
    }
    if (method == Method::kBls) {
      EXPECT_LE(result.breakdown.total, g_global + 1e-9);
    }
  }
}

TEST(ImpressionModelTest, HigherThresholdNeverIncreasesInfluence) {
  // For a FIXED deployment, raising the threshold can only reduce each
  // advertiser's influence.
  model::Dataset d;
  auto index = IndexFromIncidence(
      {{0, 1, 2, 3}, {0, 1, 2}, {0, 1}, {0}}, 4, &d);
  std::vector<int64_t> influences;
  for (uint16_t m : {uint16_t{1}, uint16_t{2}, uint16_t{3}, uint16_t{4}}) {
    Assignment s(&index, {Adv(0, 4, 8.0)}, RegretParams{0.5}, m);
    for (model::BillboardId o = 0; o < 4; ++o) s.Assign(o, 0);
    influences.push_back(s.InfluenceOf(0));
  }
  EXPECT_EQ(influences, (std::vector<int64_t>{4, 3, 2, 1}));
}

TEST(ImpressionModelTest, GreedyUsesThresholdedMarginals) {
  // Advertiser demands 2 at threshold 2. o0 and o1 overlap on {0,1};
  // o2 covers {2,3} alone (useless at threshold 2 without a partner).
  // Greedy must pick the overlapping pair.
  model::Dataset d;
  auto index = IndexFromIncidence({{0, 1}, {0, 1}, {2, 3}}, 4, &d);
  Assignment s(&index, {Adv(0, 2, 6.0)}, RegretParams{0.5},
               /*impression_threshold=*/2);
  SynchronousGreedy(&s);
  EXPECT_TRUE(s.IsSatisfied(0));
  EXPECT_EQ(s.InfluenceOf(0), 2);
}

}  // namespace
}  // namespace mroam::core
