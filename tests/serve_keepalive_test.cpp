// Persistent-connection behavior of the event-loop server: HTTP/1.1
// keep-alive, pipelining, Connection negotiation, quiet idle reclaim,
// and the async ticket lifecycle polled over one connection. Labeled
// `serve` + `concurrency`; runs under the tsan preset.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "serve/http.h"
#include "serve/market_server.h"
#include "test_util.h"

namespace mroam::serve {
namespace {

using mroam::testing::IndexFromIncidence;

int ConnectLoopback(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Reads exactly one framed response off fd, buffering across calls in
/// *buffer so pipelined responses can be peeled off one at a time.
common::Result<HttpResponse> ReadOneResponse(int fd, std::string* buffer) {
  while (true) {
    const size_t head_end = buffer->find("\r\n\r\n");
    if (head_end != std::string::npos) {
      MROAM_ASSIGN_OR_RETURN(HttpResponse response,
                             ParseResponseHead(buffer->substr(0, head_end)));
      const std::string_view length_text =
          response.HeaderOr("content-length");
      size_t length = 0;
      if (!length_text.empty()) {
        MROAM_ASSIGN_OR_RETURN(length, ParseContentLength(length_text));
      }
      const size_t body_start = head_end + 4;
      if (buffer->size() >= body_start + length) {
        response.body = buffer->substr(body_start, length);
        buffer->erase(0, body_start + length);
        return response;
      }
    }
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      return common::Status::IoError("EOF before a full response");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return common::Status::IoError("recv failed");
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

/// Reads until the server closes the connection.
std::string ReadToEof(int fd) {
  std::string all;
  char chunk[4096];
  while (true) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      all.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return all;
  }
}

class ServeKeepAliveTest : public ::testing::Test {
 protected:
  ServeKeepAliveTest()
      : index_(IndexFromIncidence(
            {{0, 1, 2, 3},
             {4, 5, 6, 7},
             {8, 9, 10, 11},
             {12, 13, 14, 15},
             {16, 17},
             {18, 19},
             {20, 21},
             {22, 23}},
            24, &dataset_)) {}

  MarketServerConfig Config() {
    MarketServerConfig config;
    config.port = 0;
    config.num_threads = 4;
    config.max_batch = 4;
    config.max_batch_delay_seconds = 0.01;
    config.market.policy = core::ReplanPolicy::kLockExisting;
    return config;
  }

  static std::string SubmitBody(int64_t demand, double payment) {
    return "{\"demand\": " + std::to_string(demand) +
           ", \"payment\": " + std::to_string(payment) + "}";
  }

  model::Dataset dataset_;
  influence::InfluenceIndex index_;
};

TEST_F(ServeKeepAliveTest, PipelinedRequestsAnswerInOrderOnOneConnection) {
  MarketServer server(&index_, Config());
  ASSERT_TRUE(server.Start().ok());
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);

  // Two requests in a single write; two framed responses must come back
  // in order, and the connection must stay open after both.
  const std::string wire =
      "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n"
      "GET /readyz HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_TRUE(WriteAll(fd, wire).ok());

  std::string buffer;
  auto first = ReadOneResponse(fd, &buffer);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status, 200);
  EXPECT_NE(first->body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_EQ(first->HeaderOr("connection"), "keep-alive");

  auto second = ReadOneResponse(fd, &buffer);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->status, 200);
  EXPECT_NE(second->body.find("queue_depth"), std::string::npos);
  EXPECT_EQ(second->HeaderOr("connection"), "keep-alive");

  // Still serving: a third request on the same connection answers too.
  ASSERT_TRUE(WriteAll(fd, "GET /healthz HTTP/1.1\r\n\r\n").ok());
  auto third = ReadOneResponse(fd, &buffer);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(third->status, 200);

  ::close(fd);
  server.Stop();
}

TEST_F(ServeKeepAliveTest, MalformedPipelinedRequestGets400ThenClose) {
  MarketServer server(&index_, Config());
  ASSERT_TRUE(server.Start().ok());
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);

  // A good request pipelined with a malformed request line: the good one
  // answers normally, the bad one gets 400 + Connection: close, and the
  // server hangs up (the stream is desynchronized past the error).
  const std::string wire =
      "GET /healthz HTTP/1.1\r\n\r\n"
      "GET /a b HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(WriteAll(fd, wire).ok());

  std::string buffer;
  auto first = ReadOneResponse(fd, &buffer);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->status, 200);

  auto second = ReadOneResponse(fd, &buffer);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->status, 400);
  EXPECT_EQ(second->HeaderOr("connection"), "close");

  // Nothing further: the server closed after the 400.
  EXPECT_EQ(ReadToEof(fd), "");
  ::close(fd);
  server.Stop();
}

TEST_F(ServeKeepAliveTest, ConnectionNegotiationPerRequest) {
  MarketServer server(&index_, Config());
  ASSERT_TRUE(server.Start().ok());

  {
    // HTTP/1.1 with an explicit Connection: close is honored.
    int fd = ConnectLoopback(server.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(
        WriteAll(fd,
                 "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .ok());
    std::string buffer;
    auto response = ReadOneResponse(fd, &buffer);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status, 200);
    EXPECT_EQ(response->HeaderOr("connection"), "close");
    EXPECT_EQ(ReadToEof(fd), "");
    ::close(fd);
  }
  {
    // HTTP/1.0 defaults to close.
    int fd = ConnectLoopback(server.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(WriteAll(fd, "GET /healthz HTTP/1.0\r\n\r\n").ok());
    std::string buffer;
    auto response = ReadOneResponse(fd, &buffer);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->HeaderOr("connection"), "close");
    EXPECT_EQ(ReadToEof(fd), "");
    ::close(fd);
  }
  server.Stop();
}

TEST_F(ServeKeepAliveTest, TicketLifecycleOverOneKeptAliveConnection) {
  MarketServer server(&index_, Config());
  ASSERT_TRUE(server.Start().ok());

  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // 202 + ticket immediately; the submit does not wait for the replan.
  auto posted =
      client.Fetch("POST", "/contracts", SubmitBody(4, 10.0));
  ASSERT_TRUE(posted.ok()) << posted.status().ToString();
  ASSERT_EQ(posted->status, 202) << posted->body;
  const int64_t ticket =
      static_cast<int64_t>(*ExtractJsonNumber(posted->body, "ticket"));
  EXPECT_EQ(ticket, 1);
  EXPECT_NE(posted->body.find("\"status\":\"pending\""), std::string::npos);

  // Poll the same connection until the group commit publishes it.
  std::string committed;
  for (int attempt = 0; attempt < 500 && committed.empty(); ++attempt) {
    auto polled = client.Fetch("GET", "/tickets/1");
    ASSERT_TRUE(polled.ok()) << polled.status().ToString();
    ASSERT_EQ(polled->status, 200) << polled->body;
    if (polled->body.find("\"status\":\"committed\"") != std::string::npos) {
      committed = polled->body;
    } else {
      EXPECT_NE(polled->body.find("\"status\":\"pending\""),
                std::string::npos)
          << polled->body;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_FALSE(committed.empty()) << "ticket never committed";
  EXPECT_DOUBLE_EQ(*ExtractJsonNumber(committed, "influence"), 4.0);
  EXPECT_DOUBLE_EQ(*ExtractJsonNumber(committed, "active_contracts"), 1.0);
  EXPECT_NE(committed.find("\"satisfied\":true"), std::string::npos);

  // Unknown and malformed ticket ids, still on the same connection.
  auto unknown = client.Fetch("GET", "/tickets/424242");
  ASSERT_TRUE(unknown.ok()) << unknown.status().ToString();
  EXPECT_EQ(unknown->status, 404);
  auto malformed = client.Fetch("GET", "/tickets/notanumber");
  ASSERT_TRUE(malformed.ok()) << malformed.status().ToString();
  EXPECT_EQ(malformed->status, 400);
  auto wrong_method = client.Fetch("POST", "/tickets/1", "{}");
  ASSERT_TRUE(wrong_method.ok()) << wrong_method.status().ToString();
  EXPECT_EQ(wrong_method->status, 405);

  // The whole lifecycle rode one TCP connection.
  EXPECT_TRUE(client.connected());
  client.Close();
  server.Stop();
}

TEST_F(ServeKeepAliveTest, IdleKeptAliveConnectionIsReclaimedQuietly) {
  MarketServerConfig config = Config();
  config.read_idle_timeout_ms = 60;
  MarketServer server(&index_, config);
  ASSERT_TRUE(server.Start().ok());
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);

  ASSERT_TRUE(WriteAll(fd, "GET /healthz HTTP/1.1\r\n\r\n").ok());
  std::string buffer;
  auto response = ReadOneResponse(fd, &buffer);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200);
  EXPECT_EQ(response->HeaderOr("connection"), "keep-alive");
  EXPECT_EQ(buffer, "");

  // Idle past the budget between requests: the server reclaims the
  // connection with a bare close — no 408 bytes (there is no request to
  // answer), and read_timeouts() stays untouched.
  EXPECT_EQ(ReadToEof(fd), "");
  EXPECT_EQ(server.read_timeouts(), 0);
  ::close(fd);
  server.Stop();
}

TEST_F(ServeKeepAliveTest, MidRequestIdleStillAnswers408) {
  MarketServerConfig config = Config();
  config.read_idle_timeout_ms = 60;
  MarketServer server(&index_, config);
  ASSERT_TRUE(server.Start().ok());
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);

  // Half a request then silence: slow-loris protection must survive the
  // event-loop rewrite — explicit 408, then close.
  ASSERT_TRUE(WriteAll(fd, "POST /contracts HTTP/1.1\r\n").ok());
  std::string buffer;
  auto response = ReadOneResponse(fd, &buffer);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 408);
  EXPECT_EQ(response->HeaderOr("connection"), "close");
  EXPECT_EQ(ReadToEof(fd), "");
  EXPECT_EQ(server.read_timeouts(), 1);
  ::close(fd);
  server.Stop();
}

}  // namespace
}  // namespace mroam::serve
