#include "serve/timer_wheel.h"

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"

namespace mroam::serve {
namespace {

using Clock = TimerWheel::Clock;
using std::chrono::milliseconds;

std::vector<uint64_t> Sorted(std::vector<uint64_t> ids) {
  std::sort(ids.begin(), ids.end());
  return ids;
}

TEST(TimerWheelTest, EmptyWheelReportsNoDeadline) {
  TimerWheel wheel(8, 16);
  EXPECT_EQ(wheel.pending(), 0u);
  EXPECT_EQ(wheel.MsUntilNext(Clock::now()), -1);
  std::vector<uint64_t> due;
  wheel.Advance(Clock::now() + milliseconds(500), &due);
  EXPECT_TRUE(due.empty());
}

TEST(TimerWheelTest, FiresAtDeadlineNotBefore) {
  TimerWheel wheel(8, 64);
  const auto now = Clock::now();
  wheel.Schedule(7, now + milliseconds(100));
  EXPECT_EQ(wheel.pending(), 1u);

  std::vector<uint64_t> due;
  wheel.Advance(now + milliseconds(50), &due);
  EXPECT_TRUE(due.empty());

  wheel.Advance(now + milliseconds(120), &due);
  EXPECT_EQ(due, std::vector<uint64_t>{7});
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel(8, 64);
  const auto now = Clock::now();
  wheel.Schedule(1, now - milliseconds(500));
  std::vector<uint64_t> due;
  wheel.Advance(now + milliseconds(20), &due);
  EXPECT_EQ(due, std::vector<uint64_t>{1});
}

TEST(TimerWheelTest, WrapAroundDoesNotFireALapEarly) {
  // 16 slots x 8ms = 128ms horizon; a 300ms deadline shares a slot with
  // the first lap and must survive the early visits.
  TimerWheel wheel(8, 16);
  const auto now = Clock::now();
  wheel.Schedule(42, now + milliseconds(300));

  std::vector<uint64_t> due;
  wheel.Advance(now + milliseconds(150), &due);
  EXPECT_TRUE(due.empty());
  EXPECT_EQ(wheel.pending(), 1u);

  wheel.Advance(now + milliseconds(310), &due);
  EXPECT_EQ(due, std::vector<uint64_t>{42});
}

TEST(TimerWheelTest, DeadlineLateInSweptTickDoesNotStrandALap) {
  // Regression: an Advance landing inside the deadline's tick but a few
  // ms before the deadline used to keep the entry in the already-swept
  // slot, where the cursor would not revisit it for a full lap
  // (slots x tick ms) — meanwhile MsUntilNext kept asking for immediate
  // polls. The entry must instead fire with the sweep of its tick.
  const int kTickMs = 8;
  TimerWheel wheel(kTickMs, 16);
  const auto now = Clock::now();
  // Place the deadline 6ms into a tick at least 3 ticks out, so
  // Schedule() hashes it by deadline rather than pinning to cursor+1.
  const int64_t now_ms =
      std::chrono::duration_cast<milliseconds>(now.time_since_epoch()).count();
  const int64_t deadline_ms = (now_ms / kTickMs + 4) * kTickMs + 6;
  const auto deadline = now + milliseconds(deadline_ms - now_ms);

  wheel.Schedule(9, deadline);

  // Sweep the deadline's tick 4ms before the deadline itself: a
  // sub-tick early fire (the owner re-checks and re-arms) beats a
  // stranded lap.
  std::vector<uint64_t> due;
  wheel.Advance(deadline - milliseconds(4), &due);
  EXPECT_EQ(due, std::vector<uint64_t>{9});
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, LargeJumpSweepsEverything) {
  TimerWheel wheel(8, 16);
  const auto now = Clock::now();
  for (uint64_t id = 0; id < 10; ++id) {
    wheel.Schedule(id, now + milliseconds(1 + 40 * static_cast<int64_t>(id)));
  }
  // One advance far past every deadline (and far past a full lap).
  std::vector<uint64_t> due;
  wheel.Advance(now + milliseconds(10000), &due);
  EXPECT_EQ(Sorted(due), Sorted({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, SameIdMayBeScheduledManyTimes) {
  TimerWheel wheel(8, 64);
  const auto now = Clock::now();
  wheel.Schedule(5, now + milliseconds(40));
  wheel.Schedule(5, now + milliseconds(80));
  std::vector<uint64_t> due;
  wheel.Advance(now + milliseconds(100), &due);
  EXPECT_EQ(due, (std::vector<uint64_t>{5, 5}));
}

TEST(TimerWheelTest, MsUntilNextTracksEarliestEntry) {
  TimerWheel wheel(8, 64);
  const auto now = Clock::now();
  wheel.Schedule(1, now + milliseconds(200));
  wheel.Schedule(2, now + milliseconds(64));
  const int wait = wheel.MsUntilNext(now);
  // Earliest is ~64ms out; the wheel may round up to its tick.
  EXPECT_GE(wait, 1);
  EXPECT_LE(wait, 64 + 8 + 1);

  // Already-due entries ask for an immediate poll.
  wheel.Schedule(3, now - milliseconds(10));
  EXPECT_EQ(wheel.MsUntilNext(now), 0);
}

}  // namespace
}  // namespace mroam::serve
