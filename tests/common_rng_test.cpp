#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

namespace mroam::common {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformU64InBounds) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformU64(1), 0u);
  }
}

TEST(RngTest, UniformU64CoversRange) {
  Rng rng(10);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformU64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformU64IsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformU64(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 500);  // ~5 sigma
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(12);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnit) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleRangeMeanIsCentered) {
  Rng rng(14);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.UniformDouble(2.0, 4.0);
  EXPECT_NEAR(sum / kDraws, 3.0, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(16);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  constexpr int kDraws = 200000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.Normal(5.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  double mean = sum / kDraws;
  double var = sumsq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(18);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(RngTest, ParetoRespectsScaleAndIsHeavyTailed) {
  Rng rng(19);
  constexpr int kDraws = 100000;
  int above_10x = 0;
  for (int i = 0; i < kDraws; ++i) {
    double v = rng.Pareto(2.0, 1.5);
    EXPECT_GE(v, 2.0);
    if (v > 20.0) ++above_10x;
  }
  // P(X > 10 * scale) = 10^-1.5 ~= 3.16%.
  EXPECT_NEAR(static_cast<double>(above_10x) / kDraws, 0.0316, 0.005);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(20);
  std::vector<double> weights{1.0, 0.0, 3.0};
  int counts[3] = {};
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kDraws, 0.75, 0.02);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(21);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkGivesIndependentButDeterministicStream) {
  Rng a(99);
  Rng fork1 = a.Fork();
  Rng b(99);
  Rng fork2 = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fork1.Next64(), fork2.Next64());
  }
}

}  // namespace
}  // namespace mroam::common
