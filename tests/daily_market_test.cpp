#include "core/daily_market.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "test_util.h"

namespace mroam::core {
namespace {

using mroam::testing::Adv;
using mroam::testing::IndexFromIncidence;

class DailyMarketTest : public ::testing::Test {
 protected:
  // Six disjoint unit-influence billboards.
  DailyMarketTest()
      : index_(IndexFromIncidence({{0}, {1}, {2}, {3}, {4}, {5}}, 6,
                                  &dataset_)) {}

  DailyMarketConfig Config(ReplanPolicy policy, int32_t duration = 7) {
    DailyMarketConfig config;
    config.policy = policy;
    config.contract_duration_days = duration;
    config.solver.method = Method::kBls;
    config.solver.local_search.restarts = 2;
    return config;
  }

  model::Dataset dataset_;
  influence::InfluenceIndex index_;
};

TEST_F(DailyMarketTest, PolicyNames) {
  EXPECT_STREQ(ReplanPolicyName(ReplanPolicy::kReoptimizeAll),
               "reoptimize-all");
  EXPECT_STREQ(ReplanPolicyName(ReplanPolicy::kLockExisting),
               "lock-existing");
}

TEST_F(DailyMarketTest, EmptyDayIsHarmless) {
  DailyMarket market(&index_, Config(ReplanPolicy::kReoptimizeAll));
  DayResult day = market.AdvanceDay({});
  EXPECT_EQ(day.day, 1);
  EXPECT_EQ(day.active_contracts, 0);
  EXPECT_DOUBLE_EQ(day.breakdown.total, 0.0);
}

TEST_F(DailyMarketTest, ArrivalsAreServed) {
  DailyMarket market(&index_, Config(ReplanPolicy::kReoptimizeAll));
  DayResult day = market.AdvanceDay({Adv(0, 2, 4.0), Adv(0, 3, 6.0)});
  EXPECT_EQ(day.arrived, 2);
  EXPECT_EQ(day.active_contracts, 2);
  EXPECT_EQ(day.breakdown.satisfied_count, 2);
  EXPECT_DOUBLE_EQ(day.breakdown.total, 0.0);
  // 2 + 3 billboards deployed.
  EXPECT_EQ(market.ActiveSets()[0].size() + market.ActiveSets()[1].size(),
            5u);
}

TEST_F(DailyMarketTest, ContractsExpireAndFreeInventory) {
  DailyMarket market(&index_,
                     Config(ReplanPolicy::kReoptimizeAll, /*duration=*/2));
  market.AdvanceDay({Adv(0, 4, 8.0)});  // day 1, expires on day 3
  market.AdvanceDay({});                // day 2: still active
  EXPECT_EQ(market.active_contracts(), 1);
  DayResult day3 = market.AdvanceDay({Adv(0, 6, 12.0)});  // day 3
  EXPECT_EQ(day3.expired, 1);
  EXPECT_EQ(day3.active_contracts, 1);
  // The newcomer needs all six billboards: only possible if the expired
  // contract's four were freed.
  EXPECT_EQ(day3.breakdown.satisfied_count, 1);
  EXPECT_DOUBLE_EQ(day3.breakdown.total, 0.0);
}

TEST_F(DailyMarketTest, LockExistingKeepsSatisfiedSetsStable) {
  DailyMarket market(&index_, Config(ReplanPolicy::kLockExisting));
  market.AdvanceDay({Adv(0, 2, 4.0)});
  std::vector<model::BillboardId> first = market.ActiveSets()[0];
  std::sort(first.begin(), first.end());
  market.AdvanceDay({Adv(0, 3, 6.0)});
  std::vector<model::BillboardId> still = market.ActiveSets()[0];
  std::sort(still.begin(), still.end());
  EXPECT_EQ(first, still);  // day-1 advertiser untouched
  EXPECT_EQ(market.ActiveSets()[1].size(), 3u);  // newcomer served greedily
}

TEST_F(DailyMarketTest, ReoptimizeBeatsLockWhenInventoryIsTight) {
  // Day 1: advertiser demanding 2 gets the best fit. Day 2: a big
  // advertiser arrives; only re-optimization can regroup the inventory.
  model::Dataset d;
  // o0={0,1}, o1={2}, o2={3}, o3={4}: the day-1 demand-2 contract grabs
  // o0 (the exact fit); the day-2 demand-4 contract then cannot reach 4
  // from the three singles. Re-optimization can regroup (give the
  // newcomer o0 plus singles and the incumbent what remains).
  auto index = IndexFromIncidence({{0, 1}, {2}, {3}, {4}}, 5, &d);

  auto run = [&](ReplanPolicy policy) {
    DailyMarketConfig config;
    config.policy = policy;
    config.solver.method = Method::kBls;
    config.solver.local_search.restarts = 4;
    DailyMarket market(&index, config);
    market.AdvanceDay({Adv(0, 2, 4.0)});
    return market.AdvanceDay({Adv(0, 4, 12.0)}).breakdown.total;
  };

  double reopt = run(ReplanPolicy::kReoptimizeAll);
  double lock = run(ReplanPolicy::kLockExisting);
  EXPECT_LT(reopt, lock);
}

TEST_F(DailyMarketTest, DeterministicAcrossRuns) {
  auto run = [&]() {
    DailyMarket market(&index_, Config(ReplanPolicy::kReoptimizeAll));
    market.AdvanceDay({Adv(0, 2, 4.0), Adv(0, 1, 2.0)});
    return market.AdvanceDay({Adv(0, 3, 5.0)}).breakdown.total;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST_F(DailyMarketTest, DayCounterAdvances) {
  DailyMarket market(&index_, Config(ReplanPolicy::kLockExisting));
  EXPECT_EQ(market.today(), 0);
  market.AdvanceDay({});
  market.AdvanceDay({});
  EXPECT_EQ(market.today(), 2);
}

TEST_F(DailyMarketTest, TicketsAreMonotoneAcrossDays) {
  DailyMarket market(&index_, Config(ReplanPolicy::kLockExisting));
  DayResult day1 = market.AdvanceDay({Adv(0, 1, 2.0), Adv(0, 1, 2.0)});
  ASSERT_EQ(day1.admitted_tickets.size(), 2u);
  EXPECT_EQ(day1.admitted_tickets[0], 1);
  EXPECT_EQ(day1.admitted_tickets[1], 2);
  DayResult day2 = market.AdvanceDay({Adv(0, 1, 2.0)});
  ASSERT_EQ(day2.admitted_tickets.size(), 1u);
  // Tickets never recycle, even after expiry/cancellation.
  EXPECT_EQ(day2.admitted_tickets[0], 3);
  EXPECT_EQ(market.ActiveTickets(),
            (std::vector<int64_t>{1, 2, 3}));
}

TEST_F(DailyMarketTest, CancelReleasesInventoryForLaterArrivals) {
  DailyMarket market(&index_, Config(ReplanPolicy::kLockExisting));
  DayResult day1 = market.AdvanceDay({Adv(0, 6, 12.0)});  // takes all six
  EXPECT_EQ(day1.breakdown.satisfied_count, 1);
  ASSERT_TRUE(market.Cancel(day1.admitted_tickets[0]));
  EXPECT_EQ(market.active_contracts(), 0);
  // Cancelling an unknown or already-cancelled ticket reports false.
  EXPECT_FALSE(market.Cancel(day1.admitted_tickets[0]));
  EXPECT_FALSE(market.Cancel(999));
  // The freed inventory serves the next arrival in full.
  DayResult day2 = market.AdvanceDay({Adv(0, 6, 12.0)});
  EXPECT_EQ(day2.breakdown.satisfied_count, 1);
  EXPECT_DOUBLE_EQ(day2.breakdown.total, 0.0);
}

TEST_F(DailyMarketTest, ContractArrivingAndExpiringWithinSameWindow) {
  // duration = 1: a contract admitted on day d expires as day d+1 opens,
  // so it is active for exactly one window and its inventory is free
  // again the very next day.
  DailyMarket market(&index_,
                     Config(ReplanPolicy::kReoptimizeAll, /*duration=*/1));
  DayResult day1 = market.AdvanceDay({Adv(0, 6, 12.0)});
  EXPECT_EQ(day1.active_contracts, 1);
  EXPECT_EQ(day1.breakdown.satisfied_count, 1);
  DayResult day2 = market.AdvanceDay({Adv(0, 6, 12.0)});
  EXPECT_EQ(day2.expired, 1);
  EXPECT_EQ(day2.active_contracts, 1);  // only the newcomer
  EXPECT_EQ(day2.breakdown.satisfied_count, 1);
  EXPECT_DOUBLE_EQ(day2.breakdown.total, 0.0);
}

TEST_F(DailyMarketTest, ZeroArrivalDayKeepsDeploymentIntact) {
  for (ReplanPolicy policy :
       {ReplanPolicy::kReoptimizeAll, ReplanPolicy::kLockExisting}) {
    DailyMarket market(&index_, Config(policy));
    market.AdvanceDay({Adv(0, 2, 4.0), Adv(0, 3, 6.0)});
    std::vector<std::vector<model::BillboardId>> before =
        market.ActiveSets();
    for (auto& set : before) std::sort(set.begin(), set.end());

    DayResult quiet = market.AdvanceDay({});
    EXPECT_EQ(quiet.arrived, 0);
    EXPECT_EQ(quiet.expired, 0);
    EXPECT_EQ(quiet.active_contracts, 2);
    EXPECT_EQ(quiet.breakdown.satisfied_count, 2);

    std::vector<std::vector<model::BillboardId>> after =
        market.ActiveSets();
    for (auto& set : after) std::sort(set.begin(), set.end());
    // Lock-existing must not move a single billboard on a quiet day;
    // reoptimize-all may reshuffle but keeps everyone satisfied (checked
    // above), and here the disjoint fixture pins set sizes too.
    if (policy == ReplanPolicy::kLockExisting) {
      EXPECT_EQ(after, before);
    } else {
      EXPECT_EQ(after[0].size() + after[1].size(),
                before[0].size() + before[1].size());
    }
  }
}

TEST_F(DailyMarketTest, LockExistingWithExhaustedFreePool) {
  DailyMarket market(&index_, Config(ReplanPolicy::kLockExisting));
  DayResult day1 = market.AdvanceDay({Adv(0, 6, 12.0)});  // takes all six
  EXPECT_EQ(day1.breakdown.satisfied_count, 1);

  // The newcomer finds an empty free pool: locked inventory stays locked,
  // the newcomer is simply unsatisfied and pays the alpha-penalty.
  DayResult day2 = market.AdvanceDay({Adv(0, 2, 4.0)});
  EXPECT_EQ(day2.active_contracts, 2);
  EXPECT_EQ(day2.breakdown.satisfied_count, 1);
  EXPECT_GT(day2.breakdown.unsatisfied_penalty, 0.0);
  EXPECT_EQ(market.ActiveSets()[0].size(), 6u);
  EXPECT_TRUE(market.ActiveSets()[1].empty());
}

}  // namespace
}  // namespace mroam::core
