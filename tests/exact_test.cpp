#include "core/exact.h"

#include <gtest/gtest.h>

#include "core/solver.h"
#include "test_util.h"

namespace mroam::core {
namespace {

using mroam::testing::Adv;
using mroam::testing::IndexFromIncidence;
using mroam::testing::PaperExampleAdvertisers;
using mroam::testing::PaperExampleIncidence;

TEST(ExactSolveTest, PaperExampleOptimumIsZero) {
  model::Dataset d;
  auto index = IndexFromIncidence(PaperExampleIncidence(), 20, &d);
  ExactSolverConfig config;
  auto result = ExactSolve(index, PaperExampleAdvertisers(), config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(result->optimal_regret, 0.0);
  // The returned sets actually realize the optimum.
  for (size_t a = 0; a < result->sets.size(); ++a) {
    EXPECT_EQ(index.InfluenceOfSet(result->sets[a]),
              PaperExampleAdvertisers()[a].demand);
  }
}

TEST(ExactSolveTest, EmptyMarket) {
  model::Dataset d;
  auto index = IndexFromIncidence({{0}}, 1, &d);
  auto result = ExactSolve(index, {}, ExactSolverConfig{});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->optimal_regret, 0.0);
  EXPECT_TRUE(result->sets.empty());
}

TEST(ExactSolveTest, SingleAdvertiserPicksBestSubset) {
  // Demand 5: subsets {3,2} fit exactly; optimum 0.
  model::Dataset d;
  auto index = IndexFromIncidence(
      {{0, 1, 2}, {3, 4}, {5, 6, 7, 8}}, 9, &d);
  auto result =
      ExactSolve(index, {Adv(0, 5, 10.0)}, ExactSolverConfig{});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->optimal_regret, 0.0);
}

TEST(ExactSolveTest, InfeasibleDemandGivesBoundaryOptimum) {
  // One advertiser demanding 10, supply 3 disjoint: best is all boards,
  // R = L (1 - gamma * 3/10).
  model::Dataset d;
  auto index = IndexFromIncidence({{0}, {1}, {2}}, 3, &d);
  ExactSolverConfig config;
  config.regret.gamma = 0.5;
  auto result = ExactSolve(index, {Adv(0, 10, 20.0)}, config);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->optimal_regret, 20.0 * (1.0 - 0.5 * 0.3));
}

TEST(ExactSolveTest, UnmatchableN3dmInstanceHasPositiveOptimum) {
  // The no-matching instance from property_test: b=16 with z=12 needing
  // x+y=4 < min 5. The exact solver certifies OPT > 0, confirming the
  // instance really is unmatchable (not just hard for the heuristics).
  std::vector<std::vector<model::TrajectoryId>> covered;
  int32_t next = 0;
  auto add = [&](int influence) {
    std::vector<model::TrajectoryId> list;
    for (int k = 0; k < influence; ++k) list.push_back(next++);
    covered.push_back(std::move(list));
  };
  const int c = 20;
  for (int x : {1, 2, 3}) add(c + x);
  for (int y : {4, 5, 6}) add(3 * c + y);
  for (int z : {7, 8, 12}) add(9 * c + z);
  model::Dataset d;
  auto index = IndexFromIncidence(covered, next, &d);
  const int64_t demand = 16 + 13 * c;
  std::vector<market::Advertiser> ads = {
      Adv(0, demand, static_cast<double>(demand)),
      Adv(1, demand, static_cast<double>(demand)),
      Adv(2, demand, static_cast<double>(demand))};
  ExactSolverConfig config;
  config.regret.gamma = 0.0;
  auto result = ExactSolve(index, ads, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->optimal_regret, 0.0);
}

TEST(ExactSolveTest, WorksUnderImpressionThreshold) {
  model::Dataset d;
  auto index = IndexFromIncidence(
      {{0, 1, 2}, {0, 1, 2}, {2, 3, 4}, {2, 3, 4}}, 5, &d);
  ExactSolverConfig config;
  config.impression_threshold = 2;
  auto result = ExactSolve(
      index, {Adv(0, 3, 9.0), Adv(1, 3, 9.0)}, config);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->optimal_regret, 0.0);
}

TEST(ExactSolveTest, NodeBudgetIsEnforced) {
  std::vector<std::vector<model::TrajectoryId>> covered;
  for (int32_t o = 0; o < 14; ++o) covered.push_back({o});
  model::Dataset d;
  auto index = IndexFromIncidence(covered, 14, &d);
  std::vector<market::Advertiser> ads = {Adv(0, 7, 7.0), Adv(1, 6, 6.0),
                                         Adv(2, 5, 5.0)};
  ExactSolverConfig config;
  config.max_nodes = 50;
  auto result = ExactSolve(index, ads, config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), common::StatusCode::kFailedPrecondition);
}

// The key property: no heuristic ever beats the exact optimum, and the
// optimum never beats the trivially-valid empty plan — under both the
// set-union measure (m=1) and the impression-threshold measure (m=2).
class OptimalityTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(OptimalityTest, HeuristicsNeverBeatTheOptimum) {
  common::Rng rng(std::get<0>(GetParam()));
  const uint16_t threshold = static_cast<uint16_t>(std::get<1>(GetParam()));
  const int32_t num_billboards = 9;
  const int32_t num_trajectories = 24;
  std::vector<std::vector<model::TrajectoryId>> covered(num_billboards);
  for (auto& list : covered) {
    for (int32_t t = 0; t < num_trajectories; ++t) {
      if (rng.Bernoulli(0.25)) list.push_back(t);
    }
  }
  model::Dataset d;
  auto index = IndexFromIncidence(covered, num_trajectories, &d);
  std::vector<market::Advertiser> ads;
  const int32_t num_ads = 2 + static_cast<int32_t>(rng.UniformU64(2));
  for (int32_t a = 0; a < num_ads; ++a) {
    int64_t demand = 2 + static_cast<int64_t>(rng.UniformU64(10));
    ads.push_back(Adv(a, demand, static_cast<double>(2 * demand)));
  }

  ExactSolverConfig exact_config;
  exact_config.regret.gamma = 0.5;
  exact_config.impression_threshold = threshold;
  auto exact = ExactSolve(index, ads, exact_config);
  ASSERT_TRUE(exact.ok()) << exact.status();

  double payment_sum = 0.0;
  for (const auto& a : ads) payment_sum += a.payment;
  EXPECT_LE(exact->optimal_regret, payment_sum + 1e-9);  // empty plan bound

  for (Method method : AllMethods()) {
    SolverConfig config;
    config.method = method;
    config.regret.gamma = 0.5;
    config.impression_threshold = threshold;
    config.local_search.restarts = 2;
    SolveResult result = Solve(index, ads, config);
    EXPECT_GE(result.breakdown.total, exact->optimal_regret - 1e-9)
        << MethodName(method) << " m=" << threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThresholds, OptimalityTest,
    ::testing::Combine(::testing::Range<uint64_t>(1, 11),
                       ::testing::Values(1, 2)));

}  // namespace
}  // namespace mroam::core
