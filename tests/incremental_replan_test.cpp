// Equivalence and churn-handling suite for ReplanPolicy::kIncremental:
// the warm-started replanner must match the full re-solve bit for bit
// when its drift bound forces a daily fallback, stay within the bound on
// mixed churn schedules, fall back when a day's churn makes the warm
// start drift too far, and keep the market's ticket bookkeeping intact
// under cancellation-heavy churn.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/daily_market.h"
#include "test_util.h"

namespace mroam::core {
namespace {

using mroam::testing::Adv;
using mroam::testing::IndexFromIncidence;

/// Random incidence lists: `boards` billboards each covering 1-5 of
/// `trajectories` trajectories. Deterministic per seed.
std::vector<std::vector<model::TrajectoryId>> RandomIncidence(
    common::Rng* rng, int32_t boards, int32_t trajectories) {
  std::vector<std::vector<model::TrajectoryId>> covered(
      static_cast<size_t>(boards));
  for (int32_t o = 0; o < boards; ++o) {
    const int32_t k = 1 + static_cast<int32_t>(rng->UniformU64(5));
    for (int32_t j = 0; j < k; ++j) {
      covered[static_cast<size_t>(o)].push_back(
          static_cast<model::TrajectoryId>(
              rng->UniformU64(static_cast<uint64_t>(trajectories))));
    }
  }
  return covered;
}

/// Random arrival schedule: `days` days of 0-3 arrivals with demands 1-6
/// and payments 1-10. Deterministic per seed.
std::vector<std::vector<market::Advertiser>> RandomSchedule(
    common::Rng* rng, int days) {
  std::vector<std::vector<market::Advertiser>> schedule(
      static_cast<size_t>(days));
  for (auto& day : schedule) {
    const int arrivals = static_cast<int>(rng->UniformU64(4));
    for (int a = 0; a < arrivals; ++a) {
      day.push_back(Adv(0, 1 + static_cast<int64_t>(rng->UniformU64(6)),
                        1.0 + rng->UniformDouble(0.0, 9.0)));
    }
  }
  return schedule;
}

/// Drives one market through `schedule`, cancelling an early ticket every
/// third day (identically for every policy, since tickets are monotone
/// and roster-driven). Returns the per-day results; `final_payment_sum`
/// (optional) receives the payment volume of the final active book.
std::vector<DayResult> Drive(
    const influence::InfluenceIndex& index, DailyMarketConfig config,
    const std::vector<std::vector<market::Advertiser>>& schedule,
    double* final_payment_sum = nullptr) {
  DailyMarket market(&index, config);
  std::vector<DayResult> days;
  for (size_t d = 0; d < schedule.size(); ++d) {
    const int32_t day = static_cast<int32_t>(d) + 1;
    if (day >= 3 && day % 3 == 0) {
      market.Cancel(day - 2);  // a miss is a harmless no-op
    }
    days.push_back(market.AdvanceDay(schedule[d]));
  }
  if (final_payment_sum != nullptr) {
    *final_payment_sum = 0.0;
    for (const market::Advertiser& a : market.ActiveTerms()) {
      *final_payment_sum += a.payment;
    }
  }
  return days;
}

DailyMarketConfig BaseConfig(ReplanPolicy policy,
                             uint16_t impression_threshold) {
  DailyMarketConfig config;
  config.policy = policy;
  config.contract_duration_days = 3;
  config.solver.method = Method::kGGlobal;
  config.solver.impression_threshold = impression_threshold;
  return config;
}

TEST(IncrementalReplanTest, NamesCoverNewPolicyAndModes) {
  EXPECT_STREQ(ReplanPolicyName(ReplanPolicy::kIncremental), "incremental");
  EXPECT_STREQ(ReplanModeName(ReplanMode::kNone), "none");
  EXPECT_STREQ(ReplanModeName(ReplanMode::kFull), "full");
  EXPECT_STREQ(ReplanModeName(ReplanMode::kIncremental), "incremental");
  EXPECT_STREQ(ReplanModeName(ReplanMode::kGreedy), "greedy");
}

// With a negative drift bound the incremental policy must run the same
// full Solve as kReoptimizeAll every day, so every day's regret (and the
// final deployment) is bit-identical across randomized churn schedules
// under both influence models.
TEST(IncrementalReplanTest, NegativeDriftMatchesReoptimizeAllExactly) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (uint16_t threshold : {uint16_t{1}, uint16_t{3}}) {
      common::Rng gen_rng(seed);
      model::Dataset dataset;
      auto index = IndexFromIncidence(RandomIncidence(&gen_rng, 20, 60), 60,
                                      &dataset);
      common::Rng schedule_rng(seed + 100);
      auto schedule = RandomSchedule(&schedule_rng, 8);

      auto reopt = Drive(index,
                         BaseConfig(ReplanPolicy::kReoptimizeAll, threshold),
                         schedule);
      DailyMarketConfig config =
          BaseConfig(ReplanPolicy::kIncremental, threshold);
      config.incremental.max_regret_drift = -1.0;
      auto incremental = Drive(index, config, schedule);

      ASSERT_EQ(reopt.size(), incremental.size());
      for (size_t d = 0; d < reopt.size(); ++d) {
        SCOPED_TRACE("seed " + std::to_string(seed) + " threshold " +
                     std::to_string(threshold) + " day " +
                     std::to_string(d + 1));
        EXPECT_DOUBLE_EQ(incremental[d].breakdown.total,
                         reopt[d].breakdown.total);
        if (incremental[d].active_contracts > 0) {
          EXPECT_TRUE(incremental[d].full_solve_fallback);
          EXPECT_EQ(incremental[d].mode, ReplanMode::kFull);
        }
      }
    }
  }
}

// With a finite drift bound the incremental plan may diverge from the
// full re-solve, but only within the bound: final regret stays within
// max_regret_drift * (active payment volume) of kReoptimizeAll's, and at
// least one day actually replans incrementally (the policy is not just
// falling back every day).
TEST(IncrementalReplanTest, DriftBoundHoldsAcrossRandomizedSchedules) {
  const double drift = 0.3;
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (uint16_t threshold : {uint16_t{1}, uint16_t{3}}) {
      common::Rng gen_rng(seed);
      model::Dataset dataset;
      auto index = IndexFromIncidence(RandomIncidence(&gen_rng, 20, 60), 60,
                                      &dataset);
      common::Rng schedule_rng(seed + 100);
      auto schedule = RandomSchedule(&schedule_rng, 8);

      auto reopt = Drive(index,
                         BaseConfig(ReplanPolicy::kReoptimizeAll, threshold),
                         schedule);
      DailyMarketConfig config =
          BaseConfig(ReplanPolicy::kIncremental, threshold);
      config.incremental.max_regret_drift = drift;
      double payment_sum = 0.0;
      auto incremental = Drive(index, config, schedule, &payment_sum);

      SCOPED_TRACE("seed " + std::to_string(seed) + " threshold " +
                   std::to_string(threshold));
      ASSERT_EQ(reopt.size(), incremental.size());
      EXPECT_LE(incremental.back().breakdown.total,
                reopt.back().breakdown.total + drift * payment_sum + 1e-6);
      int incremental_days = 0;
      for (const DayResult& day : incremental) {
        if (day.mode == ReplanMode::kIncremental) ++incremental_days;
      }
      EXPECT_GE(incremental_days, 1);
    }
  }
}

class IncrementalReplanFixtureTest : public ::testing::Test {
 protected:
  // Six disjoint unit-influence billboards.
  IncrementalReplanFixtureTest()
      : index_(IndexFromIncidence({{0}, {1}, {2}, {3}, {4}, {5}}, 6,
                                  &dataset_)) {}

  DailyMarketConfig Config(double drift) {
    DailyMarketConfig config;
    config.policy = ReplanPolicy::kIncremental;
    config.contract_duration_days = 7;
    config.solver.method = Method::kGGlobal;
    config.incremental.max_regret_drift = drift;
    return config;
  }

  model::Dataset dataset_;
  influence::InfluenceIndex index_;
};

// The first non-empty day has no drift anchor, so it must fall back to a
// full solve; once anchored, a churn-free day replans incrementally.
TEST_F(IncrementalReplanFixtureTest, FirstDayFallsBackToEstablishAnchor) {
  DailyMarket market(&index_, Config(0.1));
  DayResult day1 = market.AdvanceDay({Adv(0, 2, 4.0)});
  EXPECT_TRUE(day1.full_solve_fallback);
  EXPECT_EQ(day1.mode, ReplanMode::kFull);
  DayResult day2 = market.AdvanceDay({Adv(0, 1, 2.0)});
  EXPECT_FALSE(day2.full_solve_fallback);
  EXPECT_EQ(day2.mode, ReplanMode::kIncremental);
  EXPECT_EQ(day2.breakdown.satisfied_count, 2);
}

// A zero drift bound tolerates no regret above the anchor: when a new
// arrival cannot be satisfied from the warm start, the day must re-solve
// in full (and still end at the same regret, since no plan can help).
TEST_F(IncrementalReplanFixtureTest, DriftBreachForcesFullSolve) {
  DailyMarket market(&index_, Config(0.0));
  DayResult day1 = market.AdvanceDay({Adv(0, 6, 12.0)});  // takes all six
  EXPECT_DOUBLE_EQ(day1.breakdown.total, 0.0);  // anchor at zero regret
  DayResult day2 = market.AdvanceDay({Adv(0, 2, 4.0)});
  EXPECT_TRUE(day2.full_solve_fallback);
  EXPECT_EQ(day2.mode, ReplanMode::kFull);
  EXPECT_GT(day2.breakdown.total, 0.0);

  // A permissive bound keeps the warm start on the identical schedule.
  DailyMarket loose(&index_, Config(100.0));
  loose.AdvanceDay({Adv(0, 6, 12.0)});
  DayResult loose_day2 = loose.AdvanceDay({Adv(0, 2, 4.0)});
  EXPECT_FALSE(loose_day2.full_solve_fallback);
  EXPECT_EQ(loose_day2.mode, ReplanMode::kIncremental);
}

// A quiet day (no arrivals, expiries, or cancellations) with a satisfied
// book must not move a single billboard under the incremental policy.
TEST_F(IncrementalReplanFixtureTest, QuietDayTouchesNoBoards) {
  DailyMarket market(&index_, Config(0.1));
  market.AdvanceDay({Adv(0, 2, 4.0), Adv(0, 3, 6.0)});
  std::vector<std::vector<model::BillboardId>> before = market.ActiveSets();
  for (auto& set : before) std::sort(set.begin(), set.end());

  DayResult quiet = market.AdvanceDay({});
  EXPECT_EQ(quiet.mode, ReplanMode::kIncremental);
  EXPECT_EQ(quiet.churn_boards, 0);
  EXPECT_EQ(quiet.boards_touched, 0);
  EXPECT_EQ(quiet.reoptimized_advertisers, 0);

  std::vector<std::vector<model::BillboardId>> after = market.ActiveSets();
  for (auto& set : after) std::sort(set.begin(), set.end());
  EXPECT_EQ(after, before);
}

// Cancellation churn: the withdrawn contract's inventory is inside the
// next day's blast radius, so a same-sized newcomer is served from it
// without disturbing the other incumbent.
TEST_F(IncrementalReplanFixtureTest, CancelChurnServesNewcomer) {
  DailyMarket market(&index_, Config(0.1));
  DayResult day1 = market.AdvanceDay({Adv(0, 3, 6.0), Adv(0, 3, 9.0)});
  EXPECT_EQ(day1.breakdown.satisfied_count, 2);
  const int64_t first_ticket = day1.admitted_tickets[0];
  std::vector<model::BillboardId> keeper = market.ActiveSets()[1];
  std::sort(keeper.begin(), keeper.end());

  ASSERT_TRUE(market.Cancel(first_ticket));
  DayResult day2 = market.AdvanceDay({Adv(0, 3, 6.0)});
  EXPECT_EQ(day2.cancelled, 1);
  EXPECT_EQ(day2.churn_boards, 3);
  EXPECT_EQ(day2.mode, ReplanMode::kIncremental);
  EXPECT_EQ(day2.breakdown.satisfied_count, 2);
  EXPECT_DOUBLE_EQ(day2.breakdown.total, 0.0);

  std::vector<model::BillboardId> kept = market.ActiveSets()[0];
  std::sort(kept.begin(), kept.end());
  EXPECT_EQ(kept, keeper);  // survivor's deployment untouched
}

// Cancel-heavy bookkeeping: after a middle contract is withdrawn, every
// later ticket still resolves (the ticket->index map is re-synced), the
// dense caches stay aligned, and double-cancel reports false.
TEST_F(IncrementalReplanFixtureTest, CancelKeepsTicketBookkeepingInSync) {
  DailyMarket market(&index_, Config(0.1));
  DayResult day1 = market.AdvanceDay(
      {Adv(0, 1, 2.0), Adv(0, 1, 3.0), Adv(0, 1, 4.0), Adv(0, 1, 5.0)});
  ASSERT_EQ(day1.admitted_tickets.size(), 4u);

  ASSERT_TRUE(market.Cancel(2));
  EXPECT_FALSE(market.Cancel(2));
  EXPECT_EQ(market.ActiveTickets(), (std::vector<int64_t>{1, 3, 4}));
  // Dense ids and terms stay aligned with the shifted roster.
  for (size_t i = 0; i < market.ActiveTerms().size(); ++i) {
    EXPECT_EQ(market.ActiveTerms()[i].id,
              static_cast<market::AdvertiserId>(i));
  }
  // Tickets behind the erased slot still cancel in O(1).
  ASSERT_TRUE(market.Cancel(4));
  ASSERT_TRUE(market.Cancel(1));
  EXPECT_EQ(market.ActiveTickets(), (std::vector<int64_t>{3}));

  DayResult day2 = market.AdvanceDay({});
  EXPECT_EQ(day2.cancelled, 3);
  EXPECT_EQ(day2.active_contracts, 1);
  EXPECT_EQ(day2.breakdown.satisfied_count, 1);
}

// A long cancellation-heavy run: admit/cancel waves with expiries mixed
// in; the roster and regret must stay consistent every day (satisfied
// count equals active contracts on this disjoint fixture whenever supply
// suffices).
TEST_F(IncrementalReplanFixtureTest, CancelHeavyChurnStress) {
  DailyMarketConfig config = Config(0.5);
  config.contract_duration_days = 2;
  DailyMarket market(&index_, config);
  common::Rng rng(9);
  int64_t last_ticket = 0;
  for (int day = 1; day <= 15; ++day) {
    // Cancel up to two random live tickets.
    for (int c = 0; c < 2; ++c) {
      if (last_ticket > 0) {
        market.Cancel(static_cast<int64_t>(
            rng.UniformU64(static_cast<uint64_t>(last_ticket)) + 1));
      }
    }
    std::vector<market::Advertiser> arrivals;
    const int n = static_cast<int>(rng.UniformU64(3));
    for (int a = 0; a < n; ++a) {
      arrivals.push_back(Adv(0, 1 + static_cast<int64_t>(rng.UniformU64(2)),
                             2.0 + rng.UniformDouble()));
    }
    DayResult result = market.AdvanceDay(arrivals);
    if (!result.admitted_tickets.empty()) {
      last_ticket = result.admitted_tickets.back();
    }
    // The dense caches must stay mutually aligned after every churn mix.
    ASSERT_EQ(market.ActiveTerms().size(), market.ActiveSets().size());
    ASSERT_EQ(market.ActiveTerms().size(), market.ActiveTickets().size());
    ASSERT_EQ(static_cast<int32_t>(market.ActiveTerms().size()),
              result.active_contracts);
  }
}

}  // namespace
}  // namespace mroam::core
