#include "influence/coverage_counter.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace mroam::influence {
namespace {

using mroam::testing::IndexFromIncidence;

TEST(CoverageCounterTest, AddRemoveMaintainsInfluence) {
  model::Dataset keep;
  InfluenceIndex index = IndexFromIncidence(
      {{0, 1, 2}, {2, 3}, {4}, {}}, 5, &keep);
  CoverageCounter counter(&index);
  EXPECT_EQ(counter.influence(), 0);

  counter.Add(0);
  EXPECT_EQ(counter.influence(), 3);
  counter.Add(1);
  EXPECT_EQ(counter.influence(), 4);  // trajectory 2 shared
  counter.Add(3);
  EXPECT_EQ(counter.influence(), 4);  // empty list
  counter.Remove(0);
  EXPECT_EQ(counter.influence(), 2);  // {2, 3} remain
  counter.Remove(1);
  counter.Remove(3);
  EXPECT_EQ(counter.influence(), 0);
}

TEST(CoverageCounterTest, CountOfTracksMultiplicity) {
  model::Dataset keep;
  InfluenceIndex index =
      IndexFromIncidence({{0, 1}, {1, 2}, {1}}, 3, &keep);
  CoverageCounter counter(&index);
  counter.Add(0);
  counter.Add(1);
  counter.Add(2);
  EXPECT_EQ(counter.CountOf(0), 1);
  EXPECT_EQ(counter.CountOf(1), 3);
  EXPECT_EQ(counter.CountOf(2), 1);
}

TEST(CoverageCounterTest, MarginalGainCountsOnlyUncovered) {
  model::Dataset keep;
  InfluenceIndex index =
      IndexFromIncidence({{0, 1, 2}, {2, 3, 4}}, 5, &keep);
  CoverageCounter counter(&index);
  EXPECT_EQ(counter.MarginalGain(1), 3);
  counter.Add(0);
  EXPECT_EQ(counter.MarginalGain(1), 2);  // trajectory 2 already covered
}

TEST(CoverageCounterTest, MarginalLossCountsSoleCoverage) {
  model::Dataset keep;
  InfluenceIndex index =
      IndexFromIncidence({{0, 1, 2}, {2, 3}}, 4, &keep);
  CoverageCounter counter(&index);
  counter.Add(0);
  counter.Add(1);
  EXPECT_EQ(counter.MarginalLoss(0), 2);  // 0 and 1 only covered by o0
  EXPECT_EQ(counter.MarginalLoss(1), 1);  // 3 only covered by o1
}

TEST(CoverageCounterTest, ClearResets) {
  model::Dataset keep;
  InfluenceIndex index = IndexFromIncidence({{0, 1}}, 2, &keep);
  CoverageCounter counter(&index);
  counter.Add(0);
  counter.Clear();
  EXPECT_EQ(counter.influence(), 0);
  EXPECT_EQ(counter.CountOf(0), 0);
  counter.Add(0);  // usable again
  EXPECT_EQ(counter.influence(), 2);
}

TEST(CoverageCounterTest, MarginalGainAfterRemoveHandCases) {
  model::Dataset keep;
  // o0={0,1}, o1={1,2}, o2={2,3}.
  InfluenceIndex index =
      IndexFromIncidence({{0, 1}, {1, 2}, {2, 3}}, 4, &keep);
  CoverageCounter counter(&index);
  counter.Add(0);
  counter.Add(1);  // covered: {0,1,2}; counts: 1,2,1,0
  // Remove o1, add o2: t2 was covered only by o1 -> gain, t3 new -> gain.
  EXPECT_EQ(counter.MarginalGainAfterRemove(/*add=*/2, /*rem=*/1), 2);
  // Remove o0, add o2: t2 still covered by o1 -> no, t3 new -> 1.
  EXPECT_EQ(counter.MarginalGainAfterRemove(/*add=*/2, /*rem=*/0), 1);
}

TEST(ImpressionThresholdTest, ThresholdTwoRequiresTwoMeetings) {
  model::Dataset keep;
  // o0={0,1}, o1={1,2}, o2={1,2}.
  InfluenceIndex index =
      IndexFromIncidence({{0, 1}, {1, 2}, {1, 2}}, 3, &keep);
  CoverageCounter counter(&index, /*impression_threshold=*/2);
  EXPECT_EQ(counter.impression_threshold(), 2);
  counter.Add(0);
  EXPECT_EQ(counter.influence(), 0);  // one meeting each: not influenced
  counter.Add(1);
  EXPECT_EQ(counter.influence(), 1);  // t1 met o0 and o1
  counter.Add(2);
  EXPECT_EQ(counter.influence(), 2);  // t2 met o1 and o2
  counter.Remove(1);
  EXPECT_EQ(counter.influence(), 1);  // t2 falls back below the threshold
}

TEST(ImpressionThresholdTest, MarginalsAtThresholdTwo) {
  model::Dataset keep;
  InfluenceIndex index =
      IndexFromIncidence({{0, 1}, {1, 2}, {1, 2}}, 3, &keep);
  CoverageCounter counter(&index, /*impression_threshold=*/2);
  counter.Add(0);
  // Adding o1 takes t1 from 1 to 2 meetings: gain 1 (t2 only reaches 1).
  EXPECT_EQ(counter.MarginalGain(1), 1);
  counter.Add(1);
  // Removing o0 drops t1 from 2 to 1: loss 1.
  EXPECT_EQ(counter.MarginalLoss(0), 1);
  // Exchange o0 -> o2 (o2 covers {1,2}): after removing o0 the counts are
  // t1=1, t2=1; adding o2 lifts both to the threshold.
  EXPECT_EQ(counter.MarginalGainAfterRemove(/*add=*/2, /*rem=*/0), 2);
}

// Property sweep: MarginalGainAfterRemove must equal the influence change
// computed by actually applying remove+add, over random incidence
// structures, random set states, and impression thresholds 1-3.
class CoverageCounterPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(CoverageCounterPropertyTest, GainAfterRemoveMatchesMutation) {
  common::Rng rng(std::get<0>(GetParam()));
  const uint16_t threshold = static_cast<uint16_t>(std::get<1>(GetParam()));
  const int32_t num_billboards = 12;
  const int32_t num_trajectories = 30;
  std::vector<std::vector<model::TrajectoryId>> covered(num_billboards);
  for (auto& list : covered) {
    for (int32_t t = 0; t < num_trajectories; ++t) {
      if (rng.Bernoulli(0.25)) list.push_back(t);
    }
  }
  model::Dataset keep;
  InfluenceIndex index =
      IndexFromIncidence(covered, num_trajectories, &keep);

  // Random member set.
  std::vector<model::BillboardId> members;
  CoverageCounter counter(&index, threshold);
  for (int32_t o = 0; o < num_billboards; ++o) {
    if (rng.Bernoulli(0.5)) {
      counter.Add(o);
      members.push_back(o);
    }
  }
  if (members.empty()) return;

  for (int trial = 0; trial < 20; ++trial) {
    model::BillboardId rem = members[rng.UniformU64(members.size())];
    model::BillboardId add;
    do {
      add = static_cast<model::BillboardId>(rng.UniformU64(num_billboards));
    } while (std::find(members.begin(), members.end(), add) != members.end());

    int64_t predicted_gain_after = counter.MarginalGainAfterRemove(add, rem);
    int64_t predicted_gain = counter.MarginalGain(add);
    int64_t predicted_loss = counter.MarginalLoss(rem);

    // Ground truths by mutation.
    int64_t initial = counter.influence();
    counter.Add(add);
    EXPECT_EQ(counter.influence() - initial, predicted_gain);
    counter.Remove(add);

    counter.Remove(rem);
    EXPECT_EQ(initial - counter.influence(), predicted_loss);
    int64_t without_rem = counter.influence();
    counter.Add(add);
    EXPECT_EQ(counter.influence() - without_rem, predicted_gain_after)
        << "trial " << trial;
    // Restore.
    counter.Remove(add);
    counter.Add(rem);
    EXPECT_EQ(counter.influence(), initial);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThresholds, CoverageCounterPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                       ::testing::Values(1, 2, 3)));

/// I(S) recomputed from nothing but the incidence lists: per-trajectory
/// meet counts, then count those at/above the threshold. Shares no code
/// with CoverageCounter's incremental machinery.
int64_t BruteForceInfluence(const InfluenceIndex& index,
                            const std::vector<model::BillboardId>& set,
                            uint16_t threshold) {
  std::vector<int> counts(index.num_trajectories(), 0);
  for (model::BillboardId o : set) {
    for (model::TrajectoryId t : index.CoveredBy(o)) ++counts[t];
  }
  int64_t influence = 0;
  for (int c : counts) {
    if (c >= threshold) ++influence;
  }
  return influence;
}

// MarginalGainAfterRemove relies on sorted incidence lists for its merge
// pointer; this pins its output to a from-scratch recompute of
// I(S \ {rem} ∪ {add}) - I(S \ {rem}) on randomized sets so any silent
// ordering regression (or merge bug) shows up as a wrong gain.
TEST(CoverageCounterBruteForceTest, GainAfterRemoveMatchesRecompute) {
  for (uint64_t seed : {11u, 22u, 33u, 44u}) {
    for (uint16_t threshold : {uint16_t{1}, uint16_t{2}, uint16_t{3}}) {
      common::Rng rng(seed);
      const int32_t num_billboards = 10;
      const int32_t num_trajectories = 25;
      std::vector<std::vector<model::TrajectoryId>> covered(num_billboards);
      for (auto& list : covered) {
        for (int32_t t = 0; t < num_trajectories; ++t) {
          if (rng.Bernoulli(0.3)) list.push_back(t);
        }
      }
      model::Dataset keep;
      InfluenceIndex index =
          IndexFromIncidence(covered, num_trajectories, &keep);

      std::vector<model::BillboardId> members;
      std::vector<model::BillboardId> outside;
      CoverageCounter counter(&index, threshold);
      for (int32_t o = 0; o < num_billboards; ++o) {
        if (rng.Bernoulli(0.5)) {
          counter.Add(o);
          members.push_back(o);
        } else {
          outside.push_back(o);
        }
      }
      if (members.empty() || outside.empty()) continue;

      for (model::BillboardId rem : members) {
        std::vector<model::BillboardId> without_rem;
        for (model::BillboardId o : members) {
          if (o != rem) without_rem.push_back(o);
        }
        const int64_t base =
            BruteForceInfluence(index, without_rem, threshold);
        for (model::BillboardId add : outside) {
          std::vector<model::BillboardId> swapped = without_rem;
          swapped.push_back(add);
          const int64_t expected =
              BruteForceInfluence(index, swapped, threshold) - base;
          EXPECT_EQ(counter.MarginalGainAfterRemove(add, rem), expected)
              << "seed " << seed << " threshold " << threshold << " rem "
              << rem << " add " << add;
        }
      }
    }
  }
}

}  // namespace
}  // namespace mroam::influence
