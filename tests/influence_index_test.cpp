#include "influence/influence_index.h"

#include <gtest/gtest.h>

#include "gen/city_generators.h"
#include "influence/reports.h"
#include "test_util.h"

namespace mroam::influence {
namespace {

using testing::DatasetFromIncidence;
using testing::kFixtureLambda;

TEST(InfluenceIndexTest, IncidenceFixtureIsExact) {
  std::vector<std::vector<model::TrajectoryId>> covered{
      {0, 1, 2}, {2, 3}, {}, {4}};
  model::Dataset d = DatasetFromIncidence(covered, 5);
  InfluenceIndex index = InfluenceIndex::Build(d, kFixtureLambda);
  ASSERT_EQ(index.num_billboards(), 4);
  EXPECT_EQ(index.num_trajectories(), 5);
  EXPECT_EQ(index.CoveredBy(0),
            (std::vector<model::TrajectoryId>{0, 1, 2}));
  EXPECT_EQ(index.CoveredBy(1), (std::vector<model::TrajectoryId>{2, 3}));
  EXPECT_TRUE(index.CoveredBy(2).empty());
  EXPECT_EQ(index.InfluenceOf(0), 3);
  EXPECT_EQ(index.InfluenceOf(2), 0);
  EXPECT_EQ(index.TotalSupply(), 6);
}

TEST(InfluenceIndexTest, DuplicatePointsCountOnce) {
  // A trajectory passing a billboard multiple times is influenced once.
  model::Dataset d;
  model::Billboard b;
  b.id = 0;
  b.location = {0, 0};
  d.billboards.push_back(b);
  model::Trajectory t;
  t.id = 0;
  t.points = {{0, 0}, {0.5, 0}, {100, 0}, {0.2, 0}};
  d.trajectories.push_back(t);
  InfluenceIndex index = InfluenceIndex::Build(d, 1.0);
  EXPECT_EQ(index.InfluenceOf(0), 1);
  EXPECT_EQ(index.TotalSupply(), 1);
}

TEST(InfluenceIndexTest, LambdaBoundaryIsInclusive) {
  model::Dataset d;
  model::Billboard b;
  b.id = 0;
  b.location = {0, 0};
  d.billboards.push_back(b);
  model::Trajectory exactly;
  exactly.id = 0;
  exactly.points = {{100.0, 0.0}};
  model::Trajectory beyond;
  beyond.id = 1;
  beyond.points = {{100.0001, 0.0}};
  d.trajectories = {exactly, beyond};
  InfluenceIndex index = InfluenceIndex::Build(d, 100.0);
  EXPECT_EQ(index.CoveredBy(0), (std::vector<model::TrajectoryId>{0}));
}

TEST(InfluenceIndexTest, MatchesBruteForceOnGeneratedCity) {
  common::Rng rng(3);
  gen::NycLikeConfig cfg;
  cfg.num_billboards = 40;
  cfg.num_trajectories = 120;
  model::Dataset d = gen::GenerateNycLike(cfg, &rng);
  const double lambda = 100.0;
  InfluenceIndex index = InfluenceIndex::Build(d, lambda);
  auto brute = BruteForceIncidence(d, lambda);
  ASSERT_EQ(brute.size(), static_cast<size_t>(index.num_billboards()));
  for (int32_t o = 0; o < index.num_billboards(); ++o) {
    EXPECT_EQ(index.CoveredBy(o), brute[o]) << "billboard " << o;
  }
}

TEST(InfluenceIndexTest, InfluenceOfSetUnionsDistinctTrajectories) {
  std::vector<std::vector<model::TrajectoryId>> covered{
      {0, 1, 2}, {2, 3}, {4}, {}};
  model::Dataset d = DatasetFromIncidence(covered, 5);
  InfluenceIndex index = InfluenceIndex::Build(d, kFixtureLambda);
  EXPECT_EQ(index.InfluenceOfSet({0, 1}), 4);   // {0,1,2,3}
  EXPECT_EQ(index.InfluenceOfSet({0, 1, 2}), 5);
  EXPECT_EQ(index.InfluenceOfSet({3}), 0);
  EXPECT_EQ(index.InfluenceOfSet({}), 0);
}

TEST(InfluenceIndexTest, ListsAreSorted) {
  common::Rng rng(4);
  gen::SgLikeConfig cfg;
  cfg.num_billboards = 200;
  cfg.num_trajectories = 500;
  model::Dataset d = gen::GenerateSgLike(cfg, &rng);
  InfluenceIndex index = InfluenceIndex::Build(d, 100.0);
  for (int32_t o = 0; o < index.num_billboards(); ++o) {
    const auto& list = index.CoveredBy(o);
    EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
    EXPECT_TRUE(std::adjacent_find(list.begin(), list.end()) == list.end());
  }
}

TEST(AssignBillboardCostsTest, CostTracksInfluence) {
  std::vector<std::vector<model::TrajectoryId>> covered(2);
  for (int i = 0; i < 100; ++i) covered[0].push_back(i);
  covered[1] = {100};
  model::Dataset d = DatasetFromIncidence(covered, 101);
  InfluenceIndex index = InfluenceIndex::Build(d, kFixtureLambda);
  common::Rng rng(5);
  AssignBillboardCosts(&d, index, &rng);
  // o.w = floor(tau * I(o)/10), tau in [0.9, 1.1].
  EXPECT_GE(d.billboards[0].cost, 9.0);
  EXPECT_LE(d.billboards[0].cost, 11.0);
  EXPECT_EQ(d.billboards[1].cost, 0.0);  // floor(tau * 0.1) = 0
}

TEST(ReportsTest, InfluenceDistributionIsDescendingAndNormalized) {
  std::vector<std::vector<model::TrajectoryId>> covered{
      {0, 1}, {0, 1, 2, 3}, {4}};
  model::Dataset d = DatasetFromIncidence(covered, 5);
  InfluenceIndex index = InfluenceIndex::Build(d, kFixtureLambda);
  std::vector<double> dist = InfluenceDistribution(index);
  ASSERT_EQ(dist.size(), 3u);
  EXPECT_DOUBLE_EQ(dist[0], 1.0);
  EXPECT_DOUBLE_EQ(dist[1], 0.5);
  EXPECT_DOUBLE_EQ(dist[2], 0.25);
  EXPECT_TRUE(std::is_sorted(dist.rbegin(), dist.rend()));
}

TEST(ReportsTest, ImpressionCurveIsMonotone) {
  common::Rng rng(6);
  gen::SgLikeConfig cfg;
  cfg.num_billboards = 300;
  cfg.num_trajectories = 1000;
  model::Dataset d = gen::GenerateSgLike(cfg, &rng);
  InfluenceIndex index = InfluenceIndex::Build(d, 100.0);
  std::vector<double> pct{0.0, 10.0, 25.0, 50.0, 75.0, 100.0};
  std::vector<double> curve = ImpressionCurve(index, pct);
  ASSERT_EQ(curve.size(), pct.size());
  EXPECT_DOUBLE_EQ(curve[0], 0.0);
  EXPECT_TRUE(std::is_sorted(curve.begin(), curve.end()));
  EXPECT_GT(curve.back(), 0.5);  // most rides pass at least one stop
  EXPECT_LE(curve.back(), 1.0);
}

TEST(ReportsTest, SummaryMatchesHandComputation) {
  // Influences: 10, 6, 4, 0 over 12 trajectories; board lists are
  // disjoint except o1 fully inside o0's coverage.
  std::vector<std::vector<model::TrajectoryId>> covered{
      {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, {0, 1, 2, 3, 4, 5}, {10, 11}, {}};
  model::Dataset d = DatasetFromIncidence(covered, 12);
  InfluenceIndex index = InfluenceIndex::Build(d, kFixtureLambda);
  InfluenceSummary s = SummarizeInfluence(index);
  EXPECT_EQ(s.max, 10);
  EXPECT_DOUBLE_EQ(s.mean, 18.0 / 4.0);
  // Top decile = top max(1, 4/10) = 1 board: share 10/18.
  EXPECT_DOUBLE_EQ(s.top_decile_share, 10.0 / 18.0);
  // Top half = 2 boards (o0, o1): union {0..9} -> 10/12.
  EXPECT_DOUBLE_EQ(s.coverage_ratio_top_half, 10.0 / 12.0);
}

TEST(ReportsTest, EmptyIndexIsHandled) {
  model::Dataset d;
  d.name = "empty";
  InfluenceIndex index = InfluenceIndex::Build(d, 1.0);
  EXPECT_TRUE(InfluenceDistribution(index).empty());
  InfluenceSummary s = SummarizeInfluence(index);
  EXPECT_EQ(s.max, 0);
}

}  // namespace
}  // namespace mroam::influence
