#include "eval/experiment.h"

#include <sstream>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "eval/table_printer.h"
#include "test_util.h"

namespace mroam::eval {
namespace {

using mroam::testing::IndexFromIncidence;
using mroam::testing::PaperExampleAdvertisers;
using mroam::testing::PaperExampleIncidence;

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"a", "long_header", "c"});
  table.AddRow({"xxxx", "y", "z"});
  table.AddRow({"1", "2", "3"});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Every printed row starts at the same offsets: the second column
  // begins after the widest first-column cell ("xxxx") plus 2 spaces.
  std::istringstream lines(out);
  std::string header, sep, row1, row2;
  std::getline(lines, header);
  std::getline(lines, sep);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(header.find("long_header"), row1.find("y"));
  EXPECT_EQ(header.find("long_header"), row2.find("2"));
  EXPECT_EQ(sep.find('-'), 0u);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table({"a", "b"});
  table.AddRow({"only"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TablePrinterTest, TracksRowCount) {
  TablePrinter table({"x"});
  EXPECT_EQ(table.num_rows(), 0u);
  table.AddRow({"1"});
  table.AddRow({"2"});
  EXPECT_EQ(table.num_rows(), 2u);
}

class ExperimentHarnessTest : public ::testing::Test {
 protected:
  ExperimentHarnessTest()
      : index_(IndexFromIncidence(PaperExampleIncidence(), 20, &dataset_)) {}

  model::Dataset dataset_;
  influence::InfluenceIndex index_;
};

TEST_F(ExperimentHarnessTest, MethodSubsetIsRespected) {
  ExperimentConfig config;
  config.methods = {core::Method::kGOrder, core::Method::kBls};
  config.workload.alpha = 0.5;
  config.workload.avg_individual_demand_ratio = 0.25;
  auto point = RunExperimentPoint(index_, config, "subset");
  ASSERT_TRUE(point.ok()) << point.status();
  ASSERT_EQ(point->results.size(), 2u);
  EXPECT_EQ(point->results[0].method, core::Method::kGOrder);
  EXPECT_EQ(point->results[1].method, core::Method::kBls);
}

TEST_F(ExperimentHarnessTest, PointCarriesMarketAggregates) {
  ExperimentConfig config;
  config.workload.alpha = 0.5;
  config.workload.avg_individual_demand_ratio = 0.25;
  auto point = RunExperimentPoint(index_, config, "aggregates");
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->supply, index_.TotalSupply());
  EXPECT_EQ(point->num_advertisers, 2);
  EXPECT_GT(point->global_demand, 0);
  EXPECT_GT(point->total_payment, 0.0);
  EXPECT_EQ(point->label, "aggregates");
}

TEST_F(ExperimentHarnessTest, WorkloadSeedControlsTheMarket) {
  // Payments carry continuous noise (epsilon), so different workload
  // seeds almost surely produce different totals while equal seeds must
  // reproduce them exactly.
  ExperimentConfig a;
  a.workload_seed = 1;
  a.workload.alpha = 0.5;
  a.workload.avg_individual_demand_ratio = 0.25;
  ExperimentConfig b = a;
  b.workload_seed = 2;
  auto pa = RunExperimentPoint(index_, a, "x");
  auto pb = RunExperimentPoint(index_, b, "x");
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  EXPECT_NE(pa->total_payment, pb->total_payment);

  ExperimentConfig c = a;
  auto pc = RunExperimentPoint(index_, c, "x");
  ASSERT_TRUE(pc.ok());
  EXPECT_EQ(pa->total_payment, pc->total_payment);
  EXPECT_EQ(pa->global_demand, pc->global_demand);
}

TEST_F(ExperimentHarnessTest, DeploymentCsvRoundTripsStructure) {
  std::vector<market::Advertiser> ads = PaperExampleAdvertisers();
  core::SolverConfig solver;
  solver.method = core::Method::kBls;
  core::SolveResult result = core::Solve(index_, ads, solver);

  std::string path = ::testing::TempDir() + "/mroam_deployment.csv";
  ASSERT_TRUE(
      WriteDeploymentCsv(path, ads, result, solver.regret).ok());
  auto rows = common::ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);  // header + 3 advertisers
  EXPECT_EQ((*rows)[0][0], "advertiser");
  // Influence column matches the solve result.
  for (int a = 0; a < 3; ++a) {
    EXPECT_EQ((*rows)[a + 1][3], std::to_string(result.influences[a]));
  }
}

TEST_F(ExperimentHarnessTest, DeploymentCsvRejectsMismatchedInput) {
  std::vector<market::Advertiser> ads = PaperExampleAdvertisers();
  core::SolveResult empty;
  std::string path = ::testing::TempDir() + "/mroam_bad_deployment.csv";
  EXPECT_FALSE(
      WriteDeploymentCsv(path, ads, empty, core::RegretParams{}).ok());
}

TEST_F(ExperimentHarnessTest, SeriesPrintingIncludesSupplyAndLabels) {
  ExperimentConfig config;
  config.methods = {core::Method::kGOrder};
  auto point = RunExperimentPoint(index_, config, "mypoint");
  ASSERT_TRUE(point.ok());
  std::ostringstream os;
  PrintExperimentSeries(os, "My Title", {*point});
  EXPECT_NE(os.str().find("My Title"), std::string::npos);
  EXPECT_NE(os.str().find("mypoint"), std::string::npos);
  EXPECT_NE(os.str().find("supply I*"), std::string::npos);
}

}  // namespace
}  // namespace mroam::eval
