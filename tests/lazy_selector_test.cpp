// Lazy-vs-exhaustive selection equivalence: the CELF-style LazySelector
// must reproduce the exhaustive scan's picks bit-for-bit — including tie
// cases and the impression-threshold fallback — and must do so with
// measurably fewer incidence-list walks.
#include "core/lazy_selector.h"

#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/greedy.h"
#include "core/solver.h"
#include "obs/metrics.h"
#include "test_util.h"

namespace mroam::core {
namespace {

using mroam::testing::Adv;
using mroam::testing::IndexFromIncidence;

/// Random incidence lists over a small trajectory universe. Small sizes
/// and repeated draws produce plenty of subset/duplicate structure, i.e.
/// zero-gain candidates and exact selection-rule ties.
std::vector<std::vector<model::TrajectoryId>> RandomIncidence(
    int32_t num_billboards, int32_t num_trajectories, common::Rng* rng) {
  std::vector<std::vector<model::TrajectoryId>> covered(num_billboards);
  for (auto& list : covered) {
    for (model::TrajectoryId t = 0; t < num_trajectories; ++t) {
      if (rng->Bernoulli(0.3)) list.push_back(t);
    }
  }
  return covered;
}

std::vector<market::Advertiser> RandomAdvertisers(int32_t count,
                                                  int64_t max_demand,
                                                  common::Rng* rng) {
  std::vector<market::Advertiser> ads;
  for (int32_t a = 0; a < count; ++a) {
    ads.push_back(Adv(a, rng->UniformInt(1, max_demand),
                      static_cast<double>(rng->UniformInt(1, 50))));
  }
  return ads;
}

void ExpectIdenticalDeployments(const Assignment& lazy,
                                const Assignment& exhaustive) {
  ASSERT_EQ(lazy.num_advertisers(), exhaustive.num_advertisers());
  for (int32_t a = 0; a < lazy.num_advertisers(); ++a) {
    // Identical pick sequences imply identical (ordered) per-advertiser
    // lists, so compare the raw vectors, not sorted copies.
    EXPECT_EQ(lazy.BillboardsOf(a), exhaustive.BillboardsOf(a))
        << "advertiser " << a;
    EXPECT_EQ(lazy.InfluenceOf(a), exhaustive.InfluenceOf(a));
  }
  EXPECT_EQ(lazy.TotalRegret(), exhaustive.TotalRegret());  // bitwise
}

TEST(LazySelectorTest, MatchesExhaustiveAcrossRandomInstances) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    common::Rng rng(seed);
    model::Dataset d;
    auto index =
        IndexFromIncidence(RandomIncidence(25, 12, &rng), 12, &d);
    auto ads = RandomAdvertisers(5, 15, &rng);
    for (uint16_t threshold : {uint16_t{1}, uint16_t{2}}) {
      for (double gamma : {0.0, 0.5, 1.0}) {
        Assignment lazy(&index, ads, RegretParams{gamma}, threshold);
        Assignment naive(&index, ads, RegretParams{gamma}, threshold);
        BudgetEffectiveGreedy(&lazy, /*lazy_selection=*/true);
        BudgetEffectiveGreedy(&naive, /*lazy_selection=*/false);
        lazy.VerifyInvariants();
        ExpectIdenticalDeployments(lazy, naive);

        Assignment lazy_sync(&index, ads, RegretParams{gamma}, threshold);
        Assignment naive_sync(&index, ads, RegretParams{gamma}, threshold);
        SynchronousGreedy(&lazy_sync, /*lazy_selection=*/true);
        SynchronousGreedy(&naive_sync, /*lazy_selection=*/false);
        lazy_sync.VerifyInvariants();
        ExpectIdenticalDeployments(lazy_sync, naive_sync);
      }
    }
  }
}

TEST(LazySelectorTest, MatchesExhaustiveUnderInterleavedMutations) {
  // One selector living across a random mutation sequence: every epoch
  // invalidation path (own picks, other advertisers' picks, releases
  // re-feeding the free pool, counter shrinks) must leave its answers
  // equal to a fresh exhaustive scan.
  for (uint64_t seed = 100; seed < 110; ++seed) {
    common::Rng rng(seed);
    model::Dataset d;
    auto index =
        IndexFromIncidence(RandomIncidence(20, 10, &rng), 10, &d);
    auto ads = RandomAdvertisers(4, 12, &rng);
    Assignment s(&index, ads, RegretParams{0.5});
    LazySelector selector(&s);
    ASSERT_TRUE(selector.lazy_active());
    for (int step = 0; step < 120; ++step) {
      auto a = static_cast<market::AdvertiserId>(
          rng.UniformU64(ads.size()));
      model::BillboardId picked = selector.BestBillboard(a);
      EXPECT_EQ(picked, BestBillboardFor(s, a)) << "step " << step;
      if (picked != model::kInvalidBillboard && rng.Bernoulli(0.8)) {
        s.Assign(picked, a);
      } else if (!s.BillboardsOf(a).empty()) {
        s.Release(s.BillboardsOf(a).front());
      }
    }
  }
}

TEST(LazySelectorTest, ExactTiesResolveIdentically) {
  // Four byte-identical billboards: ratio and gain ratio tie exactly, so
  // both engines must walk the full tie-break chain down to the id.
  model::Dataset d;
  auto index = IndexFromIncidence(
      {{0, 1}, {0, 1}, {0, 1}, {0, 1}, {2}}, 3, &d);
  Assignment s(&index, {Adv(0, 3, 9.0)}, RegretParams{0.5});
  LazySelector selector(&s);
  EXPECT_EQ(selector.BestBillboard(0), BestBillboardFor(s, 0));
  EXPECT_EQ(selector.BestBillboard(0), 0);
  s.Assign(0, 0);
  // Boards 1-3 now have zero gain; only o4 can help.
  EXPECT_EQ(selector.BestBillboard(0), 4);
  EXPECT_EQ(BestBillboardFor(s, 0), 4);
}

TEST(LazySelectorTest, ImpressionThresholdFallsBackToExhaustive) {
  // Threshold 2 breaks gain monotonicity, so the lazy engine must
  // deactivate itself rather than trust cached upper bounds.
  model::Dataset d;
  auto index = IndexFromIncidence({{0, 1}, {0, 1}, {2}}, 3, &d);
  Assignment s(&index, {Adv(0, 2, 4.0)}, RegretParams{0.5},
               /*impression_threshold=*/2);
  LazySelector selector(&s);
  EXPECT_FALSE(selector.lazy_active());
  EXPECT_EQ(selector.BestBillboard(0), BestBillboardFor(s, 0));
}

TEST(LazySelectorTest, SolveIsIdenticalAcrossLazyAndThreadCounts) {
  common::Rng rng(7);
  model::Dataset d;
  auto index = IndexFromIncidence(RandomIncidence(30, 15, &rng), 15, &d);
  auto ads = RandomAdvertisers(6, 20, &rng);

  auto run = [&](bool lazy, int32_t threads, Method method) {
    SolverConfig config;
    config.method = method;
    config.seed = 11;
    config.local_search.restarts = 2;
    config.local_search.lazy_selection = lazy;
    config.local_search.num_threads = threads;
    return Solve(index, ads, config);
  };

  for (Method method : {Method::kGOrder, Method::kGGlobal, Method::kBls}) {
    SolveResult reference = run(true, 1, method);
    for (bool lazy : {true, false}) {
      for (int32_t threads : {1, 4}) {
        SolveResult got = run(lazy, threads, method);
        EXPECT_EQ(got.sets, reference.sets)
            << MethodName(method) << " lazy=" << lazy
            << " threads=" << threads;
        EXPECT_EQ(got.breakdown.total, reference.breakdown.total);
      }
    }
  }
}

TEST(LazySelectorTest, LazyHalvesExactEvaluations) {
  // The acceptance bar of this engine: on a greedy-heavy run the lazy
  // path must do at most half the incidence-list walks of the exhaustive
  // scan (micro_algorithms measures the same counters at bench scale).
  common::Rng rng(3);
  model::Dataset d;
  auto index =
      IndexFromIncidence(RandomIncidence(120, 200, &rng), 200, &d);
  auto ads = RandomAdvertisers(10, 150, &rng);

  auto deltas_of = [&](bool lazy) {
    const int64_t before =
        obs::MetricsRegistry::Global().Snapshot().CounterOf("greedy.deltas");
    Assignment s(&index, ads, RegretParams{0.5});
    BudgetEffectiveGreedy(&s, lazy);
    return obs::MetricsRegistry::Global().Snapshot().CounterOf(
               "greedy.deltas") -
           before;
  };

  const int64_t lazy_deltas = deltas_of(true);
  const int64_t naive_deltas = deltas_of(false);
  EXPECT_GT(lazy_deltas, 0);
  EXPECT_LE(2 * lazy_deltas, naive_deltas)
      << "lazy selection no longer prunes at least half the evaluations";
}

}  // namespace
}  // namespace mroam::core
