#include "core/solver.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "test_util.h"

namespace mroam::core {
namespace {

using mroam::testing::IndexFromIncidence;
using mroam::testing::PaperExampleAdvertisers;
using mroam::testing::PaperExampleIncidence;

TEST(MethodTest, NamesAndEnumeration) {
  EXPECT_STREQ(MethodName(Method::kGOrder), "G-Order");
  EXPECT_STREQ(MethodName(Method::kGGlobal), "G-Global");
  EXPECT_STREQ(MethodName(Method::kAls), "ALS");
  EXPECT_STREQ(MethodName(Method::kBls), "BLS");
  EXPECT_EQ(AllMethods().size(), 4u);
}

class SolverTest : public ::testing::Test {
 protected:
  SolverTest()
      : index_(IndexFromIncidence(PaperExampleIncidence(), 20, &dataset_)) {}

  model::Dataset dataset_;
  influence::InfluenceIndex index_;
};

TEST_F(SolverTest, AllMethodsProduceConsistentResults) {
  for (Method method : AllMethods()) {
    SolverConfig config;
    config.method = method;
    SolveResult result = Solve(index_, PaperExampleAdvertisers(), config);

    ASSERT_EQ(result.sets.size(), 3u);
    ASSERT_EQ(result.influences.size(), 3u);

    // Sets are disjoint and within range.
    std::set<model::BillboardId> seen;
    for (const auto& set : result.sets) {
      for (model::BillboardId o : set) {
        EXPECT_GE(o, 0);
        EXPECT_LT(o, index_.num_billboards());
        EXPECT_TRUE(seen.insert(o).second)
            << MethodName(method) << ": billboard " << o << " assigned twice";
      }
    }

    // Reported influence matches an independent union count.
    for (size_t a = 0; a < result.sets.size(); ++a) {
      EXPECT_EQ(result.influences[a], index_.InfluenceOfSet(result.sets[a]))
          << MethodName(method) << " advertiser " << a;
    }

    // Breakdown is internally consistent.
    EXPECT_NEAR(result.breakdown.total,
                result.breakdown.excessive +
                    result.breakdown.unsatisfied_penalty,
                1e-9);
    EXPECT_GE(result.breakdown.total, -1e-9);
    EXPECT_EQ(result.breakdown.advertiser_count, 3);
    EXPECT_GE(result.seconds, 0.0);
  }
}

TEST_F(SolverTest, DeterministicAcrossRunsWithSameSeed) {
  for (Method method : {Method::kAls, Method::kBls}) {
    SolverConfig config;
    config.method = method;
    config.seed = 99;
    SolveResult a = Solve(index_, PaperExampleAdvertisers(), config);
    SolveResult b = Solve(index_, PaperExampleAdvertisers(), config);
    EXPECT_DOUBLE_EQ(a.breakdown.total, b.breakdown.total);
    EXPECT_EQ(a.influences, b.influences);
  }
}

TEST_F(SolverTest, LocalSearchMethodsBeatOrMatchGGlobal) {
  SolverConfig global_cfg;
  global_cfg.method = Method::kGGlobal;
  double global = Solve(index_, PaperExampleAdvertisers(), global_cfg)
                      .breakdown.total;
  for (Method method : {Method::kAls, Method::kBls}) {
    SolverConfig config;
    config.method = method;
    double regret =
        Solve(index_, PaperExampleAdvertisers(), config).breakdown.total;
    EXPECT_LE(regret, global + 1e-9) << MethodName(method);
  }
}

TEST_F(SolverTest, BlsSolvesThePaperExampleExactly) {
  SolverConfig config;
  config.method = Method::kBls;
  SolveResult result = Solve(index_, PaperExampleAdvertisers(), config);
  EXPECT_DOUBLE_EQ(result.breakdown.total, 0.0);
  EXPECT_EQ(result.breakdown.satisfied_count, 3);
}

TEST_F(SolverTest, SearchStatsPopulatedForLocalSearchOnly) {
  SolverConfig greedy_cfg;
  greedy_cfg.method = Method::kGGlobal;
  EXPECT_EQ(Solve(index_, PaperExampleAdvertisers(), greedy_cfg)
                .search_stats.deltas_evaluated,
            0);
  SolverConfig bls_cfg;
  bls_cfg.method = Method::kBls;
  EXPECT_GT(Solve(index_, PaperExampleAdvertisers(), bls_cfg)
                .search_stats.deltas_evaluated,
            0);
}

TEST_F(SolverTest, GammaFlowsThroughToTheObjective) {
  // With gamma = 1 and an unsatisfiable market the regret is lower than
  // with gamma = 0 (partial payments soften the penalty).
  std::vector<market::Advertiser> huge = {
      mroam::testing::Adv(0, 1000, 100.0)};
  SolverConfig strict;
  strict.method = Method::kGGlobal;
  strict.regret.gamma = 0.0;
  SolverConfig lenient = strict;
  lenient.regret.gamma = 1.0;
  double strict_regret = Solve(index_, huge, strict).breakdown.total;
  double lenient_regret = Solve(index_, huge, lenient).breakdown.total;
  EXPECT_DOUBLE_EQ(strict_regret, 100.0);
  EXPECT_LT(lenient_regret, strict_regret);
}

}  // namespace
}  // namespace mroam::core
