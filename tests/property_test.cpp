// Property-based tests of the solver stack: hardness-reduction instances,
// duality, local-maximum guarantees, and random-instance invariants.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/greedy.h"
#include "core/local_search.h"
#include "core/solver.h"
#include "market/workload.h"
#include "test_util.h"

namespace mroam::core {
namespace {

using mroam::testing::Adv;
using mroam::testing::IndexFromIncidence;

// ---------------------------------------------------------------------------
// N3DM-shaped instances (the paper's hardness reduction, §4): three groups
// of billboards with influences c + x_i, 3c + y_i, 9c + z_i and advertisers
// all demanding b + 13c. When the underlying N3DM instance has a perfect
// matching, zero regret is achievable by construction. BLS with restarts
// should find it on small instances.
// ---------------------------------------------------------------------------

struct N3dmInstance {
  std::vector<std::vector<model::TrajectoryId>> covered;
  int32_t num_trajectories = 0;
  std::vector<market::Advertiser> advertisers;
};

N3dmInstance BuildN3dm(const std::vector<int>& xs, const std::vector<int>& ys,
                       const std::vector<int>& zs, int b, int c) {
  N3dmInstance inst;
  int32_t next_traj = 0;
  auto add_billboard = [&](int influence) {
    std::vector<model::TrajectoryId> list;
    for (int k = 0; k < influence; ++k) list.push_back(next_traj++);
    inst.covered.push_back(std::move(list));
  };
  for (int x : xs) add_billboard(c + x);
  for (int y : ys) add_billboard(3 * c + y);
  for (int z : zs) add_billboard(9 * c + z);
  inst.num_trajectories = next_traj;
  const int64_t demand = b + 13 * c;
  for (size_t i = 0; i < xs.size(); ++i) {
    inst.advertisers.push_back(
        Adv(static_cast<market::AdvertiserId>(i), demand,
            static_cast<double>(demand)));
  }
  return inst;
}

TEST(N3dmTest, ZeroRegretPlanExistsAndIsRecognized) {
  // Matching: (1,5,9), (2,6,7), (3,4,8); b = 15.
  N3dmInstance inst = BuildN3dm({1, 2, 3}, {5, 6, 4}, {9, 7, 8}, 15, 20);
  model::Dataset dataset;
  auto index =
      IndexFromIncidence(inst.covered, inst.num_trajectories, &dataset);
  Assignment s(&index, inst.advertisers, RegretParams{0.0});
  // Hand-assign the known matching: advertiser i gets (x_i, y_i, z_i)
  // where the triples above sum to 15.
  s.Assign(0, 0);  // x=1
  s.Assign(3, 0);  // y=5
  s.Assign(6, 0);  // z=9
  s.Assign(1, 1);  // x=2
  s.Assign(4, 1);  // y=6
  s.Assign(7, 1);  // z=7
  s.Assign(2, 2);  // x=3
  s.Assign(5, 2);  // y=4
  s.Assign(8, 2);  // z=8
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 0.0);
  s.VerifyInvariants();
}

TEST(N3dmTest, BlsSolvesSmallMatchingInstances) {
  N3dmInstance inst = BuildN3dm({1, 2, 3}, {5, 6, 4}, {9, 7, 8}, 15, 20);
  model::Dataset dataset;
  auto index =
      IndexFromIncidence(inst.covered, inst.num_trajectories, &dataset);
  SolverConfig config;
  config.method = Method::kBls;
  config.regret.gamma = 0.0;
  config.local_search.restarts = 8;
  config.seed = 17;
  SolveResult result = Solve(index, inst.advertisers, config);
  EXPECT_DOUBLE_EQ(result.breakdown.total, 0.0);
  EXPECT_EQ(result.breakdown.satisfied_count, 3);
}

TEST(N3dmTest, NoMatchingMeansPositiveRegretForEveryMethod) {
  // An unmatchable instance: b = 16 but z = 12 would need x + y = 4 while
  // min(x) + min(y) = 5, so no perfect matching exists. Total supply still
  // equals total demand (48 = 3 * 16 + residuals), so any plan must over-
  // and under-shoot somewhere, and c = 20 is large enough that every
  // zero-regret group would have to be one billboard from each tier.
  N3dmInstance inst = BuildN3dm({1, 2, 3}, {4, 5, 6}, {7, 8, 12}, 16, 20);
  model::Dataset dataset;
  auto index =
      IndexFromIncidence(inst.covered, inst.num_trajectories, &dataset);
  for (Method method : AllMethods()) {
    SolverConfig config;
    config.method = method;
    config.regret.gamma = 0.0;
    SolveResult result = Solve(index, inst.advertisers, config);
    EXPECT_GT(result.breakdown.total, 0.0) << MethodName(method);
  }
}

// ---------------------------------------------------------------------------
// Theorem 2 premise: after BLS, the plan is a (1+r)-approximate local
// maximum of the dual R' (Definition 6.1) for the single-advertiser case
// with gamma = 1 (where min-R and max-R' coincide exactly).
// ---------------------------------------------------------------------------

class DualLocalMaxTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DualLocalMaxTest, BlsOutputIsApproximateLocalMaximumOfDual) {
  common::Rng rng(GetParam());
  const int32_t num_billboards = 10;
  const int32_t num_trajectories = 40;
  std::vector<std::vector<model::TrajectoryId>> covered(num_billboards);
  for (auto& list : covered) {
    for (int32_t t = 0; t < num_trajectories; ++t) {
      if (rng.Bernoulli(0.2)) list.push_back(t);
    }
  }
  model::Dataset dataset;
  auto index = IndexFromIncidence(covered, num_trajectories, &dataset);
  std::vector<market::Advertiser> ads = {Adv(0, 18, 18.0)};

  const double r = 0.01;
  Assignment s(&index, ads, RegretParams{1.0});
  SynchronousGreedy(&s);
  LocalSearchConfig config;
  config.improvement_ratio = r;
  common::Rng search_rng(GetParam() + 1);
  BillboardDrivenLocalSearch(&s, config, &search_rng);

  const double dual = s.DualOf(0);
  // Removal neighbors: (1+r) R'(S) >= R'(S \ {o}).
  for (model::BillboardId o : s.BillboardsOf(0)) {
    int64_t influence_without = s.InfluenceOf(0) - s.MarginalLoss(0, o);
    double neighbor = DualRevenue(ads[0], influence_without);
    EXPECT_GE((1.0 + r) * dual, neighbor - 1e-9) << "remove " << o;
  }
  // Addition neighbors: (1+r) R'(S) >= R'(S ∪ {o}).
  for (model::BillboardId o : s.FreeBillboards()) {
    int64_t influence_with = s.InfluenceOf(0) + s.MarginalGain(0, o);
    double neighbor = DualRevenue(ads[0], influence_with);
    EXPECT_GE((1.0 + r) * dual, neighbor - 1e-9) << "add " << o;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualLocalMaxTest,
                         ::testing::Values(101, 102, 103, 104, 105, 106));

// ---------------------------------------------------------------------------
// Random-instance sweeps: structural invariants of every method.
// ---------------------------------------------------------------------------

struct RandomInstance {
  model::Dataset dataset;
  std::vector<std::vector<model::TrajectoryId>> covered;
  std::vector<market::Advertiser> advertisers;
};

RandomInstance MakeRandomInstance(uint64_t seed) {
  common::Rng rng(seed);
  RandomInstance inst;
  const int32_t num_billboards = 3 + static_cast<int32_t>(rng.UniformU64(15));
  const int32_t num_trajectories = 20 + static_cast<int32_t>(rng.UniformU64(40));
  inst.covered.resize(num_billboards);
  for (auto& list : inst.covered) {
    for (int32_t t = 0; t < num_trajectories; ++t) {
      if (rng.Bernoulli(0.2)) list.push_back(t);
    }
  }
  const int32_t num_ads = 1 + static_cast<int32_t>(rng.UniformU64(5));
  for (int32_t a = 0; a < num_ads; ++a) {
    int64_t demand = 1 + static_cast<int64_t>(rng.UniformU64(num_trajectories));
    double payment = std::max(1.0, std::floor(static_cast<double>(demand) *
                                              rng.UniformDouble(0.9, 1.1)));
    inst.advertisers.push_back(
        Adv(a, demand, payment));
  }
  return inst;
}

class RandomInstanceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomInstanceTest, AllMethodsKeepStructuralInvariants) {
  RandomInstance inst = MakeRandomInstance(GetParam());
  auto index = IndexFromIncidence(
      inst.covered, 64, &inst.dataset);
  double payment_sum = market::TotalPayment(inst.advertisers);
  for (Method method : AllMethods()) {
    SolverConfig config;
    config.method = method;
    config.regret.gamma = 0.5;
    config.local_search.restarts = 2;
    config.seed = GetParam() * 31 + 7;
    SolveResult result = Solve(index, inst.advertisers, config);

    // Disjoint sets.
    std::set<model::BillboardId> seen;
    for (const auto& set : result.sets) {
      for (model::BillboardId o : set) {
        EXPECT_TRUE(seen.insert(o).second);
      }
    }
    // Influence matches union counting.
    for (size_t a = 0; a < result.sets.size(); ++a) {
      EXPECT_EQ(result.influences[a], index.InfluenceOfSet(result.sets[a]));
    }
    // Unsatisfied penalty can never exceed the payment sum.
    EXPECT_LE(result.breakdown.unsatisfied_penalty, payment_sum + 1e-9);
    EXPECT_GE(result.breakdown.total, -1e-9);
  }
}

TEST_P(RandomInstanceTest, LocalSearchMethodsNeverLoseToGGlobal) {
  RandomInstance inst = MakeRandomInstance(GetParam() + 5000);
  auto index = IndexFromIncidence(inst.covered, 64, &inst.dataset);
  SolverConfig global_cfg;
  global_cfg.method = Method::kGGlobal;
  double global =
      Solve(index, inst.advertisers, global_cfg).breakdown.total;
  for (Method method : {Method::kAls, Method::kBls}) {
    SolverConfig config;
    config.method = method;
    config.local_search.restarts = 2;
    config.seed = GetParam();
    double regret = Solve(index, inst.advertisers, config).breakdown.total;
    EXPECT_LE(regret, global + 1e-9) << MethodName(method);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceTest,
                         ::testing::Range<uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// Objective-shape property: total regret of the returned plans is bounded
// below by the LP-ish lower bound |I^A - I*|-scaled penalty when gamma = 1
// and coverage is disjoint (supply is exactly partitionable).
// ---------------------------------------------------------------------------

TEST(DisjointSupplyTest, GammaOneRegretAtLeastDemandSupplyGap) {
  // 4 disjoint unit billboards, one advertiser demanding 6 at payment 6:
  // even a perfect plan leaves demand 2 unmet -> regret >= 6 * (1 - 4/6).
  model::Dataset d;
  auto index = IndexFromIncidence({{0}, {1}, {2}, {3}}, 4, &d);
  std::vector<market::Advertiser> ads = {Adv(0, 6, 6.0)};
  for (Method method : AllMethods()) {
    SolverConfig config;
    config.method = method;
    config.regret.gamma = 1.0;
    double regret = Solve(index, ads, config).breakdown.total;
    EXPECT_GE(regret, 6.0 * (1.0 - 4.0 / 6.0) - 1e-9) << MethodName(method);
  }
}

}  // namespace
}  // namespace mroam::core
