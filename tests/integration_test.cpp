// End-to-end pipeline tests on small synthetic cities: generate ->
// influence index -> workload -> all four solvers -> evaluation, checking
// the qualitative relationships the paper reports (§7.2).
#include <sstream>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "eval/experiment.h"
#include "gen/city_generators.h"
#include "influence/influence_index.h"

namespace mroam {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    common::Rng nyc_rng(1001), sg_rng(2002);
    gen::NycLikeConfig nyc_cfg;
    nyc_cfg.num_billboards = 250;
    nyc_cfg.num_trajectories = 2500;
    nyc_ = new model::Dataset(gen::GenerateNycLike(nyc_cfg, &nyc_rng));
    nyc_index_ = new influence::InfluenceIndex(
        influence::InfluenceIndex::Build(*nyc_, 100.0));

    gen::SgLikeConfig sg_cfg;
    sg_cfg.num_billboards = 500;
    sg_cfg.num_trajectories = 3000;
    sg_ = new model::Dataset(gen::GenerateSgLike(sg_cfg, &sg_rng));
    sg_index_ = new influence::InfluenceIndex(
        influence::InfluenceIndex::Build(*sg_, 100.0));
  }

  static void TearDownTestSuite() {
    delete nyc_index_;
    delete nyc_;
    delete sg_index_;
    delete sg_;
    nyc_index_ = nullptr;
    nyc_ = nullptr;
    sg_index_ = nullptr;
    sg_ = nullptr;
  }

  static eval::ExperimentConfig DefaultConfig() {
    eval::ExperimentConfig config;
    config.workload.alpha = 1.0;
    config.workload.avg_individual_demand_ratio = 0.05;
    config.regret.gamma = 0.5;
    config.local_search.restarts = 2;
    config.local_search.max_exchange_candidates = 300;
    config.local_search.max_sweeps = 10;
    return config;
  }

  static model::Dataset* nyc_;
  static influence::InfluenceIndex* nyc_index_;
  static model::Dataset* sg_;
  static influence::InfluenceIndex* sg_index_;
};

model::Dataset* PipelineTest::nyc_ = nullptr;
influence::InfluenceIndex* PipelineTest::nyc_index_ = nullptr;
model::Dataset* PipelineTest::sg_ = nullptr;
influence::InfluenceIndex* PipelineTest::sg_index_ = nullptr;

TEST_F(PipelineTest, SuppliesArePositive) {
  EXPECT_GT(nyc_index_->TotalSupply(), 0);
  EXPECT_GT(sg_index_->TotalSupply(), 0);
}

TEST_F(PipelineTest, DefaultPointRunsAllMethods) {
  auto point = eval::RunExperimentPoint(*nyc_index_, DefaultConfig(), "a=1");
  ASSERT_TRUE(point.ok()) << point.status();
  ASSERT_EQ(point->results.size(), 4u);
  EXPECT_EQ(point->num_advertisers, 20);
  for (const eval::MethodResult& r : point->results) {
    EXPECT_GE(r.breakdown.total, 0.0);
    EXPECT_EQ(r.breakdown.advertiser_count, 20);
    EXPECT_GE(r.seconds, 0.0);
  }
}

TEST_F(PipelineTest, LocalSearchOutperformsGreedyOnNyc) {
  auto point = eval::RunExperimentPoint(*nyc_index_, DefaultConfig(), "x");
  ASSERT_TRUE(point.ok());
  double g_global = 0.0, als = 0.0, bls = 0.0;
  for (const eval::MethodResult& r : point->results) {
    if (r.method == core::Method::kGGlobal) g_global = r.breakdown.total;
    if (r.method == core::Method::kAls) als = r.breakdown.total;
    if (r.method == core::Method::kBls) bls = r.breakdown.total;
  }
  EXPECT_LE(als, g_global + 1e-6);
  EXPECT_LE(bls, g_global + 1e-6);
}

TEST_F(PipelineTest, LowAlphaMeansEveryoneSatisfiedOnSg) {
  // Paper Case 1/2: at low global demand every advertiser can be served,
  // so the unsatisfied penalty vanishes for the local-search methods.
  eval::ExperimentConfig config = DefaultConfig();
  config.workload.alpha = 0.4;
  auto point = eval::RunExperimentPoint(*sg_index_, config, "a=0.4");
  ASSERT_TRUE(point.ok());
  for (const eval::MethodResult& r : point->results) {
    if (r.method == core::Method::kBls) {
      EXPECT_GE(r.breakdown.satisfied_count,
                r.breakdown.advertiser_count - 1)
          << "BLS should satisfy (almost) everyone at alpha=0.4";
    }
  }
}

TEST_F(PipelineTest, ExcessiveAlphaShiftsRegretToUnsatisfiedPenalty) {
  // Paper Case 3/4: when demand exceeds supply, the unsatisfied penalty
  // dominates the regret decomposition.
  eval::ExperimentConfig config = DefaultConfig();
  config.workload.alpha = 1.2;
  auto point = eval::RunExperimentPoint(*nyc_index_, config, "a=1.2");
  ASSERT_TRUE(point.ok());
  for (const eval::MethodResult& r : point->results) {
    EXPECT_LT(r.breakdown.satisfied_count, r.breakdown.advertiser_count);
    EXPECT_GT(r.breakdown.unsatisfied_penalty, r.breakdown.excessive)
        << core::MethodName(r.method);
  }
}

TEST_F(PipelineTest, GammaOnlySoftensAFixedPlansRegret) {
  // For any FIXED deployment, increasing gamma can only lower the regret
  // (it discounts the unsatisfied penalty and leaves excess untouched).
  // Across re-solves the heuristics may land elsewhere, so the guarantee
  // — and this test — is about a fixed plan.
  common::Rng rng(5);
  market::WorkloadConfig workload;
  workload.alpha = 1.2;
  auto ads = market::GenerateAdvertisers(nyc_index_->TotalSupply(), workload,
                                         &rng);
  ASSERT_TRUE(ads.ok());
  core::SolverConfig solver;
  solver.method = core::Method::kGGlobal;
  solver.regret.gamma = 0.5;
  core::SolveResult plan = core::Solve(*nyc_index_, *ads, solver);

  double prev_total = -1.0;
  bool first = true;
  for (double gamma : {1.0, 0.75, 0.5, 0.25, 0.0}) {
    core::RegretParams params{gamma};
    double total = 0.0;
    for (size_t a = 0; a < ads->size(); ++a) {
      total += core::Regret((*ads)[a], plan.influences[a], params);
    }
    if (!first) {
      EXPECT_GE(total, prev_total - 1e-9) << "gamma=" << gamma;
    }
    first = false;
    prev_total = total;
  }
}

TEST_F(PipelineTest, SeriesPrintingAndCsvExport) {
  eval::ExperimentConfig config = DefaultConfig();
  config.methods = {core::Method::kGGlobal};
  std::vector<eval::ExperimentPoint> points;
  for (double alpha : {0.4, 1.0}) {
    config.workload.alpha = alpha;
    auto point = eval::RunExperimentPoint(*sg_index_, config,
                                          "alpha=" + std::to_string(alpha));
    ASSERT_TRUE(point.ok());
    points.push_back(std::move(point).value());
  }
  std::ostringstream os;
  eval::PrintExperimentSeries(os, "test series", points);
  EXPECT_NE(os.str().find("G-Global"), std::string::npos);
  EXPECT_NE(os.str().find("regret"), std::string::npos);

  std::string csv_path = ::testing::TempDir() + "/mroam_series.csv";
  ASSERT_TRUE(eval::WriteExperimentSeriesCsv(csv_path, points).ok());
  auto rows = common::ReadCsvFile(csv_path);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // header + 2 points x 1 method
}

TEST_F(PipelineTest, InvalidWorkloadConfigSurfacesError) {
  eval::ExperimentConfig config = DefaultConfig();
  config.workload.alpha = -1.0;
  auto point = eval::RunExperimentPoint(*nyc_index_, config, "bad");
  EXPECT_FALSE(point.ok());
}

}  // namespace
}  // namespace mroam
