// Odds and ends: the umbrella header, the stopwatch, logging levels, and
// InfluenceIndex::FromIncidence validation.
#include "mroam.h"  // the umbrella header must compile standalone

#include <gtest/gtest.h>

#include "common/stopwatch.h"

namespace mroam {
namespace {

TEST(UmbrellaHeaderTest, ExposesTheMainEntryPoints) {
  // Touch one symbol from each major module to prove the include set.
  common::Rng rng(1);
  (void)rng.Next64();
  EXPECT_STREQ(core::MethodName(core::Method::kBls), "BLS");
  EXPECT_STREQ(core::ReplanPolicyName(core::ReplanPolicy::kLockExisting),
               "lock-existing");
  gen::NycLikeConfig nyc;
  EXPECT_EQ(nyc.num_billboards, 1462);
  temporal::TimeWindow window{0.0, 10.0};
  EXPECT_TRUE(window.Overlaps(5.0, 1.0));
  prep::IngestConfig ingest;
  EXPECT_TRUE(ingest.skip_bad_rows);
  EXPECT_EQ(eval::AdvertiserColor(0).front(), '#');
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  common::Stopwatch watch;
  double first = watch.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  // Busy-wait a tiny bit; elapsed must be monotone.
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sink, 0.0);
  double second = watch.ElapsedSeconds();
  EXPECT_GE(second, first);
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 20.0 + 1.0);
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), second + 1.0);
}

TEST(LoggingTest, MinLevelRoundTrips) {
  common::LogLevel before = common::MinLogLevel();
  common::SetMinLogLevel(common::LogLevel::kError);
  EXPECT_EQ(common::MinLogLevel(), common::LogLevel::kError);
  common::SetMinLogLevel(before);
}

TEST(FromIncidenceTest, BuildsAValidIndex) {
  auto index = influence::InfluenceIndex::FromIncidence(
      {{0, 2}, {}, {1}}, 3, 42.0);
  EXPECT_EQ(index.num_billboards(), 3);
  EXPECT_EQ(index.num_trajectories(), 3);
  EXPECT_EQ(index.TotalSupply(), 3);
  EXPECT_DOUBLE_EQ(index.lambda(), 42.0);
  EXPECT_EQ(index.InfluenceOf(0), 2);
  EXPECT_EQ(index.InfluenceOfSet({0, 2}), 3);
}

TEST(FromIncidenceTest, RejectsUnsortedLists) {
  EXPECT_DEATH(influence::InfluenceIndex::FromIncidence({{2, 0}}, 3, 1.0),
               "Check failed");
}

TEST(FromIncidenceTest, RejectsDuplicateEntries) {
  EXPECT_DEATH(influence::InfluenceIndex::FromIncidence({{1, 1}}, 3, 1.0),
               "Check failed");
}

TEST(FromIncidenceTest, RejectsOutOfRangeTrajectories) {
  EXPECT_DEATH(influence::InfluenceIndex::FromIncidence({{0, 5}}, 3, 1.0),
               "Check failed");
}

}  // namespace
}  // namespace mroam
