#include "gen/city_generators.h"

#include <gtest/gtest.h>

#include "geo/grid_index.h"
#include "influence/influence_index.h"
#include "influence/reports.h"
#include "model/dataset.h"

namespace mroam::gen {
namespace {

NycLikeConfig SmallNyc() {
  NycLikeConfig cfg;
  cfg.num_billboards = 300;
  cfg.num_trajectories = 3000;
  return cfg;
}

SgLikeConfig SmallSg() {
  SgLikeConfig cfg;
  cfg.num_billboards = 800;
  cfg.num_trajectories = 4000;
  return cfg;
}

TEST(NycGeneratorTest, ProducesRequestedSizesAndValidDataset) {
  common::Rng rng(1);
  model::Dataset d = GenerateNycLike(SmallNyc(), &rng);
  EXPECT_EQ(d.billboards.size(), 300u);
  EXPECT_EQ(d.trajectories.size(), 3000u);
  EXPECT_EQ(model::ValidateDataset(d), "");
  EXPECT_EQ(d.name, "NYC-like");
}

TEST(NycGeneratorTest, DeterministicGivenSeed) {
  common::Rng rng1(5), rng2(5);
  model::Dataset a = GenerateNycLike(SmallNyc(), &rng1);
  model::Dataset b = GenerateNycLike(SmallNyc(), &rng2);
  ASSERT_EQ(a.trajectories.size(), b.trajectories.size());
  for (size_t i = 0; i < a.trajectories.size(); i += 97) {
    EXPECT_EQ(a.trajectories[i].points.size(),
              b.trajectories[i].points.size());
    EXPECT_EQ(a.trajectories[i].points[0], b.trajectories[i].points[0]);
  }
  for (size_t i = 0; i < a.billboards.size(); i += 13) {
    EXPECT_EQ(a.billboards[i].location, b.billboards[i].location);
  }
}

TEST(NycGeneratorTest, TripLengthsNearPaperMean) {
  common::Rng rng(2);
  model::Dataset d = GenerateNycLike(SmallNyc(), &rng);
  model::DatasetStats stats = model::ComputeStats(d);
  // Table 5: NYC avg trip 2.9 km. Accept a generous band.
  EXPECT_GT(stats.avg_distance_km, 1.5);
  EXPECT_LT(stats.avg_distance_km, 4.5);
  EXPECT_GT(stats.avg_travel_time_sec, 250);
  EXPECT_LT(stats.avg_travel_time_sec, 1000);
}

TEST(NycGeneratorTest, StartTimesSpanTheDayWithRushPeaks) {
  common::Rng rng(6);
  model::Dataset d = GenerateNycLike(SmallNyc(), &rng);
  int in_day = 0, morning = 0, night = 0;
  for (const model::Trajectory& t : d.trajectories) {
    if (t.start_time_seconds >= 0.0 && t.start_time_seconds < 86400.0) {
      ++in_day;
    }
    if (t.start_time_seconds >= 7 * 3600.0 &&
        t.start_time_seconds < 10 * 3600.0) {
      ++morning;
    }
    if (t.start_time_seconds >= 1 * 3600.0 &&
        t.start_time_seconds < 4 * 3600.0) {
      ++night;
    }
  }
  EXPECT_EQ(in_day, static_cast<int>(d.trajectories.size()));
  // The 07-10h rush window is far busier than a same-length night window.
  EXPECT_GT(morning, 2 * night);
}

TEST(NycGeneratorTest, PointsStayInsideCity) {
  common::Rng rng(3);
  NycLikeConfig cfg = SmallNyc();
  model::Dataset d = GenerateNycLike(cfg, &rng);
  for (size_t i = 0; i < d.trajectories.size(); i += 41) {
    for (const geo::Point& p : d.trajectories[i].points) {
      EXPECT_GE(p.x, -1.0);
      EXPECT_LE(p.x, cfg.width_m + 1.0);
      EXPECT_GE(p.y, -1.0);
      EXPECT_LE(p.y, cfg.height_m + 1.0);
    }
  }
}

TEST(SgGeneratorTest, ProducesRequestedSizesAndValidDataset) {
  common::Rng rng(1);
  model::Dataset d = GenerateSgLike(SmallSg(), &rng);
  EXPECT_EQ(d.billboards.size(), 800u);
  EXPECT_EQ(d.trajectories.size(), 4000u);
  EXPECT_EQ(model::ValidateDataset(d), "");
  EXPECT_EQ(d.name, "SG-like");
}

TEST(SgGeneratorTest, DeterministicGivenSeed) {
  common::Rng rng1(5), rng2(5);
  model::Dataset a = GenerateSgLike(SmallSg(), &rng1);
  model::Dataset b = GenerateSgLike(SmallSg(), &rng2);
  ASSERT_EQ(a.billboards.size(), b.billboards.size());
  for (size_t i = 0; i < a.billboards.size(); i += 29) {
    EXPECT_EQ(a.billboards[i].location, b.billboards[i].location);
  }
}

TEST(SgGeneratorTest, RideLengthsNearPaperMean) {
  common::Rng rng(2);
  model::Dataset d = GenerateSgLike(SmallSg(), &rng);
  model::DatasetStats stats = model::ComputeStats(d);
  // Table 5: SG avg trip 4.2 km, avg travel time 1342 s. Generous bands.
  EXPECT_GT(stats.avg_distance_km, 2.0);
  EXPECT_LT(stats.avg_distance_km, 7.0);
  EXPECT_GT(stats.avg_travel_time_sec, 600);
  EXPECT_LT(stats.avg_travel_time_sec, 2500);
}

TEST(SgGeneratorTest, DistinctStopsRespectTheMergeRadius) {
  // The shared stop pool merges any would-be stop within
  // stop_merge_radius_m of an existing one, so distinct billboards must
  // be at least that far apart — the invariant behind the paper's
  // lambda-insensitivity of SG below that scale (Fig 12).
  common::Rng rng(9);
  SgLikeConfig cfg = SmallSg();
  model::Dataset d = GenerateSgLike(cfg, &rng);
  geo::GridIndex grid(cfg.stop_merge_radius_m);
  for (const model::Billboard& b : d.billboards) {
    std::vector<int32_t> near =
        grid.QueryRadius(b.location, cfg.stop_merge_radius_m - 1e-6);
    EXPECT_TRUE(near.empty())
        << "billboard " << b.id << " within the merge radius of "
        << (near.empty() ? -1 : near[0]);
    grid.Insert(b.location, b.id);
  }
}

TEST(SgGeneratorTest, TrajectoriesFollowStops) {
  common::Rng rng(4);
  model::Dataset d = GenerateSgLike(SmallSg(), &rng);
  // Every trajectory point is a billboard (stop) location.
  for (size_t i = 0; i < d.trajectories.size(); i += 113) {
    for (const geo::Point& p : d.trajectories[i].points) {
      bool at_stop = false;
      for (const model::Billboard& b : d.billboards) {
        if (geo::Distance(p, b.location) < 1e-6) {
          at_stop = true;
          break;
        }
      }
      EXPECT_TRUE(at_stop);
    }
  }
}

// The calibration contract of DESIGN.md §4: NYC-like influence is
// heavy-tailed with overlapping top billboards, SG-like is more uniform
// with low overlap. These are the properties §7.2 of the paper builds its
// narrative on, so the generators must actually exhibit them.
TEST(CalibrationTest, NycIsMoreSkewedThanSg) {
  common::Rng rng1(11), rng2(11);
  model::Dataset nyc = GenerateNycLike(SmallNyc(), &rng1);
  model::Dataset sg = GenerateSgLike(SmallSg(), &rng2);
  auto nyc_index = influence::InfluenceIndex::Build(nyc, 100.0);
  auto sg_index = influence::InfluenceIndex::Build(sg, 100.0);
  auto nyc_summary = influence::SummarizeInfluence(nyc_index);
  auto sg_summary = influence::SummarizeInfluence(sg_index);

  // Top-decile supply share: NYC markedly more concentrated.
  EXPECT_GT(nyc_summary.top_decile_share, sg_summary.top_decile_share);
  // Both datasets actually cover something.
  EXPECT_GT(nyc_summary.mean, 1.0);
  EXPECT_GT(sg_summary.mean, 1.0);
}

TEST(CalibrationTest, SgImpressionCurveRisesFasterThanNyc) {
  common::Rng rng1(12), rng2(12);
  model::Dataset nyc = GenerateNycLike(SmallNyc(), &rng1);
  model::Dataset sg = GenerateSgLike(SmallSg(), &rng2);
  auto nyc_index = influence::InfluenceIndex::Build(nyc, 100.0);
  auto sg_index = influence::InfluenceIndex::Build(sg, 100.0);

  // Figure 1b: with the top 30% of billboards, SG (low overlap) covers a
  // larger fraction of the coverable trajectories than NYC (high overlap).
  std::vector<double> pct{30.0, 100.0};
  auto nyc_curve = influence::ImpressionCurve(nyc_index, pct);
  auto sg_curve = influence::ImpressionCurve(sg_index, pct);
  ASSERT_EQ(nyc_curve.size(), 2u);
  double nyc_ratio = nyc_curve[1] > 0 ? nyc_curve[0] / nyc_curve[1] : 0.0;
  double sg_ratio = sg_curve[1] > 0 ? sg_curve[0] / sg_curve[1] : 0.0;
  // "the yellow curve [NYC] increases slower than the purple one [SG]".
  EXPECT_LT(nyc_ratio, sg_ratio);
}

}  // namespace
}  // namespace mroam::gen
