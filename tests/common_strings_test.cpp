#include "common/strings.h"

#include <gtest/gtest.h>

namespace mroam::common {
namespace {

TEST(SplitTest, BasicSplit) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoDelimiterYieldsWholeString) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitTest, EmptyStringYieldsOneEmptyField) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StripWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripWhitespace("  abc \t\r\n"), "abc");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" a b "), "a b");
}

TEST(ParseDoubleTest, ParsesValidNumbers) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2").value(), -2.0);
  EXPECT_DOUBLE_EQ(ParseDouble("  7.25  ").value(), 7.25);
  EXPECT_DOUBLE_EQ(ParseDouble("1e3").value(), 1000.0);
}

TEST(ParseDoubleTest, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("3.5x").ok());
  EXPECT_FALSE(ParseDouble("3 4").ok());
}

TEST(ParseInt64Test, ParsesValidIntegers) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64(" 1000000000000 ").value(), 1000000000000LL);
}

TEST(ParseInt64Test, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("12a").ok());
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_FALSE(StartsWith("xfoo", "foo"));
}

TEST(FormatDoubleTest, RespectsDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-1.005, 1), "-1.0");
}

TEST(FormatWithCommasTest, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace mroam::common
