// The always-on flight recorder: ring wrap-around, the per-slot seqlock
// under concurrent writers (labeled `concurrency`; runs under the tsan
// preset), ScopedSpan integration, and — outside tsan — a death test
// proving the fatal-signal crash handler leaves parseable crash JSON.
#include "obs/flight_recorder.h"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/crash_handler.h"
#include "obs/metrics.h"
#include "obs/trace.h"

#if defined(__SANITIZE_THREAD__)
#define MROAM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MROAM_TSAN 1
#endif
#endif

namespace mroam::obs {
namespace {

class FlightRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::Global().Clear();
    FlightRecorder::SetEnabled(true);
  }
  void TearDown() override {
    FlightRecorder::SetEnabled(true);
    FlightRecorder::Global().Clear();
  }
};

TEST_F(FlightRecorderTest, RecordsAndSnapshotsEvents) {
  FlightRecorder::Global().RecordEvent("unit.first", 7);
  FlightRecorder::Global().Record("unit.span", 9, Tracer::NowNanos(), 1500);
  std::vector<FlightRecorder::Event> events =
      FlightRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Snapshot is oldest-first by completion time.
  EXPECT_STREQ(events[0].name, "unit.first");
  EXPECT_EQ(events[0].id, 7);
  EXPECT_EQ(events[0].dur_ns, 0);
  EXPECT_STREQ(events[1].name, "unit.span");
  EXPECT_EQ(events[1].id, 9);
  EXPECT_EQ(events[1].dur_ns, 1500);
  EXPECT_EQ(FlightRecorder::Global().EventCount(), 2);
}

TEST_F(FlightRecorderTest, DisabledRecordsNothing) {
  FlightRecorder::SetEnabled(false);
  MROAM_FLIGHT_EVENT("unit.dropped", 1);
  FlightRecorder::Global().RecordEvent("unit.also_dropped");
  EXPECT_EQ(FlightRecorder::Global().EventCount(), 0);
}

TEST_F(FlightRecorderTest, RingWrapsAndKeepsTheNewestEvents) {
  // One thread writes into one ring, so pushing 3x its capacity must
  // retain exactly kFlightRingEvents records — the newest ones.
  const int total = static_cast<int>(kFlightRingEvents) * 3;
  for (int i = 0; i < total; ++i) {
    FlightRecorder::Global().RecordEvent("unit.wrap", i);
  }
  std::vector<FlightRecorder::Event> events =
      FlightRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), static_cast<size_t>(kFlightRingEvents));
  std::set<int64_t> ids;
  for (const FlightRecorder::Event& e : events) ids.insert(e.id);
  ASSERT_EQ(ids.size(), events.size());
  // The survivors are the last kFlightRingEvents ids.
  EXPECT_EQ(*ids.begin(), total - static_cast<int>(kFlightRingEvents));
  EXPECT_EQ(*ids.rbegin(), total - 1);
  EXPECT_GE(FlightRecorder::Global().DroppedApprox(),
            static_cast<int64_t>(kFlightRingEvents));
}

TEST_F(FlightRecorderTest, ConcurrentWritersAndReadersStayConsistent) {
  // Hammer the rings from several threads while snapshotting
  // concurrently: every decoded record must be internally consistent
  // (a name from the writer set, matching id parity). Run under the
  // tsan preset, this is also the seqlock's race-freedom proof.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&go, t] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kPerThread; ++i) {
        FlightRecorder::Global().RecordEvent("unit.concurrent",
                                             t * kPerThread + i);
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&stop] {
    while (!stop.load()) {
      std::vector<FlightRecorder::Event> events =
          FlightRecorder::Global().Snapshot();
      for (const FlightRecorder::Event& e : events) {
        ASSERT_STREQ(e.name, "unit.concurrent");
        ASSERT_GE(e.id, 0);
        ASSERT_LT(e.id, kThreads * kPerThread);
      }
    }
  });
  go.store(true);
  for (std::thread& w : writers) w.join();
  stop.store(true);
  reader.join();

  std::vector<FlightRecorder::Event> events =
      FlightRecorder::Global().Snapshot();
  EXPECT_GT(events.size(), 0u);
  EXPECT_LE(events.size(),
            static_cast<size_t>(kFlightRings) * kFlightRingEvents);
}

TEST_F(FlightRecorderTest, ScopedSpansFeedTheRecorder) {
  ASSERT_FALSE(Tracer::Enabled());  // flight-only sink
  { MROAM_TRACE_SPAN("unit.scoped"); }
  { MROAM_TRACE_SPAN_ID("unit.scoped_tagged", 42); }
  std::vector<FlightRecorder::Event> events =
      FlightRecorder::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "unit.scoped");
  EXPECT_STREQ(events[1].name, "unit.scoped_tagged");
  EXPECT_EQ(events[1].id, 42);
  EXPECT_GE(events[1].dur_ns, 0);
}

TEST_F(FlightRecorderTest, DumpJsonIsWellFormed) {
  FlightRecorder::Global().RecordEvent("unit.json \"quoted\"", 3);
  std::string json = FlightRecorder::Global().DumpJson();
  EXPECT_NE(json.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_approx\":"), std::string::npos);
  EXPECT_NE(json.find("\"events\":["), std::string::npos);
  // Names are JSON-escaped in the dump.
  EXPECT_NE(json.find("unit.json \\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(json.back(), '}');
}

TEST_F(FlightRecorderTest, WriteEventsJsonIsParseableArrayInnards) {
  FlightRecorder::Global().RecordEvent("unit.fd", 1);
  FlightRecorder::Global().RecordEvent("unit.fd", 2);
  char path[] = "/tmp/mroam_flight_XXXXXX";
  int fd = mkstemp(path);
  ASSERT_GE(fd, 0);
  FlightRecorder::Global().WriteEventsJson(fd);
  close(fd);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path);
  const std::string body = "[" + buffer.str() + "]";
  // Two records, comma-separated, no trailing comma.
  EXPECT_NE(body.find("\"name\":\"unit.fd\""), std::string::npos);
  EXPECT_NE(body.find("},{"), std::string::npos);
  EXPECT_EQ(body.find(",]"), std::string::npos);
}

// --- crash handler ---------------------------------------------------------

/// Minimal structural JSON validator: walks the document with a
/// recursive-descent scan and returns true when it is one complete,
/// well-nested JSON value. Enough to prove the crash report parses —
/// no third-party parser in the test image.
bool ValidJson(const std::string& text, size_t* pos);

bool SkipWs(const std::string& t, size_t* p) {
  while (*p < t.size() && (t[*p] == ' ' || t[*p] == '\n' || t[*p] == '\t' ||
                           t[*p] == '\r')) {
    ++*p;
  }
  return *p < t.size();
}

bool ValidString(const std::string& t, size_t* p) {
  if (t[*p] != '"') return false;
  ++*p;
  while (*p < t.size() && t[*p] != '"') {
    if (t[*p] == '\\') ++*p;
    ++*p;
  }
  if (*p >= t.size()) return false;
  ++*p;  // closing quote
  return true;
}

bool ValidJson(const std::string& t, size_t* p) {
  if (!SkipWs(t, p)) return false;
  const char c = t[*p];
  if (c == '{') {
    ++*p;
    if (!SkipWs(t, p)) return false;
    if (t[*p] == '}') return ++*p, true;
    while (true) {
      if (!SkipWs(t, p) || !ValidString(t, p)) return false;
      if (!SkipWs(t, p) || t[(*p)++] != ':') return false;
      if (!ValidJson(t, p)) return false;
      if (!SkipWs(t, p)) return false;
      if (t[*p] == ',') {
        ++*p;
        continue;
      }
      return t[(*p)++] == '}';
    }
  }
  if (c == '[') {
    ++*p;
    if (!SkipWs(t, p)) return false;
    if (t[*p] == ']') return ++*p, true;
    while (true) {
      if (!ValidJson(t, p)) return false;
      if (!SkipWs(t, p)) return false;
      if (t[*p] == ',') {
        ++*p;
        continue;
      }
      return t[(*p)++] == ']';
    }
  }
  if (c == '"') return ValidString(t, p);
  if (std::string("-0123456789").find(c) != std::string::npos) {
    while (*p < t.size() &&
           std::string("-+.eE0123456789").find(t[*p]) != std::string::npos) {
      ++*p;
    }
    return true;
  }
  for (const char* lit : {"true", "false", "null"}) {
    if (t.compare(*p, std::string(lit).size(), lit) == 0) {
      *p += std::string(lit).size();
      return true;
    }
  }
  return false;
}

bool ValidJsonDocument(const std::string& text) {
  size_t pos = 0;
  if (!ValidJson(text, &pos)) return false;
  SkipWs(text, &pos);
  return pos == text.size();
}

TEST(CrashJsonValidatorTest, AcceptsAndRejectsTheRightShapes) {
  EXPECT_TRUE(ValidJsonDocument("{\"a\":[1,2,{\"b\":null}],\"c\":\"x\"}"));
  EXPECT_TRUE(ValidJsonDocument("{\"events\":[],\"metrics\":null}"));
  EXPECT_FALSE(ValidJsonDocument("{\"a\":[1,2}"));
  EXPECT_FALSE(ValidJsonDocument("{\"a\":1"));
  EXPECT_FALSE(ValidJsonDocument("{\"a\":1}trailing"));
}

// The death test re-executes the test binary under fork; tsan's runtime
// deadlocks inside fork-from-signal paths, so the proof runs in the
// plain and asan tier-1 configs only.
#ifndef MROAM_TSAN
TEST(CrashHandlerDeathTest, SegvLeavesParseableCrashReport) {
  // Fork-only style: the child inherits `report` (and the recorder's
  // ring contents) instead of re-executing the binary, which would
  // mkdtemp a fresh path. No other test leaves threads running, so
  // fork-from-a-quiet-process is safe here.
  testing::GTEST_FLAG(death_test_style) = "fast";
  char dir[] = "/tmp/mroam_crash_XXXXXX";
  ASSERT_NE(mkdtemp(dir), nullptr);
  const std::string report = std::string(dir) + "/crash.json";

  EXPECT_EXIT(
      {
        InstallCrashHandler(report.c_str());
        FlightRecorder::SetEnabled(true);
        FlightRecorder::Global().RecordEvent("crash.before", 11);
        MROAM_COUNTER_ADD("crash.test_counter", 3);
        std::raise(SIGSEGV);
      },
      ::testing::KilledBySignal(SIGSEGV), "");

  std::ifstream in(report);
  ASSERT_TRUE(in.good()) << "crash handler wrote no report at " << report;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  std::remove(report.c_str());
  rmdir(dir);

  EXPECT_TRUE(ValidJsonDocument(json)) << json;
  EXPECT_NE(json.find("\"signal_name\":\"SIGSEGV\""), std::string::npos);
  EXPECT_NE(json.find("\"events\":["), std::string::npos);
  EXPECT_NE(json.find("crash.before"), std::string::npos);
  // Phase 2 replaced the null placeholder with the real snapshot.
  EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(json.find("crash.test_counter"), std::string::npos);
}
#endif  // MROAM_TSAN

}  // namespace
}  // namespace mroam::obs
