#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "geo/grid_index.h"
#include "geo/point.h"
#include "geo/polyline.h"

namespace mroam::geo {
namespace {

TEST(PointTest, Arithmetic) {
  Point a{1.0, 2.0}, b{3.0, 5.0};
  EXPECT_EQ((a + b), (Point{4.0, 7.0}));
  EXPECT_EQ((b - a), (Point{2.0, 3.0}));
  EXPECT_EQ((a * 2.0), (Point{2.0, 4.0}));
  EXPECT_EQ((2.0 * a), (Point{2.0, 4.0}));
}

TEST(PointTest, Distance) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
}

TEST(PointTest, Lerp) {
  Point a{0, 0}, b{10, 20};
  EXPECT_EQ(Lerp(a, b, 0.0), a);
  EXPECT_EQ(Lerp(a, b, 1.0), b);
  EXPECT_EQ(Lerp(a, b, 0.5), (Point{5, 10}));
}

TEST(BoundingBoxTest, ExtendAndContains) {
  BoundingBox box;
  EXPECT_TRUE(box.Empty());
  box.Extend({1, 2});
  box.Extend({-3, 5});
  EXPECT_FALSE(box.Empty());
  EXPECT_TRUE(box.Contains({0, 3}));
  EXPECT_TRUE(box.Contains({1, 2}));
  EXPECT_FALSE(box.Contains({2, 3}));
  EXPECT_DOUBLE_EQ(box.Width(), 4.0);
  EXPECT_DOUBLE_EQ(box.Height(), 3.0);
}

TEST(PolylineTest, LengthOfSegments) {
  std::vector<Point> line{{0, 0}, {3, 4}, {3, 14}};
  EXPECT_DOUBLE_EQ(PolylineLength(line), 15.0);
  EXPECT_DOUBLE_EQ(PolylineLength({{1, 1}}), 0.0);
  EXPECT_DOUBLE_EQ(PolylineLength({}), 0.0);
}

TEST(PolylineTest, PointAlongInterpolates) {
  std::vector<Point> line{{0, 0}, {10, 0}, {10, 10}};
  EXPECT_EQ(PointAlong(line, -5.0), (Point{0, 0}));
  EXPECT_EQ(PointAlong(line, 0.0), (Point{0, 0}));
  EXPECT_EQ(PointAlong(line, 5.0), (Point{5, 0}));
  EXPECT_EQ(PointAlong(line, 15.0), (Point{10, 5}));
  EXPECT_EQ(PointAlong(line, 100.0), (Point{10, 10}));
}

TEST(PolylineTest, DensifyBoundsSpacing) {
  std::vector<Point> line{{0, 0}, {100, 0}};
  std::vector<Point> dense = Densify(line, 30.0);
  ASSERT_GE(dense.size(), 4u);
  EXPECT_EQ(dense.front(), (Point{0, 0}));
  EXPECT_EQ(dense.back(), (Point{100, 0}));
  for (size_t i = 1; i < dense.size(); ++i) {
    EXPECT_LE(Distance(dense[i - 1], dense[i]), 30.0 + 1e-9);
  }
  // Length is preserved (densify adds collinear points only).
  EXPECT_NEAR(PolylineLength(dense), 100.0, 1e-9);
}

TEST(PolylineTest, DensifyKeepsVertices) {
  std::vector<Point> line{{0, 0}, {50, 0}, {50, 50}};
  std::vector<Point> dense = Densify(line, 20.0);
  EXPECT_NE(std::find(dense.begin(), dense.end(), Point{50, 0}), dense.end());
  EXPECT_NEAR(PolylineLength(dense), 100.0, 1e-9);
}

TEST(PolylineTest, DensifyShortInputsUnchanged) {
  std::vector<Point> one{{1, 2}};
  EXPECT_EQ(Densify(one, 10.0), one);
  std::vector<Point> empty;
  EXPECT_EQ(Densify(empty, 10.0), empty);
}

TEST(PolylineTest, DistanceToPolyline) {
  std::vector<Point> line{{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(DistanceToPolyline({5, 3}, line), 3.0);
  EXPECT_DOUBLE_EQ(DistanceToPolyline({-3, 4}, line), 5.0);  // past endpoint
  EXPECT_DOUBLE_EQ(DistanceToPolyline({5, 0}, line), 0.0);
  EXPECT_DOUBLE_EQ(DistanceToPolyline({1, 1}, {{0, 0}}), std::sqrt(2.0));
}

// Property sweep: Densify preserves arc length and respects the spacing
// bound on random polylines.
class DensifyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DensifyPropertyTest, LengthPreservedAndSpacingBounded) {
  common::Rng rng(GetParam());
  std::vector<Point> line;
  size_t n = 2 + rng.UniformU64(10);
  for (size_t i = 0; i < n; ++i) {
    line.push_back({rng.UniformDouble(-500.0, 500.0),
                    rng.UniformDouble(-500.0, 500.0)});
  }
  double spacing = rng.UniformDouble(5.0, 200.0);
  std::vector<Point> dense = Densify(line, spacing);
  EXPECT_NEAR(PolylineLength(dense), PolylineLength(line), 1e-6);
  for (size_t i = 1; i < dense.size(); ++i) {
    EXPECT_LE(Distance(dense[i - 1], dense[i]), spacing + 1e-9);
  }
  EXPECT_EQ(dense.front(), line.front());
  EXPECT_EQ(dense.back(), line.back());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DensifyPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(GridIndexTest, FindsPointsWithinRadius) {
  GridIndex grid(100.0);
  grid.Insert({0, 0}, 0);
  grid.Insert({50, 0}, 1);
  grid.Insert({150, 0}, 2);
  grid.Insert({0, 99}, 3);

  std::vector<int32_t> hits = grid.QueryRadius({0, 0}, 100.0);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<int32_t>{0, 1, 3}));
}

TEST(GridIndexTest, RadiusLargerThanCell) {
  GridIndex grid(50.0);
  grid.Insert({200, 0}, 7);
  std::vector<int32_t> hits = grid.QueryRadius({0, 0}, 250.0);
  EXPECT_EQ(hits, (std::vector<int32_t>{7}));
}

TEST(GridIndexTest, NegativeCoordinates) {
  GridIndex grid(100.0);
  grid.Insert({-250, -250}, 1);
  grid.Insert({-260, -240}, 2);
  std::vector<int32_t> hits = grid.QueryRadius({-255, -245}, 20.0);
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<int32_t>{1, 2}));
}

TEST(GridIndexTest, MatchesBruteForceOnRandomPoints) {
  common::Rng rng(7);
  GridIndex grid(80.0);
  std::vector<Point> points;
  for (int32_t i = 0; i < 500; ++i) {
    Point p{rng.UniformDouble(-1000.0, 1000.0),
            rng.UniformDouble(-1000.0, 1000.0)};
    points.push_back(p);
    grid.Insert(p, i);
  }
  for (int q = 0; q < 50; ++q) {
    Point center{rng.UniformDouble(-1000.0, 1000.0),
                 rng.UniformDouble(-1000.0, 1000.0)};
    double radius = rng.UniformDouble(10.0, 300.0);
    std::vector<int32_t> got = grid.QueryRadius(center, radius);
    std::sort(got.begin(), got.end());
    std::vector<int32_t> want;
    for (int32_t i = 0; i < 500; ++i) {
      if (Distance(points[i], center) <= radius) want.push_back(i);
    }
    EXPECT_EQ(got, want) << "query " << q;
  }
}

TEST(GridIndexTest, SizeTracksInserts) {
  GridIndex grid(10.0);
  EXPECT_EQ(grid.size(), 0u);
  grid.Insert({0, 0}, 0);
  grid.Insert({0, 0}, 1);
  EXPECT_EQ(grid.size(), 2u);
}

}  // namespace
}  // namespace mroam::geo
