#include "market/workload.h"

#include <cmath>

#include <gtest/gtest.h>

namespace mroam::market {
namespace {

TEST(AdvertiserTest, BudgetEffectiveness) {
  Advertiser a;
  a.demand = 100;
  a.payment = 150.0;
  EXPECT_DOUBLE_EQ(a.BudgetEffectiveness(), 1.5);
  a.demand = 0;
  EXPECT_DOUBLE_EQ(a.BudgetEffectiveness(), 0.0);
}

TEST(NumAdvertisersTest, PaperGridValues) {
  WorkloadConfig cfg;
  cfg.alpha = 1.0;
  cfg.avg_individual_demand_ratio = 0.01;
  EXPECT_EQ(NumAdvertisers(cfg), 100);  // paper: 100 small advertisers
  cfg.avg_individual_demand_ratio = 0.20;
  EXPECT_EQ(NumAdvertisers(cfg), 5);  // paper: 5 big advertisers
  cfg.alpha = 0.4;
  cfg.avg_individual_demand_ratio = 0.02;
  EXPECT_EQ(NumAdvertisers(cfg), 20);
}

TEST(NumAdvertisersTest, RoundsToNearest) {
  WorkloadConfig cfg;
  cfg.alpha = 0.5;
  cfg.avg_individual_demand_ratio = 0.03;  // 16.67 advertisers
  EXPECT_EQ(NumAdvertisers(cfg), 17);
  cfg.alpha = 0.49;  // 16.33
  EXPECT_EQ(NumAdvertisers(cfg), 16);
}

TEST(NumAdvertisersTest, AtLeastOne) {
  WorkloadConfig cfg;
  cfg.alpha = 0.05;
  cfg.avg_individual_demand_ratio = 0.2;
  EXPECT_EQ(NumAdvertisers(cfg), 1);
}

TEST(GenerateAdvertisersTest, CountAndRanges) {
  WorkloadConfig cfg;
  cfg.alpha = 1.0;
  cfg.avg_individual_demand_ratio = 0.05;
  common::Rng rng(1);
  auto ads = GenerateAdvertisers(100000, cfg, &rng);
  ASSERT_TRUE(ads.ok());
  ASSERT_EQ(ads->size(), 20u);
  for (const Advertiser& a : *ads) {
    // I_i = floor(omega * I* * p), omega in [0.8, 1.2].
    EXPECT_GE(a.demand, static_cast<int64_t>(0.8 * 100000 * 0.05) - 1);
    EXPECT_LE(a.demand, static_cast<int64_t>(1.2 * 100000 * 0.05) + 1);
    // L_i = floor(epsilon * I_i), epsilon in [0.9, 1.1].
    EXPECT_GE(a.payment, 0.9 * static_cast<double>(a.demand) - 1.0);
    EXPECT_LE(a.payment, 1.1 * static_cast<double>(a.demand) + 1.0);
  }
}

TEST(GenerateAdvertisersTest, IdsAreDense) {
  WorkloadConfig cfg;
  common::Rng rng(2);
  auto ads = GenerateAdvertisers(50000, cfg, &rng);
  ASSERT_TRUE(ads.ok());
  for (size_t i = 0; i < ads->size(); ++i) {
    EXPECT_EQ((*ads)[i].id, static_cast<AdvertiserId>(i));
  }
}

TEST(GenerateAdvertisersTest, GlobalDemandTracksAlpha) {
  WorkloadConfig cfg;
  cfg.alpha = 0.8;
  cfg.avg_individual_demand_ratio = 0.02;
  common::Rng rng(3);
  const int64_t supply = 1000000;
  auto ads = GenerateAdvertisers(supply, cfg, &rng);
  ASSERT_TRUE(ads.ok());
  double realized_alpha = static_cast<double>(GlobalDemand(*ads)) /
                          static_cast<double>(supply);
  // omega averages 1.0, so the realized ratio concentrates near alpha.
  EXPECT_NEAR(realized_alpha, 0.8, 0.05);
}

TEST(GenerateAdvertisersTest, DeterministicGivenSeed) {
  WorkloadConfig cfg;
  common::Rng rng1(4), rng2(4);
  auto a = GenerateAdvertisers(70000, cfg, &rng1);
  auto b = GenerateAdvertisers(70000, cfg, &rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].demand, (*b)[i].demand);
    EXPECT_DOUBLE_EQ((*a)[i].payment, (*b)[i].payment);
  }
}

TEST(GenerateAdvertisersTest, TinySupplyStillYieldsPositiveContracts) {
  WorkloadConfig cfg;
  cfg.alpha = 1.0;
  cfg.avg_individual_demand_ratio = 0.01;
  common::Rng rng(5);
  auto ads = GenerateAdvertisers(10, cfg, &rng);  // base demand 0.1
  ASSERT_TRUE(ads.ok());
  for (const Advertiser& a : *ads) {
    EXPECT_GE(a.demand, 1);
    EXPECT_GE(a.payment, 1.0);
  }
}

TEST(GenerateAdvertisersTest, RejectsInvalidInputs) {
  WorkloadConfig cfg;
  common::Rng rng(6);
  EXPECT_FALSE(GenerateAdvertisers(0, cfg, &rng).ok());
  EXPECT_FALSE(GenerateAdvertisers(-5, cfg, &rng).ok());

  WorkloadConfig bad_alpha;
  bad_alpha.alpha = 0.0;
  EXPECT_FALSE(GenerateAdvertisers(1000, bad_alpha, &rng).ok());

  WorkloadConfig bad_p;
  bad_p.avg_individual_demand_ratio = 0.0;
  EXPECT_FALSE(GenerateAdvertisers(1000, bad_p, &rng).ok());
  bad_p.avg_individual_demand_ratio = 1.5;
  EXPECT_FALSE(GenerateAdvertisers(1000, bad_p, &rng).ok());

  WorkloadConfig bad_omega;
  bad_omega.omega_min = 1.2;
  bad_omega.omega_max = 0.8;
  EXPECT_FALSE(GenerateAdvertisers(1000, bad_omega, &rng).ok());

  WorkloadConfig bad_eps;
  bad_eps.epsilon_min = -1.0;
  EXPECT_FALSE(GenerateAdvertisers(1000, bad_eps, &rng).ok());
}

TEST(AggregateTest, GlobalDemandAndTotalPayment) {
  std::vector<Advertiser> ads;
  Advertiser a;
  a.id = 0;
  a.demand = 10;
  a.payment = 12.0;
  ads.push_back(a);
  a.id = 1;
  a.demand = 20;
  a.payment = 18.0;
  ads.push_back(a);
  EXPECT_EQ(GlobalDemand(ads), 30);
  EXPECT_DOUBLE_EQ(TotalPayment(ads), 30.0);
  EXPECT_EQ(GlobalDemand({}), 0);
  EXPECT_DOUBLE_EQ(TotalPayment({}), 0.0);
}

}  // namespace
}  // namespace mroam::market
