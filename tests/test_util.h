#ifndef MROAM_TESTS_TEST_UTIL_H_
#define MROAM_TESTS_TEST_UTIL_H_

#include <vector>

#include "influence/influence_index.h"
#include "market/advertiser.h"
#include "model/dataset.h"

namespace mroam::testing {

/// Builds a dataset whose meet-model incidence (at lambda = 1.0) is
/// exactly `covered`: billboard i is placed at (10000 * i, 0), and each
/// trajectory gets one point at the location of every billboard that
/// covers it. This lets tests specify incidence lists directly and drive
/// the real InfluenceIndex::Build pipeline.
///
/// `covered[i]` lists the trajectory ids billboard i influences;
/// `num_trajectories` must exceed every listed id. Trajectories not
/// covered by any billboard get a far-away point so they still exist.
inline model::Dataset DatasetFromIncidence(
    const std::vector<std::vector<model::TrajectoryId>>& covered,
    int32_t num_trajectories) {
  model::Dataset dataset;
  dataset.name = "incidence-fixture";
  for (size_t i = 0; i < covered.size(); ++i) {
    model::Billboard b;
    b.id = static_cast<model::BillboardId>(i);
    b.location = {10000.0 * static_cast<double>(i), 0.0};
    dataset.billboards.push_back(b);
  }
  dataset.trajectories.resize(num_trajectories);
  for (int32_t t = 0; t < num_trajectories; ++t) {
    dataset.trajectories[t].id = t;
  }
  for (size_t i = 0; i < covered.size(); ++i) {
    for (model::TrajectoryId t : covered[i]) {
      dataset.trajectories[t].points.push_back(
          dataset.billboards[i].location);
    }
  }
  for (model::Trajectory& t : dataset.trajectories) {
    if (t.points.empty()) {
      t.points.push_back({-1e6, -1e6});  // far from every billboard
    }
  }
  return dataset;
}

/// The lambda to use with DatasetFromIncidence fixtures.
inline constexpr double kFixtureLambda = 1.0;

/// Convenience: build the InfluenceIndex for an incidence fixture.
inline influence::InfluenceIndex IndexFromIncidence(
    const std::vector<std::vector<model::TrajectoryId>>& covered,
    int32_t num_trajectories, model::Dataset* keep_dataset = nullptr) {
  model::Dataset dataset = DatasetFromIncidence(covered, num_trajectories);
  influence::InfluenceIndex index =
      influence::InfluenceIndex::Build(dataset, kFixtureLambda);
  if (keep_dataset != nullptr) *keep_dataset = std::move(dataset);
  return index;
}

/// Shorthand advertiser constructor.
inline market::Advertiser Adv(market::AdvertiserId id, int64_t demand,
                              double payment) {
  market::Advertiser a;
  a.id = id;
  a.demand = demand;
  a.payment = payment;
  return a;
}

/// The paper's running example (Tables 1-2): six billboards with disjoint
/// coverage of sizes {2, 6, 3, 7, 1, 1} and three advertisers
/// (I, L) = (5, $10), (7, $11), (8, $20). (I(o_3) = 3 is recovered from
/// Tables 3-4: strategy 2 has I({o_1, o_3}) = 5 with I(o_1) = 2.)
inline std::vector<std::vector<model::TrajectoryId>>
PaperExampleIncidence() {
  std::vector<std::vector<model::TrajectoryId>> covered(6);
  int32_t next = 0;
  const int sizes[6] = {2, 6, 3, 7, 1, 1};
  for (int i = 0; i < 6; ++i) {
    for (int k = 0; k < sizes[i]; ++k) covered[i].push_back(next++);
  }
  return covered;  // 20 trajectories total (= total demand 5 + 7 + 8)
}

inline std::vector<market::Advertiser> PaperExampleAdvertisers() {
  return {Adv(0, 5, 10.0), Adv(1, 7, 11.0), Adv(2, 8, 20.0)};
}

}  // namespace mroam::testing

#endif  // MROAM_TESTS_TEST_UTIL_H_
