#include "temporal/time_slots.h"

#include <gtest/gtest.h>

#include "core/solver.h"
#include "test_util.h"

namespace mroam::temporal {
namespace {

using mroam::testing::Adv;

TEST(TimeWindowTest, OverlapCases) {
  TimeWindow window{3600.0, 7200.0};  // 01:00-02:00
  EXPECT_TRUE(window.Overlaps(3600.0, 60.0));    // starts inside
  EXPECT_TRUE(window.Overlaps(0.0, 3600.0));     // ends at window start
  EXPECT_TRUE(window.Overlaps(7000.0, 1000.0));  // straddles the end
  EXPECT_TRUE(window.Overlaps(0.0, 90000.0));    // spans the whole window
  EXPECT_FALSE(window.Overlaps(7200.0, 60.0));   // starts at window end
  EXPECT_FALSE(window.Overlaps(0.0, 1800.0));    // entirely before
}

/// Two billboards far apart; three audiences at billboard 0 with start
/// times in different halves of the day; one audience at billboard 1.
model::Dataset TimedDataset() {
  model::Dataset d;
  d.name = "temporal-fixture";
  for (int i = 0; i < 2; ++i) {
    model::Billboard b;
    b.id = i;
    b.location = {10000.0 * i, 0.0};
    d.billboards.push_back(b);
  }
  auto add_trajectory = [&](geo::Point where, double start, double dur) {
    model::Trajectory t;
    t.id = static_cast<model::TrajectoryId>(d.trajectories.size());
    t.points = {where};
    t.start_time_seconds = start;
    t.travel_time_seconds = dur;
    d.trajectories.push_back(std::move(t));
  };
  add_trajectory({0, 0}, 8 * 3600.0, 600.0);    // morning at billboard 0
  add_trajectory({0, 0}, 9 * 3600.0, 600.0);    // morning at billboard 0
  add_trajectory({0, 0}, 20 * 3600.0, 600.0);   // evening at billboard 0
  add_trajectory({10000, 0}, 13 * 3600.0, 600.0);  // afternoon at board 1
  return d;
}

TEST(BuildTemporalMarketTest, OneSlotReproducesTheStaticModel) {
  model::Dataset d = TimedDataset();
  TemporalConfig config;
  config.slots_per_day = 1;
  config.lambda = 1.0;
  TemporalMarket market = BuildTemporalMarket(d, config);
  auto static_index = influence::InfluenceIndex::Build(d, 1.0);
  ASSERT_EQ(market.index.num_billboards(), static_index.num_billboards());
  for (int32_t o = 0; o < static_index.num_billboards(); ++o) {
    EXPECT_EQ(market.index.CoveredBy(o), static_index.CoveredBy(o));
  }
  EXPECT_EQ(market.slots[0].window.end_seconds, 86400.0);
}

TEST(BuildTemporalMarketTest, SlotsFilterByTime) {
  model::Dataset d = TimedDataset();
  TemporalConfig config;
  config.slots_per_day = 2;  // 00:00-12:00 and 12:00-24:00
  config.lambda = 1.0;
  TemporalMarket market = BuildTemporalMarket(d, config);
  ASSERT_EQ(market.index.num_billboards(), 4);
  ASSERT_EQ(market.slots.size(), 4u);
  // Billboard 0, morning slot: trajectories 0 and 1.
  EXPECT_EQ(market.index.CoveredBy(0),
            (std::vector<model::TrajectoryId>{0, 1}));
  // Billboard 0, evening slot: trajectory 2.
  EXPECT_EQ(market.index.CoveredBy(1),
            (std::vector<model::TrajectoryId>{2}));
  // Billboard 1: afternoon audience is in the second slot only.
  EXPECT_TRUE(market.index.CoveredBy(2).empty());
  EXPECT_EQ(market.index.CoveredBy(3),
            (std::vector<model::TrajectoryId>{3}));
  // Slot metadata lines up.
  EXPECT_EQ(market.slots[1].base_billboard, 0);
  EXPECT_EQ(market.slots[1].slot_index, 1);
  EXPECT_DOUBLE_EQ(market.slots[1].window.begin_seconds, 43200.0);
}

TEST(BuildTemporalMarketTest, SupplyIsPartitionedNotDuplicated) {
  // With non-overlapping windows, each (billboard, trajectory) pair lands
  // in at least one slot; a trajectory spanning a boundary may appear in
  // two. Supply must be >= the static supply.
  model::Dataset d = TimedDataset();
  auto static_index = influence::InfluenceIndex::Build(d, 1.0);
  for (int32_t k : {2, 4, 8}) {
    TemporalConfig config;
    config.slots_per_day = k;
    config.lambda = 1.0;
    TemporalMarket market = BuildTemporalMarket(d, config);
    EXPECT_GE(market.index.TotalSupply(), static_index.TotalSupply());
    EXPECT_EQ(market.index.num_billboards(), 2 * k);
  }
}

TEST(BuildTemporalMarketTest, SlotLabelIsReadable) {
  model::Dataset d = TimedDataset();
  TemporalConfig config;
  config.slots_per_day = 4;
  config.lambda = 1.0;
  TemporalMarket market = BuildTemporalMarket(d, config);
  EXPECT_EQ(market.SlotLabel(1), "billboard 0 @ 06:00-12:00");
  EXPECT_EQ(market.SlotLabel(7), "billboard 1 @ 18:00-24:00");
}

TEST(BuildTemporalMarketTest, SolverRunsOnSlotMarket) {
  // Two advertisers each demanding the audience of one half of the day at
  // billboard 0. With slots they can share the same physical billboard.
  model::Dataset d = TimedDataset();
  TemporalConfig config;
  config.slots_per_day = 2;
  config.lambda = 1.0;
  TemporalMarket market = BuildTemporalMarket(d, config);

  std::vector<market::Advertiser> ads = {Adv(0, 2, 4.0), Adv(1, 1, 2.0)};
  core::SolverConfig solver;
  solver.method = core::Method::kBls;
  core::SolveResult result = core::Solve(market.index, ads, solver);
  EXPECT_EQ(result.breakdown.satisfied_count, 2);
  EXPECT_DOUBLE_EQ(result.breakdown.total, 0.0);
  // The two advertisers hold different slots of the same billboard.
  ASSERT_EQ(result.sets[0].size(), 1u);
  EXPECT_EQ(market.slots[result.sets[0][0]].base_billboard, 0);
}

}  // namespace
}  // namespace mroam::temporal
