// Overload and chaos behavior of MarketServer (DESIGN.md §6.2): slow-loris
// read deadlines reclaim workers, the admission watermark sheds with 429 +
// Retry-After, readiness splits from liveness, degraded reads carry
// X-Mroam-Stale, and a seeded fault-injection run resolves every ticket
// (labels `serve` + `concurrency` + `fault`; runs under the tsan preset).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/strings.h"
#include "serve/http.h"
#include "serve/market_server.h"
#include "test_util.h"

namespace mroam::serve {
namespace {

using mroam::testing::IndexFromIncidence;

/// Raw TCP connect to 127.0.0.1:port — for clients that deliberately
/// misbehave in ways HttpFetch cannot (partial requests, stalls).
int ConnectTo(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Drains everything the peer sends until EOF (the server closes after
/// one response).
std::string RecvAll(int fd) {
  std::string out;
  char buf[4096];
  while (true) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

class ServeChaosTest : public ::testing::Test {
 protected:
  // Eight disjoint billboards with influence {4,4,4,4,2,2,2,2}.
  ServeChaosTest()
      : index_(IndexFromIncidence(
            {{0, 1, 2, 3},
             {4, 5, 6, 7},
             {8, 9, 10, 11},
             {12, 13, 14, 15},
             {16, 17},
             {18, 19},
             {20, 21},
             {22, 23}},
            24, &dataset_)) {}

  void TearDown() override { common::FaultInjector::Global().Disarm(); }

  MarketServerConfig Config() {
    MarketServerConfig config;
    config.port = 0;  // ephemeral
    config.num_threads = 4;
    config.max_batch = 4;
    config.max_batch_delay_seconds = 0.01;
    config.market.policy = core::ReplanPolicy::kLockExisting;
    return config;
  }

  static std::string SubmitBody(int64_t demand, double payment) {
    return "{\"demand\": " + std::to_string(demand) +
           ", \"payment\": " + std::to_string(payment) + "}";
  }

  /// Polls /report until `queue_depth` reaches `want` (sanitizer-safe:
  /// no fixed sleeps on the assertion path).
  static bool WaitForQueueDepth(int port, double want) {
    for (int attempt = 0; attempt < 500; ++attempt) {
      auto report = HttpFetch("127.0.0.1", port, "GET", "/report");
      if (report.ok()) {
        auto depth = ExtractJsonNumber(report->body, "queue_depth");
        if (depth.ok() && *depth >= want) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return false;
  }

  model::Dataset dataset_;
  influence::InfluenceIndex index_;
};

TEST_F(ServeChaosTest, SlowLorisTripsReadDeadlineAndFreesTheWorker) {
  MarketServerConfig config = Config();
  config.num_threads = 1;  // the loris must not wedge the only worker
  config.read_idle_timeout_ms = 80;
  config.request_timeout_ms = 2000;
  MarketServer server(&index_, config);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  // Send a partial request head and then stall: the idle deadline must
  // answer 408 instead of pinning the worker until we hang up.
  int fd = ConnectTo(port);
  ASSERT_GE(fd, 0);
  const std::string partial = "POST /contracts HTTP/1.1\r\n";
  ASSERT_TRUE(WriteAll(fd, partial).ok());
  std::string response = RecvAll(fd);
  ::close(fd);
  EXPECT_EQ(response.rfind("HTTP/1.1 408 Request Timeout", 0), 0u)
      << response;
  EXPECT_EQ(server.read_timeouts(), 1);

  // The (only) worker is free again: a well-behaved request sails.
  auto health = HttpFetch("127.0.0.1", port, "GET", "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  server.Stop();
}

TEST_F(ServeChaosTest, HalfOpenConnectionIsReclaimedOnHangup) {
  MarketServerConfig config = Config();
  config.num_threads = 1;
  config.read_idle_timeout_ms = 5000;
  MarketServer server(&index_, config);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  // Connect, send nothing, hang up: the worker sees EOF (kIoError), not
  // a parse — and must come back for real traffic.
  int fd = ConnectTo(port);
  ASSERT_GE(fd, 0);
  ::close(fd);
  auto health = HttpFetch("127.0.0.1", port, "GET", "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  server.Stop();
}

TEST_F(ServeChaosTest, WatermarkShedsWith429AndRetryAfter) {
  MarketServerConfig config = Config();
  // A batch that never flushes on its own: the queue only moves on drain.
  config.max_batch = 1000;
  config.max_batch_delay_seconds = 60.0;
  config.max_queue = 2;
  config.degraded_watermark = 1;
  MarketServer server(&index_, config);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  // Fill the queue to the cap: each submission is accepted with 202
  // immediately and parks in the admission queue.
  std::vector<int64_t> tickets;
  for (int c = 0; c < 2; ++c) {
    auto posted = HttpFetch("127.0.0.1", port, "POST", "/contracts",
                            SubmitBody(2, 4.0));
    ASSERT_TRUE(posted.ok()) << posted.status().ToString();
    ASSERT_EQ(posted->status, 202) << posted->body;
    tickets.push_back(
        static_cast<int64_t>(*ExtractJsonNumber(posted->body, "ticket")));
  }
  ASSERT_TRUE(WaitForQueueDepth(port, 2.0));

  // The next submission sheds instead of queueing unboundedly.
  auto shed = HttpFetch("127.0.0.1", port, "POST", "/contracts",
                        SubmitBody(2, 4.0));
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->status, 429);
  EXPECT_NE(shed->body.find("queue full"), std::string::npos) << shed->body;
  auto retry_after = common::ParseInt64(shed->HeaderOr("retry-after"));
  ASSERT_TRUE(retry_after.ok())
      << "Retry-After missing or non-numeric: '"
      << shed->HeaderOr("retry-after") << "'";
  EXPECT_GE(*retry_after, 1);
  EXPECT_LE(*retry_after, 60);
  EXPECT_EQ(server.shed_total(), 1);

  // Queued (non-shed) submissions still commit through the drain.
  server.Stop();
  for (int64_t ticket : tickets) {
    EXPECT_EQ(server.TicketStatus(ticket),
              MarketServer::TicketState::kCommitted)
        << "ticket " << ticket;
  }
}

TEST_F(ServeChaosTest, ReadinessSplitsFromLivenessAndReadsGoStale) {
  MarketServerConfig config = Config();
  config.max_batch = 1000;
  config.max_batch_delay_seconds = 60.0;
  config.max_queue = 10;
  config.degraded_watermark = 1;
  MarketServer server(&index_, config);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  // Healthy and ready before any load.
  auto ready = HttpFetch("127.0.0.1", port, "GET", "/readyz");
  ASSERT_TRUE(ready.ok());
  EXPECT_EQ(ready->status, 200);

  // One queued arrival crosses the watermark: not ready, still live.
  auto posted = HttpFetch("127.0.0.1", port, "POST", "/contracts",
                          SubmitBody(2, 4.0));
  ASSERT_TRUE(posted.ok()) << posted.status().ToString();
  EXPECT_EQ(posted->status, 202) << posted->body;
  ASSERT_TRUE(WaitForQueueDepth(port, 1.0));

  auto overloaded = HttpFetch("127.0.0.1", port, "GET", "/readyz");
  ASSERT_TRUE(overloaded.ok());
  EXPECT_EQ(overloaded->status, 503);
  EXPECT_NE(overloaded->body.find("overloaded"), std::string::npos)
      << overloaded->body;
  auto live = HttpFetch("127.0.0.1", port, "GET", "/healthz");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->status, 200);

  // Degraded reads keep answering from the last committed book, stamped
  // with a sane staleness age.
  auto assignment = HttpFetch("127.0.0.1", port, "GET", "/assignment");
  ASSERT_TRUE(assignment.ok());
  EXPECT_EQ(assignment->status, 200);
  auto age_ms = common::ParseInt64(assignment->HeaderOr("x-mroam-stale"));
  ASSERT_TRUE(age_ms.ok()) << "X-Mroam-Stale missing or non-numeric: '"
                           << assignment->HeaderOr("x-mroam-stale") << "'";
  EXPECT_GE(*age_ms, 0);
  EXPECT_LT(*age_ms, 120000) << "staleness age not in a sane range";

  // An un-overloaded read carries no staleness stamp (checked on a fresh
  // server: this one only drains from here).
  server.Stop();
  EXPECT_EQ(server.TicketStatus(1), MarketServer::TicketState::kCommitted);

  MarketServer fresh(&index_, Config());
  ASSERT_TRUE(fresh.Start().ok());
  auto clean = HttpFetch("127.0.0.1", fresh.port(), "GET", "/assignment");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->HeaderOr("x-mroam-stale"), "");
  auto fresh_ready = HttpFetch("127.0.0.1", fresh.port(), "GET", "/readyz");
  ASSERT_TRUE(fresh_ready.ok());
  EXPECT_EQ(fresh_ready->status, 200);
  fresh.Stop();
}

TEST_F(ServeChaosTest, SeededChaosRunResolvesEveryTicket) {
  // Arm the full serve-path fault set with a fixed seed: slow reads
  // (delay payloads well under the deadlines), responses cut off
  // mid-wire, and delayed replans. The run must end with every request
  // accounted for — committed, shed, or dropped — and no hung client.
  auto& injector = common::FaultInjector::Global();
  ASSERT_TRUE(injector
                  .ArmFromSpec("seed=7;serve.slow_read=0.35:10;"
                               "serve.drop_connection=0.25;"
                               "serve.delay_replan=0.5:5")
                  .ok());

  MarketServerConfig config = Config();
  config.num_threads = 8;
  config.max_batch = 4;
  config.max_batch_delay_seconds = 0.005;
  config.max_queue = 6;
  config.degraded_watermark = 3;
  config.read_idle_timeout_ms = 2000;
  config.request_timeout_ms = 5000;
  MarketServer server(&index_, config);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  constexpr int kThreads = 8;
  constexpr int kPerThread = 5;
  constexpr int kTotal = kThreads * kPerThread;
  std::atomic<int> ok_count{0};
  std::atomic<int> shed_count{0};
  std::atomic<int> error_count{0};
  std::mutex tickets_mu;
  std::vector<double> tickets;
  std::vector<std::thread> clients;
  for (int c = 0; c < kThreads; ++c) {
    clients.emplace_back([&, c] {
      for (int k = 0; k < kPerThread; ++k) {
        auto posted = HttpFetch("127.0.0.1", port, "POST", "/contracts",
                                SubmitBody(1 + (c + k) % 3, 5.0));
        if (!posted.ok()) {
          // A dropped connection surfaces as a client-side read error.
          error_count.fetch_add(1);
        } else if (posted->status == 202) {
          ok_count.fetch_add(1);
          auto ticket = ExtractJsonNumber(posted->body, "ticket");
          if (ticket.ok()) {
            std::lock_guard<std::mutex> lock(tickets_mu);
            tickets.push_back(*ticket);
          }
        } else if (posted->status == 429) {
          shed_count.fetch_add(1);
        } else {
          ADD_FAILURE() << "unexpected status " << posted->status << ": "
                        << posted->body;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Every request resolved exactly one way; nothing vanished.
  EXPECT_EQ(ok_count.load() + shed_count.load() + error_count.load(),
            kTotal);
  // Client-side errors are exactly the responses the fault cut short.
  EXPECT_EQ(error_count.load(), server.dropped_responses());
  // A shed the drop fault then truncated reaches the client as an
  // error, so the server-side shed count dominates the observed 429s.
  EXPECT_GE(server.shed_total(), shed_count.load());
  // No committed ticket was double-issued.
  std::set<double> unique(tickets.begin(), tickets.end());
  EXPECT_EQ(unique.size(), tickets.size());
  // The injected delays stayed under the deadlines.
  EXPECT_EQ(server.read_timeouts(), 0);
  // The chaos actually happened (deterministic given the seed).
  EXPECT_GT(injector.FireCount("serve.slow_read"), 0);
  EXPECT_GT(injector.FireCount("serve.drop_connection"), 0);
  EXPECT_GT(injector.FireCount("serve.delay_replan"), 0);

  // Disarmed, the server is immediately well-behaved again and its
  // report reflects the run's accounting.
  injector.Disarm();
  auto report = HttpFetch("127.0.0.1", port, "GET", "/report");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  auto reported_shed = ExtractJsonNumber(report->body, "shed_total");
  ASSERT_TRUE(reported_shed.ok()) << report->body;
  EXPECT_EQ(static_cast<int64_t>(*reported_shed), server.shed_total());
  server.Stop();

  // Every 202-accepted ticket reached committed by the drain — chaos
  // may cut responses off on the wire, never contracts off the book.
  for (double ticket : tickets) {
    EXPECT_EQ(server.TicketStatus(static_cast<int64_t>(ticket)),
              MarketServer::TicketState::kCommitted)
        << "ticket " << ticket;
  }
}

}  // namespace
}  // namespace mroam::serve
