#include "common/stopwatch.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace mroam::common {
namespace {

TEST(StopwatchTest, StartsNearZero) {
  Stopwatch watch;
  // A fresh stopwatch has not accumulated a visible amount of time; allow
  // generous slack for a loaded CI machine.
  EXPECT_GE(watch.ElapsedSeconds(), 0.0);
  EXPECT_LT(watch.ElapsedSeconds(), 1.0);
}

TEST(StopwatchTest, ElapsedIsMonotonic) {
  Stopwatch watch;
  double previous = watch.ElapsedSeconds();
  for (int i = 0; i < 100; ++i) {
    double now = watch.ElapsedSeconds();
    EXPECT_GE(now, previous);
    previous = now;
  }
}

TEST(StopwatchTest, MeasuresASleep) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  // steady_clock sleeps can only over-shoot, never under-shoot.
  EXPECT_GE(watch.ElapsedSeconds(), 0.010);
  EXPECT_GE(watch.ElapsedMillis(), 10.0);
}

TEST(StopwatchTest, MillisMatchesSeconds) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  double seconds = watch.ElapsedSeconds();
  double millis = watch.ElapsedMillis();
  // Two separate clock reads, so allow the skew between them.
  EXPECT_NEAR(millis, seconds * 1e3, 5.0);
  EXPECT_GE(millis, seconds * 1e3 - 1e-9);  // millis was read later
}

TEST(StopwatchTest, RestartDropsAccumulatedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_GE(watch.ElapsedSeconds(), 0.010);
  watch.Restart();
  // The elapsed time right after a restart must be less than what had
  // accumulated before it — the start point really moved.
  EXPECT_LT(watch.ElapsedSeconds(), 0.010);
}

TEST(StopwatchTest, RestartIsRepeatable) {
  Stopwatch watch;
  for (int i = 0; i < 3; ++i) {
    watch.Restart();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_GE(watch.ElapsedSeconds(), 0.002);
  }
}

}  // namespace
}  // namespace mroam::common
