#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/solver.h"
#include "test_util.h"

namespace mroam::common {
namespace {

TEST(ThreadPoolTest, StartupAndShutdownWithoutWork) {
  for (int n : {1, 2, 4, 8}) {
    ThreadPool pool(n);
    EXPECT_EQ(pool.num_threads(), n);
  }  // destructor joins with an empty queue
}

TEST(ThreadPoolTest, RunsEveryTaskOnFewerThreads) {
  constexpr int kTasks = 100;
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  constexpr int kTasks = 32;
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < kTasks; ++i) {
      pool.Submit([&executed] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        executed.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // destructor must run everything already queued
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionsThroughTheFuture) {
  ThreadPool pool(2);
  std::future<void> ok = pool.Submit([] {});
  std::future<void> bad =
      pool.Submit([] { throw std::runtime_error("task failed"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  constexpr int64_t kN = 200;
  ThreadPool pool(4);
  std::vector<int> hits(kN, 0);
  ParallelFor(&pool, kN, [&hits](int64_t i) { ++hits[i]; });
  for (int64_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> hits(10, 0);
  ParallelFor(nullptr, 10, [&hits](int64_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
  ParallelFor(nullptr, 0, [](int64_t) { FAIL() << "n=0 must not invoke"; });
}

TEST(ParallelForTest, RethrowsTheLowestIndexException) {
  ThreadPool pool(2);
  std::atomic<int> executed{0};
  try {
    ParallelFor(&pool, 8, [&executed](int64_t i) {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (i == 3) throw std::invalid_argument("index 3");
      if (i == 6) throw std::runtime_error("index 6");
    });
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "index 3");  // lowest failing index wins
  }
  EXPECT_EQ(executed.load(), 8);  // every task still ran to completion
}

// The contract the parallel restart engine is built on: Solve must yield
// a bit-identical RegretBreakdown for any thread count at a fixed seed.
TEST(ParallelSolveDeterminismTest, BlsBreakdownIdenticalAcrossThreadCounts) {
  model::Dataset dataset;
  influence::InfluenceIndex index = mroam::testing::IndexFromIncidence(
      mroam::testing::PaperExampleIncidence(), 20, &dataset);
  const std::vector<market::Advertiser> ads =
      mroam::testing::PaperExampleAdvertisers();

  core::SolverConfig config;
  config.method = core::Method::kBls;
  config.seed = 2026;
  config.local_search.restarts = 6;
  config.local_search.max_exchange_candidates = 4;  // exercise rng sampling

  config.local_search.num_threads = 1;
  core::SolveResult baseline = core::Solve(index, ads, config);

  for (int32_t threads : {2, 8}) {
    config.local_search.num_threads = threads;
    core::SolveResult result = core::Solve(index, ads, config);
    EXPECT_EQ(result.breakdown.total, baseline.breakdown.total)
        << threads << " threads";
    EXPECT_EQ(result.breakdown.excessive, baseline.breakdown.excessive);
    EXPECT_EQ(result.breakdown.unsatisfied_penalty,
              baseline.breakdown.unsatisfied_penalty);
    EXPECT_EQ(result.breakdown.satisfied_count,
              baseline.breakdown.satisfied_count);
    EXPECT_EQ(result.influences, baseline.influences);
    EXPECT_EQ(result.sets, baseline.sets);
    EXPECT_EQ(result.search_stats.moves_applied,
              baseline.search_stats.moves_applied);
    EXPECT_EQ(result.search_stats.deltas_evaluated,
              baseline.search_stats.deltas_evaluated);
    EXPECT_EQ(result.search_stats.sweeps, baseline.search_stats.sweeps);
  }
}

TEST(ParallelSolveDeterminismTest, AlsBreakdownIdenticalAcrossThreadCounts) {
  model::Dataset dataset;
  influence::InfluenceIndex index = mroam::testing::IndexFromIncidence(
      mroam::testing::PaperExampleIncidence(), 20, &dataset);
  const std::vector<market::Advertiser> ads =
      mroam::testing::PaperExampleAdvertisers();

  core::SolverConfig config;
  config.method = core::Method::kAls;
  config.seed = 7;
  config.local_search.restarts = 5;

  config.local_search.num_threads = 1;
  core::SolveResult baseline = core::Solve(index, ads, config);
  for (int32_t threads : {2, 8, 0 /* auto */}) {
    config.local_search.num_threads = threads;
    core::SolveResult result = core::Solve(index, ads, config);
    EXPECT_EQ(result.breakdown.total, baseline.breakdown.total)
        << threads << " threads";
    EXPECT_EQ(result.sets, baseline.sets);
  }
}

}  // namespace
}  // namespace mroam::common
