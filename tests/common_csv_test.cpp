#include "common/csv.h"

#include <cstdio>

#include "common/rng.h"
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

namespace mroam::common {
namespace {

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mroam_csv_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string PathFor(const std::string& name) { return (dir_ / name).string(); }

  void WriteFile(const std::string& name, const std::string& contents) {
    std::ofstream out(PathFor(name));
    out << contents;
  }

  std::filesystem::path dir_;
};

TEST(ParseCsvLineTest, SimpleFields) {
  auto row = ParseCsvLine("a,b,c");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, (CsvRow{"a", "b", "c"}));
}

TEST(ParseCsvLineTest, EmptyFields) {
  auto row = ParseCsvLine(",,");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, (CsvRow{"", "", ""}));
}

TEST(ParseCsvLineTest, QuotedFieldWithComma) {
  auto row = ParseCsvLine(R"(a,"b,c",d)");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, (CsvRow{"a", "b,c", "d"}));
}

TEST(ParseCsvLineTest, EscapedQuote) {
  auto row = ParseCsvLine(R"("say ""hi""",x)");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(*row, (CsvRow{R"(say "hi")", "x"}));
}

TEST(ParseCsvLineTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsvLine(R"(a,"bc)").ok());
}

TEST(ParseCsvLineTest, TextAfterClosingQuoteFails) {
  EXPECT_FALSE(ParseCsvLine(R"("ab"x,c)").ok());
}

TEST(ParseCsvLineTest, QuoteInsideUnquotedFieldFails) {
  EXPECT_FALSE(ParseCsvLine(R"(ab"c)").ok());
}

TEST(EscapeCsvFieldTest, PlainFieldUnchanged) {
  EXPECT_EQ(EscapeCsvField("abc"), "abc");
}

TEST(EscapeCsvFieldTest, QuotesWhenNeeded) {
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(EscapeCsvField("a\nb"), "\"a\nb\"");
}

TEST(JoinCsvRowTest, RoundTripsThroughParse) {
  CsvRow original{"plain", "with,comma", "with\"quote", ""};
  auto parsed = ParseCsvLine(JoinCsvRow(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, original);
}

TEST_F(CsvFileTest, WriteAndReadBack) {
  std::vector<CsvRow> rows{{"1", "2.5", "x y"}, {"2", "3.5", "z"}};
  ASSERT_TRUE(WriteCsvFile(PathFor("t.csv"), rows).ok());
  auto back = ReadCsvFile(PathFor("t.csv"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, rows);
}

TEST_F(CsvFileTest, SkipsCommentsAndBlankLines) {
  WriteFile("c.csv", "# header comment\n\na,b\n  \n# another\nc,d\n");
  auto rows = ReadCsvFile(PathFor("c.csv"));
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (CsvRow{"a", "b"}));
  EXPECT_EQ((*rows)[1], (CsvRow{"c", "d"}));
}

TEST_F(CsvFileTest, EnforcesColumnCount) {
  WriteFile("cols.csv", "a,b,c\nd,e\n");
  auto rows = ReadCsvFile(PathFor("cols.csv"), 3);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kDataLoss);
  // The error should point at the offending line.
  EXPECT_NE(rows.status().message().find(":2"), std::string::npos)
      << rows.status().message();
}

TEST_F(CsvFileTest, MissingFileIsIoError) {
  auto rows = ReadCsvFile(PathFor("missing.csv"));
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
}

TEST_F(CsvFileTest, MalformedQuoteReportsLineNumber) {
  WriteFile("bad.csv", "ok,row\n\"unterminated\n");
  auto rows = ReadCsvFile(PathFor("bad.csv"));
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(rows.status().message().find(":2"), std::string::npos);
}

TEST_F(CsvFileTest, EmbeddedNewlineIsRejectedOnRead) {
  // The reader is line-based; a field containing a newline (legal in full
  // RFC 4180) is reported as a dangling quote rather than silently
  // mis-parsed.
  WriteFile("nl.csv", "\"a\nb\",c\n");
  auto rows = ReadCsvFile(PathFor("nl.csv"));
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kDataLoss);
}

// Round-trip property over randomized field contents (commas, quotes,
// spaces — everything except newlines, which the reader rejects).
class CsvRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvRoundTripTest, RandomRowsSurviveWriteAndRead) {
  common::Rng rng(GetParam());
  const std::string alphabet = "ab,\"x 9;'#";
  std::vector<CsvRow> rows;
  for (int r = 0; r < 10; ++r) {
    CsvRow row;
    for (int c = 0; c < 4; ++c) {
      std::string field;
      size_t len = rng.UniformU64(8);
      for (size_t i = 0; i < len; ++i) {
        field.push_back(alphabet[rng.UniformU64(alphabet.size())]);
      }
      row.push_back(std::move(field));
    }
    // A row of entirely empty fields would be skipped as a blank line;
    // a leading '#' would be skipped as a comment. Keep rows observable.
    row[0] = "r" + row[0];
    rows.push_back(std::move(row));
  }
  std::string path = ::testing::TempDir() + "/mroam_csv_roundtrip_" +
                     std::to_string(GetParam()) + ".csv";
  ASSERT_TRUE(WriteCsvFile(path, rows).ok());
  auto back = ReadCsvFile(path, 4);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, rows);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST_F(CsvFileTest, WriteToUnwritablePathFails) {
  Status s = WriteCsvFile("/nonexistent_dir_mroam/x.csv", {{"a"}});
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace mroam::common
