#include "obs/run_report.h"

#include <gtest/gtest.h>

#include <string>

namespace mroam::obs {
namespace {

TEST(RunReportTest, AddPhaseAndLookup) {
  RunReport report;
  EXPECT_DOUBLE_EQ(report.PhaseSeconds("missing"), 0.0);
  report.AddPhase("greedy", 0.125);
  report.AddPhase("restarts.search", 1.5);
  EXPECT_DOUBLE_EQ(report.PhaseSeconds("greedy"), 0.125);
  EXPECT_DOUBLE_EQ(report.PhaseSeconds("restarts.search"), 1.5);
  EXPECT_DOUBLE_EQ(report.PhaseSeconds("missing"), 0.0);
}

TEST(RunReportTest, ToJsonSerializesAllSections) {
  RunReport report;
  report.label = "BLS";
  report.AddPhase("greedy", 0.25);
  report.metrics.counters.push_back({"bls.moves_applied", 12});
  RunReport::AdvertiserOutcome outcome;
  outcome.id = 3;
  outcome.demand = 100;
  outcome.payment = 150.0;
  outcome.influence = 102;
  outcome.regret = 1.0;
  outcome.satisfied = true;
  report.advertisers.push_back(outcome);

  std::string json = report.ToJson();
  EXPECT_EQ(json,
            "{\"label\":\"BLS\","
            "\"phases\":{\"greedy\":0.25},"
            "\"metrics\":{\"counters\":{\"bls.moves_applied\":12},"
            "\"gauges\":{},\"histograms\":{}},"
            "\"advertisers\":[{\"id\":3,\"demand\":100,\"payment\":150,"
            "\"influence\":102,\"regret\":1,\"satisfied\":true}]}");
}

TEST(RunReportTest, ToJsonEscapesTheLabel) {
  RunReport report;
  report.label = "odd \"label\"\n";
  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"label\":\"odd \\\"label\\\"\\n\""),
            std::string::npos);
}

TEST(RunReportTest, OneLineSummaryNamesPhasesMovesAndSatisfaction) {
  RunReport report;
  report.label = "ALS";
  report.AddPhase("greedy", 0.1);
  report.AddPhase("restarts.search", 2.0);
  report.metrics.counters.push_back({"als.moves_applied", 5});
  report.metrics.counters.push_back({"bls.moves_applied", 2});
  RunReport::AdvertiserOutcome satisfied;
  satisfied.satisfied = true;
  RunReport::AdvertiserOutcome unsatisfied;
  report.advertisers = {satisfied, unsatisfied, satisfied};

  std::string line = report.OneLineSummary();
  EXPECT_EQ(line,
            "ALS phases: greedy=0.100s restarts.search=2.000s"
            " moves=7 satisfied=2/3");
}

TEST(RunReportTest, OneLineSummaryDegradesGracefully) {
  RunReport report;  // no label, no phases, no metrics, no advertisers
  EXPECT_EQ(report.OneLineSummary(), "run phases: none");
}

}  // namespace
}  // namespace mroam::obs
