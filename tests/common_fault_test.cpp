// The deterministic fault injector: spec parsing, replayable streams,
// per-point independence, and the disarmed steady state (label `fault`).
#include "common/fault.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace mroam::common {
namespace {

// Every test leaves the global injector disarmed so suites compose.
class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

TEST_F(FaultInjectorTest, DisarmedPointsNeverFire) {
  FaultInjector::Global().Disarm();
  EXPECT_FALSE(FaultInjector::Armed());
  for (int i = 0; i < 100; ++i) {
    FaultAction action = MROAM_FAULT_POINT("serve.slow_read");
    EXPECT_FALSE(action.fire);
    EXPECT_EQ(action.delay_ms, 0);
  }
  EXPECT_EQ(FaultInjector::Global().FireCount("serve.slow_read"), 0);
}

TEST_F(FaultInjectorTest, ParsesSeedProbabilityAndDelay) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector
                  .ArmFromSpec(
                      "seed=7;serve.slow_read=1.0:25;serve.drop_connection=0.0")
                  .ok());
  EXPECT_TRUE(FaultInjector::Armed());

  // Probability 1 fires every time and carries its delay payload.
  for (int i = 0; i < 20; ++i) {
    FaultAction action = injector.Decide("serve.slow_read");
    EXPECT_TRUE(action.fire);
    EXPECT_EQ(action.delay_ms, 25);
  }
  EXPECT_EQ(injector.FireCount("serve.slow_read"), 20);

  // Probability 0 never fires; unarmed points never fire.
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(injector.Decide("serve.drop_connection").fire);
    EXPECT_FALSE(injector.Decide("io.snapshot_load").fire);
  }
  EXPECT_EQ(injector.FireCount("serve.drop_connection"), 0);
  EXPECT_EQ(injector.FireCount("io.snapshot_load"), 0);

  std::string summary = injector.Summary();
  EXPECT_NE(summary.find("seed=7"), std::string::npos) << summary;
  EXPECT_NE(summary.find("serve.slow_read"), std::string::npos) << summary;
  EXPECT_NE(summary.find("fired 20/20"), std::string::npos) << summary;
}

TEST_F(FaultInjectorTest, CommaAndSemicolonSeparatorsBothParse) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.ArmFromSpec("seed=3,a.b=0.5,c.d=1.0:10").ok());
  EXPECT_TRUE(injector.Decide("c.d").fire);
}

TEST_F(FaultInjectorTest, MalformedSpecsRejectAndStayDisarmed) {
  auto& injector = FaultInjector::Global();
  for (const char* bad : {
           "",                      // empty
           "seed=5",                // seed but no points
           "a.b",                   // no '='
           "a.b=nope",              // probability not a number
           "a.b=1.5",               // probability > 1
           "a.b=-0.1",              // probability < 0
           "a.b=0.5:xyz",           // delay not a number
           "a.b=0.5:-3",            // negative delay
           "seed=notanumber;a=1",   // bad seed
       }) {
    auto status = injector.ArmFromSpec(bad);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << "spec '" << bad << "' -> " << status.ToString();
    EXPECT_FALSE(FaultInjector::Armed()) << "spec '" << bad << "'";
  }
}

TEST_F(FaultInjectorTest, SameSpecReplaysTheSameDecisionSequence) {
  auto& injector = FaultInjector::Global();
  const std::string spec = "seed=42;serve.slow_read=0.3:5";

  ASSERT_TRUE(injector.ArmFromSpec(spec).ok());
  std::vector<bool> first;
  for (int i = 0; i < 200; ++i) {
    first.push_back(injector.Decide("serve.slow_read").fire);
  }
  // A 0.3 coin over 200 draws lands strictly inside (0, 200).
  int fires = 0;
  for (bool f : first) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 200);

  // Re-arming the identical spec resets the stream: bit-for-bit replay.
  ASSERT_TRUE(injector.ArmFromSpec(spec).ok());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(injector.Decide("serve.slow_read").fire, first[i])
        << "decision " << i;
  }
}

TEST_F(FaultInjectorTest, PointStreamsAreIndependentOfInterleaving) {
  auto& injector = FaultInjector::Global();
  const std::string spec = "seed=9;a.one=0.4;b.two=0.6";

  // Baseline: all of a.one's decisions with no other point in play.
  ASSERT_TRUE(injector.ArmFromSpec(spec).ok());
  std::vector<bool> solo;
  for (int i = 0; i < 100; ++i) solo.push_back(injector.Decide("a.one").fire);

  // Interleave b.two draws between every a.one draw: a.one's k-th
  // decision must not change — each point owns its forked stream.
  ASSERT_TRUE(injector.ArmFromSpec(spec).ok());
  for (int i = 0; i < 100; ++i) {
    injector.Decide("b.two");
    EXPECT_EQ(injector.Decide("a.one").fire, solo[i]) << "decision " << i;
    injector.Decide("b.two");
  }
}

TEST_F(FaultInjectorTest, DifferentSeedsProduceDifferentStreams) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.ArmFromSpec("seed=1;p.q=0.5").ok());
  std::vector<bool> one;
  for (int i = 0; i < 100; ++i) one.push_back(injector.Decide("p.q").fire);

  ASSERT_TRUE(injector.ArmFromSpec("seed=2;p.q=0.5").ok());
  int diffs = 0;
  for (int i = 0; i < 100; ++i) {
    diffs += (injector.Decide("p.q").fire != one[i]) ? 1 : 0;
  }
  EXPECT_GT(diffs, 0);
}

TEST_F(FaultInjectorTest, DisarmStopsFiringImmediately) {
  auto& injector = FaultInjector::Global();
  ASSERT_TRUE(injector.ArmFromSpec("seed=4;x.y=1.0").ok());
  EXPECT_TRUE(MROAM_FAULT_POINT("x.y").fire);
  injector.Disarm();
  EXPECT_FALSE(FaultInjector::Armed());
  EXPECT_FALSE(MROAM_FAULT_POINT("x.y").fire);
}

}  // namespace
}  // namespace mroam::common
