#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace mroam::obs {
namespace {

TEST(CounterTest, AddsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(CounterTest, ShardsSumAcrossThreads) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(5);
  EXPECT_EQ(gauge.Value(), 5);
  gauge.Add(-2);
  EXPECT_EQ(gauge.Value(), 3);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

TEST(HistogramTest, BucketsByUpperBoundWithOverflow) {
  Histogram h({0.001, 0.01, 0.1});
  h.Observe(0.0005);  // <= 0.001 -> bucket 0
  h.Observe(0.001);   // == bound -> bucket 0 (bounds are inclusive)
  h.Observe(0.005);   // bucket 1
  h.Observe(0.05);    // bucket 2
  h.Observe(5.0);     // overflow
  std::vector<int64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h.TotalCount(), 5);
  EXPECT_NEAR(h.Sum(), 0.0005 + 0.001 + 0.005 + 0.05 + 5.0, 1e-12);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

TEST(HistogramTest, SortsAndDeduplicatesBounds) {
  Histogram h({0.1, 0.001, 0.1, 0.01});
  EXPECT_EQ(h.bounds(), (std::vector<double>{0.001, 0.01, 0.1}));
  EXPECT_EQ(h.BucketCounts().size(), 4u);
}

TEST(MetricsRegistryTest, ReturnsStablePointers) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* a = registry.GetCounter("test.registry.stable");
  Counter* b = registry.GetCounter("test.registry.stable");
  EXPECT_EQ(a, b);
  Gauge* g1 = registry.GetGauge("test.registry.gauge");
  Gauge* g2 = registry.GetGauge("test.registry.gauge");
  EXPECT_EQ(g1, g2);
}

TEST(MetricsRegistryTest, HistogramBoundsApplyOnFirstRegistrationOnly) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Histogram* first = registry.GetHistogram("test.registry.hist", {1.0, 2.0});
  Histogram* second = registry.GetHistogram("test.registry.hist", {9.0});
  EXPECT_EQ(first, second);
  EXPECT_EQ(second->bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsSnapshotTest, CapturesRegisteredValues) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.snapshot.counter")->Reset();
  registry.GetCounter("test.snapshot.counter")->Add(7);
  registry.GetGauge("test.snapshot.gauge")->Set(3);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterOf("test.snapshot.counter"), 7);
  EXPECT_EQ(snapshot.CounterOf("test.snapshot.absent"), 0);
  bool found_gauge = false;
  for (const auto& g : snapshot.gauges) {
    if (g.name == "test.snapshot.gauge") {
      found_gauge = true;
      EXPECT_EQ(g.value, 3);
    }
  }
  EXPECT_TRUE(found_gauge);
}

TEST(MetricsSnapshotTest, DeltaSinceSubtractsAndDropsUntouched) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* moved = registry.GetCounter("test.delta.moved");
  Counter* idle = registry.GetCounter("test.delta.idle");
  Histogram* hist = registry.GetHistogram("test.delta.hist", {1.0});
  moved->Reset();
  idle->Reset();
  hist->Reset();
  moved->Add(10);
  idle->Add(4);
  hist->Observe(0.5);

  MetricsSnapshot before = registry.Snapshot();
  moved->Add(5);
  hist->Observe(2.0);
  hist->Observe(0.25);
  MetricsSnapshot after = registry.Snapshot();
  MetricsSnapshot delta = after.DeltaSince(before);

  EXPECT_EQ(delta.CounterOf("test.delta.moved"), 5);
  // The idle counter did not move between the snapshots, so the delta
  // drops it entirely.
  for (const auto& c : delta.counters) {
    EXPECT_NE(c.name, "test.delta.idle");
  }
  const MetricsSnapshot::HistogramValue* h =
      delta.FindHistogram("test.delta.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2);
  EXPECT_NEAR(h->sum, 2.25, 1e-12);
  ASSERT_EQ(h->counts.size(), 2u);
  EXPECT_EQ(h->counts[0], 1);  // the 0.25 observation
  EXPECT_EQ(h->counts[1], 1);  // the 2.0 overflow
}

TEST(MetricsSnapshotTest, ToJsonHasTheDocumentedShape) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"a.count", 2});
  snapshot.gauges.push_back({"q.depth", 1});
  MetricsSnapshot::HistogramValue h;
  h.name = "lat";
  h.bounds = {0.5};
  h.counts = {3, 1};
  h.count = 4;
  h.sum = 1.25;
  snapshot.histograms.push_back(h);

  std::string json = snapshot.ToJson();
  EXPECT_EQ(json,
            "{\"counters\":{\"a.count\":2},"
            "\"gauges\":{\"q.depth\":1},"
            "\"histograms\":{\"lat\":{\"count\":4,\"sum\":1.25,"
            "\"buckets\":[{\"le\":0.5,\"count\":3},"
            "{\"le\":\"+Inf\",\"count\":1}]}}}");
}

TEST(MetricsSnapshotTest, ToPrometheusMangledNamesAndCumulativeBuckets) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"als.moves_applied", 7});
  MetricsSnapshot::HistogramValue h;
  h.name = "rls.search_seconds";
  h.bounds = {0.1, 1.0};
  h.counts = {2, 1, 1};
  h.count = 4;
  h.sum = 2.5;
  snapshot.histograms.push_back(h);

  std::string text = snapshot.ToPrometheus();
  EXPECT_NE(text.find("# TYPE mroam_als_moves_applied counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("mroam_als_moves_applied 7\n"), std::string::npos);
  // Buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("mroam_rls_search_seconds_bucket{le=\"0.1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("mroam_rls_search_seconds_bucket{le=\"1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("mroam_rls_search_seconds_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("mroam_rls_search_seconds_sum 2.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("mroam_rls_search_seconds_count 4\n"),
            std::string::npos);
}

TEST(MetricsSnapshotTest, ToPrometheusEmitsHelpAndTypeOncePerFamily) {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"als.moves_applied", 7});
  snapshot.gauges.push_back({"serve.queue_depth", 3});
  MetricsSnapshot::HistogramValue h;
  h.name = "rls.search_seconds";
  h.bounds = {0.1};
  h.counts = {1, 0};
  h.count = 1;
  h.sum = 0.05;
  snapshot.histograms.push_back(h);

  std::string text = snapshot.ToPrometheus();
  // Exactly one HELP and one TYPE line per family, HELP before TYPE.
  for (const char* family :
       {"mroam_als_moves_applied", "mroam_serve_queue_depth",
        "mroam_rls_search_seconds"}) {
    const std::string help = std::string("# HELP ") + family + " ";
    const std::string type = std::string("# TYPE ") + family + " ";
    const size_t help_at = text.find(help);
    const size_t type_at = text.find(type);
    ASSERT_NE(help_at, std::string::npos) << family;
    ASSERT_NE(type_at, std::string::npos) << family;
    EXPECT_LT(help_at, type_at) << family;
    EXPECT_EQ(text.find(help, help_at + 1), std::string::npos) << family;
    EXPECT_EQ(text.find(type, type_at + 1), std::string::npos) << family;
  }
  // HELP carries the original dotted name.
  EXPECT_NE(text.find("# HELP mroam_als_moves_applied mroam counter "
                      "'als.moves_applied'\n"),
            std::string::npos);
}

TEST(MetricsSnapshotTest, ToPrometheusDisambiguatesCollidingFamilies) {
  // "a.b" and "a_b" both sanitize to mroam_a_b; a counter and a gauge
  // can collide the same way. Collisions must not produce duplicate
  // HELP/TYPE headers for one family name.
  MetricsSnapshot snapshot;
  snapshot.counters.push_back({"a.b", 1});
  snapshot.counters.push_back({"a_b", 2});
  snapshot.gauges.push_back({"a.b", 3});

  std::string text = snapshot.ToPrometheus();
  EXPECT_NE(text.find("# TYPE mroam_a_b counter\n"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE mroam_a_b counter\n",
                      text.find("# TYPE mroam_a_b counter\n") + 1),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mroam_a_b_counter counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE mroam_a_b_gauge gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("mroam_a_b 1\n"), std::string::npos);
  EXPECT_NE(text.find("mroam_a_b_counter 2\n"), std::string::npos);
  EXPECT_NE(text.find("mroam_a_b_gauge 3\n"), std::string::npos);
}

TEST(PrometheusEscapeTest, EscapesHelpAndLabelValues) {
  EXPECT_EQ(internal::PrometheusEscapeHelp("plain"), "plain");
  EXPECT_EQ(internal::PrometheusEscapeHelp("a\\b\nc"), "a\\\\b\\nc");
  // Label values additionally escape the double quote.
  EXPECT_EQ(internal::PrometheusEscapeLabel("say \"hi\"\n"),
            "say \\\"hi\\\"\\n");
  EXPECT_EQ(internal::PrometheusEscapeLabel("back\\slash"),
            "back\\\\slash");
}

TEST(HistogramQuantileTest, InterpolatesWithinTheWinningBucket) {
  MetricsSnapshot::HistogramValue h;
  h.bounds = {1.0, 2.0, 4.0};
  h.counts = {2, 2, 2, 0};
  h.count = 6;
  // Median: 3 of 6 observations land at the end of bucket 1 ([1,2]).
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.5);
  // Bucket 0 is anchored at zero.
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 0.75);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
}

TEST(HistogramQuantileTest, HandlesOverflowAndEmpty) {
  MetricsSnapshot::HistogramValue h;
  h.bounds = {1.0, 2.0};
  h.counts = {0, 0, 5};  // everything overflowed
  h.count = 5;
  // The overflow bucket has no finite edge: pinned to the largest bound.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 2.0);

  MetricsSnapshot::HistogramValue empty;
  empty.bounds = {1.0};
  empty.counts = {0, 0};
  empty.count = 0;
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
}

TEST(JsonHelpersTest, EscapesAndFormats) {
  std::string out;
  internal::AppendJsonString(&out, "a\"b\\c\nd");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(internal::JsonDouble(3.0), "3");
  EXPECT_EQ(internal::JsonDouble(-2.0), "-2");
  EXPECT_EQ(internal::JsonDouble(0.25), "0.25");
}

// The tsan target of this suite: snapshots race with hot-path writers by
// design (relaxed atomics, no locks on the write side). Writers hammer a
// counter, a gauge, and a histogram while the main thread snapshots; the
// final snapshot must contain the exact totals.
TEST(MetricsConcurrencyTest, SnapshotWhileWriting) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.race.counter");
  Gauge* gauge = registry.GetGauge("test.race.gauge");
  Histogram* hist = registry.GetHistogram("test.race.hist", {0.5});
  counter->Reset();
  gauge->Reset();
  hist->Reset();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add();
        gauge->Set(i);
        hist->Observe(i % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    MetricsSnapshot mid = registry.Snapshot();
    EXPECT_GE(mid.CounterOf("test.race.counter"), 0);
    EXPECT_LE(mid.CounterOf("test.race.counter"),
              int64_t{kThreads} * kPerThread);
  }
  for (auto& writer : writers) writer.join();

  MetricsSnapshot final_snapshot = registry.Snapshot();
  EXPECT_EQ(final_snapshot.CounterOf("test.race.counter"),
            int64_t{kThreads} * kPerThread);
  const MetricsSnapshot::HistogramValue* h =
      final_snapshot.FindHistogram("test.race.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, int64_t{kThreads} * kPerThread);
  ASSERT_EQ(h->counts.size(), 2u);
  EXPECT_EQ(h->counts[0], int64_t{kThreads} * kPerThread / 2);
  EXPECT_EQ(h->counts[1], int64_t{kThreads} * kPerThread / 2);
}

TEST(MetricsRegistryTest, ResetForTestZeroesEverything) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("test.reset.counter")->Add(3);
  registry.GetGauge("test.reset.gauge")->Set(9);
  registry.GetHistogram("test.reset.hist")->Observe(1.0);
  registry.ResetForTest();
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterOf("test.reset.counter"), 0);
  const MetricsSnapshot::HistogramValue* h =
      snapshot.FindHistogram("test.reset.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 0);
}

}  // namespace
}  // namespace mroam::obs
