#include "eval/svg_export.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "test_util.h"

namespace mroam::eval {
namespace {

using mroam::testing::Adv;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

model::Dataset SmallCity() {
  model::Dataset d;
  d.name = "svg-fixture";
  for (int i = 0; i < 4; ++i) {
    model::Billboard b;
    b.id = i;
    b.location = {100.0 * i, 50.0 * i};
    d.billboards.push_back(b);
  }
  model::Trajectory t;
  t.id = 0;
  t.points = {{0, 0}, {300, 150}};
  d.trajectories.push_back(t);
  return d;
}

core::SolveResult TwoAdvertiserResult() {
  core::SolveResult result;
  result.sets = {{0, 2}, {1}};  // billboard 3 unassigned
  result.influences = {1, 1};
  return result;
}

TEST(AdvertiserColorTest, StableAndCycling) {
  EXPECT_EQ(AdvertiserColor(0), AdvertiserColor(0));
  EXPECT_NE(AdvertiserColor(0), AdvertiserColor(1));
  EXPECT_EQ(AdvertiserColor(0), AdvertiserColor(16));  // palette cycles
  EXPECT_EQ(AdvertiserColor(3).front(), '#');
}

TEST(WriteDeploymentSvgTest, ProducesWellFormedSvg) {
  std::string path = ::testing::TempDir() + "/mroam_map.svg";
  ASSERT_TRUE(
      WriteDeploymentSvg(path, SmallCity(), TwoAdvertiserResult()).ok());
  std::string svg = ReadFile(path);
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Four billboards drawn.
  size_t circles = 0;
  for (size_t pos = svg.find("<circle"); pos != std::string::npos;
       pos = svg.find("<circle", pos + 1)) {
    ++circles;
  }
  EXPECT_EQ(circles, 4u);
  // Advertiser colors and the unassigned grey all appear.
  EXPECT_NE(svg.find(AdvertiserColor(0)), std::string::npos);
  EXPECT_NE(svg.find(AdvertiserColor(1)), std::string::npos);
  EXPECT_NE(svg.find("#bbbbbb"), std::string::npos);
  // Trajectory layer present by default.
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
}

TEST(WriteDeploymentSvgTest, TrajectoryLayerCanBeDisabled) {
  std::string path = ::testing::TempDir() + "/mroam_map_no_traj.svg";
  SvgOptions options;
  options.trajectory_fraction = 0.0;
  ASSERT_TRUE(WriteDeploymentSvg(path, SmallCity(), TwoAdvertiserResult(),
                                 options)
                  .ok());
  EXPECT_EQ(ReadFile(path).find("<polyline"), std::string::npos);
}

TEST(WriteDeploymentSvgTest, RejectsEmptyDataset) {
  model::Dataset empty;
  core::SolveResult result;
  EXPECT_FALSE(WriteDeploymentSvg(::testing::TempDir() + "/x.svg", empty,
                                  result)
                   .ok());
}

TEST(WriteDeploymentSvgTest, RejectsBadOptions) {
  SvgOptions options;
  options.width_px = 0;
  EXPECT_FALSE(WriteDeploymentSvg(::testing::TempDir() + "/x.svg",
                                  SmallCity(), TwoAdvertiserResult(),
                                  options)
                   .ok());
}

TEST(WriteDeploymentSvgTest, UnwritablePathIsIoError) {
  auto status = WriteDeploymentSvg("/nonexistent_mroam_dir/map.svg",
                                   SmallCity(), TwoAdvertiserResult());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), common::StatusCode::kIoError);
}

}  // namespace
}  // namespace mroam::eval
