// The serving layer: HTTP plumbing units, MarketServer routing, and an
// end-to-end exercise with concurrent clients over real sockets (labeled
// `serve` + `concurrency`; runs under the tsan preset).
#include "serve/http.h"

#include <netinet/in.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/market_server.h"
#include "test_util.h"

namespace mroam::serve {
namespace {

using common::StatusCode;
using mroam::testing::IndexFromIncidence;

// --- HTTP plumbing units ---------------------------------------------------

TEST(HttpParseTest, ParsesRequestLineAndHeaders) {
  auto parsed = ParseRequestHead(
      "POST /contracts HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 12\r\n"
      "X-Mixed-CASE:  spaced value \r\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->method, "POST");
  EXPECT_EQ(parsed->target, "/contracts");
  EXPECT_EQ(parsed->version, "HTTP/1.1");
  EXPECT_EQ(parsed->HeaderOr("content-length"), "12");
  // Header names are lowercased, values whitespace-stripped.
  EXPECT_EQ(parsed->HeaderOr("x-mixed-case"), "spaced value");
  EXPECT_EQ(parsed->HeaderOr("absent", "fallback"), "fallback");
}

TEST(HttpParseTest, RejectsMalformedRequestLine) {
  EXPECT_EQ(ParseRequestHead("GARBAGE").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequestHead("GET /x").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequestHead("GET /x NOTHTTP").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequestHead("").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(HttpParseTest, RejectsHeaderWithoutColon) {
  auto parsed = ParseRequestHead("GET / HTTP/1.1\r\nbadheader\r\n");
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(HttpParseTest, RejectsRequestLineWithEmbeddedSpaceTarget) {
  // Regression: "GET /a b HTTP/1.1" used to parse with target "/a b" —
  // three tokens means a malformed request line, not a spacey target.
  EXPECT_EQ(ParseRequestHead("GET /a b HTTP/1.1\r\n").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequestHead("GET  /x HTTP/1.1\r\n").status().code(),
            StatusCode::kInvalidArgument);
  // Exactly two single spaces is still fine.
  EXPECT_TRUE(ParseRequestHead("GET /x HTTP/1.1\r\n").ok());
}

TEST(HttpParseTest, RejectsEmptyHeaderName) {
  // Regression: ": value" (and its all-whitespace-name variant) used to
  // slip through as an empty-string header key.
  EXPECT_EQ(
      ParseRequestHead("GET / HTTP/1.1\r\n: value\r\n").status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      ParseRequestHead("GET / HTTP/1.1\r\n  : value\r\n").status().code(),
      StatusCode::kInvalidArgument);
}

TEST(HttpParseTest, SerializeCarriesContentLengthAndClose) {
  HttpResponse response;
  response.status = 404;
  response.body = "{\"error\":\"nope\"}";
  std::string wire = response.Serialize();
  EXPECT_NE(wire.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 16\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"error\":\"nope\"}"), std::string::npos);
}

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(HttpParseTest, SerializeDropsCallerSuppliedFramingHeaders) {
  // Regression: a caller stuffing Content-Type/Content-Length/Connection
  // into headers used to produce duplicates of the generated ones (with
  // the caller's Content-Length able to desync keep-alive framing).
  HttpResponse response;
  response.body = "hello";
  response.headers.emplace_back("Content-Length", "999");
  response.headers.emplace_back("content-type", "text/plain");
  response.headers.emplace_back("Connection", "keep-alive");
  response.headers.emplace_back("Retry-After", "3");
  std::string wire = response.Serialize();
  EXPECT_EQ(CountOccurrences(wire, "Content-Length:"), 1u);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos) << wire;
  EXPECT_EQ(CountOccurrences(wire, "Content-Type:") +
                CountOccurrences(wire, "content-type:"),
            1u);
  EXPECT_EQ(CountOccurrences(wire, "Connection:") +
                CountOccurrences(wire, "connection:"),
            1u);
  // keep_alive was not set: the honest Connection value is close.
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 3\r\n"), std::string::npos);
}

TEST(HttpParseTest, SerializeHonorsKeepAlive) {
  HttpResponse response;
  response.keep_alive = true;
  response.body = "{}";
  std::string wire = response.Serialize();
  EXPECT_NE(wire.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(wire.find("Connection: close"), std::string::npos);
}

TEST(HttpParseTest, ExtractJsonNumberFindsFields) {
  std::string json = "{\"demand\": 120, \"payment\":3.5e1,\"neg\" : -7}";
  EXPECT_DOUBLE_EQ(*ExtractJsonNumber(json, "demand"), 120.0);
  EXPECT_DOUBLE_EQ(*ExtractJsonNumber(json, "payment"), 35.0);
  EXPECT_DOUBLE_EQ(*ExtractJsonNumber(json, "neg"), -7.0);
  EXPECT_EQ(ExtractJsonNumber(json, "absent").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ExtractJsonNumber("{\"demand\": \"str\"}", "demand")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(HttpParseTest, ContentLengthAcceptsOnlyPlainDigits) {
  EXPECT_EQ(*ParseContentLength("0"), 0u);
  EXPECT_EQ(*ParseContentLength("123"), 123u);
  EXPECT_EQ(*ParseContentLength("007"), 7u);
  // Everything strtoull would quietly accept must be rejected.
  for (const char* bad :
       {"", "+5", "-5", " 5", "5 ", "0x10", "1e3", "12a", "five"}) {
    EXPECT_EQ(ParseContentLength(bad).status().code(),
              StatusCode::kInvalidArgument)
        << "input '" << bad << "'";
  }
  // The body cap is enforced during parsing, overflow-safely.
  EXPECT_EQ(*ParseContentLength(std::to_string(kMaxHttpBodyBytes)),
            kMaxHttpBodyBytes);
  EXPECT_EQ(ParseContentLength(std::to_string(kMaxHttpBodyBytes + 1))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseContentLength("99999999999999999999").status().code(),
            StatusCode::kInvalidArgument);
}

// Feeds raw wire bytes through a socketpair into ReadHttpRequest, the
// same path MarketServer uses for real connections.
common::Result<HttpRequest> ReadRequestFromWire(const std::string& wire) {
  int fds[2] = {-1, -1};
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    return common::Status::IoError("socketpair failed");
  }
  common::Status written = WriteAll(fds[1], wire);
  close(fds[1]);  // EOF afterwards, so truncated input fails cleanly
  if (!written.ok()) {
    close(fds[0]);
    return written;
  }
  auto parsed = ReadHttpRequest(fds[0]);
  close(fds[0]);
  return parsed;
}

TEST(HttpReadRequestTest, ReadsBodyPerContentLength) {
  auto parsed = ReadRequestFromWire(
      "POST /contracts HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->body, "hello");
  // No Content-Length means no body.
  auto bare = ReadRequestFromWire("GET / HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(bare.ok()) << bare.status().ToString();
  EXPECT_EQ(bare->body, "");
}

TEST(HttpReadRequestTest, RejectsConflictingDuplicateContentLength) {
  auto parsed = ReadRequestFromWire(
      "POST / HTTP/1.1\r\n"
      "Content-Length: 5\r\n"
      "Content-Length: 6\r\n\r\nhello!");
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(HttpReadRequestTest, AcceptsRepeatedIdenticalContentLength) {
  auto parsed = ReadRequestFromWire(
      "POST / HTTP/1.1\r\n"
      "Content-Length: 5\r\n"
      "Content-Length: 5\r\n\r\nhello");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->body, "hello");
}

TEST(HttpReadRequestTest, RejectsMalformedContentLengthOnTheWire) {
  for (const char* bad : {"+5", "5x", "0x10", "1e2"}) {
    auto parsed = ReadRequestFromWire(
        std::string("POST / HTTP/1.1\r\nContent-Length: ") + bad +
        "\r\n\r\n12345");
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
        << "Content-Length '" << bad << "'";
  }
}

TEST(HttpReadRequestTest, HeadStraddlingRecvChunksStillParses) {
  // Pad the head so the \r\n\r\n terminator straddles ReadUntil's
  // 4096-byte recv boundary — the resumed scan must still find it.
  std::string head = "POST /pad HTTP/1.1\r\nContent-Length: 3\r\nx-pad: ";
  const size_t marker_start = 4094;
  ASSERT_LT(head.size(), marker_start);
  const size_t pad = marker_start - head.size();
  head += std::string(pad, 'a');
  head += "\r\n\r\n";
  auto parsed = ReadRequestFromWire(head + "abc");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->body, "abc");
  EXPECT_EQ(parsed->HeaderOr("x-pad").size(), pad);
}

// --- Deadlines and interruption --------------------------------------------

TEST(HttpDeadlineTest, IdleTimeoutTripsOnAStalledPeer) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Partial head, then silence with the connection held open — the
  // classic slow-loris shape.
  ASSERT_TRUE(WriteAll(fds[1], "POST /contracts HTTP/1.1\r\n").ok());
  HttpTimeouts timeouts;
  timeouts.idle_ms = 60;
  auto parsed = ReadHttpRequest(fds[0], timeouts);
  EXPECT_EQ(parsed.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(parsed.status().message().find("idle"), std::string::npos)
      << parsed.status().ToString();
  close(fds[0]);
  close(fds[1]);
}

TEST(HttpDeadlineTest, TotalBudgetTripsOnADribblingPeer) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // One header byte every 15ms stays under any reasonable idle budget
  // forever; only the whole-request budget can stop it.
  std::atomic<bool> stop{false};
  std::thread dribbler([&] {
    while (!stop.load()) {
      if (::send(fds[1], "a", 1, MSG_NOSIGNAL) <= 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
    }
  });
  HttpTimeouts timeouts;
  timeouts.idle_ms = -1;
  timeouts.total_ms = 120;
  auto parsed = ReadHttpRequest(fds[0], timeouts);
  EXPECT_EQ(parsed.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(parsed.status().message().find("budget"), std::string::npos)
      << parsed.status().ToString();
  stop.store(true);
  dribbler.join();
  close(fds[0]);
  close(fds[1]);
}

TEST(HttpDeadlineTest, EqualIdleAndTotalBudgetsReportTheTotal) {
  // Regression: with idle_ms == remaining total budget the poll wait was
  // the same number either way, and the expiry was misattributed to the
  // idle timeout. The total budget must win the tie.
  int fds[2] = {-1, -1};
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(WriteAll(fds[1], "POST /contracts HTTP/1.1\r\n").ok());
  HttpTimeouts timeouts;
  timeouts.idle_ms = 120;
  timeouts.total_ms = 120;
  auto parsed = ReadHttpRequest(fds[0], timeouts);
  EXPECT_EQ(parsed.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(parsed.status().message().find("budget"), std::string::npos)
      << parsed.status().ToString();
  EXPECT_EQ(parsed.status().message().find("idle"), std::string::npos)
      << parsed.status().ToString();
  close(fds[0]);
  close(fds[1]);
}

TEST(HttpDeadlineTest, WriteAllTimesOutWhenPeerStopsDraining) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Shrink the buffers so a never-reading peer wedges the write fast.
  int small = 4096;
  setsockopt(fds[1], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  setsockopt(fds[0], SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
  std::string big(4 << 20, 'x');
  HttpTimeouts timeouts;
  timeouts.idle_ms = 80;
  timeouts.total_ms = 400;
  common::Status status = WriteAll(fds[1], big, timeouts);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded)
      << status.ToString();
  close(fds[0]);
  close(fds[1]);
}

void Sigusr1Noop(int) {}

TEST(HttpDeadlineTest, EintrDuringBlockingReadIsRetried) {
  // A handler installed WITHOUT SA_RESTART makes recv/poll return EINTR;
  // the reader must absorb that and finish the parse.
  struct sigaction action = {};
  action.sa_handler = Sigusr1Noop;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: syscalls really get EINTR
  struct sigaction previous = {};
  ASSERT_EQ(sigaction(SIGUSR1, &action, &previous), 0);

  int fds[2] = {-1, -1};
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  common::Result<HttpRequest> parsed =
      common::Status::Internal("never ran");
  std::thread reader([&] { parsed = ReadHttpRequest(fds[0]); });
  pthread_t handle = reader.native_handle();

  // Pepper the blocked reader with signals, then complete the request.
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pthread_kill(handle, SIGUSR1);
  }
  ASSERT_TRUE(
      WriteAll(fds[1], "POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
          .ok());
  pthread_kill(handle, SIGUSR1);
  reader.join();
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->body, "hello");

  sigaction(SIGUSR1, &previous, nullptr);
  close(fds[0]);
  close(fds[1]);
}

using HttpWriteDeathTest = ::testing::Test;

[[noreturn]] void WriteIntoHalfClosedSocketThenExit() {
  signal(SIGPIPE, SIG_DFL);  // undo any inherited SIG_IGN
  int pair[2] = {-1, -1};
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) std::exit(2);
  close(pair[0]);  // peer hangs up
  std::string chunk(1 << 16, 'x');
  common::Status status;
  for (int i = 0; i < 256 && status.ok(); ++i) {
    status = WriteAll(pair[1], chunk);
  }
  close(pair[1]);
  std::exit(status.code() == StatusCode::kIoError ? 0 : 1);
}

TEST(HttpWriteDeathTest, HalfClosedPeerIsIoErrorNotSigpipe) {
  // With default SIGPIPE disposition, writing into a half-closed socket
  // kills the process unless the writer suppresses the signal. WriteAll
  // must surface kIoError and leave the process alive to exit(0).
  EXPECT_EXIT(WriteIntoHalfClosedSocketThenExit(),
              ::testing::ExitedWithCode(0), "");
}

// --- Response headers, end to end ------------------------------------------

TEST(HttpHeadersTest, SerializeEmitsExtraHeaders) {
  HttpResponse response;
  response.status = 429;
  response.headers.emplace_back("Retry-After", "7");
  response.headers.emplace_back("X-Mroam-Stale", "120");
  response.body = "{}";
  std::string wire = response.Serialize();
  EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 7\r\n"), std::string::npos);
  EXPECT_NE(wire.find("X-Mroam-Stale: 120\r\n"), std::string::npos);
  // Extra headers stay inside the head, never after the blank line.
  EXPECT_LT(wire.find("Retry-After"), wire.find("\r\n\r\n"));
  EXPECT_EQ(response.HeaderOr("Retry-After"), "7");
  EXPECT_EQ(response.HeaderOr("absent", "fallback"), "fallback");
}

TEST(HttpHeadersTest, HttpFetchParsesResponseHeaders) {
  // One-shot server: accept a single connection, answer with extra
  // headers, close. Exercises the client-side header parse over a real
  // socket.
  int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(
      ::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
      0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(
      ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len),
      0);
  const int port = ntohs(addr.sin_port);

  HttpResponse canned;
  canned.status = 429;
  canned.headers.emplace_back("Retry-After", "9");
  canned.body = "{\"error\":\"busy\"}";
  std::thread server([listen_fd, wire = canned.Serialize()] {
    int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      char buf[4096];
      (void)::recv(fd, buf, sizeof(buf), 0);
      (void)WriteAll(fd, wire);
      ::close(fd);
    }
    ::close(listen_fd);
  });

  auto fetched = HttpFetch("127.0.0.1", port, "GET", "/busy");
  server.join();
  ASSERT_TRUE(fetched.ok()) << fetched.status().ToString();
  EXPECT_EQ(fetched->status, 429);
  // Names are lowercased by the client-side parser.
  EXPECT_EQ(fetched->HeaderOr("retry-after"), "9");
  EXPECT_EQ(fetched->body, "{\"error\":\"busy\"}");
}

// --- MarketServer ----------------------------------------------------------

class MarketServerTest : public ::testing::Test {
 protected:
  // Eight disjoint billboards with influence {4,4,4,4,2,2,2,2}.
  MarketServerTest()
      : index_(IndexFromIncidence(
            {{0, 1, 2, 3},
             {4, 5, 6, 7},
             {8, 9, 10, 11},
             {12, 13, 14, 15},
             {16, 17},
             {18, 19},
             {20, 21},
             {22, 23}},
            24, &dataset_)) {}

  MarketServerConfig Config() {
    MarketServerConfig config;
    config.port = 0;  // ephemeral
    config.num_threads = 4;
    config.max_batch = 4;
    config.max_batch_delay_seconds = 0.01;
    config.market.policy = core::ReplanPolicy::kLockExisting;
    return config;
  }

  static std::string SubmitBody(int64_t demand, double payment) {
    return "{\"demand\": " + std::to_string(demand) +
           ", \"payment\": " + std::to_string(payment) + "}";
  }

  model::Dataset dataset_;
  influence::InfluenceIndex index_;
};

TEST_F(MarketServerTest, RoutingRejectsUnknownTargetsAndMethods) {
  MarketServer server(&index_, Config());
  // Handle() is pure routing — no Start() needed.
  HttpRequest request;
  request.method = "GET";
  request.target = "/nope";
  EXPECT_EQ(server.Handle(request).status, 404);
  request.method = "PUT";
  request.target = "/contracts";
  EXPECT_EQ(server.Handle(request).status, 405);
  request.method = "DELETE";
  request.target = "/contracts/notanumber";
  EXPECT_EQ(server.Handle(request).status, 400);
  request.method = "GET";
  request.target = "/healthz";
  EXPECT_EQ(server.Handle(request).status, 200);
}

TEST_F(MarketServerTest, SubmitValidationFailsFast) {
  MarketServer server(&index_, Config());
  HttpRequest request;
  request.method = "POST";
  request.target = "/contracts";
  request.body = "not json at all";
  EXPECT_EQ(server.Handle(request).status, 400);
  request.body = "{\"demand\": -5, \"payment\": 2}";
  EXPECT_EQ(server.Handle(request).status, 400);
  request.body = "{\"demand\": 5, \"payment\": -2}";
  EXPECT_EQ(server.Handle(request).status, 400);
  request.body = "{\"demand\": 1e300, \"payment\": 2}";
  EXPECT_EQ(server.Handle(request).status, 400);
}

TEST_F(MarketServerTest, EndToEndContractLifecycle) {
  MarketServer server(&index_, Config());
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();
  ASSERT_GT(port, 0);

  // Admission is decoupled from replanning: the POST answers 202 with a
  // ticket immediately, and the group-commit outcome is polled.
  auto posted = HttpFetch("127.0.0.1", port, "POST", "/contracts",
                          SubmitBody(4, 10.0));
  ASSERT_TRUE(posted.ok()) << posted.status().ToString();
  EXPECT_EQ(posted->status, 202);
  EXPECT_DOUBLE_EQ(*ExtractJsonNumber(posted->body, "ticket"), 1.0);
  EXPECT_NE(posted->body.find("\"status\":\"pending\""), std::string::npos)
      << posted->body;

  std::string committed;
  for (int attempt = 0; attempt < 500 && committed.empty(); ++attempt) {
    auto polled = HttpFetch("127.0.0.1", port, "GET", "/tickets/1");
    ASSERT_TRUE(polled.ok()) << polled.status().ToString();
    ASSERT_EQ(polled->status, 200) << polled->body;
    if (polled->body.find("\"status\":\"committed\"") != std::string::npos) {
      committed = polled->body;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  ASSERT_FALSE(committed.empty()) << "ticket 1 never committed";
  EXPECT_DOUBLE_EQ(*ExtractJsonNumber(committed, "influence"), 4.0);
  EXPECT_NE(committed.find("\"satisfied\":true"), std::string::npos)
      << committed;

  auto unknown = HttpFetch("127.0.0.1", port, "GET", "/tickets/999");
  ASSERT_TRUE(unknown.ok());
  EXPECT_EQ(unknown->status, 404);

  auto assignment = HttpFetch("127.0.0.1", port, "GET", "/assignment");
  ASSERT_TRUE(assignment.ok());
  EXPECT_EQ(assignment->status, 200);
  EXPECT_NE(assignment->body.find("\"ticket\":1"), std::string::npos);

  auto report = HttpFetch("127.0.0.1", port, "GET", "/report");
  ASSERT_TRUE(report.ok());
  EXPECT_DOUBLE_EQ(*ExtractJsonNumber(report->body, "active_contracts"),
                   1.0);

  auto metrics = HttpFetch("127.0.0.1", port, "GET", "/metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->status, 200);
  EXPECT_NE(metrics->body.find("mroam_serve_batches"), std::string::npos);

  auto cancelled =
      HttpFetch("127.0.0.1", port, "DELETE", "/contracts/1");
  ASSERT_TRUE(cancelled.ok());
  EXPECT_EQ(cancelled->status, 200);
  auto cancel_again =
      HttpFetch("127.0.0.1", port, "DELETE", "/contracts/1");
  ASSERT_TRUE(cancel_again.ok());
  EXPECT_EQ(cancel_again->status, 404);

  auto malformed = HttpFetch("127.0.0.1", port, "POST", "/contracts",
                             "demand without braces");
  ASSERT_TRUE(malformed.ok());
  EXPECT_EQ(malformed->status, 400);

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST_F(MarketServerTest, ConcurrentClientsGetUniqueTickets) {
  MarketServerConfig config = Config();
  config.num_threads = 8;
  MarketServer server(&index_, config);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  constexpr int kThreads = 6;
  constexpr int kPerThread = 4;
  std::vector<std::vector<double>> tickets(kThreads);
  std::vector<std::thread> clients;
  for (int c = 0; c < kThreads; ++c) {
    clients.emplace_back([&, c] {
      for (int k = 0; k < kPerThread; ++k) {
        auto posted = HttpFetch("127.0.0.1", port, "POST", "/contracts",
                                SubmitBody(1 + (c + k) % 3, 5.0));
        ASSERT_TRUE(posted.ok()) << posted.status().ToString();
        ASSERT_EQ(posted->status, 202) << posted->body;
        tickets[c].push_back(*ExtractJsonNumber(posted->body, "ticket"));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();

  std::set<double> unique;
  for (const auto& per_thread : tickets) {
    unique.insert(per_thread.begin(), per_thread.end());
  }
  EXPECT_EQ(unique.size(),
            static_cast<size_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(*unique.begin(), 1.0);
  EXPECT_DOUBLE_EQ(*unique.rbegin(),
                   static_cast<double>(kThreads * kPerThread));
  EXPECT_GE(server.batches_flushed(), 1);
}

TEST_F(MarketServerTest, StopDrainsQueuedArrivals) {
  MarketServerConfig config = Config();
  // A batch that would never flush on its own within the test's horizon:
  // only the drain path can complete these submissions.
  config.max_batch = 1000;
  config.max_batch_delay_seconds = 60.0;
  MarketServer server(&index_, config);
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  // Submissions answer 202 immediately even though the batch will never
  // flush on its own; the tickets stay pending until the drain replans.
  constexpr int kClients = 3;
  std::vector<int64_t> tickets;
  for (int c = 0; c < kClients; ++c) {
    auto posted = HttpFetch("127.0.0.1", port, "POST", "/contracts",
                            SubmitBody(2, 4.0));
    ASSERT_TRUE(posted.ok()) << posted.status().ToString();
    ASSERT_EQ(posted->status, 202) << posted->body;
    tickets.push_back(
        static_cast<int64_t>(*ExtractJsonNumber(posted->body, "ticket")));
    EXPECT_EQ(server.TicketStatus(tickets.back()),
              MarketServer::TicketState::kPending);
  }
  server.Stop();

  // The drain's final replan committed every queued arrival; the ticket
  // table outlives the sockets, so the outcomes are still visible.
  EXPECT_GE(server.batches_flushed(), 1);
  for (int64_t ticket : tickets) {
    EXPECT_EQ(server.TicketStatus(ticket),
              MarketServer::TicketState::kCommitted)
        << "ticket " << ticket;
  }
  EXPECT_EQ(server.TicketStatus(999),
            MarketServer::TicketState::kUnknown);
  EXPECT_FALSE(server.running());
}

TEST_F(MarketServerTest, StopIsIdempotentAndRestartIsRejectedCleanly) {
  MarketServer server(&index_, Config());
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
  server.Stop();  // second stop is a no-op
  EXPECT_FALSE(server.running());
}

}  // namespace
}  // namespace mroam::serve
