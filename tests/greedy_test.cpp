#include "core/greedy.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.h"

namespace mroam::core {
namespace {

using mroam::testing::Adv;
using mroam::testing::IndexFromIncidence;
using mroam::testing::PaperExampleAdvertisers;
using mroam::testing::PaperExampleIncidence;

class PaperExampleTest : public ::testing::Test {
 protected:
  PaperExampleTest()
      : index_(IndexFromIncidence(PaperExampleIncidence(), 20, &dataset_)) {}

  Assignment MakeAssignment(double gamma = 0.5) {
    return Assignment(&index_, PaperExampleAdvertisers(),
                      RegretParams{gamma});
  }

  model::Dataset dataset_;
  influence::InfluenceIndex index_;
};

TEST_F(PaperExampleTest, StrategyOneRegretsMatchTableThree) {
  // Strategy 1 (Table 3): S1={o2}, S2={o4}, S3={o1,o3,o5,o6}
  // (paper ids are 1-based; ours are 0-based).
  Assignment s = MakeAssignment();
  s.Assign(1, 0);                    // o2 -> a1, influence 6 (demand 5)
  s.Assign(3, 1);                    // o4 -> a2, influence 7 (demand 7)
  for (model::BillboardId o : {0, 2, 4, 5}) s.Assign(o, 2);  // influence 7
  EXPECT_EQ(s.InfluenceOf(0), 6);
  EXPECT_EQ(s.InfluenceOf(1), 7);
  EXPECT_EQ(s.InfluenceOf(2), 7);
  EXPECT_TRUE(s.IsSatisfied(0));
  EXPECT_TRUE(s.IsSatisfied(1));
  EXPECT_FALSE(s.IsSatisfied(2));  // Table 3: a3 not satisfied
  // a1 over-satisfied by 1/5: R = 10 * 1/5 = 2 (excessive).
  EXPECT_DOUBLE_EQ(s.RegretOf(0), 2.0);
  EXPECT_DOUBLE_EQ(s.RegretOf(1), 0.0);
  // a3: R = 20 * (1 - 0.5 * 7/8) = 11.25 (revenue regret).
  EXPECT_DOUBLE_EQ(s.RegretOf(2), 11.25);
}

TEST_F(PaperExampleTest, StrategyTwoAchievesZeroRegret) {
  // Strategy 2 (Table 4): S1={o1,o3}, S2={o4}, S3={o2,o5,o6}.
  Assignment s = MakeAssignment();
  s.Assign(0, 0);
  s.Assign(2, 0);  // 2 + 3 = 5
  s.Assign(3, 1);  // 7
  for (model::BillboardId o : {1, 4, 5}) s.Assign(o, 2);  // 6+1+1 = 8
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 0.0);
  EXPECT_EQ(s.Breakdown().satisfied_count, 3);
}

TEST_F(PaperExampleTest, BestBillboardPrefersExactFit) {
  // For a1 (demand 5, payment 10) on an empty plan, the single billboard
  // reaching the demand exactly dominates: o2 (influence 6) has ratio
  // (10 - 2)/6 = 1.33 vs 1.0 (= L*gamma/I) for sub-demand boards and
  // 6/7 for the overshooting o4.
  Assignment s = MakeAssignment();
  EXPECT_EQ(BestBillboardFor(s, 0), 1);
}

TEST_F(PaperExampleTest, BestBillboardSkipsZeroInfluence) {
  // With only a zero-influence billboard free, there is no candidate.
  std::vector<std::vector<model::TrajectoryId>> covered{{0, 1}, {}};
  model::Dataset d;
  auto index = IndexFromIncidence(covered, 2, &d);
  Assignment s(&index, {Adv(0, 5, 10.0)}, RegretParams{0.5});
  s.Assign(0, 0);
  EXPECT_EQ(BestBillboardFor(s, 0), model::kInvalidBillboard);
}

TEST_F(PaperExampleTest, GOrderReachesZeroRegretHere) {
  // Hand-traced: a3 (BE 2.5) takes {o1, o2} for exactly 8, a1 (BE 2.0)
  // takes {o3, o5, o6} for exactly 5, a2 (BE 1.57) takes {o4} for 7.
  Assignment s = MakeAssignment();
  BudgetEffectiveGreedy(&s);
  s.VerifyInvariants();
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 0.0);
  EXPECT_EQ(s.Breakdown().satisfied_count, 3);

  std::vector<model::BillboardId> a3 = s.BillboardsOf(2);
  std::sort(a3.begin(), a3.end());
  EXPECT_EQ(a3, (std::vector<model::BillboardId>{0, 1}));
}

TEST_F(PaperExampleTest, GGlobalIsGreedyButSuboptimalHere) {
  // Hand-traced: in round one a1 grabs o2 (ratio 8/6) and over-satisfies,
  // leaving a3 to starve at influence 7:
  // total = 2 + 0 + 20*(1 - 0.5*7/8) = 13.25.
  Assignment s = MakeAssignment();
  SynchronousGreedy(&s);
  s.VerifyInvariants();
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 13.25);
  EXPECT_TRUE(s.IsSatisfied(0));
  EXPECT_TRUE(s.IsSatisfied(1));
  EXPECT_FALSE(s.IsSatisfied(2));
}

TEST(BudgetEffectiveGreedyTest, ServesHighBudgetEffectivenessFirst) {
  // Two advertisers want the same single good billboard; the more
  // budget-effective one (higher L/I) must get it.
  model::Dataset d;
  auto index = IndexFromIncidence({{0, 1, 2}}, 3, &d);
  Assignment s(&index, {Adv(0, 3, 3.0), Adv(1, 3, 9.0)}, RegretParams{0.5});
  BudgetEffectiveGreedy(&s);
  EXPECT_EQ(s.OwnerOf(0), 1);
  EXPECT_TRUE(s.IsSatisfied(1));
  EXPECT_FALSE(s.IsSatisfied(0));
}

TEST(BudgetEffectiveGreedyTest, UnsatisfiableAdvertiserDoesNotDrainPool) {
  // a0's demand (5) exceeds its reachable audience (4 trajectories in
  // total), so after taking every billboard that still adds influence the
  // remaining candidates have zero marginal gain for it. The selection
  // must skip them — not hand them out with a flat regret ratio — so the
  // `while (!IsSatisfied)` loop terminates and o1 stays free for a1.
  model::Dataset d;
  auto index = IndexFromIncidence({{0, 1}, {0}, {2}, {3}}, 4, &d);
  Assignment s(&index, {Adv(0, 5, 100.0), Adv(1, 1, 1.0)},
               RegretParams{0.5});
  BudgetEffectiveGreedy(&s);
  s.VerifyInvariants();
  EXPECT_FALSE(s.IsSatisfied(0));
  EXPECT_EQ(s.InfluenceOf(0), 4);  // o0, o2, o3 — never the redundant o1
  EXPECT_EQ(s.OwnerOf(1), 1);      // the zero-gain leftover serves a1
  EXPECT_TRUE(s.IsSatisfied(1));
}

TEST(BestBillboardTest, SkipsZeroMarginalGainCandidates) {
  // o1's audience is a subset of o0's: once a0 owns o0, o1 can never
  // change a0's influence and must not be offered.
  model::Dataset d;
  auto index = IndexFromIncidence({{0, 1}, {0}}, 2, &d);
  Assignment s(&index, {Adv(0, 5, 10.0)}, RegretParams{0.5});
  s.Assign(0, 0);
  EXPECT_EQ(BestBillboardFor(s, 0), model::kInvalidBillboard);
}

TEST(BudgetEffectiveGreedyTest, StopsWhenBillboardsRunOut) {
  model::Dataset d;
  auto index = IndexFromIncidence({{0}, {1}}, 2, &d);
  Assignment s(&index, {Adv(0, 10, 10.0), Adv(1, 10, 5.0)},
               RegretParams{0.5});
  BudgetEffectiveGreedy(&s);
  s.VerifyInvariants();
  // Everything goes to the first-ordered advertiser; none satisfied.
  EXPECT_EQ(s.BillboardsOf(0).size(), 2u);
  EXPECT_TRUE(s.FreeBillboards().empty());
}

TEST(SynchronousGreedyTest, RoundRobinSharesBillboards) {
  // Two identical advertisers, four unit billboards: each should get two.
  model::Dataset d;
  auto index = IndexFromIncidence({{0}, {1}, {2}, {3}}, 4, &d);
  Assignment s(&index, {Adv(0, 2, 4.0), Adv(1, 2, 4.0)}, RegretParams{0.5});
  SynchronousGreedy(&s);
  s.VerifyInvariants();
  EXPECT_EQ(s.BillboardsOf(0).size(), 2u);
  EXPECT_EQ(s.BillboardsOf(1).size(), 2u);
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 0.0);
}

TEST(SynchronousGreedyTest, ReleasesLeastBudgetEffectiveUnderScarcity) {
  // Three advertisers each demand 2; only 4 unit billboards exist, so at
  // most two can be satisfied. The least budget-effective unsatisfied
  // advertiser (a2, BE = 1.0) must be released so the others succeed.
  model::Dataset d;
  auto index = IndexFromIncidence({{0}, {1}, {2}, {3}}, 4, &d);
  Assignment s(&index,
               {Adv(0, 2, 6.0), Adv(1, 2, 4.0), Adv(2, 2, 2.0)},
               RegretParams{0.5});
  SynchronousGreedy(&s);
  s.VerifyInvariants();
  EXPECT_TRUE(s.IsSatisfied(0));
  EXPECT_TRUE(s.IsSatisfied(1));
  EXPECT_FALSE(s.IsSatisfied(2));
  EXPECT_TRUE(s.BillboardsOf(2).empty());
  // a2's regret is its full payment (influence 0).
  EXPECT_DOUBLE_EQ(s.RegretOf(2), 2.0);
}

TEST(SynchronousGreedyTest, ResumesFromNonEmptyState) {
  // Algorithm 3 line 3.8 / Algorithm 5 line 5.11: greedy must accept and
  // keep a pre-seeded assignment.
  model::Dataset d;
  auto index = IndexFromIncidence({{0}, {1}, {2}, {3}}, 4, &d);
  Assignment s(&index, {Adv(0, 2, 4.0), Adv(1, 2, 4.0)}, RegretParams{0.5});
  s.Assign(3, 0);  // pre-seed
  SynchronousGreedy(&s);
  s.VerifyInvariants();
  EXPECT_EQ(s.OwnerOf(3), 0);
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 0.0);
}

TEST(GreedyTieBreakTest, GammaZeroFallsBackToCoverageEfficiency) {
  // With gamma = 0 every non-crossing billboard has regret delta 0, so
  // the ratio rule ties at 0; the tie-break must prefer the billboard
  // whose coverage is least wasted (higher marginal gain per supplied
  // influence).
  // o0 covers {0,1}; o1 covers {1,2,3}; advertiser already covers {1}
  // via o2={1}. Marginal-gain ratios: o0 = 1/2, o1 = 2/3 -> pick o1.
  model::Dataset d;
  auto index = IndexFromIncidence({{0, 1}, {1, 2, 3}, {1}}, 4, &d);
  Assignment s(&index, {Adv(0, 4, 8.0)}, RegretParams{0.0});
  s.Assign(2, 0);
  EXPECT_EQ(BestBillboardFor(s, 0), 1);
}

TEST(GreedyTieBreakTest, FullTieBreaksToLowestId) {
  // Identical billboards: ratio and gain-ratio tie; the lowest id wins so
  // runs are deterministic.
  model::Dataset d;
  auto index = IndexFromIncidence({{0, 1}, {0, 1}, {0, 1}}, 2, &d);
  Assignment s(&index, {Adv(0, 2, 4.0)}, RegretParams{0.5});
  EXPECT_EQ(BestBillboardFor(s, 0), 0);
}

TEST(SynchronousGreedyTest, SingleUnsatisfiedAdvertiserIsNotReleased) {
  // With one advertiser and insufficient supply, greedy assigns what it
  // can and returns (no release when fewer than two are unsatisfied).
  model::Dataset d;
  auto index = IndexFromIncidence({{0}, {1}}, 2, &d);
  Assignment s(&index, {Adv(0, 5, 10.0)}, RegretParams{0.5});
  SynchronousGreedy(&s);
  EXPECT_EQ(s.BillboardsOf(0).size(), 2u);
  EXPECT_FALSE(s.IsSatisfied(0));
}

}  // namespace
}  // namespace mroam::core
