// The /debug endpoint suite and ticket-lifecycle stage instrumentation:
// path-first routing (404s carry the endpoint list), /debug/vars,
// /debug/flight, bounded /debug/trace captures, and an end-to-end check
// that submissions over real sockets populate the per-stage histograms
// and flight-recorder events.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/http.h"
#include "serve/market_server.h"
#include "test_util.h"

namespace mroam::serve {
namespace {

using mroam::testing::IndexFromIncidence;

class ServeDebugTest : public ::testing::Test {
 protected:
  // Eight disjoint billboards with influence {4,4,4,4,2,2,2,2}.
  ServeDebugTest()
      : index_(IndexFromIncidence(
            {{0, 1, 2, 3},
             {4, 5, 6, 7},
             {8, 9, 10, 11},
             {12, 13, 14, 15},
             {16, 17},
             {18, 19},
             {20, 21},
             {22, 23}},
            24, &dataset_)) {}

  void SetUp() override {
    obs::FlightRecorder::SetEnabled(true);
    obs::FlightRecorder::Global().Clear();
  }

  MarketServerConfig Config() {
    MarketServerConfig config;
    config.port = 0;  // ephemeral
    config.num_threads = 4;
    config.max_batch = 4;
    config.max_batch_delay_seconds = 0.01;
    config.market.policy = core::ReplanPolicy::kLockExisting;
    return config;
  }

  static HttpRequest Get(const std::string& target) {
    HttpRequest request;
    request.method = "GET";
    request.target = target;
    return request;
  }

  model::Dataset dataset_;
  influence::InfluenceIndex index_;
};

TEST(HttpTargetTest, SplitTargetSeparatesPathAndQuery) {
  EXPECT_EQ(SplitTarget("/debug/trace?ms=250").first, "/debug/trace");
  EXPECT_EQ(SplitTarget("/debug/trace?ms=250").second, "ms=250");
  EXPECT_EQ(SplitTarget("/healthz").first, "/healthz");
  EXPECT_EQ(SplitTarget("/healthz").second, "");
  EXPECT_EQ(SplitTarget("/x?").second, "");
}

TEST(HttpTargetTest, QueryParamFindsKeys) {
  EXPECT_EQ(QueryParam("ms=250", "ms"), "250");
  EXPECT_EQ(QueryParam("a=1&ms=9&b=2", "ms"), "9");
  EXPECT_EQ(QueryParam("msx=1", "ms"), "");
  EXPECT_EQ(QueryParam("ms", "ms"), "");  // valueless
  EXPECT_EQ(QueryParam("", "ms"), "");
  EXPECT_EQ(QueryParam("a=1&b=2", "c"), "");
}

TEST_F(ServeDebugTest, UnknownPathGets404WithEndpointList) {
  MarketServer server(&index_, Config());
  HttpResponse response = server.Handle(Get("/debug/flite"));  // typo
  EXPECT_EQ(response.status, 404);
  EXPECT_EQ(response.content_type, "application/json");
  EXPECT_NE(response.body.find("\"error\":"), std::string::npos);
  EXPECT_NE(response.body.find("/debug/flite"), std::string::npos);
  EXPECT_NE(response.body.find("\"known_endpoints\":["), std::string::npos);
  EXPECT_NE(response.body.find("GET /debug/flight"), std::string::npos);
  EXPECT_NE(response.body.find("POST /contracts"), std::string::npos);
  EXPECT_NE(response.body.find("GET /tickets/<id>"), std::string::npos);
}

TEST_F(ServeDebugTest, KnownPathWrongMethodGets405) {
  MarketServer server(&index_, Config());
  HttpRequest request = Get("/debug/vars");
  request.method = "POST";
  EXPECT_EQ(server.Handle(request).status, 405);
  request = Get("/report");
  request.method = "DELETE";
  EXPECT_EQ(server.Handle(request).status, 405);
}

TEST_F(ServeDebugTest, DebugVarsReturnsMetricsJson) {
  MarketServer server(&index_, Config());
  MROAM_COUNTER_ADD("debug_test.visible_counter", 1);
  HttpResponse response = server.Handle(Get("/debug/vars"));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"counters\":"), std::string::npos);
  EXPECT_NE(response.body.find("debug_test.visible_counter"),
            std::string::npos);
}

TEST_F(ServeDebugTest, DebugFlightReturnsRecorderDump) {
  MarketServer server(&index_, Config());
  MROAM_FLIGHT_EVENT("debug_test.marker", 77);
  HttpResponse response = server.Handle(Get("/debug/flight"));
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"enabled\":true"), std::string::npos);
  EXPECT_NE(response.body.find("\"events\":["), std::string::npos);
  EXPECT_NE(response.body.find("debug_test.marker"), std::string::npos);
}

TEST_F(ServeDebugTest, DebugTraceRejectsBadWindows) {
  MarketServer server(&index_, Config());
  EXPECT_EQ(server.Handle(Get("/debug/trace?ms=banana")).status, 400);
  EXPECT_EQ(server.Handle(Get("/debug/trace?ms=0")).status, 400);
  EXPECT_EQ(server.Handle(Get("/debug/trace?ms=-5")).status, 400);
  EXPECT_EQ(server.Handle(Get("/debug/trace?ms=20000")).status, 400);
}

TEST_F(ServeDebugTest, DebugTraceCapturesABoundedWindow) {
  ASSERT_FALSE(obs::Tracer::Enabled());
  MarketServer server(&index_, Config());
  // Spans recorded during the window land in the capture; the tracer is
  // restored to disabled afterwards.
  std::thread spanner([] {
    for (int i = 0; i < 50; ++i) {
      MROAM_TRACE_SPAN("debug_test.windowed");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  HttpResponse response = server.Handle(Get("/debug/trace?ms=30"));
  spanner.join();
  EXPECT_EQ(response.status, 200);
  EXPECT_NE(response.body.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(response.body.find("debug_test.windowed"), std::string::npos);
  EXPECT_FALSE(obs::Tracer::Enabled());
  // A span still open when the window closed records after the capture's
  // Clear() (its sink set latched at construction) — at most those
  // stragglers may remain buffered.
  EXPECT_LE(obs::Tracer::Global().SpanCount(), 1);
  obs::Tracer::Global().Clear();
}

TEST_F(ServeDebugTest, SubmissionsPopulateStageHistogramsAndFlight) {
  obs::MetricsRegistry::Global().ResetForTest();
  MarketServer server(&index_, Config());
  ASSERT_TRUE(server.Start().ok());
  const int port = server.port();

  const int kSubmissions = 6;
  std::vector<std::thread> clients;
  std::atomic<int> ok{0};
  std::mutex tickets_mu;
  std::vector<int64_t> tickets;
  for (int i = 0; i < kSubmissions; ++i) {
    clients.emplace_back([port, &ok, &tickets_mu, &tickets] {
      auto response = HttpFetch("127.0.0.1", port, "POST", "/contracts",
                                "{\"demand\": 2, \"payment\": 5.0}");
      if (response.ok() && response->status == 202) {
        ok.fetch_add(1);
        auto ticket = ExtractJsonNumber(response->body, "ticket");
        if (ticket.ok()) {
          std::lock_guard<std::mutex> lock(tickets_mu);
          tickets.push_back(static_cast<int64_t>(*ticket));
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(ok.load(), kSubmissions);

  // The 202s return before the replan; wait for every ticket's group
  // commit before asserting on the stage instrumentation.
  for (int attempt = 0; attempt < 500; ++attempt) {
    bool all_committed = true;
    for (int64_t ticket : tickets) {
      all_committed = all_committed &&
                      server.TicketStatus(ticket) ==
                          MarketServer::TicketState::kCommitted;
    }
    if (all_committed) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (int64_t ticket : tickets) {
    ASSERT_EQ(server.TicketStatus(ticket),
              MarketServer::TicketState::kCommitted)
        << "ticket " << ticket;
  }

  // Every submission passed through all three ticket stages.
  obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  for (const char* stage : {"serve.stage.queue_wait_seconds",
                            "serve.stage.replan_seconds",
                            "serve.stage.respond_seconds"}) {
    const auto* h = snapshot.FindHistogram(stage);
    ASSERT_NE(h, nullptr) << stage;
    if (std::string(stage) == "serve.stage.replan_seconds") {
      EXPECT_GE(h->count, 1) << stage;  // one observation per batch
    } else {
      EXPECT_EQ(h->count, kSubmissions) << stage;
    }
  }

  // The ticket lifecycle left flight-recorder events.
  const std::string flight = obs::FlightRecorder::Global().DumpJson();
  EXPECT_NE(flight.find("ticket.enqueue"), std::string::npos);
  EXPECT_NE(flight.find("ticket.flush"), std::string::npos);
  EXPECT_NE(flight.find("ticket.replan_done"), std::string::npos);
  EXPECT_NE(flight.find("ticket.respond"), std::string::npos);

  // GET /report exposes the last batch's stage phase seconds.
  HttpResponse report = server.Handle(Get("/report"));
  EXPECT_NE(report.body.find("\"stage_seconds\":{\"queue_wait\":"),
            std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace mroam::serve
