#include "core/assignment.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace mroam::core {
namespace {

using mroam::testing::Adv;
using mroam::testing::IndexFromIncidence;

class AssignmentTest : public ::testing::Test {
 protected:
  AssignmentTest()
      : index_(IndexFromIncidence(
            // o0={0,1,2}, o1={2,3}, o2={4,5,6,7}, o3={7,8}, o4={}
            {{0, 1, 2}, {2, 3}, {4, 5, 6, 7}, {7, 8}, {}}, 9, &dataset_)) {}

  std::vector<market::Advertiser> TwoAdvertisers() {
    return {Adv(0, 4, 10.0), Adv(1, 3, 6.0)};
  }

  model::Dataset dataset_;
  influence::InfluenceIndex index_;
};

TEST_F(AssignmentTest, InitialStateIsAllFreeFullRegret) {
  Assignment s(&index_, TwoAdvertisers(), RegretParams{0.5});
  EXPECT_EQ(s.num_advertisers(), 2);
  EXPECT_EQ(s.FreeBillboards().size(), 5u);
  EXPECT_EQ(s.InfluenceOf(0), 0);
  EXPECT_DOUBLE_EQ(s.RegretOf(0), 10.0);
  EXPECT_DOUBLE_EQ(s.RegretOf(1), 6.0);
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 16.0);
  EXPECT_EQ(s.OwnerOf(0), market::kNoAdvertiser);
  s.VerifyInvariants();
}

TEST_F(AssignmentTest, AssignUpdatesEverything) {
  Assignment s(&index_, TwoAdvertisers(), RegretParams{0.5});
  s.Assign(0, 0);
  EXPECT_EQ(s.OwnerOf(0), 0);
  EXPECT_EQ(s.InfluenceOf(0), 3);
  EXPECT_EQ(s.BillboardsOf(0).size(), 1u);
  EXPECT_EQ(s.FreeBillboards().size(), 4u);
  // R = 10 * (1 - 0.5 * 3/4) = 6.25; advertiser 1 still at 6.
  EXPECT_DOUBLE_EQ(s.RegretOf(0), 6.25);
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 12.25);
  s.VerifyInvariants();
}

TEST_F(AssignmentTest, ReleaseRestoresState) {
  Assignment s(&index_, TwoAdvertisers(), RegretParams{0.5});
  s.Assign(0, 0);
  s.Assign(1, 0);
  s.Release(0);
  EXPECT_EQ(s.OwnerOf(0), market::kNoAdvertiser);
  EXPECT_EQ(s.InfluenceOf(0), 2);  // o1 covers {2,3}
  s.Release(1);
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 16.0);
  EXPECT_EQ(s.FreeBillboards().size(), 5u);
  s.VerifyInvariants();
}

TEST_F(AssignmentTest, DeltaAssignMatchesMutation) {
  Assignment s(&index_, TwoAdvertisers(), RegretParams{0.5});
  s.Assign(0, 0);
  double before = s.TotalRegret();
  double delta = s.DeltaAssign(1, 0);
  s.Assign(1, 0);
  EXPECT_NEAR(s.TotalRegret() - before, delta, 1e-9);
  s.VerifyInvariants();
}

TEST_F(AssignmentTest, DeltaReleaseMatchesMutation) {
  Assignment s(&index_, TwoAdvertisers(), RegretParams{0.5});
  s.Assign(0, 0);
  s.Assign(1, 0);
  double before = s.TotalRegret();
  double delta = s.DeltaRelease(1);
  s.Release(1);
  EXPECT_NEAR(s.TotalRegret() - before, delta, 1e-9);
}

TEST_F(AssignmentTest, DeltaExchangeAcrossMatchesMutation) {
  Assignment s(&index_, TwoAdvertisers(), RegretParams{0.5});
  s.Assign(0, 0);   // a0: o0 -> influence 3
  s.Assign(2, 1);   // a1: o2 -> influence 4
  double before = s.TotalRegret();
  double delta = s.DeltaExchangeAcross(0, 2);
  s.ExchangeAcross(0, 2);
  EXPECT_NEAR(s.TotalRegret() - before, delta, 1e-9);
  EXPECT_EQ(s.OwnerOf(0), 1);
  EXPECT_EQ(s.OwnerOf(2), 0);
  EXPECT_EQ(s.InfluenceOf(0), 4);
  EXPECT_EQ(s.InfluenceOf(1), 3);
  s.VerifyInvariants();
}

TEST_F(AssignmentTest, DeltaReplaceMatchesMutation) {
  Assignment s(&index_, TwoAdvertisers(), RegretParams{0.5});
  s.Assign(0, 0);
  s.Assign(1, 0);
  double before = s.TotalRegret();
  double delta = s.DeltaReplace(0, 2);  // drop o0, pick free o2
  s.Replace(0, 2);
  EXPECT_NEAR(s.TotalRegret() - before, delta, 1e-9);
  EXPECT_EQ(s.OwnerOf(0), market::kNoAdvertiser);
  EXPECT_EQ(s.OwnerOf(2), 0);
  s.VerifyInvariants();
}

TEST_F(AssignmentTest, SwapSetsExchangesWholePlans) {
  Assignment s(&index_, TwoAdvertisers(), RegretParams{0.5});
  s.Assign(0, 0);
  s.Assign(1, 0);
  s.Assign(2, 1);
  double delta = s.DeltaSwapSets(0, 1);
  double before = s.TotalRegret();
  s.SwapSets(0, 1);
  EXPECT_NEAR(s.TotalRegret() - before, delta, 1e-9);
  EXPECT_EQ(s.BillboardsOf(0), (std::vector<model::BillboardId>{2}));
  EXPECT_EQ(s.OwnerOf(0), 1);
  EXPECT_EQ(s.OwnerOf(1), 1);
  EXPECT_EQ(s.OwnerOf(2), 0);
  EXPECT_EQ(s.InfluenceOf(0), 4);
  EXPECT_EQ(s.InfluenceOf(1), 4);  // o0 + o1 cover {0,1,2,3}
  s.VerifyInvariants();
}

TEST_F(AssignmentTest, OverlappingCoverageDoesNotDoubleCount) {
  Assignment s(&index_, TwoAdvertisers(), RegretParams{0.5});
  s.Assign(0, 0);  // {0,1,2}
  s.Assign(1, 0);  // {2,3} -> influence 4, not 5
  EXPECT_EQ(s.InfluenceOf(0), 4);
}

TEST_F(AssignmentTest, ZeroInfluenceBillboardIsNeutral) {
  Assignment s(&index_, TwoAdvertisers(), RegretParams{0.5});
  double before = s.TotalRegret();
  s.Assign(4, 0);
  EXPECT_EQ(s.InfluenceOf(0), 0);
  EXPECT_DOUBLE_EQ(s.TotalRegret(), before);
  s.VerifyInvariants();
}

TEST_F(AssignmentTest, ReleaseAllAndReset) {
  Assignment s(&index_, TwoAdvertisers(), RegretParams{0.5});
  s.Assign(0, 0);
  s.Assign(1, 0);
  s.Assign(2, 1);
  s.ReleaseAll(0);
  EXPECT_TRUE(s.BillboardsOf(0).empty());
  EXPECT_EQ(s.BillboardsOf(1).size(), 1u);
  s.Reset();
  EXPECT_EQ(s.FreeBillboards().size(), 5u);
  EXPECT_DOUBLE_EQ(s.TotalRegret(), 16.0);
  s.VerifyInvariants();
}

TEST_F(AssignmentTest, CopyDeploymentFrom) {
  Assignment a(&index_, TwoAdvertisers(), RegretParams{0.5});
  a.Assign(0, 0);
  a.Assign(2, 1);
  Assignment b(&index_, TwoAdvertisers(), RegretParams{0.5});
  b.CopyDeploymentFrom(a);
  EXPECT_EQ(b.OwnerOf(0), 0);
  EXPECT_EQ(b.OwnerOf(2), 1);
  EXPECT_DOUBLE_EQ(b.TotalRegret(), a.TotalRegret());
  b.VerifyInvariants();
  // Mutating the copy leaves the original untouched.
  b.Release(0);
  EXPECT_EQ(a.OwnerOf(0), 0);
  a.VerifyInvariants();
}

TEST_F(AssignmentTest, BreakdownSplitsComponents) {
  // a0 demand 4: give it o2 (4 trajectories) -> satisfied, zero regret.
  // a1 demand 3: give it o1 (2) -> unsatisfied.
  Assignment s(&index_, TwoAdvertisers(), RegretParams{0.5});
  s.Assign(2, 0);
  s.Assign(1, 1);
  RegretBreakdown b = s.Breakdown();
  EXPECT_EQ(b.satisfied_count, 1);
  EXPECT_EQ(b.advertiser_count, 2);
  EXPECT_DOUBLE_EQ(b.excessive, 0.0);
  // a1: 6 * (1 - 0.5 * 2/3) = 4.
  EXPECT_DOUBLE_EQ(b.unsatisfied_penalty, 4.0);
  EXPECT_DOUBLE_EQ(b.total, s.TotalRegret());
}

TEST_F(AssignmentTest, DualTracksRegret) {
  Assignment s(&index_, TwoAdvertisers(), RegretParams{1.0});
  s.Assign(2, 0);  // exactly satisfies a0 (demand 4)
  EXPECT_DOUBLE_EQ(s.DualOf(0), 10.0);
  EXPECT_DOUBLE_EQ(s.RegretOf(0), 0.0);
  // With gamma = 1, R + R' = L for every advertiser, so totals match too.
  EXPECT_NEAR(s.TotalRegret() + s.TotalDual(), 16.0, 1e-9);
}

// Random mutation soak: after any sequence of valid moves the caches must
// match a from-scratch recomputation.
class AssignmentSoakTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AssignmentSoakTest, RandomMoveSequencesKeepInvariants) {
  common::Rng rng(GetParam());
  // Random incidence over 10 billboards / 25 trajectories.
  std::vector<std::vector<model::TrajectoryId>> covered(10);
  for (auto& list : covered) {
    for (int32_t t = 0; t < 25; ++t) {
      if (rng.Bernoulli(0.3)) list.push_back(t);
    }
  }
  model::Dataset dataset;
  influence::InfluenceIndex index =
      IndexFromIncidence(covered, 25, &dataset);
  std::vector<market::Advertiser> ads = {Adv(0, 8, 12.0), Adv(1, 5, 7.0),
                                         Adv(2, 12, 30.0)};
  Assignment s(&index, ads, RegretParams{0.5});

  for (int step = 0; step < 300; ++step) {
    double choice = rng.UniformDouble();
    if (choice < 0.45 && !s.FreeBillboards().empty()) {
      const auto& free = s.FreeBillboards();
      model::BillboardId o = free[rng.UniformU64(free.size())];
      market::AdvertiserId a =
          static_cast<market::AdvertiserId>(rng.UniformU64(3));
      double delta = s.DeltaAssign(o, a);
      double before = s.TotalRegret();
      s.Assign(o, a);
      ASSERT_NEAR(s.TotalRegret() - before, delta, 1e-9);
    } else if (choice < 0.8) {
      market::AdvertiserId a =
          static_cast<market::AdvertiserId>(rng.UniformU64(3));
      if (s.BillboardsOf(a).empty()) continue;
      const auto& set = s.BillboardsOf(a);
      model::BillboardId o = set[rng.UniformU64(set.size())];
      double delta = s.DeltaRelease(o);
      double before = s.TotalRegret();
      s.Release(o);
      ASSERT_NEAR(s.TotalRegret() - before, delta, 1e-9);
    } else {
      market::AdvertiserId i =
          static_cast<market::AdvertiserId>(rng.UniformU64(3));
      market::AdvertiserId j =
          static_cast<market::AdvertiserId>(rng.UniformU64(3));
      if (i == j) continue;
      double delta = s.DeltaSwapSets(i, j);
      double before = s.TotalRegret();
      s.SwapSets(i, j);
      ASSERT_NEAR(s.TotalRegret() - before, delta, 1e-9);
    }
    if (step % 50 == 0) s.VerifyInvariants();
  }
  s.VerifyInvariants();
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignmentSoakTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace mroam::core
