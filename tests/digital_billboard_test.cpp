#include <gtest/gtest.h>

#include "core/solver.h"
#include "influence/influence_index.h"
#include "model/dataset.h"
#include "test_util.h"

namespace mroam::model {
namespace {

using mroam::testing::Adv;
using mroam::testing::DatasetFromIncidence;
using mroam::testing::kFixtureLambda;

TEST(ExpandDigitalBillboardsTest, SingleSlotIsNoOp) {
  Dataset d = DatasetFromIncidence({{0, 1}, {2}}, 3);
  ExpandDigitalBillboards(&d, 1);
  EXPECT_EQ(d.billboards.size(), 2u);
}

TEST(ExpandDigitalBillboardsTest, CreatesCoLocatedSlots) {
  Dataset d = DatasetFromIncidence({{0, 1}, {2}}, 3);
  ExpandDigitalBillboards(&d, 3);
  ASSERT_EQ(d.billboards.size(), 6u);
  EXPECT_EQ(ValidateDataset(d), "");
  // Slot k of original billboard i is billboard i*3+k, at i's location.
  for (int i = 0; i < 2; ++i) {
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(d.billboards[i * 3 + k].location,
                d.billboards[i * 3].location);
    }
  }
}

TEST(ExpandDigitalBillboardsTest, SlotsShareIncidence) {
  Dataset d = DatasetFromIncidence({{0, 1, 2}, {3}}, 4);
  ExpandDigitalBillboards(&d, 2);
  auto index = influence::InfluenceIndex::Build(d, kFixtureLambda);
  EXPECT_EQ(index.InfluenceOf(0), 3);
  EXPECT_EQ(index.InfluenceOf(1), 3);  // second slot of the first board
  EXPECT_EQ(index.InfluenceOf(2), 1);
  EXPECT_EQ(index.InfluenceOf(3), 1);
  EXPECT_EQ(index.TotalSupply(), 8);
}

TEST(ExpandDigitalBillboardsTest, SlotsServeDifferentAdvertisers) {
  // One physical billboard covering 4 trajectories; two advertisers each
  // demanding 4. With two time slots, both can be satisfied.
  Dataset d = DatasetFromIncidence({{0, 1, 2, 3}}, 4);
  ExpandDigitalBillboards(&d, 2);
  auto index = influence::InfluenceIndex::Build(d, kFixtureLambda);
  std::vector<market::Advertiser> ads = {Adv(0, 4, 8.0), Adv(1, 4, 8.0)};
  core::SolverConfig config;
  config.method = core::Method::kGGlobal;
  core::SolveResult result = core::Solve(index, ads, config);
  EXPECT_EQ(result.breakdown.satisfied_count, 2);
  EXPECT_DOUBLE_EQ(result.breakdown.total, 0.0);
}

}  // namespace
}  // namespace mroam::model
