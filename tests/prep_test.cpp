#include "prep/raw_ingest.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include <gtest/gtest.h>

#include "geo/projection.h"

namespace mroam::prep {
namespace {

// --- Projection -----------------------------------------------------------

TEST(ProjectorTest, OriginMapsToZero) {
  geo::Projector proj(-74.0, 40.7);
  geo::Point p = proj.Project(-74.0, 40.7);
  EXPECT_NEAR(p.x, 0.0, 1e-9);
  EXPECT_NEAR(p.y, 0.0, 1e-9);
}

TEST(ProjectorTest, OneDegreeLatitudeIs111Km) {
  geo::Projector proj(-74.0, 40.7);
  geo::Point p = proj.Project(-74.0, 41.7);
  EXPECT_NEAR(p.y, 111195.0, 100.0);
  EXPECT_NEAR(p.x, 0.0, 1e-6);
}

TEST(ProjectorTest, LongitudeShrinksWithLatitude) {
  geo::Projector equator(0.0, 0.0);
  geo::Projector nyc(0.0, 40.7);
  double at_equator = equator.Project(1.0, 0.0).x;
  double at_nyc = nyc.Project(1.0, 40.7).x;
  EXPECT_NEAR(at_nyc / at_equator, std::cos(40.7 * std::numbers::pi / 180.0),
              1e-9);
}

TEST(ProjectorTest, RoundTripsThroughUnproject) {
  geo::Projector proj(103.8, 1.35);  // Singapore
  double lon = 0.0, lat = 0.0;
  proj.Unproject(proj.Project(103.95, 1.29), &lon, &lat);
  EXPECT_NEAR(lon, 103.95, 1e-9);
  EXPECT_NEAR(lat, 1.29, 1e-9);
}

// --- Raw ingest -----------------------------------------------------------

class IngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mroam_prep_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string PathFor(const std::string& name) {
    return (dir_ / name).string();
  }
  void WriteFile(const std::string& name, const std::string& contents) {
    std::ofstream out(PathFor(name));
    out << contents;
  }

  /// NYC-ish config: crop to a box around Manhattan, sane trip lengths.
  static IngestConfig NycConfig() {
    IngestConfig config;
    config.min_lon = -74.05;
    config.max_lon = -73.90;
    config.min_lat = 40.65;
    config.max_lat = 40.90;
    config.min_trip_m = 200.0;
    config.max_trip_m = 30000.0;
    return config;
  }

  static geo::Projector NycProjector() { return {-74.0, 40.75}; }

  std::filesystem::path dir_;
};

TEST_F(IngestTest, KeepsCleanRowsAndProjects) {
  // Two clean trips (~1.1 km and ~2.2 km) with durations.
  WriteFile("trips.csv",
            "-73.99,40.75,-73.98,40.755,300\n"
            "-73.97,40.76,-73.95,40.77,600\n");
  IngestStats stats;
  auto trips = IngestTrips(PathFor("trips.csv"), TripColumns{},
                           NycConfig(), NycProjector(), &stats);
  ASSERT_TRUE(trips.ok()) << trips.status();
  ASSERT_EQ(trips->size(), 2u);
  EXPECT_EQ(stats.rows_read, 2);
  EXPECT_EQ(stats.rows_kept, 2);
  EXPECT_EQ((*trips)[0].points.size(), 2u);
  EXPECT_DOUBLE_EQ((*trips)[0].travel_time_seconds, 300.0);
  // ~0.01 deg lon at 40.75N is ~845 m; straight-line trip ~ 1010 m.
  double length = geo::Distance((*trips)[0].points[0], (*trips)[0].points[1]);
  EXPECT_NEAR(length, 1010.0, 60.0);
}

TEST_F(IngestTest, DropsOutOfBoundsRows) {
  WriteFile("trips.csv",
            "-73.99,40.75,-73.98,40.755,300\n"
            "-75.50,40.75,-73.98,40.755,300\n"   // pickup far west
            "-73.99,40.75,-73.98,41.90,300\n");  // dropoff far north
  IngestStats stats;
  auto trips = IngestTrips(PathFor("trips.csv"), TripColumns{},
                           NycConfig(), NycProjector(), &stats);
  ASSERT_TRUE(trips.ok());
  EXPECT_EQ(trips->size(), 1u);
  EXPECT_EQ(stats.dropped_bounds, 2);
}

TEST_F(IngestTest, DropsDegenerateAndAbsurdTrips) {
  WriteFile("trips.csv",
            "-73.99,40.75,-73.99,40.75,300\n"     // zero-length
            "-73.99,40.75,-73.98,40.755,300\n");  // fine
  IngestStats stats;
  auto trips = IngestTrips(PathFor("trips.csv"), TripColumns{},
                           NycConfig(), NycProjector(), &stats);
  ASSERT_TRUE(trips.ok());
  EXPECT_EQ(trips->size(), 1u);
  EXPECT_EQ(stats.dropped_length, 1);
}

TEST_F(IngestTest, SkipsOrFailsOnBadRowsPerConfig) {
  WriteFile("trips.csv",
            "oops,bad,row,entirely,\n"
            "-73.99,40.75,-73.98,40.755,300\n");
  IngestConfig lenient = NycConfig();
  IngestStats stats;
  auto trips = IngestTrips(PathFor("trips.csv"), TripColumns{}, lenient,
                           NycProjector(), &stats);
  ASSERT_TRUE(trips.ok());
  EXPECT_EQ(trips->size(), 1u);
  EXPECT_EQ(stats.dropped_parse, 1);

  IngestConfig strict = lenient;
  strict.skip_bad_rows = false;
  auto failed = IngestTrips(PathFor("trips.csv"), TripColumns{}, strict,
                            NycProjector());
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), common::StatusCode::kDataLoss);
}

TEST_F(IngestTest, EstimatesMissingDurations) {
  WriteFile("trips.csv", "-73.99,40.75,-73.98,40.755\n");
  TripColumns columns;
  columns.duration_seconds = -1;
  IngestConfig config = NycConfig();
  config.assumed_speed_mps = 10.0;
  auto trips = IngestTrips(PathFor("trips.csv"), columns, config,
                           NycProjector());
  ASSERT_TRUE(trips.ok()) << trips.status();
  ASSERT_EQ(trips->size(), 1u);
  double length = geo::Distance((*trips)[0].points[0], (*trips)[0].points[1]);
  EXPECT_NEAR((*trips)[0].travel_time_seconds, length / 10.0, 1e-6);
}

TEST_F(IngestTest, CustomColumnMapping) {
  // Extra leading columns, lon/lat swapped around.
  WriteFile("trips.csv", "x,y,40.75,-73.99,40.755,-73.98,420\n");
  TripColumns columns;
  columns.pickup_lat = 2;
  columns.pickup_lon = 3;
  columns.dropoff_lat = 4;
  columns.dropoff_lon = 5;
  columns.duration_seconds = 6;
  auto trips = IngestTrips(PathFor("trips.csv"), columns, NycConfig(),
                           NycProjector());
  ASSERT_TRUE(trips.ok()) << trips.status();
  ASSERT_EQ(trips->size(), 1u);
  EXPECT_DOUBLE_EQ((*trips)[0].travel_time_seconds, 420.0);
}

TEST_F(IngestTest, IngestBillboardsProjectsAndCrops) {
  WriteFile("boards.csv",
            "-73.99,40.75\n"
            "-80.00,40.75\n");  // out of crop
  IngestStats stats;
  auto boards = IngestBillboards(PathFor("boards.csv"), BillboardColumns{},
                                 NycConfig(), NycProjector(), &stats);
  ASSERT_TRUE(boards.ok());
  EXPECT_EQ(boards->size(), 1u);
  EXPECT_EQ(stats.dropped_bounds, 1);
  EXPECT_EQ((*boards)[0].id, 0);
}

TEST_F(IngestTest, IngestDatasetEndToEnd) {
  WriteFile("trips.csv",
            "-73.99,40.75,-73.98,40.755,300\n"
            "-73.97,40.76,-73.95,40.77,600\n");
  WriteFile("boards.csv", "-73.99,40.75\n-73.98,40.755\n");
  auto dataset = IngestDataset(PathFor("trips.csv"), TripColumns{},
                               PathFor("boards.csv"), BillboardColumns{},
                               NycConfig(), NycProjector(), "tlc-slice");
  ASSERT_TRUE(dataset.ok()) << dataset.status();
  EXPECT_EQ(dataset->name, "tlc-slice");
  EXPECT_EQ(dataset->trajectories.size(), 2u);
  EXPECT_EQ(dataset->billboards.size(), 2u);
  EXPECT_EQ(model::ValidateDataset(*dataset), "");
}

TEST_F(IngestTest, MissingFileIsIoError) {
  auto trips = IngestTrips(PathFor("nope.csv"), TripColumns{}, NycConfig(),
                           NycProjector());
  ASSERT_FALSE(trips.ok());
  EXPECT_EQ(trips.status().code(), common::StatusCode::kIoError);
}

}  // namespace
}  // namespace mroam::prep
