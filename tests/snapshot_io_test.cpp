#include "io/snapshot_io.h"

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/rng.h"
#include "core/solver.h"
#include "gen/city_generators.h"
#include "test_util.h"

namespace mroam::io {
namespace {

using common::StatusCode;

class SnapshotIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mroam_snapshot_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string PathFor(const std::string& name) {
    return (dir_ / name).string();
  }

  /// A small generated city: nontrivial doubles (times, jittered
  /// coordinates) so bit-exactness is actually exercised.
  IndexSnapshot MakeCity() {
    IndexSnapshot made;
    gen::NycLikeConfig config;
    config.num_billboards = 80;
    config.num_trajectories = 1500;
    common::Rng rng(7);
    made.dataset = gen::GenerateNycLike(config, &rng);
    made.index = influence::InfluenceIndex::Build(made.dataset, 150.0);
    return made;
  }

  std::string SavedCityPath() {
    IndexSnapshot city = MakeCity();
    std::string path = PathFor("city.snap");
    EXPECT_TRUE(SaveIndexSnapshot(path, city.dataset, city.index).ok());
    return path;
  }

  static std::string ReadBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  static void WriteBytes(const std::string& path, const std::string& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  static uint32_t ReadU32(const std::string& data, size_t offset) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(
               static_cast<unsigned char>(data[offset + i]))
           << (8 * i);
    }
    return v;
  }

  static uint64_t ReadU64(const std::string& data, size_t offset) {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data[offset + i]))
           << (8 * i);
    }
    return v;
  }

  static void StoreU32(std::string* data, size_t offset, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      (*data)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
    }
  }

  struct SectionSpan {
    size_t payload_offset = 0;
    size_t payload_length = 0;
    size_t crc_offset = 0;
  };

  /// Walks the section framing to locate one section's payload — the
  /// format knowledge the tamper tests rely on lives in the public
  /// constants, not in copied magic numbers.
  static SectionSpan FindSection(const std::string& data,
                                 SnapshotSection wanted) {
    size_t offset = kSnapshotFileHeaderBytes;
    while (offset + kSnapshotSectionHeaderBytes <= data.size()) {
      uint32_t id = ReadU32(data, offset);
      uint64_t length = ReadU64(data, offset + 4);
      SectionSpan span;
      span.payload_offset = offset + kSnapshotSectionHeaderBytes;
      span.payload_length = static_cast<size_t>(length);
      span.crc_offset = span.payload_offset + span.payload_length;
      if (id == static_cast<uint32_t>(wanted)) return span;
      offset = span.crc_offset + 4;
    }
    ADD_FAILURE() << "section " << static_cast<uint32_t>(wanted)
                  << " not found";
    return {};
  }

  std::filesystem::path dir_;
};

TEST_F(SnapshotIoTest, RoundTripIsBitExact) {
  IndexSnapshot city = MakeCity();
  std::string path = PathFor("roundtrip.snap");
  ASSERT_TRUE(SaveIndexSnapshot(path, city.dataset, city.index).ok());

  auto loaded = LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->dataset.name, city.dataset.name);
  ASSERT_EQ(loaded->dataset.billboards.size(),
            city.dataset.billboards.size());
  for (size_t i = 0; i < city.dataset.billboards.size(); ++i) {
    const model::Billboard& a = city.dataset.billboards[i];
    const model::Billboard& b = loaded->dataset.billboards[i];
    EXPECT_EQ(b.id, a.id);
    // Bit-exact, not approximately-equal: the format stores IEEE-754
    // bit patterns.
    EXPECT_EQ(std::bit_cast<uint64_t>(b.location.x),
              std::bit_cast<uint64_t>(a.location.x));
    EXPECT_EQ(std::bit_cast<uint64_t>(b.location.y),
              std::bit_cast<uint64_t>(a.location.y));
    EXPECT_EQ(std::bit_cast<uint64_t>(b.cost),
              std::bit_cast<uint64_t>(a.cost));
  }
  ASSERT_EQ(loaded->dataset.trajectories.size(),
            city.dataset.trajectories.size());
  for (size_t t = 0; t < city.dataset.trajectories.size(); ++t) {
    const model::Trajectory& a = city.dataset.trajectories[t];
    const model::Trajectory& b = loaded->dataset.trajectories[t];
    EXPECT_EQ(b.id, a.id);
    EXPECT_EQ(std::bit_cast<uint64_t>(b.start_time_seconds),
              std::bit_cast<uint64_t>(a.start_time_seconds));
    EXPECT_EQ(std::bit_cast<uint64_t>(b.travel_time_seconds),
              std::bit_cast<uint64_t>(a.travel_time_seconds));
    ASSERT_EQ(b.points.size(), a.points.size());
    for (size_t k = 0; k < a.points.size(); ++k) {
      EXPECT_EQ(std::bit_cast<uint64_t>(b.points[k].x),
                std::bit_cast<uint64_t>(a.points[k].x));
      EXPECT_EQ(std::bit_cast<uint64_t>(b.points[k].y),
                std::bit_cast<uint64_t>(a.points[k].y));
    }
  }

  EXPECT_EQ(loaded->index.num_billboards(), city.index.num_billboards());
  EXPECT_EQ(loaded->index.num_trajectories(),
            city.index.num_trajectories());
  EXPECT_DOUBLE_EQ(loaded->index.lambda(), city.index.lambda());
  EXPECT_EQ(loaded->index.TotalSupply(), city.index.TotalSupply());
  EXPECT_EQ(loaded->index.covered(), city.index.covered());
  EXPECT_EQ(loaded->index.covering(), city.index.covering());
}

TEST_F(SnapshotIoTest, LoadedIndexReproducesSolverOutputExactly) {
  IndexSnapshot city = MakeCity();
  std::string path = PathFor("solver.snap");
  ASSERT_TRUE(SaveIndexSnapshot(path, city.dataset, city.index).ok());
  auto loaded = LoadIndexSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  std::vector<market::Advertiser> advertisers;
  for (int i = 0; i < 12; ++i) {
    advertisers.push_back(
        testing::Adv(i, 40 + 17 * i, 5.0 + 1.5 * static_cast<double>(i)));
  }
  core::SolverConfig config;
  config.method = core::Method::kBls;
  config.local_search.restarts = 2;
  config.seed = 99;

  core::SolveResult original = Solve(city.index, advertisers, config);
  core::SolveResult replayed = Solve(loaded->index, advertisers, config);
  EXPECT_EQ(replayed.sets, original.sets);
  EXPECT_DOUBLE_EQ(replayed.breakdown.total, original.breakdown.total);
}

TEST_F(SnapshotIoTest, SaveRefusesEmptyDataset) {
  model::Dataset empty;
  influence::InfluenceIndex index;
  common::Status status =
      SaveIndexSnapshot(PathFor("empty.snap"), empty, index);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotIoTest, SaveRefusesMismatchedIndex) {
  IndexSnapshot city = MakeCity();
  model::Dataset other = testing::DatasetFromIncidence({{0}, {1}}, 2);
  common::Status status =
      SaveIndexSnapshot(PathFor("mismatch.snap"), other, city.index);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotIoTest, SaveCreatesParentDirectories) {
  IndexSnapshot city = MakeCity();
  std::string path = PathFor("deep/nested/dirs/city.snap");
  ASSERT_TRUE(SaveIndexSnapshot(path, city.dataset, city.index).ok());
  EXPECT_TRUE(LoadIndexSnapshot(path).ok());
}

TEST_F(SnapshotIoTest, LoadMissingFileIsNotFound) {
  auto loaded = LoadIndexSnapshot(PathFor("nope.snap"));
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(SnapshotIoTest, LoadRejectsForeignFile) {
  std::string path = PathFor("foreign.snap");
  WriteBytes(path, "id,x,y\n0,1,2\n this is clearly a CSV not a snapshot");
  auto loaded = LoadIndexSnapshot(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("not a mroam index snapshot"),
            std::string::npos);
}

TEST_F(SnapshotIoTest, LoadRejectsUnsupportedVersion) {
  std::string path = SavedCityPath();
  std::string data = ReadBytes(path);
  // The version lives right after the magic, uncovered by any CRC.
  StoreU32(&data, sizeof(kSnapshotMagic), kSnapshotVersion + 1);
  WriteBytes(path, data);
  auto loaded = LoadIndexSnapshot(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("unsupported snapshot version"),
            std::string::npos);
}

TEST_F(SnapshotIoTest, LoadRejectsTruncationAnywhere) {
  std::string path = SavedCityPath();
  const std::string data = ReadBytes(path);
  // Cut the file at a spread of prefix lengths: inside the file header,
  // inside a section header, mid-payload, and just before the end
  // marker. Every cut must surface as a typed error, never a crash.
  const size_t cuts[] = {0,
                         4,
                         kSnapshotFileHeaderBytes - 1,
                         kSnapshotFileHeaderBytes + 5,
                         data.size() / 3,
                         data.size() / 2,
                         data.size() - 5,
                         data.size() - 1};
  for (size_t cut : cuts) {
    WriteBytes(path, data.substr(0, cut));
    auto loaded = LoadIndexSnapshot(path);
    ASSERT_FALSE(loaded.ok()) << "cut at " << cut << " loaded fine";
    EXPECT_TRUE(loaded.status().code() == StatusCode::kDataLoss ||
                loaded.status().code() == StatusCode::kInvalidArgument)
        << "cut at " << cut << ": " << loaded.status().ToString();
  }
}

TEST_F(SnapshotIoTest, LoadRejectsFlippedPayloadByte) {
  std::string path = SavedCityPath();
  std::string data = ReadBytes(path);
  SectionSpan span = FindSection(data, SnapshotSection::kTrajectories);
  ASSERT_GT(span.payload_length, 10u);
  data[span.payload_offset + span.payload_length / 2] ^= 0x40;
  WriteBytes(path, data);
  auto loaded = LoadIndexSnapshot(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("CRC mismatch"),
            std::string::npos);
}

TEST_F(SnapshotIoTest, LoadRejectsMismatchedCoveringSection) {
  std::string path = SavedCityPath();
  std::string data = ReadBytes(path);
  // Forge the reverse index: truncate the first non-empty covering list
  // by one entry (keeping the encoding well-formed) and re-sign the CRC.
  // The framing is now pristine, so only the cross-check against the
  // forward lists can catch it.
  SectionSpan span = FindSection(data, SnapshotSection::kCovering);
  size_t offset = span.payload_offset + 4;  // skip the list count
  const size_t payload_end = span.payload_offset + span.payload_length;
  bool forged = false;
  while (offset + 4 <= payload_end) {
    uint32_t len = ReadU32(data, offset);
    if (len > 0) {
      StoreU32(&data, offset, len - 1);
      data.erase(offset + 4, 4);  // drop the list's first id
      forged = true;
      break;
    }
    offset += 4;
  }
  ASSERT_TRUE(forged);
  // Re-frame: the payload shrank by 4 bytes and needs a fresh CRC.
  size_t length_offset = span.payload_offset - 8;
  uint64_t new_length = span.payload_length - 4;
  for (int i = 0; i < 8; ++i) {
    data[length_offset + i] =
        static_cast<char>((new_length >> (8 * i)) & 0xFFu);
  }
  std::string_view payload(data.data() + span.payload_offset,
                           static_cast<size_t>(new_length));
  StoreU32(&data, span.payload_offset + static_cast<size_t>(new_length),
           common::Crc32(payload));
  WriteBytes(path, data);

  auto loaded = LoadIndexSnapshot(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("covering section"),
            std::string::npos);
}

TEST_F(SnapshotIoTest, SnapshotLoadFaultPointFailsTyped) {
  std::string path = SavedCityPath();
  // The armed io.snapshot_load point turns a perfectly good snapshot
  // into a typed load failure — the hook mroam_serve's distinct exit
  // status (3) and the chaos suite lean on.
  auto& injector = common::FaultInjector::Global();
  ASSERT_TRUE(injector.ArmFromSpec("seed=1;io.snapshot_load=1.0").ok());
  auto faulted = LoadIndexSnapshot(path);
  injector.Disarm();
  EXPECT_EQ(faulted.status().code(), StatusCode::kIoError);
  EXPECT_NE(faulted.status().message().find("fault injection"),
            std::string::npos)
      << faulted.status().ToString();
  // Disarmed again, the same file loads fine.
  EXPECT_TRUE(LoadIndexSnapshot(path).ok());
}

using SnapshotIoDeathTest = SnapshotIoTest;

TEST_F(SnapshotIoDeathTest, ForgedIncidenceListAborts) {
  std::string path = SavedCityPath();
  std::string data = ReadBytes(path);
  // Corrupt an incidence id to an out-of-range value and re-sign the
  // CRC: the framing layer now passes, and the forgery must die on
  // FromIncidence's MROAM_CHECK preconditions instead of serving a
  // corrupt market.
  SectionSpan span = FindSection(data, SnapshotSection::kIncidence);
  size_t offset = span.payload_offset + 4;
  const size_t payload_end = span.payload_offset + span.payload_length;
  bool forged = false;
  while (offset + 4 <= payload_end) {
    uint32_t len = ReadU32(data, offset);
    offset += 4;
    if (len > 0) {
      StoreU32(&data, offset, 0x7FFFFFF0u);  // way out of range
      forged = true;
      break;
    }
  }
  ASSERT_TRUE(forged);
  std::string_view payload(data.data() + span.payload_offset,
                           span.payload_length);
  StoreU32(&data, span.crc_offset, common::Crc32(payload));
  WriteBytes(path, data);

  EXPECT_DEATH(LoadIndexSnapshot(path).ok(), "Check failed");
}

}  // namespace
}  // namespace mroam::io
